/**
 * @file
 * Planning a user-defined network: a speech-style model with a conv
 * front-end and a wide fully-connected stack — the mixed-workload case
 * where neither default parallelism nor the "one weird trick" is
 * optimal and per-layer, per-level hybrid choices pay off.
 *
 * Also demonstrates batch-size sensitivity: the partition HyPar picks
 * changes with B because activations scale with the batch while
 * gradients do not (Section 3.4's central observation).
 */

#include <iostream>

#include "core/comm_model.hh"
#include "core/hierarchical_partitioner.hh"
#include "core/strategies.hh"
#include "dnn/builder.hh"
#include "sim/evaluator.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace hypar;

namespace {

dnn::Network
speechNet()
{
    // Spectrogram input, conv front-end, deep fc stack (DeepSpeech-1
    // flavored, sized for a single-node array).
    return dnn::NetworkBuilder("speech", {1, 128, 128})
        .conv("conv1", 32, 5).stride(2).pad(2)
        .conv("conv2", 64, 3).pad(1).maxPool(2)
        .fc("fc1", 2048)
        .fc("fc2", 2048)
        .fc("fc3", 2048)
        .fc("fc4", 512)
        .fc("out", 29).activation(dnn::Activation::kNone)
        .build();
}

} // namespace

int
main()
{
    dnn::Network net = speechNet();
    std::cout << net.describe() << "\n";

    // How the optimized plan shifts with batch size.
    std::cout << "HyPar's top-level choices vs batch size:\n";
    util::Table t({"batch", "plan (H1)", "comm HyPar", "comm DP",
                   "comm OWT"});
    for (std::size_t batch : {16u, 64u, 256u, 1024u, 4096u}) {
        core::CommConfig comm;
        comm.batch = batch;
        core::CommModel model(net, comm);
        const auto hp = core::HierarchicalPartitioner(model).partition(4);
        t.addRow({std::to_string(batch),
                  core::toBitString(hp.plan.levels[0]),
                  util::formatBytes(hp.commBytes),
                  util::formatBytes(model.planBytes(
                      core::makeDataParallelPlan(net, 4))),
                  util::formatBytes(model.planBytes(
                      core::makeOneWeirdTrickPlan(net, 4)))});
    }
    t.print(std::cout);
    std::cout << "(plan bitstring: 0 = data parallel, 1 = model "
                 "parallel, layer order as listed above)\n\n";

    // Full comparison at the paper's batch size.
    sim::SimConfig cfg;
    sim::Evaluator ev(net, cfg);
    const auto dp = ev.evaluate(core::Strategy::kDataParallel);
    util::Table r({"strategy", "step", "speedup", "comm"});
    for (auto s : {core::Strategy::kDataParallel,
                   core::Strategy::kModelParallel,
                   core::Strategy::kOneWeirdTrick,
                   core::Strategy::kHypar}) {
        const auto m = ev.evaluate(s);
        r.addRow({core::toString(s), util::formatSeconds(m.stepSeconds),
                  util::formatRatio(dp.stepSeconds / m.stepSeconds),
                  util::formatBytes(m.commBytes)});
    }
    r.print(std::cout);
    return 0;
}
