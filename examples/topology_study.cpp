/**
 * @file
 * Topology and bandwidth study: how the choice of interconnect (H-tree
 * fat tree vs 2-D torus) and the link budget change HyPar's advantage.
 * Useful when sizing a new accelerator array for a given model family:
 * it shows where the communication-bound regime starts and how much a
 * better partition buys at each design point.
 */

#include <iostream>

#include "dnn/model_zoo.hh"
#include "sim/evaluator.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace hypar;

namespace {

void
topologySweep(const dnn::Network &net)
{
    std::cout << "HyPar speedup over Data Parallelism on " << net.name()
              << " (16 accelerators):\n";
    util::Table t({"topology", "DP step", "HyPar step", "speedup"});
    for (auto kind : {sim::TopologyKind::kHTree, sim::TopologyKind::kTorus}) {
        sim::SimConfig cfg;
        cfg.topology = kind;
        sim::Evaluator ev(net, cfg);
        const auto dp = ev.evaluate(core::Strategy::kDataParallel);
        const auto hp = ev.evaluate(core::Strategy::kHypar);
        t.addRow({kind == sim::TopologyKind::kHTree ? "H-tree" : "Torus",
                  util::formatSeconds(dp.stepSeconds),
                  util::formatSeconds(hp.stepSeconds),
                  util::formatRatio(dp.stepSeconds / hp.stepSeconds)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

void
bandwidthSweep(const dnn::Network &net)
{
    std::cout << "Link-budget sweep on " << net.name()
              << " (H-tree, root bisection scaled):\n";
    util::Table t({"root bisection", "DP step", "HyPar step", "speedup"});
    for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        sim::SimConfig cfg;
        cfg.noc.rootBisection *= scale;
        cfg.noc.linkBandwidth *= scale;
        sim::Evaluator ev(net, cfg);
        const auto dp = ev.evaluate(core::Strategy::kDataParallel);
        const auto hp = ev.evaluate(core::Strategy::kHypar);
        t.addRow({util::formatSig(12.8 * scale, 3) + " Gb/s",
                  util::formatSeconds(dp.stepSeconds),
                  util::formatSeconds(hp.stepSeconds),
                  util::formatRatio(dp.stepSeconds / hp.stepSeconds)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

void
arraySizeSweep(const dnn::Network &net)
{
    std::cout << "Array-size sweep on " << net.name()
              << " (throughput in samples/s):\n";
    util::Table t({"accelerators", "DP throughput", "HyPar throughput"});
    for (std::size_t levels : {1u, 2u, 3u, 4u, 5u, 6u}) {
        sim::SimConfig cfg;
        cfg.levels = levels;
        sim::Evaluator ev(net, cfg);
        const auto dp = ev.evaluate(core::Strategy::kDataParallel);
        const auto hp = ev.evaluate(core::Strategy::kHypar);
        t.addRow({std::to_string(1u << levels),
                  util::formatSig(dp.samplesPerSec(cfg.comm.batch), 3),
                  util::formatSig(hp.samplesPerSec(cfg.comm.batch), 3)});
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    dnn::Network vgg_a = dnn::makeVggA();
    topologySweep(vgg_a);
    bandwidthSweep(vgg_a);
    arraySizeSweep(vgg_a);
    return 0;
}
