/**
 * @file
 * ImageNet training planner: the workload the paper's introduction
 * motivates (large models, frequent off-chip access, multi-accelerator
 * training). Plans AlexNet training on a sixteen-accelerator HMC array,
 * compares all four strategies, prints the per-layer hybrid plan and a
 * timeline excerpt from the event-driven simulator.
 */

#include <iostream>

#include "core/comm_model.hh"
#include "core/strategies.hh"
#include "dnn/model_zoo.hh"
#include "sim/evaluator.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace hypar;

int
main()
{
    dnn::Network alexnet = dnn::makeAlexNet();
    std::cout << alexnet.describe() << "\n";

    sim::SimConfig cfg; // paper defaults: batch 256, H = 4, H-tree
    cfg.options.recordTrace = true;
    sim::Evaluator evaluator(alexnet, cfg);

    // Compare the four strategies on time, energy and communication.
    util::Table t({"strategy", "step time", "speedup vs DP", "energy",
                   "comm volume"});
    const auto dp = evaluator.evaluate(core::Strategy::kDataParallel);
    for (auto s : {core::Strategy::kDataParallel,
                   core::Strategy::kModelParallel,
                   core::Strategy::kOneWeirdTrick, core::Strategy::kHypar}) {
        const auto m = evaluator.evaluate(s);
        t.addRow({core::toString(s), util::formatSeconds(m.stepSeconds),
                  util::formatRatio(dp.stepSeconds / m.stepSeconds),
                  util::formatJoules(m.energy.totalJ()),
                  util::formatBytes(m.commBytes)});
    }
    t.print(std::cout);

    // The hybrid plan HyPar found.
    const auto plan = evaluator.plan(core::Strategy::kHypar);
    std::cout << "\nHyPar per-layer plan (H1..H4):\n";
    util::Table p({"layer", "kind", "H1", "H2", "H3", "H4"});
    for (std::size_t l = 0; l < alexnet.size(); ++l) {
        std::vector<std::string> row{alexnet.layer(l).name,
                                     dnn::toString(alexnet.layer(l).kind)};
        for (std::size_t h = 0; h < 4; ++h)
            row.push_back(core::toString(plan.levels[h][l]));
        p.addRow(row);
    }
    p.print(std::cout);

    // A timeline excerpt from the event-driven simulation.
    (void)evaluator.evaluate(plan);
    std::cout << "\nFirst simulated tasks of one training step:\n";
    // Rebuild with tracing through a dedicated simulator run.
    core::CommModel model(alexnet, cfg.comm);
    auto topo = sim::makeTopology(cfg.topology, cfg.levels, cfg.noc);
    sim::SimOptions opts;
    opts.recordTrace = true;
    sim::TrainingSimulator simulator(model, cfg.acc, cfg.energy, *topo,
                                     opts);
    (void)simulator.simulate(plan);
    const auto &trace = simulator.lastTrace();
    util::Table tr({"start", "end", "task"});
    for (std::size_t i = 0; i < std::min<std::size_t>(trace.size(), 12);
         ++i) {
        tr.addRow({util::formatSeconds(trace[i].start),
                   util::formatSeconds(trace[i].end), trace[i].label});
    }
    tr.print(std::cout);
    std::cout << "(" << trace.size() << " tasks total)\n";
    return 0;
}
