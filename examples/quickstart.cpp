/**
 * @file
 * Quickstart: partition a small CNN across a sixteen-accelerator array
 * and compare HyPar against default Data Parallelism.
 *
 * This is the five-minute tour of the public API:
 *   1. describe a network with dnn::NetworkBuilder,
 *   2. build a core::CommModel (batch size lives here),
 *   3. run Algorithm 2 via core::HierarchicalPartitioner,
 *   4. simulate a training step with sim::Evaluator.
 */

#include <iostream>

#include "core/comm_model.hh"
#include "core/hierarchical_partitioner.hh"
#include "core/strategies.hh"
#include "dnn/builder.hh"
#include "sim/evaluator.hh"
#include "util/strings.hh"

using namespace hypar;

int
main()
{
    // 1. A LeNet-style network: two conv layers, two fc layers.
    dnn::Network net = dnn::NetworkBuilder("my-cnn", {1, 28, 28})
                           .conv("conv1", 20, 5).maxPool(2)
                           .conv("conv2", 50, 5).maxPool(2)
                           .fc("fc1", 500)
                           .fc("fc2", 10).activation(
                               dnn::Activation::kNone)
                           .build();
    std::cout << net.describe() << "\n";

    // 2. The communication model: batch 256, fp32, sixteen
    //    accelerators organized in four hierarchy levels.
    core::CommConfig comm;
    comm.batch = 256;
    core::CommModel model(net, comm);

    // 3. HyPar's hierarchical partition (Algorithm 2).
    const auto result = core::HierarchicalPartitioner(model).partition(4);
    std::cout << "HyPar plan (per layer, per hierarchy level):\n"
              << core::toString(result.plan)
              << "total communication: "
              << util::formatBytes(result.commBytes) << "\n";

    const double dp_bytes =
        model.planBytes(core::makeDataParallelPlan(net, 4));
    std::cout << "default Data Parallelism would move: "
              << util::formatBytes(dp_bytes) << " ("
              << util::formatRatio(dp_bytes / result.commBytes)
              << " more)\n\n";

    // 4. Simulate one training step on the HMC-based H-tree array.
    sim::SimConfig cfg; // the paper's configuration
    sim::Evaluator evaluator(net, cfg);
    const auto dp = evaluator.evaluate(core::Strategy::kDataParallel);
    const auto hp = evaluator.evaluate(result.plan);
    std::cout << "Data Parallelism: " << dp.summary() << "\n";
    std::cout << "HyPar:            " << hp.summary() << "\n";
    std::cout << "speedup: "
              << util::formatRatio(dp.stepSeconds / hp.stepSeconds)
              << ", energy saving: "
              << util::formatRatio(dp.energy.totalJ() /
                                   hp.energy.totalJ())
              << "\n";
    return 0;
}
