/**
 * @file
 * Spec-driven planning: networks defined in the hyparc text format
 * (parsed at runtime, no recompilation), planned with both the paper's
 * greedy Algorithm 2 and this library's exact joint optimizer, with
 * the itemized communication report explaining where the bytes go.
 *
 * This is the workflow a deployment engineer would use: describe the
 * production model in a .hp file, compare partitioners, inspect the
 * breakdown, then export a chrome://tracing timeline.
 */

#include <iostream>

#include "core/comm_report.hh"
#include "core/hierarchical_partitioner.hh"
#include "core/optimal_partitioner.hh"
#include "core/strategies.hh"
#include "dnn/spec_parser.hh"
#include "sim/evaluator.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace hypar;

namespace {

// A recommender-style tower: wide embeddings into narrowing fc stack
// with a small conv feature extractor on the side features.
constexpr const char *kSpec = R"(
# recommender tower
network rec-tower
input 8 64 64
conv feat1 16 3 pad 1 pool 2
conv feat2 32 3 pad 1 pool 2
fc embed 4096
fc h1 2048
fc h2 1024
fc h3 512
fc logits 100 act none
)";

} // namespace

int
main()
{
    dnn::Network net = dnn::parseNetworkSpec(kSpec);
    std::cout << net.describe() << "\n";

    core::CommConfig comm; // batch 256
    core::CommModel model(net, comm);

    const auto greedy = core::HierarchicalPartitioner(model).partition(4);
    const auto exact = core::OptimalPartitioner(model).partition(4);
    const double dp =
        model.planBytes(core::makeDataParallelPlan(net, 4));

    util::Table t({"partitioner", "total comm", "vs Data Parallelism"});
    t.addRow({"Data Parallelism", util::formatBytes(dp), "1.00x"});
    t.addRow({"Algorithm 2 (greedy)", util::formatBytes(greedy.commBytes),
              util::formatRatio(dp / greedy.commBytes)});
    t.addRow({"joint optimum", util::formatBytes(exact.commBytes),
              util::formatRatio(dp / exact.commBytes)});
    t.print(std::cout);

    if (greedy.plan == exact.plan) {
        std::cout << "\ngreedy found the joint optimum for this "
                     "network.\n";
    } else {
        std::cout << "\ngreedy gap: "
                  << util::formatSig(100.0 * (greedy.commBytes -
                                              exact.commBytes) /
                                         exact.commBytes, 3)
                  << "% — plans differ:\ngreedy:\n"
                  << core::toString(greedy.plan) << "optimal:\n"
                  << core::toString(exact.plan);
    }

    std::cout << "\nWhere the optimal plan's traffic goes:\n\n"
              << core::buildCommReport(model, exact.plan).toString();

    // End-to-end check on the simulator.
    sim::Evaluator ev(net, sim::SimConfig{});
    const auto m_dp = ev.evaluate(core::Strategy::kDataParallel);
    const auto m_opt = ev.evaluate(exact.plan);
    std::cout << "\nsimulated step: DP "
              << util::formatSeconds(m_dp.stepSeconds) << " -> optimal "
              << util::formatSeconds(m_opt.stepSeconds) << " ("
              << util::formatRatio(m_dp.stepSeconds / m_opt.stepSeconds)
              << ")\n";
    return 0;
}
