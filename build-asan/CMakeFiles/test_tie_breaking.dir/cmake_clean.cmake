file(REMOVE_RECURSE
  "CMakeFiles/test_tie_breaking.dir/tests/test_tie_breaking.cc.o"
  "CMakeFiles/test_tie_breaking.dir/tests/test_tie_breaking.cc.o.d"
  "test_tie_breaking"
  "test_tie_breaking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tie_breaking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
