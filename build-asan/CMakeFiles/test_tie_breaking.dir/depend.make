# Empty dependencies file for test_tie_breaking.
# This may be replaced when dependencies are built.
