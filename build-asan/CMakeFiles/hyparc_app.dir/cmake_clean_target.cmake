file(REMOVE_RECURSE
  "libhyparc_app.a"
)
