file(REMOVE_RECURSE
  "CMakeFiles/hyparc_app.dir/tools/hyparc_app.cc.o"
  "CMakeFiles/hyparc_app.dir/tools/hyparc_app.cc.o.d"
  "libhyparc_app.a"
  "libhyparc_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyparc_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
