# Empty dependencies file for hyparc_app.
# This may be replaced when dependencies are built.
