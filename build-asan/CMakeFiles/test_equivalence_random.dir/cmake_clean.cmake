file(REMOVE_RECURSE
  "CMakeFiles/test_equivalence_random.dir/tests/test_equivalence_random.cc.o"
  "CMakeFiles/test_equivalence_random.dir/tests/test_equivalence_random.cc.o.d"
  "test_equivalence_random"
  "test_equivalence_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_equivalence_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
