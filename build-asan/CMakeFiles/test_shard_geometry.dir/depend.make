# Empty dependencies file for test_shard_geometry.
# This may be replaced when dependencies are built.
