file(REMOVE_RECURSE
  "CMakeFiles/test_shard_geometry.dir/tests/test_shard_geometry.cc.o"
  "CMakeFiles/test_shard_geometry.dir/tests/test_shard_geometry.cc.o.d"
  "test_shard_geometry"
  "test_shard_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shard_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
