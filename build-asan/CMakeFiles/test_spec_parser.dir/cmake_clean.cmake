file(REMOVE_RECURSE
  "CMakeFiles/test_spec_parser.dir/tests/test_spec_parser.cc.o"
  "CMakeFiles/test_spec_parser.dir/tests/test_spec_parser.cc.o.d"
  "test_spec_parser"
  "test_spec_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
