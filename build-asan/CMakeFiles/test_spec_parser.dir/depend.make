# Empty dependencies file for test_spec_parser.
# This may be replaced when dependencies are built.
