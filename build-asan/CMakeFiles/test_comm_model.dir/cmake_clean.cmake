file(REMOVE_RECURSE
  "CMakeFiles/test_comm_model.dir/tests/test_comm_model.cc.o"
  "CMakeFiles/test_comm_model.dir/tests/test_comm_model.cc.o.d"
  "test_comm_model"
  "test_comm_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
