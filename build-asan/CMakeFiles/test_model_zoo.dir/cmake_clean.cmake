file(REMOVE_RECURSE
  "CMakeFiles/test_model_zoo.dir/tests/test_model_zoo.cc.o"
  "CMakeFiles/test_model_zoo.dir/tests/test_model_zoo.cc.o.d"
  "test_model_zoo"
  "test_model_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
