# Empty dependencies file for test_model_zoo.
# This may be replaced when dependencies are built.
