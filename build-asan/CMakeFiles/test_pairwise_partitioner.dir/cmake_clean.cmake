file(REMOVE_RECURSE
  "CMakeFiles/test_pairwise_partitioner.dir/tests/test_pairwise_partitioner.cc.o"
  "CMakeFiles/test_pairwise_partitioner.dir/tests/test_pairwise_partitioner.cc.o.d"
  "test_pairwise_partitioner"
  "test_pairwise_partitioner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pairwise_partitioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
