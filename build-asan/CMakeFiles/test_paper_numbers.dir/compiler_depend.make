# Empty compiler generated dependencies file for test_paper_numbers.
# This may be replaced when dependencies are built.
