file(REMOVE_RECURSE
  "CMakeFiles/test_paper_numbers.dir/tests/test_paper_numbers.cc.o"
  "CMakeFiles/test_paper_numbers.dir/tests/test_paper_numbers.cc.o.d"
  "test_paper_numbers"
  "test_paper_numbers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_numbers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
