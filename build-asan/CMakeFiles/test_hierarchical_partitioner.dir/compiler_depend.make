# Empty compiler generated dependencies file for test_hierarchical_partitioner.
# This may be replaced when dependencies are built.
