file(REMOVE_RECURSE
  "CMakeFiles/test_hierarchical_partitioner.dir/tests/test_hierarchical_partitioner.cc.o"
  "CMakeFiles/test_hierarchical_partitioner.dir/tests/test_hierarchical_partitioner.cc.o.d"
  "test_hierarchical_partitioner"
  "test_hierarchical_partitioner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hierarchical_partitioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
