file(REMOVE_RECURSE
  "CMakeFiles/test_perf_smoke.dir/tests/test_perf_smoke.cc.o"
  "CMakeFiles/test_perf_smoke.dir/tests/test_perf_smoke.cc.o.d"
  "test_perf_smoke"
  "test_perf_smoke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
