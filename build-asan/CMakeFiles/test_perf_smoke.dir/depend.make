# Empty dependencies file for test_perf_smoke.
# This may be replaced when dependencies are built.
