file(REMOVE_RECURSE
  "CMakeFiles/hyparc.dir/tools/hyparc.cc.o"
  "CMakeFiles/hyparc.dir/tools/hyparc.cc.o.d"
  "hyparc"
  "hyparc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyparc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
