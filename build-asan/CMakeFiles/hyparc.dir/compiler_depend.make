# Empty compiler generated dependencies file for hyparc.
# This may be replaced when dependencies are built.
