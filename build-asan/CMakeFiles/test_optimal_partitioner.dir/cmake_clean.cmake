file(REMOVE_RECURSE
  "CMakeFiles/test_optimal_partitioner.dir/tests/test_optimal_partitioner.cc.o"
  "CMakeFiles/test_optimal_partitioner.dir/tests/test_optimal_partitioner.cc.o.d"
  "test_optimal_partitioner"
  "test_optimal_partitioner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optimal_partitioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
