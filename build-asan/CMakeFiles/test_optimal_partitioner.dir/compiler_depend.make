# Empty compiler generated dependencies file for test_optimal_partitioner.
# This may be replaced when dependencies are built.
