file(REMOVE_RECURSE
  "CMakeFiles/test_evaluator.dir/tests/test_evaluator.cc.o"
  "CMakeFiles/test_evaluator.dir/tests/test_evaluator.cc.o.d"
  "test_evaluator"
  "test_evaluator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evaluator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
