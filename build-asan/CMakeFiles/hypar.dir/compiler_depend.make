# Empty compiler generated dependencies file for hypar.
# This may be replaced when dependencies are built.
