file(REMOVE_RECURSE
  "libhypar.a"
)
