
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/accelerator.cc" "CMakeFiles/hypar.dir/src/arch/accelerator.cc.o" "gcc" "CMakeFiles/hypar.dir/src/arch/accelerator.cc.o.d"
  "/root/repo/src/arch/energy_model.cc" "CMakeFiles/hypar.dir/src/arch/energy_model.cc.o" "gcc" "CMakeFiles/hypar.dir/src/arch/energy_model.cc.o.d"
  "/root/repo/src/arch/row_stationary.cc" "CMakeFiles/hypar.dir/src/arch/row_stationary.cc.o" "gcc" "CMakeFiles/hypar.dir/src/arch/row_stationary.cc.o.d"
  "/root/repo/src/core/brute_force.cc" "CMakeFiles/hypar.dir/src/core/brute_force.cc.o" "gcc" "CMakeFiles/hypar.dir/src/core/brute_force.cc.o.d"
  "/root/repo/src/core/comm_model.cc" "CMakeFiles/hypar.dir/src/core/comm_model.cc.o" "gcc" "CMakeFiles/hypar.dir/src/core/comm_model.cc.o.d"
  "/root/repo/src/core/comm_report.cc" "CMakeFiles/hypar.dir/src/core/comm_report.cc.o" "gcc" "CMakeFiles/hypar.dir/src/core/comm_report.cc.o.d"
  "/root/repo/src/core/hierarchical_partitioner.cc" "CMakeFiles/hypar.dir/src/core/hierarchical_partitioner.cc.o" "gcc" "CMakeFiles/hypar.dir/src/core/hierarchical_partitioner.cc.o.d"
  "/root/repo/src/core/optimal_partitioner.cc" "CMakeFiles/hypar.dir/src/core/optimal_partitioner.cc.o" "gcc" "CMakeFiles/hypar.dir/src/core/optimal_partitioner.cc.o.d"
  "/root/repo/src/core/pairwise_partitioner.cc" "CMakeFiles/hypar.dir/src/core/pairwise_partitioner.cc.o" "gcc" "CMakeFiles/hypar.dir/src/core/pairwise_partitioner.cc.o.d"
  "/root/repo/src/core/plan.cc" "CMakeFiles/hypar.dir/src/core/plan.cc.o" "gcc" "CMakeFiles/hypar.dir/src/core/plan.cc.o.d"
  "/root/repo/src/core/shard_geometry.cc" "CMakeFiles/hypar.dir/src/core/shard_geometry.cc.o" "gcc" "CMakeFiles/hypar.dir/src/core/shard_geometry.cc.o.d"
  "/root/repo/src/core/strategies.cc" "CMakeFiles/hypar.dir/src/core/strategies.cc.o" "gcc" "CMakeFiles/hypar.dir/src/core/strategies.cc.o.d"
  "/root/repo/src/dnn/builder.cc" "CMakeFiles/hypar.dir/src/dnn/builder.cc.o" "gcc" "CMakeFiles/hypar.dir/src/dnn/builder.cc.o.d"
  "/root/repo/src/dnn/layer.cc" "CMakeFiles/hypar.dir/src/dnn/layer.cc.o" "gcc" "CMakeFiles/hypar.dir/src/dnn/layer.cc.o.d"
  "/root/repo/src/dnn/model_zoo.cc" "CMakeFiles/hypar.dir/src/dnn/model_zoo.cc.o" "gcc" "CMakeFiles/hypar.dir/src/dnn/model_zoo.cc.o.d"
  "/root/repo/src/dnn/network.cc" "CMakeFiles/hypar.dir/src/dnn/network.cc.o" "gcc" "CMakeFiles/hypar.dir/src/dnn/network.cc.o.d"
  "/root/repo/src/dnn/spec_parser.cc" "CMakeFiles/hypar.dir/src/dnn/spec_parser.cc.o" "gcc" "CMakeFiles/hypar.dir/src/dnn/spec_parser.cc.o.d"
  "/root/repo/src/noc/htree.cc" "CMakeFiles/hypar.dir/src/noc/htree.cc.o" "gcc" "CMakeFiles/hypar.dir/src/noc/htree.cc.o.d"
  "/root/repo/src/noc/topology.cc" "CMakeFiles/hypar.dir/src/noc/topology.cc.o" "gcc" "CMakeFiles/hypar.dir/src/noc/topology.cc.o.d"
  "/root/repo/src/noc/torus.cc" "CMakeFiles/hypar.dir/src/noc/torus.cc.o" "gcc" "CMakeFiles/hypar.dir/src/noc/torus.cc.o.d"
  "/root/repo/src/sim/evaluator.cc" "CMakeFiles/hypar.dir/src/sim/evaluator.cc.o" "gcc" "CMakeFiles/hypar.dir/src/sim/evaluator.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "CMakeFiles/hypar.dir/src/sim/event_queue.cc.o" "gcc" "CMakeFiles/hypar.dir/src/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "CMakeFiles/hypar.dir/src/sim/metrics.cc.o" "gcc" "CMakeFiles/hypar.dir/src/sim/metrics.cc.o.d"
  "/root/repo/src/sim/trace_export.cc" "CMakeFiles/hypar.dir/src/sim/trace_export.cc.o" "gcc" "CMakeFiles/hypar.dir/src/sim/trace_export.cc.o.d"
  "/root/repo/src/sim/training_sim.cc" "CMakeFiles/hypar.dir/src/sim/training_sim.cc.o" "gcc" "CMakeFiles/hypar.dir/src/sim/training_sim.cc.o.d"
  "/root/repo/src/util/logging.cc" "CMakeFiles/hypar.dir/src/util/logging.cc.o" "gcc" "CMakeFiles/hypar.dir/src/util/logging.cc.o.d"
  "/root/repo/src/util/stats.cc" "CMakeFiles/hypar.dir/src/util/stats.cc.o" "gcc" "CMakeFiles/hypar.dir/src/util/stats.cc.o.d"
  "/root/repo/src/util/strings.cc" "CMakeFiles/hypar.dir/src/util/strings.cc.o" "gcc" "CMakeFiles/hypar.dir/src/util/strings.cc.o.d"
  "/root/repo/src/util/table.cc" "CMakeFiles/hypar.dir/src/util/table.cc.o" "gcc" "CMakeFiles/hypar.dir/src/util/table.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "CMakeFiles/hypar.dir/src/util/thread_pool.cc.o" "gcc" "CMakeFiles/hypar.dir/src/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
