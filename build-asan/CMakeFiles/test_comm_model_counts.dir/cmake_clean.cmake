file(REMOVE_RECURSE
  "CMakeFiles/test_comm_model_counts.dir/tests/test_comm_model_counts.cc.o"
  "CMakeFiles/test_comm_model_counts.dir/tests/test_comm_model_counts.cc.o.d"
  "test_comm_model_counts"
  "test_comm_model_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_model_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
