# Empty compiler generated dependencies file for test_comm_model_counts.
# This may be replaced when dependencies are built.
