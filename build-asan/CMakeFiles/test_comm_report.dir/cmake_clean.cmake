file(REMOVE_RECURSE
  "CMakeFiles/test_comm_report.dir/tests/test_comm_report.cc.o"
  "CMakeFiles/test_comm_report.dir/tests/test_comm_report.cc.o.d"
  "test_comm_report"
  "test_comm_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
