# Empty compiler generated dependencies file for test_comm_report.
# This may be replaced when dependencies are built.
