file(REMOVE_RECURSE
  "CMakeFiles/test_training_sim.dir/tests/test_training_sim.cc.o"
  "CMakeFiles/test_training_sim.dir/tests/test_training_sim.cc.o.d"
  "test_training_sim"
  "test_training_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_training_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
