file(REMOVE_RECURSE
  "CMakeFiles/test_hyparc.dir/tests/test_hyparc.cc.o"
  "CMakeFiles/test_hyparc.dir/tests/test_hyparc.cc.o.d"
  "test_hyparc"
  "test_hyparc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hyparc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
