# Empty compiler generated dependencies file for test_hyparc.
# This may be replaced when dependencies are built.
