#include "sim/event_queue.hh"

#include <utility>

#include "util/logging.hh"

namespace hypar::sim {

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_)
        util::panic("EventQueue: scheduling into the past");
    queue_.push(Event{when, nextSeq_++, std::move(cb)});
}

void
EventQueue::scheduleAfter(Tick delay, Callback cb)
{
    if (delay < 0.0)
        util::panic("EventQueue: negative delay");
    schedule(now_ + delay, std::move(cb));
}

void
EventQueue::run()
{
    while (!queue_.empty()) {
        // The callback may schedule more events; copy out first.
        Event ev = queue_.top();
        queue_.pop();
        now_ = ev.when;
        ++processed_;
        ev.cb();
    }
}

} // namespace hypar::sim
