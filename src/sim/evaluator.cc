#include "sim/evaluator.hh"

#include "noc/htree.hh"
#include "noc/torus.hh"
#include "util/logging.hh"

namespace hypar::sim {

std::unique_ptr<noc::Topology>
makeTopology(TopologyKind kind, std::size_t levels,
             const noc::TopologyConfig &cfg)
{
    switch (kind) {
      case TopologyKind::kHTree:
        return std::make_unique<noc::HTreeTopology>(levels, cfg);
      case TopologyKind::kTorus:
        return std::make_unique<noc::TorusTopology>(levels, cfg);
      case TopologyKind::kMesh:
        return std::make_unique<noc::MeshTopology>(levels, cfg);
    }
    util::panic("unknown TopologyKind");
}

Evaluator::Evaluator(const dnn::Network &network, const SimConfig &config)
    : network_(network), config_(config),
      model_(network_, config_.comm),
      topology_(makeTopology(config_.topology, config_.levels,
                             config_.noc)),
      simulator_(std::make_unique<TrainingSimulator>(
          model_, config_.acc, config_.energy, *topology_,
          config_.options))
{}

StepMetrics
Evaluator::evaluate(const core::HierarchicalPlan &plan) const
{
    return simulator_->simulate(plan);
}

StepMetrics
Evaluator::evaluate(core::Strategy strategy) const
{
    return evaluate(plan(strategy));
}

std::vector<StepMetrics>
Evaluator::evaluateBatch(std::span<const core::HierarchicalPlan> plans,
                         util::ThreadPool &pool) const
{
    std::vector<StepMetrics> results(plans.size());
    if (plans.empty())
        return results;

    // Each chunk clones the (cheap) simulator so the mutable trace
    // buffer is never shared; model/topology are read-only. Results are
    // written by index, so any chunk grid is bit-identical to the
    // sequential loop.
    SimOptions options = config_.options;
    options.recordTrace = false;
    pool.parallelFor(
        0, plans.size(), pool.grainFor(plans.size()),
        [&](std::size_t begin, std::size_t end) {
            TrainingSimulator sim(model_, config_.acc, config_.energy,
                                  *topology_, options);
            for (std::size_t i = begin; i < end; ++i)
                results[i] = sim.simulate(plans[i]);
        });
    return results;
}

std::vector<StepMetrics>
Evaluator::evaluateBatch(
    std::span<const core::HierarchicalPlan> plans) const
{
    return evaluateBatch(plans, util::ThreadPool::global());
}

std::vector<StepMetrics>
Evaluator::evaluateBatch(std::span<const core::Strategy> strategies) const
{
    std::vector<core::HierarchicalPlan> plans;
    plans.reserve(strategies.size());
    for (const core::Strategy s : strategies)
        plans.push_back(plan(s));
    return evaluateBatch(plans);
}

void
Evaluator::sweepNeighborhood(
    const core::HierarchicalPlan &base, std::size_t level,
    const std::function<void(std::uint64_t, const StepMetrics &)> &visit)
    const
{
    simulator_->sweepNeighborhood(base, level, visit);
}

StepMetrics
Evaluator::evaluateSteadyState(const core::HierarchicalPlan &plan,
                               std::size_t steps) const
{
    return simulator_->simulateSteadyState(plan, steps);
}

core::HierarchicalPlan
Evaluator::plan(core::Strategy strategy) const
{
    return core::makePlan(strategy, model_, config_.levels);
}

double
Evaluator::commBytes(const core::HierarchicalPlan &plan) const
{
    return model_.planBytes(plan);
}

double
StrategyReport::mpSpeedup() const
{
    return dataParallel.stepSeconds / modelParallel.stepSeconds;
}

double
StrategyReport::hyparSpeedup() const
{
    return dataParallel.stepSeconds / hypar.stepSeconds;
}

double
StrategyReport::mpEnergyEff() const
{
    return dataParallel.energy.totalJ() / modelParallel.energy.totalJ();
}

double
StrategyReport::hyparEnergyEff() const
{
    return dataParallel.energy.totalJ() / hypar.energy.totalJ();
}

StrategyReport
compareStrategies(const dnn::Network &network, const SimConfig &config)
{
    Evaluator ev(network, config);
    StrategyReport report;
    report.dataParallel = ev.evaluate(core::Strategy::kDataParallel);
    report.modelParallel = ev.evaluate(core::Strategy::kModelParallel);
    report.hyparPlan = ev.plan(core::Strategy::kHypar);
    report.hypar = ev.evaluate(report.hyparPlan);
    return report;
}

} // namespace hypar::sim
