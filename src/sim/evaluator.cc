#include "sim/evaluator.hh"

#include <cmath>

#include "noc/htree.hh"
#include "noc/torus.hh"
#include "util/logging.hh"

namespace hypar::sim {

std::unique_ptr<noc::Topology>
makeTopology(TopologyKind kind, std::size_t levels,
             const noc::TopologyConfig &cfg)
{
    switch (kind) {
      case TopologyKind::kHTree:
        return std::make_unique<noc::HTreeTopology>(levels, cfg);
      case TopologyKind::kTorus:
        return std::make_unique<noc::TorusTopology>(levels, cfg);
      case TopologyKind::kMesh:
        return std::make_unique<noc::MeshTopology>(levels, cfg);
    }
    util::panic("unknown TopologyKind");
}

namespace {

/** Build the topology and, for a non-empty fault map, validate the map
 *  against it and apply the link derating. */
std::unique_ptr<noc::Topology>
makeFaultedTopology(const SimConfig &config)
{
    auto topo = makeTopology(config.topology, config.levels, config.noc);
    if (!config.faults.empty()) {
        if (!config.faults.links.empty() &&
            !topo->supportsLinkFaults()) {
            // Reject instead of planning around entries the topology
            // silently ignores; point at the source line when the map
            // came from a file (fault_map.cc's error convention).
            const arch::FaultEntry &first = config.faults.links.front();
            const std::string where =
                first.line > 0
                    ? "fault map line " + std::to_string(first.line)
                    : "fault map";
            util::fatal(where + ": link entry (id " +
                        std::to_string(first.id) + ") against " +
                        topo->name() +
                        ", which has no link-level fault model — "
                        "remove the link entries or use a topology "
                        "that supports them");
        }
        arch::validateFaultMap(config.faults, topo->numNodes(),
                               topo->numLinks());
        if (!config.faults.links.empty())
            topo->applyLinkScales(
                arch::linkScales(config.faults, topo->numLinks()));
    }
    return topo;
}

/** Comm config with the degraded topology's level penalties attached.
 *  Rejects maps that leave a traffic-carrying level with no surviving
 *  bandwidth (infinite penalty) — the CommModel has no finite cost to
 *  offer the search in that case. */
core::CommConfig
faultedCommConfig(const SimConfig &config, const noc::Topology &topo)
{
    core::CommConfig comm = config.comm;
    if (topo.degraded()) {
        std::vector<double> penalties = topo.levelPenalties();
        for (std::size_t h = 0; h < penalties.size(); ++h) {
            if (!std::isfinite(penalties[h]))
                util::fatal("Evaluator: fault map kills every route of "
                            "hierarchy level " + std::to_string(h) +
                            " on " + std::string(topo.name()) +
                            "; the level is unusable — reject the "
                            "fault map instead of planning around it");
        }
        comm.levelPenalties = std::move(penalties);
    }
    return comm;
}

/** Sim options with the compute derating of the fault map folded in. */
SimOptions
faultedOptions(const SimConfig &config, const noc::Topology &topo)
{
    SimOptions options = config.options;
    if (!config.faults.nodes.empty())
        options.computeScale *=
            arch::computeScaleFactor(config.faults, topo.numNodes());
    return options;
}

} // namespace

void
validateFaults(const SimConfig &config)
{
    if (config.faults.empty())
        return;
    const std::unique_ptr<noc::Topology> topo = makeFaultedTopology(config);
    (void)faultedCommConfig(config, *topo);
}

Evaluator::Evaluator(const dnn::Network &network, const SimConfig &config)
    : network_(network), config_(config),
      topology_(makeFaultedTopology(config_)),
      model_(network_, faultedCommConfig(config_, *topology_)),
      simulator_(std::make_unique<TrainingSimulator>(
          model_, config_.acc, config_.energy, *topology_,
          faultedOptions(config_, *topology_)))
{}

StepMetrics
Evaluator::evaluate(const core::HierarchicalPlan &plan) const
{
    return simulator_->simulate(plan);
}

StepMetrics
Evaluator::evaluate(core::Strategy strategy) const
{
    return evaluate(plan(strategy));
}

std::vector<StepMetrics>
Evaluator::evaluateBatch(std::span<const core::HierarchicalPlan> plans,
                         util::ThreadPool &pool) const
{
    std::vector<StepMetrics> results(plans.size());
    if (plans.empty())
        return results;

    // Each chunk clones the (cheap) simulator so the mutable trace
    // buffer is never shared; model/topology are read-only. Results are
    // written by index, so any chunk grid is bit-identical to the
    // sequential loop. The clones carry the fault map's compute
    // derating, exactly like the ctor-built simulator.
    SimOptions options = faultedOptions(config_, *topology_);
    options.recordTrace = false;
    pool.parallelFor(
        0, plans.size(), pool.grainFor(plans.size()),
        [&](std::size_t begin, std::size_t end) {
            TrainingSimulator sim(model_, config_.acc, config_.energy,
                                  *topology_, options);
            for (std::size_t i = begin; i < end; ++i)
                results[i] = sim.simulate(plans[i]);
        });
    return results;
}

std::vector<StepMetrics>
Evaluator::evaluateBatch(
    std::span<const core::HierarchicalPlan> plans) const
{
    return evaluateBatch(plans, util::ThreadPool::global());
}

std::vector<StepMetrics>
Evaluator::evaluateBatch(std::span<const core::Strategy> strategies) const
{
    std::vector<core::HierarchicalPlan> plans;
    plans.reserve(strategies.size());
    for (const core::Strategy s : strategies)
        plans.push_back(plan(s));
    return evaluateBatch(plans);
}

void
Evaluator::sweepNeighborhood(
    const core::HierarchicalPlan &base, std::size_t level,
    const std::function<void(std::uint64_t, const StepMetrics &)> &visit)
    const
{
    simulator_->sweepNeighborhood(base, level, visit);
}

StepMetrics
Evaluator::evaluateSteadyState(const core::HierarchicalPlan &plan,
                               std::size_t steps) const
{
    return simulator_->simulateSteadyState(plan, steps);
}

core::HierarchicalPlan
Evaluator::plan(core::Strategy strategy) const
{
    return core::makePlan(strategy, model_, config_.levels);
}

double
Evaluator::commBytes(const core::HierarchicalPlan &plan) const
{
    return model_.planBytes(plan);
}

std::size_t
Evaluator::approxBytes() const
{
    return sizeof(Evaluator) + network_.approxBytes() +
           model_.approxTableBytes() + simulator_->approxTableBytes();
}

double
StrategyReport::mpSpeedup() const
{
    return dataParallel.stepSeconds / modelParallel.stepSeconds;
}

double
StrategyReport::hyparSpeedup() const
{
    return dataParallel.stepSeconds / hypar.stepSeconds;
}

double
StrategyReport::mpEnergyEff() const
{
    return dataParallel.energy.totalJ() / modelParallel.energy.totalJ();
}

double
StrategyReport::hyparEnergyEff() const
{
    return dataParallel.energy.totalJ() / hypar.energy.totalJ();
}

StrategyReport
compareStrategies(const dnn::Network &network, const SimConfig &config)
{
    Evaluator ev(network, config);
    StrategyReport report;
    report.dataParallel = ev.evaluate(core::Strategy::kDataParallel);
    report.modelParallel = ev.evaluate(core::Strategy::kModelParallel);
    report.hyparPlan = ev.plan(core::Strategy::kHypar);
    report.hypar = ev.evaluate(report.hyparPlan);
    return report;
}

} // namespace hypar::sim
