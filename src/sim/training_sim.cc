#include "sim/training_sim.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "core/brute_force.hh"
#include "sim/event_queue.hh"
#include "util/logging.hh"

namespace hypar::sim {

namespace {

constexpr int kFwd = 0;
constexpr int kBwd = 1;
constexpr int kGrad = 2;

/** Accumulate a duration into the right phase bucket. */
void
addPhaseSeconds(TimeBreakdown &phases, int phase, double seconds)
{
    switch (phase) {
      case kFwd:
        phases.forward += seconds;
        break;
      case kBwd:
        phases.backward += seconds;
        break;
      default:
        phases.gradient += seconds;
        break;
    }
}

} // namespace

TrainingSimulator::TrainingSimulator(const core::CommModel &model,
                                     const arch::AcceleratorConfig &acc,
                                     const arch::EnergyModel &energy,
                                     const noc::Topology &topo,
                                     const SimOptions &options)
    : model_(&model), acc_(acc), energy_(energy), topo_(&topo),
      options_(options), mapper_(acc)
{
    arch::validateAcceleratorConfig(acc_);
    if (!(options_.computeScale > 0.0) ||
        !std::isfinite(options_.computeScale))
        util::fatal("TrainingSimulator: SimOptions::computeScale must "
                    "be positive and finite");
    const std::size_t levels = topo_->levels();
    if (levels <= kPrefixTableMaxLevels) {
        const std::size_t states = std::size_t{1} << levels;
        prefixDp_.resize(states * (levels + 1));
        for (std::size_t s = 0; s < states; ++s) {
            unsigned dp = 0;
            for (std::size_t h = 0; h <= levels; ++h) {
                prefixDp_[s * (levels + 1) + h] =
                    static_cast<std::uint8_t>(dp);
                if (h < levels && ((s >> h) & 1u) == 0)
                    ++dp;
            }
        }
    }
}

unsigned
TrainingSimulator::dpAbove(std::uint32_t state, std::size_t h) const
{
    if (!prefixDp_.empty())
        return prefixDp_[std::size_t{state} * (topo_->levels() + 1) + h];
    const auto mask =
        static_cast<std::uint32_t>((std::uint64_t{1} << h) - 1u);
    return static_cast<unsigned>(h) -
           static_cast<unsigned>(std::popcount(state & mask));
}

void
TrainingSimulator::addExchange(std::vector<Task> &tasks, std::size_t level,
                               double pair_bytes, bool async, int phase,
                               const char *tag,
                               const std::string &layer_name,
                               StepMetrics &metrics) const
{
    if (pair_bytes <= 0.0)
        return;

    Task t;
    t.kind = Task::Kind::kExchange;
    t.seconds = topo_->exchangeSeconds(level, pair_bytes);
    t.globalBytes = pair_bytes * std::ldexp(1.0, static_cast<int>(level));
    t.async = async;
    t.phase = phase;
    // Labels only feed the trace; skipping them keeps the hot sweep and
    // batch paths free of per-task string allocations.
    if (options_.recordTrace)
        t.label = std::string(tag) + ":" + layer_name + "@H" +
                  std::to_string(level + 1);
    metrics.commBytes += t.globalBytes;

    // Remote word: DRAM read at the producer, link traversal, DRAM
    // write at the consumer; reductions additionally pay one fp32 add
    // per received word (counted as compute energy).
    const double words = t.globalBytes / model_->config().wordBytes;
    metrics.energy.commJ +=
        words * 2.0 * energy_.dramWordJ +
        energy_.linkEnergy(words, topo_->exchangeHops(level));
    metrics.energy.computeJ += words * energy_.addJ;

    tasks.push_back(std::move(t));
}

std::vector<TrainingSimulator::Task>
TrainingSimulator::buildTasks(const core::HierarchicalPlan &plan,
                              StepMetrics &metrics) const
{
    const dnn::Network &net = model_->network();
    const core::CommConfig &comm = model_->config();
    const std::size_t num_layers = net.size();
    const std::size_t levels = plan.numLevels();
    const double num_accs = std::ldexp(1.0, static_cast<int>(levels));
    const double batch = static_cast<double>(comm.batch);

    core::validatePlan(plan, net);
    if (levels != topo_->levels())
        util::fatal("TrainingSimulator: plan depth does not match the "
                    "topology");

    // Per-layer level-vector columns: bit h of col[l] set = layer l
    // runs model-parallel at level h. All the dp/mp counts the scaling
    // needs are functions of a layer's own column, served by dpAbove()
    // from the shared prefix-count table — no per-plan History chain
    // is rebuilt, so batched/swept plans that differ in a few layers
    // share all of this for free.
    HYPAR_ASSERT(levels < 32, "plan depth exceeds the 32-bit column");
    std::vector<std::uint32_t> col(num_layers, 0);
    for (std::size_t h = 0; h < levels; ++h)
        for (std::size_t l = 0; l < num_layers; ++l)
            if (plan.levels[h][l] == core::Parallelism::kModel)
                col[l] |= std::uint32_t{1} << h;

    // Per-layer shard geometry after all H splits.
    std::vector<double> batch_shard(num_layers);
    std::vector<double> weight_shard(num_layers);
    std::vector<double> in_shard(num_layers);
    for (std::size_t l = 0; l < num_layers; ++l) {
        const auto d = static_cast<int>(dpAbove(col[l], levels));
        const auto m = static_cast<int>(levels) - d;
        batch_shard[l] = batch * std::ldexp(1.0, -d);
        weight_shard[l] = static_cast<double>(
                              net.layer(l).weightElems()) *
                          std::ldexp(1.0, -m);
        in_shard[l] = static_cast<double>(
                          net.layer(l).inElemsPerSample()) *
                      std::ldexp(1.0, -m);
    }

    std::vector<Task> tasks;

    // Emit one compute task (PE time overlapped with DRAM streaming).
    auto add_compute = [&](std::size_t l, int phase, double macs,
                           double dram_bytes, const char *tag) {
        const dnn::Layer &layer = net.layer(l);
        const auto map_batch = static_cast<std::size_t>(
            std::max(1.0, std::floor(batch_shard[l])));
        const double pe_sec = mapper_.phaseSeconds(layer, map_batch, macs);
        const double dram_sec = dram_bytes / acc_.dramBandwidth;

        Task t;
        t.kind = Task::Kind::kCompute;
        // Slowest-surviving-node derating (1.0 pristine, exact).
        t.seconds = std::max(pe_sec, dram_sec) * options_.computeScale;
        t.phase = phase;
        if (options_.recordTrace)
            t.label = std::string(tag) + ":" + layer.name;
        metrics.computeBusySeconds += t.seconds;

        const arch::Mapping mapping = mapper_.map(layer, map_batch);
        metrics.energy.computeJ +=
            num_accs * energy_.computeEnergy(macs);
        metrics.energy.sramJ += num_accs * energy_.sramEnergy(
            macs * mapping.sramWordsPerMac);
        metrics.energy.dramJ += num_accs * energy_.dramEnergy(
            dram_bytes / comm.wordBytes);
        tasks.push_back(std::move(t));
    };

    // Per-accelerator MACs of one phase of layer l: every hierarchy
    // level halves either the batch or the input channels.
    auto shard_macs = [&](std::size_t l) {
        return net.layer(l).fwdMacsPerSample() * batch / num_accs;
    };

    // --- forward -------------------------------------------------------
    for (std::size_t l = 0; l < num_layers; ++l) {
        const dnn::Layer &layer = net.layer(l);
        const double out_elems =
            static_cast<double>(layer.outRawElemsPerSample()) *
            batch_shard[l];
        const double dram_bytes =
            (in_shard[l] * batch_shard[l] + weight_shard[l] + out_elems) *
            comm.wordBytes;
        add_compute(l, kFwd, shard_macs(l), dram_bytes, "fwd");

        for (std::size_t h = 0; h < levels; ++h) {
            if (plan.levels[h][l] == core::Parallelism::kModel) {
                const unsigned dp = dpAbove(col[l], h);
                addExchange(tasks, h,
                            model_->intraBytesAt(
                                l, core::Parallelism::kModel, dp,
                                static_cast<unsigned>(h) - dp),
                            false, kFwd, "psum", layer.name, metrics);
            }
            // Forward boundary exchanges: one per outgoing DAG edge,
            // destinations ascending. On a chain this is exactly the
            // old single l -> l+1 term.
            for (const std::size_t w : net.succs(l)) {
                addExchange(tasks, h,
                            model_->interBytesFAt(
                                l, plan.levels[h][l],
                                plan.levels[h][w],
                                dpAbove(col[l], h)),
                            false, kFwd, "featx", layer.name, metrics);
            }
        }
    }

    // --- error backward (layer 0 needs no input error) ------------------
    for (std::size_t l = num_layers; l-- > 1;) {
        const dnn::Layer &layer = net.layer(l);
        const double out_elems =
            static_cast<double>(layer.outRawElemsPerSample()) *
            batch_shard[l];
        const double dram_bytes =
            (out_elems + weight_shard[l] + in_shard[l] * batch_shard[l]) *
            comm.wordBytes;
        add_compute(l, kBwd, shard_macs(l), dram_bytes, "bwd");

        // The incoming edges u -> l move E_l during backward (its
        // batch dimension follows layer l's upper dp splits); a join
        // layer fans its error back along every incoming edge. On a
        // chain this is exactly the old single l-1 -> l term.
        for (std::size_t h = 0; h < levels; ++h) {
            for (const std::size_t u : net.preds(l)) {
                addExchange(tasks, h,
                            model_->interBytesEAt(
                                u, plan.levels[h][u],
                                plan.levels[h][l], dpAbove(col[l], h)),
                            false, kBwd, "errx", layer.name, metrics);
            }
        }
    }

    // --- gradient + weight update ---------------------------------------
    for (std::size_t l = 0; l < num_layers; ++l) {
        const dnn::Layer &layer = net.layer(l);
        const double out_elems =
            static_cast<double>(layer.outRawElemsPerSample()) *
            batch_shard[l];
        // Read activations and errors, write the gradient, then
        // read-modify-write the kernel for the update.
        const double dram_bytes =
            (in_shard[l] * batch_shard[l] + out_elems +
             3.0 * weight_shard[l]) * comm.wordBytes;
        add_compute(l, kGrad, shard_macs(l), dram_bytes, "grad");

        for (std::size_t h = 0; h < levels; ++h) {
            if (plan.levels[h][l] == core::Parallelism::kData) {
                const unsigned dp = dpAbove(col[l], h);
                addExchange(tasks, h,
                            model_->intraBytesAt(
                                l, core::Parallelism::kData, dp,
                                static_cast<unsigned>(h) - dp),
                            options_.overlapGradComm, kGrad, "gradx",
                            layer.name, metrics);
            }
        }
    }

    return tasks;
}

StepMetrics
TrainingSimulator::simulate(const core::HierarchicalPlan &plan) const
{
    return simulateSteadyState(plan, 1);
}

StepMetrics
TrainingSimulator::simulateSteadyState(const core::HierarchicalPlan &plan,
                                       std::size_t steps) const
{
    if (steps == 0)
        util::fatal("simulateSteadyState: need at least one step");

    StepMetrics metrics;
    std::vector<Task> step_tasks = buildTasks(plan, metrics);

    // Per-step accounting was accumulated once by buildTasks; scale
    // the totals.
    const auto steps_d = static_cast<double>(steps);
    metrics.commBytes *= steps_d;
    metrics.energy.computeJ *= steps_d;
    metrics.energy.sramJ *= steps_d;
    metrics.energy.dramJ *= steps_d;
    metrics.energy.commJ *= steps_d;
    metrics.computeBusySeconds = 0.0; // re-accumulated by the replay
    trace_.clear();

    // The resource algebra both paths below apply per task: the serial
    // chain models the lockstep dependence (compute -> exchange -> next
    // layer); async exchanges contend for the network but do not block
    // the chain.
    double serial_free = 0.0;  // when the lockstep chain may continue
    double network_free = 0.0; // when the interconnect is idle again
    auto applyTask = [&](const Task &t) {
        double start = 0.0;
        if (t.kind == Task::Kind::kCompute) {
            start = serial_free;
            serial_free = start + t.seconds;
            metrics.computeBusySeconds += t.seconds;
        } else if (t.async) {
            // Data is ready once the producing compute finished
            // (serial_free); the network may still be draining.
            start = std::max(network_free, serial_free);
            network_free = start + t.seconds;
        } else {
            start = std::max(serial_free, network_free);
            serial_free = start + t.seconds;
            network_free = serial_free;
        }
        const double end = start + t.seconds;
        addPhaseSeconds(metrics.phases, t.phase, t.seconds);
        if (t.kind == Task::Kind::kExchange)
            metrics.networkBusySeconds += t.seconds;
        if (options_.recordTrace)
            trace_.push_back(TraceEntry{start, end, t.label});
        return end;
    };

    if (steps == 1) {
        // Single step: play the task list through the event queue (the
        // historical simulate() path, kept verbatim).
        EventQueue queue;
        double sim_end = 0.0;
        std::size_t next = 0;
        std::function<void()> dispatch = [&]() {
            if (next >= step_tasks.size())
                return;
            const double end = applyTask(step_tasks[next]);
            sim_end = std::max(sim_end, end);
            ++next;

            // Completion of this task releases the next one. Async
            // exchanges do not hold the serial chain back, so the next
            // task's logical end may lie before this event's end; clamp
            // the bookkeeping event into the present (start/end come
            // from the resource algebra, not from event time).
            queue.schedule(std::max(end, queue.now()), dispatch);
        };
        queue.schedule(0.0, dispatch);
        queue.run();
        HYPAR_ASSERT(next == step_tasks.size(), "task list not drained");
        metrics.stepSeconds = sim_end;
        return metrics;
    }

    // Steady state: the queue's dispatch chain is purely sequential
    // (each task's completion schedules exactly the next task), so
    // replaying the same algebra over the one-step task list `steps`
    // times performs the identical operations in the identical order —
    // bit-identical to the old replicate-then-queue path (pinned by
    // tests/test_training_sim.cc) with O(1) extra memory instead of a
    // steps * |tasks| materialized copy.
    std::vector<double> step_finish(steps, 0.0);
    for (std::size_t s = 0; s < steps; ++s) {
        for (const Task &t : step_tasks)
            (void)applyTask(t);
        // A step is complete once both its chain and any async
        // stragglers scheduled so far have drained.
        step_finish[s] = std::max(serial_free, network_free);
    }
    // Spacing of the step boundaries after warm-up.
    metrics.stepSeconds =
        (step_finish[steps - 1] - step_finish[0]) / (steps_d - 1.0);
    return metrics;
}

TapeSchedule
TrainingSimulator::overlapSchedule(const core::HierarchicalPlan &plan) const
{
    StepMetrics scratch;
    const std::vector<Task> tasks = buildTasks(plan, scratch);

    // Replay the exact resource algebra of simulateSteadyState's
    // dispatch: compute advances the serial tape, an async exchange
    // advances the network tape from max(network, serial), and a
    // synchronous exchange advances the serial tape from the later of
    // the two and joins the network tape to it.
    TapeSchedule sched;
    sched.tasks.reserve(tasks.size());
    double serial = 0.0;
    double network = 0.0;
    double sim_end = 0.0;
    for (const Task &t : tasks) {
        TapeTask e;
        e.exchange = t.kind == Task::Kind::kExchange;
        e.async = t.async;
        e.phase = t.phase;
        e.seconds = t.seconds;
        e.label = t.label;
        if (!e.exchange) {
            e.tape = TapeTask::Tape::kSerial;
            e.start = serial;
            serial += t.seconds;
        } else if (t.async) {
            e.tape = TapeTask::Tape::kNetwork;
            e.start = std::max(network, serial);
            network = e.start + t.seconds;
        } else {
            e.tape = TapeTask::Tape::kSerial;
            e.start = std::max(serial, network);
            serial = e.start + t.seconds;
            network = serial;
        }
        e.end = e.start + t.seconds;
        sim_end = std::max(sim_end, e.end);
        sched.tasks.push_back(std::move(e));
    }
    sched.serialEnd = serial;
    sched.networkEnd = network;
    sched.stepSeconds = sim_end;
    return sched;
}

namespace {

/** Precomputed contributions of one compute task under one flip bit. */
struct ComputeContrib
{
    double seconds = 0.0;
    double computeJ = 0.0;
    double sramJ = 0.0;
    double dramJ = 0.0;
};

/** Precomputed contributions of one exchange slot under one variant. */
struct ExchangeContrib
{
    bool present = false; //!< addExchange skips zero-byte exchanges
    double seconds = 0.0;
    double globalBytes = 0.0;
    double commJ = 0.0; //!< remote DRAM + link energy
    double addJ = 0.0;  //!< reduction adds, booked as compute energy
};

} // namespace

void
TrainingSimulator::sweepNeighborhood(
    const core::HierarchicalPlan &base, std::size_t level,
    const std::function<void(std::uint64_t, const StepMetrics &)> &visit)
    const
{
    const dnn::Network &net = model_->network();
    const core::CommConfig &comm = model_->config();
    const std::size_t num_layers = net.size();
    const std::size_t levels = base.numLevels();

    core::validatePlan(base, net);
    if (levels != topo_->levels())
        util::fatal("sweepNeighborhood: plan depth does not match the "
                    "topology");
    if (level >= levels)
        util::fatal("sweepNeighborhood: swept level out of range");
    if (num_layers > 24)
        util::fatal("sweepNeighborhood: more than 24 layers makes the "
                    "2^L sweep unreasonable");

    // DAG networks: the 4-variant incremental tables below key the
    // inter exchanges by the chain transition (l, l+1), which does not
    // hold with joins. Fall back to one full simulate() per
    // substituted mask — bit-identical by definition, just O(2^L)
    // rebuilds. An incremental DAG sweep is a recorded follow-up
    // (ROADMAP).
    if (!net.isChain()) {
        core::sweepLevelMasks(
            base, level,
            [&](std::uint64_t mask, const core::HierarchicalPlan &plan) {
                visit(mask, simulate(plan));
            });
        return;
    }

    const std::uint64_t num_masks = std::uint64_t{1} << num_layers;

    // ---- precompute ---------------------------------------------------
    //
    // Flipping layer l's choice at the swept level changes only values
    // that depend on that bit: layer l's shard geometry (all three
    // compute tasks), its intra exchanges at the swept level (choice)
    // and below it (scaling), and the two adjacent inter exchanges
    // (which also read the neighbor's bit). Every task slot therefore
    // has at most 4 variants; precompute them all with the exact
    // arithmetic buildTasks uses, then score each mask by replaying the
    // accumulator sequence below.

    const double num_accs = std::ldexp(1.0, static_cast<int>(levels));
    const double batch = static_cast<double>(comm.batch);

    // dp/mp counts of the base plan's levels 0..h-1 *excluding* the
    // swept level, per layer; the swept bit is patched in per variant.
    std::vector<unsigned> dp_excl((levels + 1) * num_layers, 0);
    std::vector<unsigned> mp_excl((levels + 1) * num_layers, 0);
    for (std::size_t h = 0; h < levels; ++h) {
        for (std::size_t l = 0; l < num_layers; ++l) {
            unsigned dp = dp_excl[h * num_layers + l];
            unsigned mp = mp_excl[h * num_layers + l];
            if (h != level) {
                if (base.levels[h][l] == core::Parallelism::kData)
                    ++dp;
                else
                    ++mp;
            }
            dp_excl[(h + 1) * num_layers + l] = dp;
            mp_excl[(h + 1) * num_layers + l] = mp;
        }
    }
    // Upper-level counts seen by hierarchy level h for layer l when the
    // swept bit of layer l is `b` (1 = mp). The swept level only counts
    // for levels strictly below it.
    auto dp_above = [&](std::size_t h, std::size_t l, int b) {
        return dp_excl[h * num_layers + l] +
               ((h > level && b == 0) ? 1u : 0u);
    };
    auto mp_above = [&](std::size_t h, std::size_t l, int b) {
        return mp_excl[h * num_layers + l] +
               ((h > level && b == 1) ? 1u : 0u);
    };
    // Effective choice of (level h, layer l) when the swept bit is b.
    auto choice = [&](std::size_t h, std::size_t l, int b) {
        if (h == level)
            return b ? core::Parallelism::kModel
                     : core::Parallelism::kData;
        return base.levels[h][l];
    };

    auto make_exchange = [&](std::size_t h, double pair_bytes) {
        ExchangeContrib c;
        if (pair_bytes <= 0.0)
            return c;
        c.present = true;
        c.seconds = topo_->exchangeSeconds(h, pair_bytes);
        c.globalBytes =
            pair_bytes * std::ldexp(1.0, static_cast<int>(h));
        const double words = c.globalBytes / comm.wordBytes;
        c.commJ = words * 2.0 * energy_.dramWordJ +
                  energy_.linkEnergy(words, topo_->exchangeHops(h));
        c.addJ = words * energy_.addJ;
        return c;
    };

    // comp[(3*l + phase) * 2 + b]; bwd entries of layer 0 stay unused.
    std::vector<ComputeContrib> comp(num_layers * 3 * 2);
    // intra slots: [(l * levels + h) * 2 + b]
    std::vector<ExchangeContrib> psum(num_layers * levels * 2);
    std::vector<ExchangeContrib> gradx(num_layers * levels * 2);
    // inter slots of transition l -> l+1: [(l * levels + h) * 4 +
    // (2*b_l + b_next)]
    const std::size_t transitions = num_layers > 0 ? num_layers - 1 : 0;
    std::vector<ExchangeContrib> featx(transitions * levels * 4);
    std::vector<ExchangeContrib> errx(transitions * levels * 4);

    for (std::size_t l = 0; l < num_layers; ++l) {
        const dnn::Layer &layer = net.layer(l);
        const double macs =
            net.layer(l).fwdMacsPerSample() * batch / num_accs;
        for (int b = 0; b < 2; ++b) {
            // Shard geometry after all H splits, swept bit = b.
            const auto d_full = static_cast<int>(
                dp_excl[levels * num_layers + l] + (b == 0 ? 1u : 0u));
            const auto m_full = static_cast<int>(
                mp_excl[levels * num_layers + l] + (b == 1 ? 1u : 0u));
            const double batch_shard = batch * std::ldexp(1.0, -d_full);
            const double weight_shard =
                static_cast<double>(layer.weightElems()) *
                std::ldexp(1.0, -m_full);
            const double in_shard =
                static_cast<double>(layer.inElemsPerSample()) *
                std::ldexp(1.0, -m_full);
            const double out_elems =
                static_cast<double>(layer.outRawElemsPerSample()) *
                batch_shard;

            const auto map_batch = static_cast<std::size_t>(
                std::max(1.0, std::floor(batch_shard)));
            const double pe_sec =
                mapper_.phaseSeconds(layer, map_batch, macs);
            const arch::Mapping mapping = mapper_.map(layer, map_batch);
            const double compute_j =
                num_accs * energy_.computeEnergy(macs);
            const double sram_j = num_accs * energy_.sramEnergy(
                macs * mapping.sramWordsPerMac);

            const double dram_bytes[3] = {
                (in_shard * batch_shard + weight_shard + out_elems) *
                    comm.wordBytes,
                (out_elems + weight_shard + in_shard * batch_shard) *
                    comm.wordBytes,
                (in_shard * batch_shard + out_elems +
                 3.0 * weight_shard) * comm.wordBytes,
            };
            for (int phase = 0; phase < 3; ++phase) {
                ComputeContrib &c = comp[(3 * l + phase) * 2 + b];
                const double dram_sec =
                    dram_bytes[phase] / acc_.dramBandwidth;
                c.seconds =
                    std::max(pe_sec, dram_sec) * options_.computeScale;
                c.computeJ = compute_j;
                c.sramJ = sram_j;
                c.dramJ = num_accs * energy_.dramEnergy(
                    dram_bytes[phase] / comm.wordBytes);
            }

            for (std::size_t h = 0; h < levels; ++h) {
                if (choice(h, l, b) == core::Parallelism::kModel) {
                    psum[(l * levels + h) * 2 + b] = make_exchange(
                        h, model_->intraBytesAt(
                               l, core::Parallelism::kModel,
                               dp_above(h, l, b), mp_above(h, l, b)));
                } else {
                    gradx[(l * levels + h) * 2 + b] = make_exchange(
                        h, model_->intraBytesAt(
                               l, core::Parallelism::kData,
                               dp_above(h, l, b), mp_above(h, l, b)));
                }
            }
        }
    }
    for (std::size_t l = 0; l + 1 < num_layers; ++l) {
        for (std::size_t h = 0; h < levels; ++h) {
            for (int bl = 0; bl < 2; ++bl) {
                for (int bn = 0; bn < 2; ++bn) {
                    const std::size_t slot =
                        (l * levels + h) * 4 +
                        static_cast<std::size_t>(2 * bl + bn);
                    featx[slot] = make_exchange(
                        h, model_->interBytesFAt(
                               l, choice(h, l, bl),
                               choice(h, l + 1, bn),
                               dp_above(h, l, bl)));
                    errx[slot] = make_exchange(
                        h, model_->interBytesEAt(
                               l, choice(h, l, bl),
                               choice(h, l + 1, bn),
                               dp_above(h, l + 1, bn)));
                }
            }
        }
    }

    // ---- trace labels -------------------------------------------------
    //
    // A task's label is a function of its slot alone — tag, layer name,
    // hierarchy level — never of the swept mask, so one string per slot
    // serves every visited plan and the trace can be emitted straight
    // from the variant tables (this was the last remaining per-mask
    // simulate() fallback). Built only under recordTrace; the hot
    // non-trace sweep stays allocation-free.
    const bool tracing = options_.recordTrace;
    std::vector<std::string> comp_label, psum_label, gradx_label,
        featx_label, errx_label;
    if (tracing) {
        comp_label.resize(num_layers * 3);
        psum_label.resize(num_layers * levels);
        gradx_label.resize(num_layers * levels);
        featx_label.resize(transitions * levels);
        errx_label.resize(transitions * levels);
        for (std::size_t l = 0; l < num_layers; ++l) {
            const std::string &name = net.layer(l).name;
            comp_label[3 * l + kFwd] = "fwd:" + name;
            comp_label[3 * l + kBwd] = "bwd:" + name;
            comp_label[3 * l + kGrad] = "grad:" + name;
            for (std::size_t h = 0; h < levels; ++h) {
                const std::string at = "@H" + std::to_string(h + 1);
                psum_label[l * levels + h] = "psum:" + name + at;
                gradx_label[l * levels + h] = "gradx:" + name + at;
            }
        }
        for (std::size_t l = 0; l + 1 < num_layers; ++l) {
            for (std::size_t h = 0; h < levels; ++h) {
                const std::string at = "@H" + std::to_string(h + 1);
                // featx of transition l -> l+1 is emitted while walking
                // layer l forward; errx while walking layer l+1
                // backward — each labeled with the emitting layer.
                featx_label[l * levels + h] =
                    "featx:" + net.layer(l).name + at;
                errx_label[l * levels + h] =
                    "errx:" + net.layer(l + 1).name + at;
            }
        }
    }
    // nullptr when not tracing, so the replay below can branch once.
    auto slot_label = [&](const std::vector<std::string> &labels,
                          std::size_t slot) {
        return tracing ? &labels[slot] : nullptr;
    };

    // ---- per-mask replay ----------------------------------------------
    //
    // One walk over the task slots in buildTasks' emission order (which
    // is also the event-queue dispatch order), updating every StepMetrics
    // accumulator with the same additions the real path performs. The
    // chain algebra rides two tapes: compute and synchronous exchanges
    // advance `serial` (a plain left-to-right sum — on the paper path
    // that alone is stepSeconds), while under overlapGradComm the
    // gradient reductions advance `network` from max(network, serial),
    // exactly the event queue's async rule; a synchronous exchange
    // joins the network tape back to the serial one. Flipping one
    // layer's bit re-selects only that layer's few variant slots — the
    // tape segments the flip actually touches — and the replay's
    // accumulation order never changes, so every mask's StepMetrics is
    // bit-identical to a full simulate() in both modes.
    const bool overlap = options_.overlapGradComm;
    for (std::uint64_t mask = 0; mask < num_masks; ++mask) {
        StepMetrics m;
        double serial = 0.0;
        double network = 0.0;
        if (tracing)
            trace_.clear();
        const auto bit = [&](std::size_t l) {
            return static_cast<int>((mask >> l) & 1);
        };

        auto tally_compute = [&](std::size_t l, int phase,
                                 double &phase_acc) {
            const ComputeContrib &c =
                comp[(3 * l + phase) * 2 + bit(l)];
            m.energy.computeJ += c.computeJ;
            m.energy.sramJ += c.sramJ;
            m.energy.dramJ += c.dramJ;
            const double start = serial;
            serial += c.seconds;
            m.computeBusySeconds += c.seconds;
            phase_acc += c.seconds;
            if (tracing)
                trace_.push_back(TraceEntry{
                    start, serial,
                    comp_label[3 * l + static_cast<std::size_t>(phase)]});
        };
        auto tally_exchange = [&](const ExchangeContrib &c,
                                  double &phase_acc,
                                  const std::string *label) {
            if (!c.present)
                return;
            m.commBytes += c.globalBytes;
            m.energy.commJ += c.commJ;
            m.energy.computeJ += c.addJ;
            // The event queue's synchronous rule verbatim. In the
            // emitted task order network never leads serial here (all
            // async tasks sit in the final phase), so the max is the
            // identity and the sum stays bit-identical to the
            // non-overlap serial chain.
            const double start = std::max(serial, network);
            serial = start + c.seconds;
            network = serial;
            m.networkBusySeconds += c.seconds;
            phase_acc += c.seconds;
            if (label != nullptr)
                trace_.push_back(TraceEntry{start, serial, *label});
        };
        // Overlapped gradient reduction: network-tape task.
        auto tally_async_exchange = [&](const ExchangeContrib &c,
                                        double &phase_acc,
                                        const std::string *label) {
            if (!c.present)
                return;
            m.commBytes += c.globalBytes;
            m.energy.commJ += c.commJ;
            m.energy.computeJ += c.addJ;
            const double start = std::max(network, serial);
            network = start + c.seconds;
            m.networkBusySeconds += c.seconds;
            phase_acc += c.seconds;
            if (label != nullptr)
                trace_.push_back(TraceEntry{start, network, *label});
        };

        // forward
        for (std::size_t l = 0; l < num_layers; ++l) {
            tally_compute(l, kFwd, m.phases.forward);
            for (std::size_t h = 0; h < levels; ++h) {
                if (choice(h, l, bit(l)) == core::Parallelism::kModel)
                    tally_exchange(psum[(l * levels + h) * 2 + bit(l)],
                                   m.phases.forward,
                                   slot_label(psum_label,
                                              l * levels + h));
                if (l + 1 < num_layers)
                    tally_exchange(
                        featx[(l * levels + h) * 4 +
                              static_cast<std::size_t>(
                                  2 * bit(l) + bit(l + 1))],
                        m.phases.forward,
                        slot_label(featx_label, l * levels + h));
            }
        }
        // error backward
        for (std::size_t l = num_layers; l-- > 1;) {
            tally_compute(l, kBwd, m.phases.backward);
            for (std::size_t h = 0; h < levels; ++h)
                tally_exchange(
                    errx[((l - 1) * levels + h) * 4 +
                         static_cast<std::size_t>(
                             2 * bit(l - 1) + bit(l))],
                    m.phases.backward,
                    slot_label(errx_label, (l - 1) * levels + h));
        }
        // gradient
        for (std::size_t l = 0; l < num_layers; ++l) {
            tally_compute(l, kGrad, m.phases.gradient);
            for (std::size_t h = 0; h < levels; ++h) {
                if (choice(h, l, bit(l)) == core::Parallelism::kData) {
                    const ExchangeContrib &c =
                        gradx[(l * levels + h) * 2 + bit(l)];
                    const std::string *label =
                        slot_label(gradx_label, l * levels + h);
                    if (overlap)
                        tally_async_exchange(c, m.phases.gradient,
                                             label);
                    else
                        tally_exchange(c, m.phases.gradient, label);
                }
            }
        }

        // Both tapes are monotone, so the step ends when the later one
        // drains (without overlap network never exceeds serial and
        // this is the plain serial sum).
        m.stepSeconds = std::max(serial, network);
        visit(mask, m);
    }
}

} // namespace hypar::sim
