/**
 * @file
 * Export a simulated training-step trace in the Chrome trace-event
 * JSON format (load via chrome://tracing or https://ui.perfetto.dev):
 * compute tasks on a "compute" track, exchanges on a "network" track,
 * durations in microseconds.
 */

#ifndef HYPAR_SIM_TRACE_EXPORT_HH
#define HYPAR_SIM_TRACE_EXPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/training_sim.hh"

namespace hypar::sim {

/**
 * Write `trace` as a Chrome trace-event JSON array. Task-kind routing
 * is inferred from the label prefixes the simulator emits (fwd/bwd/
 * grad -> compute track; psum/featx/errx/gradx -> network track).
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceEntry> &trace);

/** Convenience: render to a string. */
std::string chromeTraceJson(const std::vector<TraceEntry> &trace);

} // namespace hypar::sim

#endif // HYPAR_SIM_TRACE_EXPORT_HH
