/**
 * @file
 * Discrete-event simulation core: a time-ordered queue of callbacks with
 * deterministic FIFO ordering among simultaneous events (insertion
 * sequence breaks ties, so simulation results are reproducible
 * regardless of scheduling patterns).
 */

#ifndef HYPAR_SIM_EVENT_QUEUE_HH
#define HYPAR_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace hypar::sim {

/** Simulation timestamp in seconds. */
using Tick = double;

/** Minimal deterministic discrete-event queue. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * Schedule `cb` at absolute time `when`; fatal if `when` is in the
     * simulated past.
     */
    void schedule(Tick when, Callback cb);

    /** Schedule `cb` `delay` seconds from now. */
    void scheduleAfter(Tick delay, Callback cb);

    /** Run until no events remain. */
    void run();

    /** Current simulated time. */
    Tick now() const { return now_; }

    bool empty() const { return queue_.empty(); }

    /** Events processed by run() so far. */
    std::uint64_t processed() const { return processed_; }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    Tick now_ = 0.0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;
};

} // namespace hypar::sim

#endif // HYPAR_SIM_EVENT_QUEUE_HH
