#include "sim/robust.hh"

#include <algorithm>
#include <memory>

#include "util/logging.hh"

namespace hypar::sim {

RobustResult
robustPlan(const dnn::Network &network, const SimConfig &config,
           const RobustOptions &options, util::ThreadPool &pool)
{
    if (options.samples == 0)
        util::fatal("robustPlan: need at least one fault-map sample");

    // The pristine array anchors the candidate pool and supplies the
    // component counts the sampler needs.
    SimConfig pristine = config;
    pristine.faults = arch::FaultMap{};
    Evaluator base(network, pristine);
    const std::size_t num_nodes = base.topology().numNodes();
    // Topologies without a link-level fault model (mesh) sample node
    // faults only; link entries would be rejected downstream.
    const std::size_t num_links = base.topology().supportsLinkFaults()
                                      ? base.topology().numLinks()
                                      : 0;

    RobustResult result;
    result.sampleMaps.reserve(options.samples);
    for (std::size_t k = 0; k < options.samples; ++k)
        result.sampleMaps.push_back(
            arch::sampleFaultMap(options.rate, num_nodes, num_links,
                                 arch::mixSeed(options.seed, k)));

    // Candidate pool: the pristine optimum first, then each sample's
    // exact re-planned optimum, deduplicated in discovery order so the
    // tie-break below is well defined.
    std::vector<core::HierarchicalPlan> plans;
    auto add_candidate = [&](core::HierarchicalPlan plan) {
        if (std::find(plans.begin(), plans.end(), plan) == plans.end())
            plans.push_back(std::move(plan));
    };
    add_candidate(core::OptimalPartitioner(base.model())
                      .partition(pristine.levels, options.search)
                      .plan);

    // Every sampled degraded array gets its own evaluator; kept alive
    // so the scoring pass below reuses the built models and topologies.
    std::vector<std::unique_ptr<Evaluator>> sample_evs;
    sample_evs.reserve(options.samples);
    for (const arch::FaultMap &map : result.sampleMaps) {
        SimConfig degraded = pristine;
        degraded.faults = map;
        auto ev = std::make_unique<Evaluator>(network, degraded);
        add_candidate(core::OptimalPartitioner(ev->model())
                          .partition(pristine.levels, options.search)
                          .plan);
        sample_evs.push_back(std::move(ev));
    }

    // Score: every candidate on every sampled array. evaluateBatch is
    // bit-identical at any thread count, and the mean accumulates in
    // fixed sample order, so the whole search is too.
    result.candidates.resize(plans.size());
    for (std::size_t c = 0; c < plans.size(); ++c) {
        result.candidates[c].plan = plans[c];
        result.candidates[c].sampleStepSeconds.resize(options.samples);
    }
    for (std::size_t k = 0; k < options.samples; ++k) {
        const std::vector<StepMetrics> metrics =
            sample_evs[k]->evaluateBatch(
                std::span<const core::HierarchicalPlan>(plans), pool);
        for (std::size_t c = 0; c < plans.size(); ++c)
            result.candidates[c].sampleStepSeconds[k] =
                metrics[c].stepSeconds;
    }
    for (RobustCandidate &cand : result.candidates) {
        double sum = 0.0;
        for (const double s : cand.sampleStepSeconds)
            sum += s;
        cand.expectedStepSeconds =
            sum / static_cast<double>(options.samples);
    }

    // Argmin expected cost; ties toward the earliest candidate.
    std::size_t best = 0;
    for (std::size_t c = 1; c < result.candidates.size(); ++c) {
        if (result.candidates[c].expectedStepSeconds <
            result.candidates[best].expectedStepSeconds)
            best = c;
    }
    result.winner = best;
    result.plan = result.candidates[best].plan;
    result.expectedStepSeconds =
        result.candidates[best].expectedStepSeconds;
    result.pristineExpectedStepSeconds =
        result.candidates[0].expectedStepSeconds;
    return result;
}

RobustResult
robustPlan(const dnn::Network &network, const SimConfig &config,
           const RobustOptions &options)
{
    return robustPlan(network, config, options,
                      util::ThreadPool::global());
}

} // namespace hypar::sim
