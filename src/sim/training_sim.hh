/**
 * @file
 * Event-driven simulation of one DNN training step on the accelerator
 * array (paper Section 6.1: "We use an event-driven simulation ... we
 * modeled the computation cost and the memory access between vaults, we
 * also considered the tensor communication").
 *
 * The array executes in lockstep: every accelerator holds an identical
 * shard (each hierarchy level halves either the batch or the kernel), so
 * per-layer compute is symmetric and the simulator tracks one
 * representative accelerator plus the hierarchical tensor exchanges.
 *
 * A step is a task list played through the discrete-event queue:
 *
 *   forward   l = 0..L-1: compute; mp partial-sum reductions (intra);
 *                         dp-mp boundary feature transfers (inter-F)
 *   backward  l = L-1..1: compute; boundary error transfers (inter-E)
 *   gradient  l = 0..L-1: compute; dp gradient reductions (intra)
 *
 * Compute tasks overlap PE time with DRAM streaming (double buffering:
 * task time = max of the two). Exchanges occupy the interconnect; with
 * SimOptions::overlapGradComm the gradient reductions run asynchronously
 * on the network while later layers keep computing (the classic
 * all-reduce overlap; off by default to match the paper).
 */

#ifndef HYPAR_SIM_TRAINING_SIM_HH
#define HYPAR_SIM_TRAINING_SIM_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "arch/accelerator.hh"
#include "arch/energy_model.hh"
#include "arch/row_stationary.hh"
#include "core/comm_model.hh"
#include "core/plan.hh"
#include "noc/topology.hh"
#include "sim/metrics.hh"

namespace hypar::sim {

/** Simulation knobs. */
struct SimOptions
{
    /** Overlap gradient reductions with remaining compute. */
    bool overlapGradComm = false;

    /** Record a per-task trace (examples / debugging). */
    bool recordTrace = false;

    /**
     * Compute-time multiplier for a degraded array (>= 1.0 when some
     * nodes are slow or dead, 1.0 pristine): the lockstep array runs at
     * the pace of the slowest surviving node, which additionally picks
     * up its share of the dead nodes' work, so every compute task's
     * seconds are multiplied by this factor
     * (arch::computeScaleFactor derives it from a FaultMap). Energy is
     * deliberately left unscaled: slow silicon still performs the same
     * MACs and DRAM accesses. Must be positive and finite.
     */
    double computeScale = 1.0;
};

/** One executed task, for trace inspection. */
struct TraceEntry
{
    double start = 0.0;
    double end = 0.0;
    std::string label;
};

/**
 * One resolved task of the two-tape schedule decomposition
 * (TrainingSimulator::overlapSchedule): which tape it advanced, by how
 * much, and the start/end the event queue's resource algebra assigns
 * it. Compute tasks and synchronous exchanges ride the *serial* tape
 * (the lockstep chain); asynchronous gradient reductions ride the
 * *network* tape. A synchronous exchange additionally joins the two
 * tapes (it occupies the interconnect, so the network tape is busy
 * until it completes).
 */
struct TapeTask
{
    enum class Tape { kSerial, kNetwork };
    Tape tape = Tape::kSerial;
    bool exchange = false; //!< occupies the interconnect
    bool async = false;    //!< network-tape task (overlapped reduction)
    int phase = 0;         //!< 0 fwd, 1 bwd, 2 grad
    double seconds = 0.0;
    double start = 0.0;
    double end = 0.0;
    std::string label; //!< built only under SimOptions::recordTrace
};

/**
 * The two-tape decomposition of one training step: the serial compute
 * chain and the overlapped network chain, with every task's resolved
 * start/end. `stepSeconds` is the maximum task end and equals
 * simulate()'s stepSeconds exactly (tests/test_overlap_schedule.cc
 * pins the decomposition against the event queue).
 */
struct TapeSchedule
{
    std::vector<TapeTask> tasks; //!< in dispatch (emission) order
    double serialEnd = 0.0;      //!< when the serial tape drains
    double networkEnd = 0.0;     //!< when the network tape drains
    double stepSeconds = 0.0;    //!< max task end == simulate()'s
};

/** Simulates training steps for one (network, array, topology) triple. */
class TrainingSimulator
{
  public:
    /**
     * @param model  communication model (carries network and batch).
     * @param acc    per-accelerator configuration.
     * @param energy per-operation energies.
     * @param topo   interconnect; its level count fixes the array size
     *               and must match the plans passed to simulate().
     */
    TrainingSimulator(const core::CommModel &model,
                      const arch::AcceleratorConfig &acc,
                      const arch::EnergyModel &energy,
                      const noc::Topology &topo,
                      const SimOptions &options = {});

    /** Simulate one training step under `plan`. */
    StepMetrics simulate(const core::HierarchicalPlan &plan) const;

    /**
     * Simulate `steps` back-to-back training steps and report the
     * steady-state step latency: (finish(last) - finish(first)) /
     * (steps - 1). Without gradient overlap this equals the single-
     * step latency exactly; with SimOptions::overlapGradComm the tail
     * gradient reductions of step s drain underneath step s+1's
     * forward compute, and the steady-state latency is lower — the
     * classic all-reduce/forward pipelining. The first synchronous
     * exchange of the next step provides natural backpressure (it
     * waits for the network to drain), which conservatively models
     * the weight-update dependency.
     *
     * Cost: the per-step task list is built once (reusing the
     * prefix-count table like every other entry point) and the
     * multi-step cadence is a replay of the dispatch resource algebra
     * over that single list — `steps` never multiplies memory, so
     * long-horizon cadences are cheap. Bit-identical to the old
     * replicate-the-task-list implementation (pinned by
     * tests/test_training_sim.cc).
     */
    StepMetrics simulateSteadyState(const core::HierarchicalPlan &plan,
                                    std::size_t steps) const;

    /**
     * Incremental single-level sweep (the Fig. 9/10 building block):
     * visit simulate(base with level `level` replaced by each of the
     * 2^L masks) for all masks in ascending order, without rebuilding
     * per-plan state. Flipping one layer's choice at one level changes
     * at most two values of every task in the step (its own bit for
     * compute/intra tasks, the two endpoint bits for inter exchanges),
     * so all task-slot contributions are precomputed once and each
     * mask's StepMetrics is a straight replay of the simulator's exact
     * floating-point accumulation order over the selected variants —
     * bit-identical to a full simulate() of the substituted plan
     * (enforced by tests/test_evaluator_batch.cc).
     *
     * Under SimOptions::overlapGradComm the same variant tables feed a
     * *two-tape* replay: the serial compute chain and the overlapped
     * network chain are accumulated side by side with the event
     * queue's exact resource algebra (async reductions start at
     * max(network, serial), synchronous exchanges join the tapes), so
     * the async schedule is swept incrementally too — still
     * bit-identical to per-mask simulate(). Under recordTrace the
     * replay also emits the per-task trace from the variant tables
     * (labels are slot functions, start/end come from the tapes), so
     * lastTrace() after each visit — and after the sweep — matches a
     * direct simulate() of that mask's plan exactly; no path falls
     * back to per-mask simulation anymore.
     * Fatal when `level` is out of range or the network has more than
     * 24 weighted layers (2^L enumeration).
     */
    void sweepNeighborhood(
        const core::HierarchicalPlan &base, std::size_t level,
        const std::function<void(std::uint64_t, const StepMetrics &)>
            &visit) const;

    /**
     * The two-tape chain decomposition of one step of `plan` under the
     * current SimOptions: every task with its tape and resolved
     * start/end, replayed through the exact resource algebra the event
     * queue applies (without overlapGradComm the network tape carries
     * no tasks of its own and the schedule degenerates to the serial
     * chain). This is the structure the incremental overlap sweep
     * replays; exposed so tests can pin it against the event-driven
     * simulator. Labels are filled only under recordTrace.
     */
    TapeSchedule overlapSchedule(const core::HierarchicalPlan &plan) const;

    /** Trace of the most recent simulate() (needs recordTrace). */
    const std::vector<TraceEntry> &lastTrace() const { return trace_; }

    /**
     * Approximate resident size of the simulator's precomputed state
     * (the prefix-count table and any retained trace). Feeds the
     * serving tier's memory-budgeted session LRU.
     */
    std::size_t approxTableBytes() const
    {
        return sizeof(TrainingSimulator) +
               prefixDp_.capacity() * sizeof(std::uint8_t) +
               trace_.capacity() * sizeof(TraceEntry);
    }

  private:
    struct Task
    {
        enum class Kind { kCompute, kExchange };
        Kind kind = Kind::kCompute;
        double seconds = 0.0;
        double globalBytes = 0.0; //!< bytes summed over all group pairs
        bool async = false;       //!< may overlap with later compute
        int phase = 0;            //!< 0 fwd, 1 bwd, 2 grad
        std::string label;        //!< built only under recordTrace
    };

    std::vector<Task> buildTasks(const core::HierarchicalPlan &plan,
                                 StepMetrics &metrics) const;

    /**
     * dp count among the levels above `h` for a layer whose level
     * vector is `state` (bit h set = mp): served from prefixDp_ — the
     * per-column prefix-count table shared across every plan this
     * simulator scores — so buildTasks never materializes a per-plan
     * core::History chain. Falls back to a popcount for depths beyond
     * the table cap.
     */
    unsigned dpAbove(std::uint32_t state, std::size_t h) const;

    void addExchange(std::vector<Task> &tasks, std::size_t level,
                     double pair_bytes, bool async, int phase,
                     const char *tag, const std::string &layer_name,
                     StepMetrics &metrics) const;

    const core::CommModel *model_;
    arch::AcceleratorConfig acc_;
    arch::EnergyModel energy_;
    const noc::Topology *topo_;
    SimOptions options_;
    arch::RowStationaryMapper mapper_;

    /**
     * Shared prefix-count table: prefixDp_[s * (levels + 1) + h] is
     * the number of dp choices among levels 0..h-1 of a layer whose
     * level-vector state is s. The counts at level h depend only on
     * that layer's own column bits, so one table per topology depth
     * replaces the per-plan History chain buildTasks used to rebuild —
     * every plan of an evaluateBatch call (and every mask of a sweep)
     * reads the same table. Built in the constructor for depths up to
     * kPrefixTableMaxLevels; deeper arrays use the popcount fallback.
     */
    static constexpr std::size_t kPrefixTableMaxLevels = 12;
    std::vector<std::uint8_t> prefixDp_;

    mutable std::vector<TraceEntry> trace_;
};

} // namespace hypar::sim

#endif // HYPAR_SIM_TRAINING_SIM_HH
