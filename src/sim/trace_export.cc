#include "sim/trace_export.hh"

#include <ostream>
#include <sstream>

namespace hypar::sim {

namespace {

/** Track id from the simulator's label conventions. */
int
trackOf(const std::string &label)
{
    // Exchange labels: psum:..., featx:..., errx:..., gradx:...
    const auto colon = label.find(':');
    if (colon == std::string::npos)
        return 0;
    const std::string prefix = label.substr(0, colon);
    const bool network = prefix == "psum" || prefix == "featx" ||
                         prefix == "errx" || prefix == "gradx";
    return network ? 1 : 0;
}

/** Minimal JSON string escaping for task labels. */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

void
writeChromeTrace(std::ostream &os, const std::vector<TraceEntry> &trace)
{
    os << "[\n";
    os << R"({"name":"process_name","ph":"M","pid":0,"args":)"
       << R"({"name":"hypar"}},)" << "\n";
    os << R"({"name":"thread_name","ph":"M","pid":0,"tid":0,"args":)"
       << R"({"name":"compute"}},)" << "\n";
    os << R"({"name":"thread_name","ph":"M","pid":0,"tid":1,"args":)"
       << R"({"name":"network"}})";

    for (const auto &e : trace) {
        os << ",\n";
        os << R"({"name":")" << escape(e.label) << R"(","ph":"X",)"
           << R"("pid":0,"tid":)" << trackOf(e.label) << R"(,"ts":)"
           << e.start * 1e6 << R"(,"dur":)" << (e.end - e.start) * 1e6
           << "}";
    }
    os << "\n]\n";
}

std::string
chromeTraceJson(const std::vector<TraceEntry> &trace)
{
    std::ostringstream os;
    writeChromeTrace(os, trace);
    return os.str();
}

} // namespace hypar::sim
