#include "sim/metrics.hh"

#include <sstream>

#include "util/strings.hh"

namespace hypar::sim {

std::string
StepMetrics::summary() const
{
    std::ostringstream os;
    os << "step " << util::formatSeconds(stepSeconds)
       << " (fwd " << util::formatSeconds(phases.forward)
       << ", bwd " << util::formatSeconds(phases.backward)
       << ", grad " << util::formatSeconds(phases.gradient)
       << "), comm " << util::formatBytes(commBytes)
       << ", energy " << util::formatJoules(energy.totalJ());
    return os.str();
}

} // namespace hypar::sim
