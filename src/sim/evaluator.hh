/**
 * @file
 * One-stop evaluation facade: build the communication model, topology
 * and simulator for a configuration, evaluate plans/strategies, and
 * normalize results the way the paper's figures do (everything relative
 * to default Data Parallelism).
 */

#ifndef HYPAR_SIM_EVALUATOR_HH
#define HYPAR_SIM_EVALUATOR_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "arch/accelerator.hh"
#include "arch/energy_model.hh"
#include "arch/fault_map.hh"
#include "core/comm_model.hh"
#include "core/strategies.hh"
#include "dnn/network.hh"
#include "noc/topology.hh"
#include "sim/metrics.hh"
#include "sim/training_sim.hh"
#include "util/thread_pool.hh"

namespace hypar::sim {

/** Interconnect choice (paper Section 6.5.1; mesh is our ablation). */
enum class TopologyKind { kHTree, kTorus, kMesh };

/** Full evaluation configuration; defaults reproduce the paper. */
struct SimConfig
{
    core::CommConfig comm;       //!< batch 256, fp32, partitioned scaling
    arch::AcceleratorConfig acc; //!< 168-PE RS PU on an HMC
    arch::EnergyModel energy;    //!< Horowitz ISSCC'14 numbers
    noc::TopologyConfig noc;     //!< 1600 Mb/s links, 12.8 Gb/s root
    TopologyKind topology = TopologyKind::kHTree;

    /** Hierarchy levels H; the array has 2^H accelerators (paper: 4). */
    std::size_t levels = 4;

    SimOptions options;

    /**
     * Fault/heterogeneity map applied to the array before anything is
     * built (empty = pristine, bit-identical to a config without the
     * field). Node entries derate compute: the lockstep array runs at
     * the slowest surviving node's pace with dead nodes' shards
     * redistributed (arch::computeScaleFactor multiplies
     * SimOptions::computeScale). Link entries derate the interconnect:
     * the topology recomputes its per-level penalties and the CommModel
     * inherits them (CommConfig::levelPenalties), so every search
     * engine re-plans around the degradation. A map that kills every
     * node, or kills a link that carries traffic at some level, is
     * rejected with a fatal error — there is no finite cost to plan
     * for. Ids are validated against the topology's numNodes/numLinks.
     */
    arch::FaultMap faults;
};

/** Instantiate a topology. */
std::unique_ptr<noc::Topology> makeTopology(TopologyKind kind,
                                            std::size_t levels,
                                            const noc::TopologyConfig &cfg);

/**
 * Validate a config's fault map against its own topology — id ranges,
 * link-fault support, no level left without surviving bandwidth —
 * without building a full Evaluator. Fatal on exactly the errors the
 * Evaluator constructor would raise for the map; a no-op for an empty
 * map. The serving tier pre-validates requests with this before
 * touching the warm-session LRU.
 */
void validateFaults(const SimConfig &config);

/**
 * Bundles model + topology + simulator for one (network, config) pair.
 *
 * Build-once / evaluate-many contract: constructing an Evaluator does
 * all the (network, config)-dependent work — the CommModel byte tables,
 * the topology, the simulator — exactly once, and every evaluate /
 * evaluateBatch / sweepNeighborhood call afterwards only reads that
 * shared immutable state. Design-space sweeps (Fig. 9/10) must hoist
 * the Evaluator (and any plan scaffolding) out of their loops and score
 * plans through the batch/sweep entry points; rebuilding an Evaluator,
 * a SimConfig, or per-plan scratch inside a sweep loop forfeits exactly
 * the reuse this class exists to provide.
 *
 * Batch calls are deterministic: evaluateBatch fans the plans over a
 * util::ThreadPool but each plan's simulation is independent and its
 * result is written by index, so the output is bit-identical to calling
 * evaluate() back-to-back, for every thread count (enforced by
 * tests/test_evaluator_batch.cc).
 */
class Evaluator
{
  public:
    Evaluator(const dnn::Network &network, const SimConfig &config);

    /** Simulate one training step under an explicit plan. */
    StepMetrics evaluate(const core::HierarchicalPlan &plan) const;

    /** Build a named strategy's plan, then simulate it. */
    StepMetrics evaluate(core::Strategy strategy) const;

    /**
     * Simulate every plan of a design-space batch, fanned out over
     * `pool` (the process-global pool by default) with the library's
     * deterministic chunking (util::ThreadPool::grainFor). The CommModel
     * tables and topology are shared read-only across threads; each
     * chunk clones the lightweight per-thread TrainingSimulator state.
     * Plans in a batch share the simulator's per-column prefix-count
     * table, so scoring a plan never rebuilds the per-plan History
     * chain — grids whose plans differ in a few layers pay only for
     * the task list itself. results[i] is bit-identical to
     * evaluate(plans[i]). SimOptions::recordTrace is not supported
     * here (per-thread traces would be discarded); lastTrace() is
     * unaffected by batch calls.
     */
    std::vector<StepMetrics>
    evaluateBatch(std::span<const core::HierarchicalPlan> plans) const;
    std::vector<StepMetrics>
    evaluateBatch(std::span<const core::HierarchicalPlan> plans,
                  util::ThreadPool &pool) const;

    /**
     * Strategy-sweep overload: build each named strategy's plan, then
     * batch-evaluate them. results[i] is bit-identical to
     * evaluate(strategies[i]).
     */
    std::vector<StepMetrics>
    evaluateBatch(std::span<const core::Strategy> strategies) const;

    /**
     * Incremental single-level sweep: visit the StepMetrics of `base`
     * with hierarchy level `level` replaced by every 2^L layer mask, in
     * ascending mask order, bit-identical to evaluating each
     * substituted plan — without rebuilding per-plan simulator state
     * (see TrainingSimulator::sweepNeighborhood). This is the Fig. 9
     * fast path and composes with an outer sweepLevelMasks-style
     * substitution for two-level studies. It also covers
     * SimOptions::overlapGradComm: the async schedule replays as two
     * tapes (serial compute chain + overlapped network chain) over the
     * same variant tables; only recordTrace still falls back to
     * per-mask simulation.
     */
    void sweepNeighborhood(
        const core::HierarchicalPlan &base, std::size_t level,
        const std::function<void(std::uint64_t, const StepMetrics &)>
            &visit) const;

    /**
     * Simulate `steps` back-to-back steps and report the steady-state
     * cadence (see TrainingSimulator::simulateSteadyState).
     */
    StepMetrics evaluateSteadyState(const core::HierarchicalPlan &plan,
                                    std::size_t steps) const;

    /** Plan for a named strategy (HyPar runs Algorithm 2). */
    core::HierarchicalPlan plan(core::Strategy strategy) const;

    /** Analytic total communication of a plan (CommModel). */
    double commBytes(const core::HierarchicalPlan &plan) const;

    const core::CommModel &model() const { return model_; }
    const noc::Topology &topology() const { return *topology_; }
    const SimConfig &config() const { return config_; }
    const dnn::Network &network() const { return network_; }

    /**
     * Approximate resident size of the warm state this Evaluator owns
     * (network copy, CommModel byte tables, simulator tables). The
     * serving tier's memory-budgeted session LRU evicts by this; an
     * estimate, but deterministic for equal (network, config) pairs.
     */
    std::size_t approxBytes() const;

  private:
    dnn::Network network_;
    SimConfig config_;
    // The topology is built (and degraded by SimConfig::faults) before
    // the CommModel so the model can inherit its level penalties.
    std::unique_ptr<noc::Topology> topology_;
    core::CommModel model_;
    std::unique_ptr<TrainingSimulator> simulator_;
};

/** Metrics of the three headline strategies plus HyPar's plan. */
struct StrategyReport
{
    StepMetrics dataParallel;
    StepMetrics modelParallel;
    StepMetrics hypar;
    core::HierarchicalPlan hyparPlan;

    /** Speedup of X over Data Parallelism (Fig. 6's normalization). */
    double mpSpeedup() const;
    double hyparSpeedup() const;

    /** Energy saving of X relative to Data Parallelism (Fig. 7). */
    double mpEnergyEff() const;
    double hyparEnergyEff() const;
};

/** Run DP / MP / HyPar on one network under one configuration. */
StrategyReport compareStrategies(const dnn::Network &network,
                                 const SimConfig &config);

} // namespace hypar::sim

#endif // HYPAR_SIM_EVALUATOR_HH
