/**
 * @file
 * One-stop evaluation facade: build the communication model, topology
 * and simulator for a configuration, evaluate plans/strategies, and
 * normalize results the way the paper's figures do (everything relative
 * to default Data Parallelism).
 */

#ifndef HYPAR_SIM_EVALUATOR_HH
#define HYPAR_SIM_EVALUATOR_HH

#include <map>
#include <memory>
#include <vector>

#include "arch/accelerator.hh"
#include "arch/energy_model.hh"
#include "core/comm_model.hh"
#include "core/strategies.hh"
#include "dnn/network.hh"
#include "noc/topology.hh"
#include "sim/metrics.hh"
#include "sim/training_sim.hh"

namespace hypar::sim {

/** Interconnect choice (paper Section 6.5.1; mesh is our ablation). */
enum class TopologyKind { kHTree, kTorus, kMesh };

/** Full evaluation configuration; defaults reproduce the paper. */
struct SimConfig
{
    core::CommConfig comm;       //!< batch 256, fp32, partitioned scaling
    arch::AcceleratorConfig acc; //!< 168-PE RS PU on an HMC
    arch::EnergyModel energy;    //!< Horowitz ISSCC'14 numbers
    noc::TopologyConfig noc;     //!< 1600 Mb/s links, 12.8 Gb/s root
    TopologyKind topology = TopologyKind::kHTree;

    /** Hierarchy levels H; the array has 2^H accelerators (paper: 4). */
    std::size_t levels = 4;

    SimOptions options;
};

/** Instantiate a topology. */
std::unique_ptr<noc::Topology> makeTopology(TopologyKind kind,
                                            std::size_t levels,
                                            const noc::TopologyConfig &cfg);

/**
 * Bundles model + topology + simulator for one (network, config) pair.
 * Build once, evaluate many plans (the Fig. 9/10 sweeps rely on this).
 */
class Evaluator
{
  public:
    Evaluator(const dnn::Network &network, const SimConfig &config);

    /** Simulate one training step under an explicit plan. */
    StepMetrics evaluate(const core::HierarchicalPlan &plan) const;

    /** Build a named strategy's plan, then simulate it. */
    StepMetrics evaluate(core::Strategy strategy) const;

    /**
     * Simulate `steps` back-to-back steps and report the steady-state
     * cadence (see TrainingSimulator::simulateSteadyState).
     */
    StepMetrics evaluateSteadyState(const core::HierarchicalPlan &plan,
                                    std::size_t steps) const;

    /** Plan for a named strategy (HyPar runs Algorithm 2). */
    core::HierarchicalPlan plan(core::Strategy strategy) const;

    /** Analytic total communication of a plan (CommModel). */
    double commBytes(const core::HierarchicalPlan &plan) const;

    const core::CommModel &model() const { return model_; }
    const noc::Topology &topology() const { return *topology_; }
    const SimConfig &config() const { return config_; }
    const dnn::Network &network() const { return network_; }

  private:
    dnn::Network network_;
    SimConfig config_;
    core::CommModel model_;
    std::unique_ptr<noc::Topology> topology_;
    std::unique_ptr<TrainingSimulator> simulator_;
};

/** Metrics of the three headline strategies plus HyPar's plan. */
struct StrategyReport
{
    StepMetrics dataParallel;
    StepMetrics modelParallel;
    StepMetrics hypar;
    core::HierarchicalPlan hyparPlan;

    /** Speedup of X over Data Parallelism (Fig. 6's normalization). */
    double mpSpeedup() const;
    double hyparSpeedup() const;

    /** Energy saving of X relative to Data Parallelism (Fig. 7). */
    double mpEnergyEff() const;
    double hyparEnergyEff() const;
};

/** Run DP / MP / HyPar on one network under one configuration. */
StrategyReport compareStrategies(const dnn::Network &network,
                                 const SimConfig &config);

} // namespace hypar::sim

#endif // HYPAR_SIM_EVALUATOR_HH
