/**
 * @file
 * Robust planning over a fault distribution.
 *
 * Re-planning (sim::Evaluator with SimConfig::faults) assumes the fault
 * map is known. When it is not — the array is deployed and faults
 * accumulate over its lifetime — the right objective is the *expected*
 * step time over the fault distribution. robustPlan approximates it by
 * Monte Carlo: draw K fault maps from the (rate, seed) distribution
 * (arch::sampleFaultMap with per-sample seeds from arch::mixSeed),
 * build a candidate pool from the pristine optimum plus each sample's
 * re-planned optimum, score every candidate on every sampled array
 * with Evaluator::evaluateBatch, and return the candidate with the
 * lowest mean step time.
 *
 * Everything is deterministic for a fixed seed at any thread count:
 * the sampler is a hand-rolled splitmix64 stream, the search engines
 * are exact and deterministic, evaluateBatch is bit-identical to the
 * sequential loop, and the mean runs in fixed sample order. Ties on
 * the expected cost break toward the earliest candidate (the pristine
 * plan is candidate 0, then sample order).
 */

#ifndef HYPAR_SIM_ROBUST_HH
#define HYPAR_SIM_ROBUST_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/fault_map.hh"
#include "core/optimal_partitioner.hh"
#include "core/plan.hh"
#include "sim/evaluator.hh"
#include "util/thread_pool.hh"

namespace hypar::sim {

/** Knobs of the robust search. */
struct RobustOptions
{
    /** Per-component fault probability of the sampled distribution. */
    double rate = 0.1;

    /** Monte Carlo sample count K (must be >= 1). */
    std::size_t samples = 8;

    /** Base seed; sample k uses arch::mixSeed(seed, k). */
    std::uint64_t seed = 0;

    /** Search engine options for the per-sample exact re-planning. */
    core::SearchOptions search;
};

/** One scored candidate plan. */
struct RobustCandidate
{
    core::HierarchicalPlan plan;

    /** Mean step seconds over the K sampled degraded arrays. */
    double expectedStepSeconds = 0.0;

    /** Step seconds per sample (fixed sample order, size K). */
    std::vector<double> sampleStepSeconds;
};

/** Result of the robust search. */
struct RobustResult
{
    /** The argmin-expected-cost candidate's plan. */
    core::HierarchicalPlan plan;

    /** Its expected step seconds over the distribution. */
    double expectedStepSeconds = 0.0;

    /**
     * Expected step seconds of the *pristine-optimal* plan (candidate
     * 0) over the same samples: the cost of planning as if the array
     * were healthy. >= expectedStepSeconds by construction; the gap is
     * what robustness buys.
     */
    double pristineExpectedStepSeconds = 0.0;

    /** Index of the winning candidate in `candidates`. */
    std::size_t winner = 0;

    /** The deduplicated candidate pool (pristine optimum first). */
    std::vector<RobustCandidate> candidates;

    /** The sampled fault maps, in sample order. */
    std::vector<arch::FaultMap> sampleMaps;
};

/**
 * Run the robust search for `network` under `config` (whose `faults`
 * field is ignored — the distribution replaces it). Fatal when
 * options.samples == 0 or options.rate is outside [0, 1].
 */
RobustResult robustPlan(const dnn::Network &network,
                        const SimConfig &config,
                        const RobustOptions &options);

/** Same, with an explicit pool (tests pin thread-count invariance). */
RobustResult robustPlan(const dnn::Network &network,
                        const SimConfig &config,
                        const RobustOptions &options,
                        util::ThreadPool &pool);

} // namespace hypar::sim

#endif // HYPAR_SIM_ROBUST_HH
