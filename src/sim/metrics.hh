/**
 * @file
 * Results of simulating one training step on the accelerator array.
 */

#ifndef HYPAR_SIM_METRICS_HH
#define HYPAR_SIM_METRICS_HH

#include <string>

namespace hypar::sim {

/** Energy breakdown in joules. */
struct EnergyBreakdown
{
    double computeJ = 0.0; //!< MACs and partial-sum adds
    double sramJ = 0.0;    //!< on-chip buffer traffic
    double dramJ = 0.0;    //!< local HMC traffic
    double commJ = 0.0;    //!< remote accesses: DRAM both ends + links

    double
    totalJ() const
    {
        return computeJ + sramJ + dramJ + commJ;
    }

    bool operator==(const EnergyBreakdown &) const = default;
};

/** Per-phase step time breakdown in seconds. */
struct TimeBreakdown
{
    double forward = 0.0;
    double backward = 0.0;
    double gradient = 0.0;

    double total() const { return forward + backward + gradient; }

    bool operator==(const TimeBreakdown &) const = default;
};

/** Everything the paper reports about one simulated training step. */
struct StepMetrics
{
    /** End-to-end latency of one training step (seconds). */
    double stepSeconds = 0.0;

    /** Seconds the PE arrays spent busy (excludes waiting on the NoC). */
    double computeBusySeconds = 0.0;

    /** Seconds the interconnect spent busy. */
    double networkBusySeconds = 0.0;

    /** Total inter-accelerator communication (bytes), Fig. 8's metric. */
    double commBytes = 0.0;

    TimeBreakdown phases;
    EnergyBreakdown energy;

    /** Training throughput in samples per second for batch B. */
    double
    samplesPerSec(std::size_t batch) const
    {
        return stepSeconds > 0.0
                   ? static_cast<double>(batch) / stepSeconds
                   : 0.0;
    }

    /** One-line human-readable summary. */
    std::string summary() const;

    /**
     * Exact field-wise equality (no tolerance) — this is what the
     * batch/sweep differential tests assert against the sequential
     * simulator path.
     */
    bool operator==(const StepMetrics &) const = default;
};

} // namespace hypar::sim

#endif // HYPAR_SIM_METRICS_HH
