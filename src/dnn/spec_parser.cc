#include "dnn/spec_parser.hh"

#include <fstream>
#include <sstream>
#include <vector>

#include "dnn/builder.hh"
#include "util/logging.hh"

namespace hypar::dnn {

namespace {

[[noreturn]] void
parseError(std::size_t line, const std::string &msg)
{
    util::fatal("spec line " + std::to_string(line) + ": " + msg);
}

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok) {
        if (tok[0] == '#')
            break;
        tokens.push_back(tok);
    }
    return tokens;
}

std::size_t
parseCount(const std::string &tok, std::size_t line)
{
    try {
        std::size_t pos = 0;
        const unsigned long long v = std::stoull(tok, &pos);
        if (pos != tok.size())
            parseError(line, "trailing characters in number '" + tok +
                                 "'");
        return static_cast<std::size_t>(v);
    } catch (const std::logic_error &) {
        parseError(line, "expected a number, got '" + tok + "'");
    }
}

Activation
parseActivation(const std::string &tok, std::size_t line)
{
    if (tok == "relu")
        return Activation::kReLU;
    if (tok == "none")
        return Activation::kNone;
    if (tok == "sigmoid")
        return Activation::kSigmoid;
    if (tok == "tanh")
        return Activation::kTanh;
    parseError(line, "unknown activation '" + tok + "'");
}

/**
 * Consume attribute pairs (stride N | pad N | pool W [S] | act A)
 * starting at tokens[i], applying them to the builder's last layer.
 */
void
applyAttributes(NetworkBuilder &b, const std::vector<std::string> &tokens,
                std::size_t i, std::size_t line, bool conv_layer)
{
    while (i < tokens.size()) {
        const std::string &key = tokens[i];
        if (key == "stride" || key == "pad") {
            if (!conv_layer)
                parseError(line, "'" + key + "' only applies to conv");
            if (i + 1 >= tokens.size())
                parseError(line, "'" + key + "' needs a value");
            const std::size_t v = parseCount(tokens[i + 1], line);
            if (key == "stride")
                b.stride(v);
            else
                b.pad(v);
            i += 2;
        } else if (key == "pool") {
            if (i + 1 >= tokens.size())
                parseError(line, "'pool' needs a window");
            const std::size_t window = parseCount(tokens[i + 1], line);
            std::size_t stride = 0;
            i += 2;
            if (i < tokens.size() && tokens[i].find_first_not_of(
                                         "0123456789") == std::string::npos) {
                stride = parseCount(tokens[i], line);
                ++i;
            }
            b.maxPool(window, stride);
        } else if (key == "act") {
            if (i + 1 >= tokens.size())
                parseError(line, "'act' needs a value");
            b.activation(parseActivation(tokens[i + 1], line));
            i += 2;
        } else {
            parseError(line, "unknown attribute '" + key + "'");
        }
    }
}

} // namespace

Network
parseNetworkSpec(std::istream &in)
{
    std::string name;
    SampleShape input{};
    bool have_input = false;
    bool have_layer = false;
    bool last_was_conv = false;

    // The builder needs name+input up front; collect directives first.
    std::vector<std::pair<std::size_t, std::vector<std::string>>> body;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        auto tokens = tokenize(line);
        if (tokens.empty())
            continue;
        if (tokens[0] == "network") {
            if (tokens.size() != 2)
                parseError(line_no, "usage: network <name>");
            name = tokens[1];
        } else if (tokens[0] == "input") {
            if (tokens.size() != 4)
                parseError(line_no, "usage: input <c> <h> <w>");
            input.c = parseCount(tokens[1], line_no);
            input.h = parseCount(tokens[2], line_no);
            input.w = parseCount(tokens[3], line_no);
            have_input = true;
        } else {
            body.emplace_back(line_no, std::move(tokens));
        }
    }

    if (name.empty())
        util::fatal("spec: missing 'network <name>' directive");
    if (!have_input)
        util::fatal("spec: missing 'input <c> <h> <w>' directive");

    NetworkBuilder b(name, input);
    // Layer names in declaration order, plus edge directives with their
    // source lines so every edge error can cite the offending line.
    std::vector<std::string> layer_names;
    struct EdgeDirective
    {
        std::size_t line;
        std::string src;
        std::string dst;
    };
    std::vector<EdgeDirective> edges;
    for (const auto &[no, tokens] : body) {
        if (tokens[0] == "conv" || tokens[0] == "fc") {
            const bool is_conv = tokens[0] == "conv";
            if (is_conv && tokens.size() < 4)
                parseError(no, "usage: conv <name> <out> <kernel> "
                               "[attrs...]");
            if (!is_conv && tokens.size() < 3)
                parseError(no, "usage: fc <name> <out> [attrs...]");
            for (const auto &existing : layer_names) {
                if (existing == tokens[1])
                    parseError(no, "duplicate layer name '" + tokens[1] +
                                       "'");
            }
            layer_names.push_back(tokens[1]);
            if (is_conv) {
                b.conv(tokens[1], parseCount(tokens[2], no),
                       parseCount(tokens[3], no));
                applyAttributes(b, tokens, 4, no, true);
            } else {
                b.fc(tokens[1], parseCount(tokens[2], no));
                applyAttributes(b, tokens, 3, no, false);
            }
            have_layer = true;
            last_was_conv = is_conv;
        } else if (tokens[0] == "pool" || tokens[0] == "stride" ||
                   tokens[0] == "pad" || tokens[0] == "act") {
            if (!have_layer)
                parseError(no, "attribute before any layer");
            applyAttributes(b, tokens, 0, no, last_was_conv);
        } else if (tokens[0] == "edge") {
            if (tokens.size() != 3)
                parseError(no, "usage: edge <src-layer> <dst-layer>");
            edges.push_back({no, tokens[1], tokens[2]});
        } else {
            parseError(no, "unknown directive '" + tokens[0] + "'");
        }
    }

    // Validate edges against the declared layers so the fatal can name
    // the offending line (the Network constructor would catch the same
    // conditions, but without line provenance).
    auto layer_pos = [&](const std::string &n) -> std::size_t {
        for (std::size_t l = 0; l < layer_names.size(); ++l)
            if (layer_names[l] == n)
                return l;
        return layer_names.size();
    };
    for (std::size_t i = 0; i < edges.size(); ++i) {
        const auto &e = edges[i];
        const std::size_t src = layer_pos(e.src);
        const std::size_t dst = layer_pos(e.dst);
        if (src == layer_names.size())
            parseError(e.line, "edge references unknown layer '" + e.src +
                                   "' (dangling edge)");
        if (dst == layer_names.size())
            parseError(e.line, "edge references unknown layer '" + e.dst +
                                   "' (dangling edge)");
        if (src == dst)
            parseError(e.line, "self-edge '" + e.src + "' -> '" + e.dst +
                                   "' would close a cycle");
        if (src > dst)
            parseError(e.line,
                       "edge '" + e.src + "' -> '" + e.dst +
                           "': the source must be declared before the "
                           "destination (layers are listed in topological "
                           "order; a back edge would close a cycle)");
        for (std::size_t j = 0; j < i; ++j) {
            if (edges[j].src == e.src && edges[j].dst == e.dst)
                parseError(e.line, "duplicate edge '" + e.src + "' -> '" +
                                       e.dst + "'");
        }
        b.edge(e.src, e.dst);
    }

    return b.build();
}

Network
parseNetworkSpec(const std::string &text)
{
    std::istringstream is(text);
    return parseNetworkSpec(is);
}

Network
parseNetworkSpecFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        util::fatal("cannot open spec file '" + path + "'");
    return parseNetworkSpec(in);
}

std::string
toSpec(const Network &network)
{
    std::ostringstream os;
    os << "network " << network.name() << "\n";
    const auto &in = network.inputShape();
    os << "input " << in.c << " " << in.h << " " << in.w << "\n";
    for (const auto &layer : network.layers()) {
        if (layer.isConv()) {
            os << "conv " << layer.name << " " << layer.outChannels << " "
               << layer.kernel;
            if (layer.stride != 1)
                os << " stride " << layer.stride;
            if (layer.pad != 0)
                os << " pad " << layer.pad;
        } else {
            os << "fc " << layer.name << " " << layer.outChannels;
        }
        if (layer.pool.enabled()) {
            os << " pool " << layer.pool.window;
            if (layer.pool.stride != layer.pool.window)
                os << " " << layer.pool.stride;
        }
        if (layer.act != Activation::kReLU)
            os << " act " << toString(layer.act);
        os << "\n";
    }
    // Chain networks serialize exactly as before (no edge lines), so
    // their canonical text — and every serve hash derived from it —
    // is unchanged. DAG networks list the explicit predecessors of
    // every non-chain layer, sources ascending, which also makes the
    // output invariant to the edge order of the original spec.
    if (!network.isChain()) {
        for (std::size_t l = 1; l < network.size(); ++l) {
            const auto &p = network.preds(l);
            if (p.size() == 1 && p[0] == l - 1)
                continue;
            for (const std::size_t u : p) {
                os << "edge " << network.layer(u).name << " "
                   << network.layer(l).name << "\n";
            }
        }
    }
    return os.str();
}

} // namespace hypar::dnn
