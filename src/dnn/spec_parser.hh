/**
 * @file
 * Text format for describing networks — the input side of the hyparc
 * command-line tool. One directive per line, '#' comments:
 *
 *   network my-cnn
 *   input 1 28 28
 *   conv conv1 20 5            # name, out channels, kernel
 *   conv conv2 50 5 stride 1 pad 0 pool 2
 *   pool 2                     # attaches to the previous layer
 *   fc fc1 500
 *   fc fc2 10 act none
 *
 * Attributes (stride/pad/pool/act) may be inline after a layer
 * directive or on their own line applying to the most recent layer.
 * Activation tokens: relu (default), none, sigmoid, tanh.
 *
 * DAG wiring (optional):
 *
 *   edge <src-layer> <dst-layer>
 *
 * With no edge directives the layers form a chain, exactly as before.
 * A layer that is the destination of at least one edge directive takes
 * *exactly* the declared edges as its predecessors, so a join layer
 * (e.g. a ResNet residual add) lists every incoming edge, including
 * the one from the previous layer. Layers must be declared in
 * topological order; edges whose source is not declared before the
 * destination, edges naming unknown layers, duplicate edges, and
 * duplicate layer names are all rejected with the offending line
 * number.
 */

#ifndef HYPAR_DNN_SPEC_PARSER_HH
#define HYPAR_DNN_SPEC_PARSER_HH

#include <istream>
#include <string>

#include "dnn/network.hh"

namespace hypar::dnn {

/** Parse a network spec; fatal (with line numbers) on malformed input. */
Network parseNetworkSpec(std::istream &in);

/** Parse from a string (tests, inline specs). */
Network parseNetworkSpec(const std::string &text);

/** Parse from a file path; fatal if the file cannot be opened. */
Network parseNetworkSpecFile(const std::string &path);

/** Serialize a network back into the spec format (round-trips). */
std::string toSpec(const Network &network);

} // namespace hypar::dnn

#endif // HYPAR_DNN_SPEC_PARSER_HH
