#include "dnn/layer.hh"

#include <sstream>

#include "util/logging.hh"

namespace hypar::dnn {

std::size_t
Layer::weightElems() const
{
    if (isConv())
        return kernel * kernel * in.c * outChannels;
    return fcInputs() * outChannels;
}

double
Layer::fwdMacsPerSample() const
{
    if (isConv()) {
        return static_cast<double>(outRaw.h) * static_cast<double>(outRaw.w)
             * static_cast<double>(outChannels)
             * static_cast<double>(kernel) * static_cast<double>(kernel)
             * static_cast<double>(in.c);
    }
    return static_cast<double>(fcInputs())
         * static_cast<double>(outChannels);
}

std::string
Layer::describe() const
{
    std::ostringstream os;
    os << name << ": ";
    if (isConv()) {
        os << outChannels << "@" << kernel << "x" << kernel;
        if (stride != 1)
            os << " s" << stride;
        if (pad != 0)
            os << " p" << pad;
    } else {
        os << "fc " << fcInputs() << "->" << outChannels;
    }
    if (pool.enabled())
        os << " +pool" << pool.window << "/" << pool.stride;
    os << " [" << in.c << "x" << in.h << "x" << in.w << " -> "
       << outPooled.c << "x" << outPooled.h << "x" << outPooled.w << "]";
    return os.str();
}

const char *
toString(LayerKind kind)
{
    switch (kind) {
      case LayerKind::kConv:
        return "conv";
      case LayerKind::kFullyConnected:
        return "fc";
    }
    util::panic("unknown LayerKind");
}

const char *
toString(Activation act)
{
    switch (act) {
      case Activation::kNone:
        return "none";
      case Activation::kReLU:
        return "relu";
      case Activation::kSigmoid:
        return "sigmoid";
      case Activation::kTanh:
        return "tanh";
    }
    util::panic("unknown Activation");
}

} // namespace hypar::dnn
