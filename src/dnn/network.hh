/**
 * @file
 * A deep neural network as seen by HyPar: weighted layers plus an input
 * sample shape, wired either as a simple chain (the paper's setting) or
 * as a general DAG with explicit predecessor edges. Construction runs
 * shape inference and validates every layer, so a Network instance is
 * always consistent.
 *
 * DAG semantics
 * -------------
 *  - Layers are listed in topological order; an edge (u, w) feeds the
 *    pooled output of layer u into layer w and requires u < w.
 *  - A layer with a single predecessor consumes that predecessor's
 *    output directly, exactly like the chain case.
 *  - A layer with two or more predecessors is a *join*: its input is
 *    the elementwise sum of all predecessor outputs, so every
 *    predecessor must produce the same pooled output shape (this is the
 *    ResNet residual-add / inception-merge pattern).
 *  - Layer 0 is the unique source (it reads the network input); the
 *    last layer is the unique sink (every other layer must feed at
 *    least one successor).
 *
 * The chain constructor is untouched by the DAG generalization: a
 * network built from a plain layer list (or from edges that happen to
 * form the chain) reports isChain() == true, and every consumer in
 * core/sim/serve routes such networks through the original chain code
 * paths bit-for-bit.
 */

#ifndef HYPAR_DNN_NETWORK_HH
#define HYPAR_DNN_NETWORK_HH

#include <cstddef>
#include <string>
#include <vector>

#include "dnn/layer.hh"

namespace hypar::dnn {

/**
 * Immutable, shape-checked network. Batch size is intentionally *not*
 * part of the network: like the paper's Algorithm 1, the batch B is a
 * parameter of the partition search / simulation, not of the model.
 */
class Network
{
  public:
    /**
     * Build and validate a chain. Runs shape inference through all
     * layers in order.
     * @param name model name, e.g. "VGG-A".
     * @param input per-sample input shape (e.g. 3x224x224).
     * @param layers weighted layers in forward order (shape fields of
     *        each layer are computed here and may be left empty).
     * Fatal on empty layer lists and invalid geometry (kernel larger
     * than input, non-positive output, fc before spatial mismatch...).
     */
    Network(std::string name, SampleShape input, std::vector<Layer> layers);

    /**
     * Build and validate a DAG. `preds[l]` lists the predecessors of
     * layer l; an empty list for l >= 1 means the implicit chain edge
     * {l - 1}. Predecessor order is irrelevant (lists are stored
     * sorted), duplicates are fatal. Additional fatals: an edge whose
     * source is not declared before its destination (a back edge would
     * close a cycle), a non-last layer with no successor (dangling
     * branch), duplicate layer names, and join layers whose predecessor
     * output shapes differ.
     */
    Network(std::string name, SampleShape input, std::vector<Layer> layers,
            std::vector<std::vector<std::size_t>> preds);

    const std::string &name() const { return name_; }
    const SampleShape &inputShape() const { return input_; }

    /** Number of weighted layers (the paper's L). */
    std::size_t size() const { return layers_.size(); }

    const Layer &layer(std::size_t l) const;
    const std::vector<Layer> &layers() const { return layers_; }

    /** Look up a layer index by name; fatal if absent. */
    std::size_t layerIndex(const std::string &layer_name) const;

    /** True when every layer's sole predecessor is the previous layer —
     *  the degenerate DAG. Chain-only fast paths key off this. */
    bool isChain() const { return is_chain_; }

    /** Predecessors of layer l, ascending (empty for layer 0). */
    const std::vector<std::size_t> &preds(std::size_t l) const;

    /** Successors of layer l, ascending (empty for the sink). */
    const std::vector<std::size_t> &succs(std::size_t l) const;

    /** Total edge count (L - 1 for a chain). */
    std::size_t numEdges() const;

    /** Total kernel (weight) elements over all layers. */
    std::size_t totalParamElems() const;

    /** Total forward MACs for one input sample. */
    double totalFwdMacsPerSample() const;

    /** True if any layer is a conv / fc layer. */
    bool hasConv() const;
    bool hasFc() const;

    /** Multi-line summary of all layers (for reports and examples). */
    std::string describe() const;

    /**
     * Approximate resident size of this object in bytes (layers, edge
     * lists, name strings). Used by the serving tier's memory-budgeted
     * session LRU; an estimate, not an allocator-exact figure, but
     * deterministic for equal networks.
     */
    std::size_t approxBytes() const;

  private:
    void inferShapes();
    void wireEdges(std::vector<std::vector<std::size_t>> preds);

    std::string name_;
    SampleShape input_;
    std::vector<Layer> layers_;
    std::vector<std::vector<std::size_t>> preds_;
    std::vector<std::vector<std::size_t>> succs_;
    bool is_chain_ = true;
};

} // namespace hypar::dnn

#endif // HYPAR_DNN_NETWORK_HH
