/**
 * @file
 * A deep neural network as seen by HyPar: an ordered list of weighted
 * layers plus an input sample shape. Construction runs shape inference
 * and validates every layer, so a Network instance is always consistent.
 */

#ifndef HYPAR_DNN_NETWORK_HH
#define HYPAR_DNN_NETWORK_HH

#include <cstddef>
#include <string>
#include <vector>

#include "dnn/layer.hh"

namespace hypar::dnn {

/**
 * Immutable, shape-checked network. Batch size is intentionally *not*
 * part of the network: like the paper's Algorithm 1, the batch B is a
 * parameter of the partition search / simulation, not of the model.
 */
class Network
{
  public:
    /**
     * Build and validate. Runs shape inference through all layers.
     * @param name model name, e.g. "VGG-A".
     * @param input per-sample input shape (e.g. 3x224x224).
     * @param layers weighted layers in forward order (shape fields of
     *        each layer are computed here and may be left empty).
     * Fatal on empty layer lists and invalid geometry (kernel larger
     * than input, non-positive output, fc before spatial mismatch...).
     */
    Network(std::string name, SampleShape input, std::vector<Layer> layers);

    const std::string &name() const { return name_; }
    const SampleShape &inputShape() const { return input_; }

    /** Number of weighted layers (the paper's L). */
    std::size_t size() const { return layers_.size(); }

    const Layer &layer(std::size_t l) const;
    const std::vector<Layer> &layers() const { return layers_; }

    /** Look up a layer index by name; fatal if absent. */
    std::size_t layerIndex(const std::string &layer_name) const;

    /** Total kernel (weight) elements over all layers. */
    std::size_t totalParamElems() const;

    /** Total forward MACs for one input sample. */
    double totalFwdMacsPerSample() const;

    /** True if any layer is a conv / fc layer. */
    bool hasConv() const;
    bool hasFc() const;

    /** Multi-line summary of all layers (for reports and examples). */
    std::string describe() const;

  private:
    std::string name_;
    SampleShape input_;
    std::vector<Layer> layers_;
};

} // namespace hypar::dnn

#endif // HYPAR_DNN_NETWORK_HH
