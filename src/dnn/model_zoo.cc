#include "dnn/model_zoo.hh"

#include "dnn/builder.hh"
#include "util/logging.hh"

namespace hypar::dnn {

namespace {

constexpr SampleShape kMnist{1, 28, 28};
constexpr SampleShape kCifar{3, 32, 32};
constexpr SampleShape kImageNetVgg{3, 224, 224};
constexpr SampleShape kImageNetAlex{3, 227, 227};

/**
 * Append one VGG block: `count` 3x3 pad-1 convolutions of width
 * `channels` (the last `ones` of them 1x1 for VGG-C) followed by a 2x2
 * max-pool on the final conv of the block.
 */
void
vggBlock(NetworkBuilder &b, int block, int count, std::size_t channels,
         int ones = 0)
{
    for (int i = 1; i <= count; ++i) {
        const std::string name =
            "conv" + std::to_string(block) + "_" + std::to_string(i);
        if (i > count - ones)
            b.conv(name, channels, 1); // VGG-C 1x1 convolution
        else
            b.conv(name, channels, 3).pad(1);
    }
    b.maxPool(2);
}

/** Append the common VGG classifier head. */
void
vggHead(NetworkBuilder &b)
{
    b.fc("fc1", 4096)
     .fc("fc2", 4096)
     .fc("fc3", 1000).activation(Activation::kNone);
}

} // namespace

Network
makeSfc()
{
    // Table 3: 784-8192-8192-8192-10; reaches 98.28% on MNIST.
    return NetworkBuilder("SFC", kMnist)
        .fc("fc1", 8192)
        .fc("fc2", 8192)
        .fc("fc3", 8192)
        .fc("fc4", 10).activation(Activation::kNone)
        .build();
}

Network
makeSconv()
{
    // Table 3: 20@5x5, 50@5x5 (2x2 max pool), 50@5x5, 10@5x5 (2x2 max
    // pool); reaches 98.71% on MNIST.
    return NetworkBuilder("SCONV", kMnist)
        .conv("conv1", 20, 5)
        .conv("conv2", 50, 5).maxPool(2)
        .conv("conv3", 50, 5)
        .conv("conv4", 10, 5).maxPool(2).activation(Activation::kNone)
        .build();
}

Network
makeLenetC()
{
    // LeNet for MNIST with four weighted layers (Fig. 5(c)).
    return NetworkBuilder("Lenet-c", kMnist)
        .conv("conv1", 20, 5).maxPool(2)
        .conv("conv2", 50, 5).maxPool(2)
        .fc("fc1", 500)
        .fc("fc2", 10).activation(Activation::kNone)
        .build();
}

Network
makeCifarC()
{
    // CIFAR-10 "quick" style network with five weighted layers
    // (Fig. 5(d): conv1..conv3, fc1, fc2).
    return NetworkBuilder("Cifar-c", kCifar)
        .conv("conv1", 32, 5).pad(2).maxPool(2)
        .conv("conv2", 32, 5).pad(2).maxPool(2)
        .conv("conv3", 64, 5).pad(2).maxPool(2)
        .fc("fc1", 64)
        .fc("fc2", 10).activation(Activation::kNone)
        .build();
}

Network
makeAlexNet()
{
    // Krizhevsky 2012, single-tower (ungrouped) variant.
    return NetworkBuilder("AlexNet", kImageNetAlex)
        .conv("conv1", 96, 11).stride(4).maxPool(3, 2)
        .conv("conv2", 256, 5).pad(2).maxPool(3, 2)
        .conv("conv3", 384, 3).pad(1)
        .conv("conv4", 384, 3).pad(1)
        .conv("conv5", 256, 3).pad(1).maxPool(3, 2)
        .fc("fc1", 4096)
        .fc("fc2", 4096)
        .fc("fc3", 1000).activation(Activation::kNone)
        .build();
}

Network
makeVggA()
{
    NetworkBuilder b("VGG-A", kImageNetVgg);
    vggBlock(b, 1, 1, 64);
    vggBlock(b, 2, 1, 128);
    vggBlock(b, 3, 2, 256);
    vggBlock(b, 4, 2, 512);
    vggBlock(b, 5, 2, 512);
    vggHead(b);
    return b.build();
}

Network
makeVggB()
{
    NetworkBuilder b("VGG-B", kImageNetVgg);
    vggBlock(b, 1, 2, 64);
    vggBlock(b, 2, 2, 128);
    vggBlock(b, 3, 2, 256);
    vggBlock(b, 4, 2, 512);
    vggBlock(b, 5, 2, 512);
    vggHead(b);
    return b.build();
}

Network
makeVggC()
{
    // VGG-C: like VGG-B plus one 1x1 conv in blocks 3..5.
    NetworkBuilder b("VGG-C", kImageNetVgg);
    vggBlock(b, 1, 2, 64);
    vggBlock(b, 2, 2, 128);
    vggBlock(b, 3, 3, 256, 1);
    vggBlock(b, 4, 3, 512, 1);
    vggBlock(b, 5, 3, 512, 1);
    vggHead(b);
    return b.build();
}

Network
makeVggD()
{
    NetworkBuilder b("VGG-D", kImageNetVgg);
    vggBlock(b, 1, 2, 64);
    vggBlock(b, 2, 2, 128);
    vggBlock(b, 3, 3, 256);
    vggBlock(b, 4, 3, 512);
    vggBlock(b, 5, 3, 512);
    vggHead(b);
    return b.build();
}

Network
makeVggE()
{
    NetworkBuilder b("VGG-E", kImageNetVgg);
    vggBlock(b, 1, 2, 64);
    vggBlock(b, 2, 2, 128);
    vggBlock(b, 3, 4, 256);
    vggBlock(b, 4, 4, 512);
    vggBlock(b, 5, 4, 512);
    vggHead(b);
    return b.build();
}

Network
makeResNetBlock()
{
    // Residual block on CIFAR: conv1 projects to 16 channels, the
    // trunk conv2a/conv2b keeps the shape, and `join` sums the trunk
    // output with the skip edge from conv1 (both 16x32x32).
    return NetworkBuilder("ResNet-block", kCifar)
        .conv("conv1", 16, 3).pad(1)
        .conv("conv2a", 16, 3).pad(1)
        .conv("conv2b", 16, 3).pad(1)
        .conv("join", 16, 3).pad(1)
        .edge("conv1", "join")
        .edge("conv2b", "join")
        .fc("fc1", 10).activation(Activation::kNone)
        .build();
}

Network
makeInceptionBranch()
{
    // Inception-style split on MNIST: a shared stem feeds a 1x1 branch
    // (b1) and a stacked 3x3 branch (b2a -> b2b); `merge` sums the two
    // branch outputs (both 16x28x28).
    return NetworkBuilder("Inception-branch", kMnist)
        .conv("stem", 16, 3).pad(1)
        .conv("b1", 16, 1)
        .conv("b2a", 16, 3).pad(1)
        .edge("stem", "b2a")
        .conv("b2b", 16, 3).pad(1)
        .conv("merge", 16, 3).pad(1)
        .edge("b1", "merge")
        .edge("b2b", "merge")
        .fc("fc1", 10).activation(Activation::kNone)
        .build();
}

std::vector<Network>
allModels()
{
    std::vector<Network> nets;
    nets.push_back(makeSfc());
    nets.push_back(makeSconv());
    nets.push_back(makeLenetC());
    nets.push_back(makeCifarC());
    nets.push_back(makeAlexNet());
    nets.push_back(makeVggA());
    nets.push_back(makeVggB());
    nets.push_back(makeVggC());
    nets.push_back(makeVggD());
    nets.push_back(makeVggE());
    return nets;
}

std::vector<std::string>
allModelNames()
{
    return {"SFC", "SCONV", "Lenet-c", "Cifar-c", "AlexNet",
            "VGG-A", "VGG-B", "VGG-C", "VGG-D", "VGG-E"};
}

Network
modelByName(const std::string &name)
{
    if (name == "SFC")
        return makeSfc();
    if (name == "SCONV")
        return makeSconv();
    if (name == "Lenet-c")
        return makeLenetC();
    if (name == "Cifar-c")
        return makeCifarC();
    if (name == "AlexNet")
        return makeAlexNet();
    if (name == "VGG-A")
        return makeVggA();
    if (name == "VGG-B")
        return makeVggB();
    if (name == "VGG-C")
        return makeVggC();
    if (name == "VGG-D")
        return makeVggD();
    if (name == "VGG-E")
        return makeVggE();
    if (name == "ResNet-block")
        return makeResNetBlock();
    if (name == "Inception-branch")
        return makeInceptionBranch();
    util::fatal("unknown model '" + name + "'");
}

} // namespace hypar::dnn
