/**
 * @file
 * Weighted-layer description for the HyPar cost model.
 *
 * HyPar reasons about *weighted* layers only (convolutional and
 * fully-connected); pooling and activation are attributes attached to the
 * producing weighted layer, exactly like the paper's hyper-parameter list
 * HP[l] = (layer type, kernel sizes, parameter for pooling, activation).
 */

#ifndef HYPAR_DNN_LAYER_HH
#define HYPAR_DNN_LAYER_HH

#include <cstddef>
#include <string>

namespace hypar::dnn {

/** Word size of all tensors: the paper computes in 32-bit floating point. */
constexpr std::size_t kWordBytes = 4;

/** Per-sample feature-map shape [C x H x W] (the paper's [H x W x C]). */
struct SampleShape
{
    std::size_t c = 0; //!< channels (depth)
    std::size_t h = 0; //!< height
    std::size_t w = 0; //!< width

    /** Elements in one sample's feature map slice. */
    std::size_t elems() const { return c * h * w; }

    bool operator==(const SampleShape &) const = default;
};

/** Kind of weighted layer. */
enum class LayerKind { kConv, kFullyConnected };

/** Element-wise non-linearity attached to a weighted layer. */
enum class Activation { kNone, kReLU, kSigmoid, kTanh };

/**
 * Max-pooling attached after a weighted layer; window == 0 disables it.
 * Pooling is a local operation: it changes the boundary tensor shape
 * handed to the next layer but incurs no inter-accelerator traffic.
 */
struct PoolSpec
{
    std::size_t window = 0;
    std::size_t stride = 0;

    bool enabled() const { return window > 0; }
};

/**
 * One weighted layer. The spec fields (name/kind/kernel/...) are authored
 * via NetworkBuilder; the shape fields (in/outRaw/outPooled) are filled in
 * by Network's shape inference and must not be set by hand.
 */
class Layer
{
  public:
    // --- specification -----------------------------------------------

    std::string name;
    LayerKind kind = LayerKind::kConv;

    /** conv: output channels C_{l+1}; fc: output neurons N_out. */
    std::size_t outChannels = 0;

    /** conv only: square kernel height/width K. */
    std::size_t kernel = 0;
    std::size_t stride = 1;
    std::size_t pad = 0;

    PoolSpec pool;
    Activation act = Activation::kReLU;

    // --- inferred by Network::Network --------------------------------

    SampleShape in;        //!< input feature map slice (post-pool of prev)
    SampleShape outRaw;    //!< raw output before pooling (F^out_l)
    SampleShape outPooled; //!< output after pooling (boundary F_{l+1})

    // --- derived amounts ----------------------------------------------

    bool isConv() const { return kind == LayerKind::kConv; }
    bool isFc() const { return kind == LayerKind::kFullyConnected; }

    /** fc input width: the flattened input slice. */
    std::size_t fcInputs() const { return in.elems(); }

    /**
     * Kernel tensor elements: conv [K x K x C_l] x C_{l+1}, fc N_in x
     * N_out. Gradient tensor dW_l has the same size. Biases are omitted,
     * matching the paper's A(dW) = C_i C_o K^2 formula.
     */
    std::size_t weightElems() const;

    /** Raw output elements per sample (pre-pooling), A(F^out_l)/B. */
    std::size_t outRawElemsPerSample() const { return outRaw.elems(); }

    /** Boundary output elements per sample (post-pooling). */
    std::size_t outElemsPerSample() const { return outPooled.elems(); }

    /** Input elements per sample. */
    std::size_t inElemsPerSample() const { return in.elems(); }

    /**
     * Multiply-accumulate operations for one sample's forward pass.
     * conv: H_out * W_out * C_out * K * K * C_in; fc: N_in * N_out.
     * Error backward and gradient computation perform the same number of
     * MACs (they are the same matrices multiplied in different orders).
     */
    double fwdMacsPerSample() const;

    /** Human-readable one-line description (for reports). */
    std::string describe() const;
};

/** Short lowercase token for a layer kind ("conv" / "fc"). */
const char *toString(LayerKind kind);

/** Token for an activation ("none" / "relu" / ...). */
const char *toString(Activation act);

} // namespace hypar::dnn

#endif // HYPAR_DNN_LAYER_HH
