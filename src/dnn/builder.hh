/**
 * @file
 * Fluent builder for Network instances.
 *
 *   Network lenet = NetworkBuilder("Lenet-c", {1, 28, 28})
 *       .conv("conv1", 20, 5).maxPool(2)
 *       .conv("conv2", 50, 5).maxPool(2)
 *       .fc("fc1", 500)
 *       .fc("fc2", 10).activation(Activation::kNone)
 *       .build();
 *
 * DAG wiring: edge(src, dst) declares an explicit edge by layer name.
 * A layer that is the destination of at least one explicit edge takes
 * *exactly* the declared edges as its predecessors (the implicit
 * chain edge from the previous layer is dropped for it); all other
 * layers keep the chain wiring. With no edge() calls the builder
 * produces a plain chain, bit-identically to before.
 */

#ifndef HYPAR_DNN_BUILDER_HH
#define HYPAR_DNN_BUILDER_HH

#include <string>
#include <vector>

#include "dnn/network.hh"

namespace hypar::dnn {

/** Incrementally authors a layer list, then materializes a Network. */
class NetworkBuilder
{
  public:
    NetworkBuilder(std::string name, SampleShape input);

    /** Append a conv layer (defaults: stride 1, pad 0, ReLU, no pool). */
    NetworkBuilder &conv(const std::string &layer_name,
                         std::size_t out_channels, std::size_t kernel);

    /** Append a fully-connected layer (defaults: ReLU, no pool). */
    NetworkBuilder &fc(const std::string &layer_name,
                       std::size_t out_neurons);

    /** Modify the most recent layer. Fatal if no layer exists yet. */
    NetworkBuilder &stride(std::size_t s);
    NetworkBuilder &pad(std::size_t p);
    NetworkBuilder &maxPool(std::size_t window, std::size_t pool_stride = 0);
    NetworkBuilder &activation(Activation act);

    /**
     * Declare an explicit DAG edge from layer `src` to layer `dst` (by
     * name). Destinations of explicit edges must list *all* their
     * predecessors explicitly. Names are resolved at build(); an
     * unknown name is fatal (dangling edge).
     */
    NetworkBuilder &edge(const std::string &src, const std::string &dst);

    /** Validate, run shape inference, and return the network. */
    Network build() const;

  private:
    Layer &last();

    std::string name_;
    SampleShape input_;
    std::vector<Layer> layers_;
    std::vector<std::pair<std::string, std::string>> edges_;
};

} // namespace hypar::dnn

#endif // HYPAR_DNN_BUILDER_HH
