#include "dnn/network.hh"

#include <sstream>

#include "util/logging.hh"

namespace hypar::dnn {

namespace {

/** Infer the raw output shape of one weighted layer from its input. */
SampleShape
inferRawOutput(const Layer &layer, const SampleShape &in,
               const std::string &net_name)
{
    if (layer.outChannels == 0) {
        util::fatal(net_name + "/" + layer.name +
                    ": zero output channels");
    }

    if (layer.isFc()) {
        if (in.elems() == 0)
            util::fatal(net_name + "/" + layer.name + ": empty fc input");
        return SampleShape{layer.outChannels, 1, 1};
    }

    if (layer.kernel == 0 || layer.stride == 0) {
        util::fatal(net_name + "/" + layer.name +
                    ": conv needs kernel > 0 and stride > 0");
    }
    const std::size_t eff_h = in.h + 2 * layer.pad;
    const std::size_t eff_w = in.w + 2 * layer.pad;
    if (eff_h < layer.kernel || eff_w < layer.kernel) {
        util::fatal(net_name + "/" + layer.name +
                    ": kernel larger than (padded) input");
    }
    SampleShape out;
    out.c = layer.outChannels;
    out.h = (eff_h - layer.kernel) / layer.stride + 1;
    out.w = (eff_w - layer.kernel) / layer.stride + 1;
    return out;
}

/** Apply the optional pooling attribute. */
SampleShape
inferPooledOutput(const Layer &layer, const SampleShape &raw,
                  const std::string &net_name)
{
    if (!layer.pool.enabled())
        return raw;
    const std::size_t w = layer.pool.window;
    const std::size_t s = layer.pool.stride ? layer.pool.stride : w;
    if (raw.h < w || raw.w < w) {
        util::fatal(net_name + "/" + layer.name +
                    ": pooling window larger than feature map");
    }
    SampleShape out;
    out.c = raw.c;
    out.h = (raw.h - w) / s + 1;
    out.w = (raw.w - w) / s + 1;
    return out;
}

} // namespace

Network::Network(std::string name, SampleShape input,
                 std::vector<Layer> layers)
    : name_(std::move(name)), input_(input), layers_(std::move(layers))
{
    if (layers_.empty())
        util::fatal(name_ + ": a network needs at least one weighted layer");
    if (input_.elems() == 0)
        util::fatal(name_ + ": empty input shape");

    SampleShape cur = input_;
    for (auto &layer : layers_) {
        if (layer.name.empty())
            util::fatal(name_ + ": unnamed layer");
        layer.in = cur;
        layer.outRaw = inferRawOutput(layer, cur, name_);
        layer.outPooled = inferPooledOutput(layer, layer.outRaw, name_);
        if (layer.pool.enabled() && layer.pool.stride == 0)
            layer.pool.stride = layer.pool.window;
        cur = layer.outPooled;
    }
}

const Layer &
Network::layer(std::size_t l) const
{
    if (l >= layers_.size())
        util::fatal(name_ + ": layer index out of range");
    return layers_[l];
}

std::size_t
Network::layerIndex(const std::string &layer_name) const
{
    for (std::size_t l = 0; l < layers_.size(); ++l)
        if (layers_[l].name == layer_name)
            return l;
    util::fatal(name_ + ": no layer named '" + layer_name + "'");
}

std::size_t
Network::totalParamElems() const
{
    std::size_t total = 0;
    for (const auto &layer : layers_)
        total += layer.weightElems();
    return total;
}

double
Network::totalFwdMacsPerSample() const
{
    double total = 0.0;
    for (const auto &layer : layers_)
        total += layer.fwdMacsPerSample();
    return total;
}

bool
Network::hasConv() const
{
    for (const auto &layer : layers_)
        if (layer.isConv())
            return true;
    return false;
}

bool
Network::hasFc() const
{
    for (const auto &layer : layers_)
        if (layer.isFc())
            return true;
    return false;
}

std::string
Network::describe() const
{
    std::ostringstream os;
    os << name_ << " (input " << input_.c << "x" << input_.h << "x"
       << input_.w << ", " << size() << " weighted layers, "
       << totalParamElems() << " params)\n";
    for (const auto &layer : layers_)
        os << "  " << layer.describe() << "\n";
    return os.str();
}

} // namespace hypar::dnn
