#include "dnn/network.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace hypar::dnn {

namespace {

/** Infer the raw output shape of one weighted layer from its input. */
SampleShape
inferRawOutput(const Layer &layer, const SampleShape &in,
               const std::string &net_name)
{
    if (layer.outChannels == 0) {
        util::fatal(net_name + "/" + layer.name +
                    ": zero output channels");
    }

    if (layer.isFc()) {
        if (in.elems() == 0)
            util::fatal(net_name + "/" + layer.name + ": empty fc input");
        return SampleShape{layer.outChannels, 1, 1};
    }

    if (layer.kernel == 0 || layer.stride == 0) {
        util::fatal(net_name + "/" + layer.name +
                    ": conv needs kernel > 0 and stride > 0");
    }
    const std::size_t eff_h = in.h + 2 * layer.pad;
    const std::size_t eff_w = in.w + 2 * layer.pad;
    if (eff_h < layer.kernel || eff_w < layer.kernel) {
        util::fatal(net_name + "/" + layer.name +
                    ": kernel larger than (padded) input");
    }
    SampleShape out;
    out.c = layer.outChannels;
    out.h = (eff_h - layer.kernel) / layer.stride + 1;
    out.w = (eff_w - layer.kernel) / layer.stride + 1;
    return out;
}

/** Apply the optional pooling attribute. */
SampleShape
inferPooledOutput(const Layer &layer, const SampleShape &raw,
                  const std::string &net_name)
{
    if (!layer.pool.enabled())
        return raw;
    const std::size_t w = layer.pool.window;
    const std::size_t s = layer.pool.stride ? layer.pool.stride : w;
    if (raw.h < w || raw.w < w) {
        util::fatal(net_name + "/" + layer.name +
                    ": pooling window larger than feature map");
    }
    SampleShape out;
    out.c = raw.c;
    out.h = (raw.h - w) / s + 1;
    out.w = (raw.w - w) / s + 1;
    return out;
}

std::string
shapeStr(const SampleShape &s)
{
    std::ostringstream os;
    os << s.c << "x" << s.h << "x" << s.w;
    return os.str();
}

} // namespace

Network::Network(std::string name, SampleShape input,
                 std::vector<Layer> layers)
    : Network(std::move(name), input, std::move(layers), {})
{
}

Network::Network(std::string name, SampleShape input,
                 std::vector<Layer> layers,
                 std::vector<std::vector<std::size_t>> preds)
    : name_(std::move(name)), input_(input), layers_(std::move(layers))
{
    if (layers_.empty())
        util::fatal(name_ + ": a network needs at least one weighted layer");
    if (input_.elems() == 0)
        util::fatal(name_ + ": empty input shape");

    wireEdges(std::move(preds));
    inferShapes();
}

void
Network::wireEdges(std::vector<std::vector<std::size_t>> preds)
{
    const std::size_t n = layers_.size();
    if (!preds.empty() && preds.size() != n) {
        util::fatal(name_ + ": predecessor list count (" +
                    std::to_string(preds.size()) +
                    ") does not match layer count (" + std::to_string(n) +
                    ")");
    }
    preds.resize(n);

    for (std::size_t l = 0; l < n; ++l) {
        if (layers_[l].name.empty())
            util::fatal(name_ + ": unnamed layer");
        for (std::size_t m = 0; m < l; ++m) {
            if (layers_[m].name == layers_[l].name) {
                util::fatal(name_ + ": duplicate layer name '" +
                            layers_[l].name + "'");
            }
        }
    }

    preds_.assign(n, {});
    succs_.assign(n, {});
    is_chain_ = true;
    for (std::size_t l = 0; l < n; ++l) {
        auto &p = preds[l];
        if (l == 0) {
            if (!p.empty()) {
                util::fatal(name_ + "/" + layers_[0].name +
                            ": the first layer is the source and cannot "
                            "have predecessors");
            }
            continue;
        }
        // An empty list means the implicit chain edge.
        if (p.empty())
            p.push_back(l - 1);
        std::sort(p.begin(), p.end());
        for (std::size_t i = 0; i < p.size(); ++i) {
            const std::size_t u = p[i];
            if (u >= l) {
                util::fatal(name_ + ": edge '" +
                            (u < n ? layers_[u].name
                                   : std::to_string(u)) +
                            "' -> '" + layers_[l].name +
                            "': the source must be declared before the "
                            "destination (layers are listed in "
                            "topological order; a back edge would close "
                            "a cycle)");
            }
            if (i > 0 && p[i - 1] == u) {
                util::fatal(name_ + ": duplicate edge '" +
                            layers_[u].name + "' -> '" + layers_[l].name +
                            "'");
            }
        }
        if (p.size() != 1 || p[0] != l - 1)
            is_chain_ = false;
        preds_[l] = p;
        for (const std::size_t u : p)
            succs_[u].push_back(l);
    }

    for (std::size_t l = 0; l + 1 < n; ++l) {
        if (succs_[l].empty()) {
            util::fatal(name_ + "/" + layers_[l].name +
                        ": dangling layer (no successor; only the last "
                        "layer may be the sink)");
        }
    }
}

void
Network::inferShapes()
{
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        auto &layer = layers_[l];
        if (l == 0) {
            layer.in = input_;
        } else {
            // A join layer sums its predecessors elementwise, so all
            // incoming shapes must agree.
            const auto &p = preds_[l];
            layer.in = layers_[p[0]].outPooled;
            for (std::size_t i = 1; i < p.size(); ++i) {
                const auto &other = layers_[p[i]].outPooled;
                if (!(other == layer.in)) {
                    util::fatal(
                        name_ + "/" + layer.name +
                        ": join shape mismatch (predecessor '" +
                        layers_[p[0]].name + "' gives " +
                        shapeStr(layer.in) + ", predecessor '" +
                        layers_[p[i]].name + "' gives " + shapeStr(other) +
                        "; an elementwise-sum join needs equal shapes)");
                }
            }
        }
        layer.outRaw = inferRawOutput(layer, layer.in, name_);
        layer.outPooled = inferPooledOutput(layer, layer.outRaw, name_);
        if (layer.pool.enabled() && layer.pool.stride == 0)
            layer.pool.stride = layer.pool.window;
    }
}

const Layer &
Network::layer(std::size_t l) const
{
    if (l >= layers_.size())
        util::fatal(name_ + ": layer index out of range");
    return layers_[l];
}

const std::vector<std::size_t> &
Network::preds(std::size_t l) const
{
    if (l >= layers_.size())
        util::fatal(name_ + ": layer index out of range");
    return preds_[l];
}

const std::vector<std::size_t> &
Network::succs(std::size_t l) const
{
    if (l >= layers_.size())
        util::fatal(name_ + ": layer index out of range");
    return succs_[l];
}

std::size_t
Network::numEdges() const
{
    std::size_t total = 0;
    for (const auto &p : preds_)
        total += p.size();
    return total;
}

std::size_t
Network::layerIndex(const std::string &layer_name) const
{
    for (std::size_t l = 0; l < layers_.size(); ++l)
        if (layers_[l].name == layer_name)
            return l;
    util::fatal(name_ + ": no layer named '" + layer_name + "'");
}

std::size_t
Network::totalParamElems() const
{
    std::size_t total = 0;
    for (const auto &layer : layers_)
        total += layer.weightElems();
    return total;
}

double
Network::totalFwdMacsPerSample() const
{
    double total = 0.0;
    for (const auto &layer : layers_)
        total += layer.fwdMacsPerSample();
    return total;
}

bool
Network::hasConv() const
{
    for (const auto &layer : layers_)
        if (layer.isConv())
            return true;
    return false;
}

bool
Network::hasFc() const
{
    for (const auto &layer : layers_)
        if (layer.isFc())
            return true;
    return false;
}

std::string
Network::describe() const
{
    std::ostringstream os;
    os << name_ << " (input " << input_.c << "x" << input_.h << "x"
       << input_.w << ", " << size() << " weighted layers, "
       << totalParamElems() << " params)\n";
    for (const auto &layer : layers_)
        os << "  " << layer.describe() << "\n";
    if (!is_chain_) {
        os << "  edges:";
        for (std::size_t l = 0; l < layers_.size(); ++l)
            for (const std::size_t u : preds_[l])
                os << " " << layers_[u].name << "->" << layers_[l].name;
        os << "\n";
    }
    return os.str();
}

std::size_t
Network::approxBytes() const
{
    std::size_t bytes = sizeof(Network) + name_.capacity();
    bytes += layers_.capacity() * sizeof(Layer);
    for (const Layer &layer : layers_)
        bytes += layer.name.capacity();
    bytes += preds_.capacity() * sizeof(std::vector<std::size_t>);
    bytes += succs_.capacity() * sizeof(std::vector<std::size_t>);
    for (std::size_t l = 0; l < layers_.size(); ++l)
        bytes += (preds_[l].capacity() + succs_[l].capacity()) *
                 sizeof(std::size_t);
    return bytes;
}

} // namespace hypar::dnn
