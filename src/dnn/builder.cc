#include "dnn/builder.hh"

#include "util/logging.hh"

namespace hypar::dnn {

NetworkBuilder::NetworkBuilder(std::string name, SampleShape input)
    : name_(std::move(name)), input_(input)
{}

Layer &
NetworkBuilder::last()
{
    if (layers_.empty())
        util::fatal(name_ + ": layer attribute before any layer was added");
    return layers_.back();
}

NetworkBuilder &
NetworkBuilder::conv(const std::string &layer_name, std::size_t out_channels,
                     std::size_t kernel)
{
    Layer layer;
    layer.name = layer_name;
    layer.kind = LayerKind::kConv;
    layer.outChannels = out_channels;
    layer.kernel = kernel;
    layers_.push_back(layer);
    return *this;
}

NetworkBuilder &
NetworkBuilder::fc(const std::string &layer_name, std::size_t out_neurons)
{
    Layer layer;
    layer.name = layer_name;
    layer.kind = LayerKind::kFullyConnected;
    layer.outChannels = out_neurons;
    layers_.push_back(layer);
    return *this;
}

NetworkBuilder &
NetworkBuilder::stride(std::size_t s)
{
    if (!last().isConv())
        util::fatal(name_ + ": stride on a non-conv layer");
    last().stride = s;
    return *this;
}

NetworkBuilder &
NetworkBuilder::pad(std::size_t p)
{
    if (!last().isConv())
        util::fatal(name_ + ": pad on a non-conv layer");
    last().pad = p;
    return *this;
}

NetworkBuilder &
NetworkBuilder::maxPool(std::size_t window, std::size_t pool_stride)
{
    last().pool.window = window;
    last().pool.stride = pool_stride ? pool_stride : window;
    return *this;
}

NetworkBuilder &
NetworkBuilder::activation(Activation act)
{
    last().act = act;
    return *this;
}

Network
NetworkBuilder::build() const
{
    return Network(name_, input_, layers_);
}

} // namespace hypar::dnn
