#include "dnn/builder.hh"

#include "util/logging.hh"

namespace hypar::dnn {

NetworkBuilder::NetworkBuilder(std::string name, SampleShape input)
    : name_(std::move(name)), input_(input)
{}

Layer &
NetworkBuilder::last()
{
    if (layers_.empty())
        util::fatal(name_ + ": layer attribute before any layer was added");
    return layers_.back();
}

NetworkBuilder &
NetworkBuilder::conv(const std::string &layer_name, std::size_t out_channels,
                     std::size_t kernel)
{
    Layer layer;
    layer.name = layer_name;
    layer.kind = LayerKind::kConv;
    layer.outChannels = out_channels;
    layer.kernel = kernel;
    layers_.push_back(layer);
    return *this;
}

NetworkBuilder &
NetworkBuilder::fc(const std::string &layer_name, std::size_t out_neurons)
{
    Layer layer;
    layer.name = layer_name;
    layer.kind = LayerKind::kFullyConnected;
    layer.outChannels = out_neurons;
    layers_.push_back(layer);
    return *this;
}

NetworkBuilder &
NetworkBuilder::stride(std::size_t s)
{
    if (!last().isConv())
        util::fatal(name_ + ": stride on a non-conv layer");
    last().stride = s;
    return *this;
}

NetworkBuilder &
NetworkBuilder::pad(std::size_t p)
{
    if (!last().isConv())
        util::fatal(name_ + ": pad on a non-conv layer");
    last().pad = p;
    return *this;
}

NetworkBuilder &
NetworkBuilder::maxPool(std::size_t window, std::size_t pool_stride)
{
    last().pool.window = window;
    last().pool.stride = pool_stride ? pool_stride : window;
    return *this;
}

NetworkBuilder &
NetworkBuilder::activation(Activation act)
{
    last().act = act;
    return *this;
}

NetworkBuilder &
NetworkBuilder::edge(const std::string &src, const std::string &dst)
{
    edges_.push_back({src, dst});
    return *this;
}

Network
NetworkBuilder::build() const
{
    if (edges_.empty())
        return Network(name_, input_, layers_);

    auto index_of = [&](const std::string &layer_name) -> std::size_t {
        for (std::size_t l = 0; l < layers_.size(); ++l)
            if (layers_[l].name == layer_name)
                return l;
        util::fatal(name_ + ": edge references unknown layer '" +
                    layer_name + "' (dangling edge)");
    };

    std::vector<std::vector<std::size_t>> preds(layers_.size());
    for (const auto &[src, dst] : edges_)
        preds[index_of(dst)].push_back(index_of(src));
    return Network(name_, input_, layers_, std::move(preds));
}

} // namespace hypar::dnn
