/**
 * @file
 * The ten evaluation networks of the HyPar paper (Section 6.1):
 *
 *   SFC      MNIST, fully-connected only, 784-8192-8192-8192-10 (Table 3)
 *   SCONV    MNIST, convolution only (Table 3)
 *   Lenet-c  MNIST LeNet variant, 4 weighted layers
 *   Cifar-c  CIFAR-10 "quick" network, 5 weighted layers
 *   AlexNet  ImageNet (Krizhevsky 2012, single tower), 8 weighted layers
 *   VGG-A/B/C/D/E  ImageNet (Simonyan & Zisserman 2015), 11/13/16/16/19
 *
 * Layer names follow the paper's Figure 5 (conv1_1, ..., fc3).
 */

#ifndef HYPAR_DNN_MODEL_ZOO_HH
#define HYPAR_DNN_MODEL_ZOO_HH

#include <string>
#include <vector>

#include "dnn/network.hh"

namespace hypar::dnn {

Network makeSfc();
Network makeSconv();
Network makeLenetC();
Network makeCifarC();
Network makeAlexNet();
Network makeVggA();
Network makeVggB();
Network makeVggC();
Network makeVggD();
Network makeVggE();

/**
 * Series-parallel DAG fixtures (not part of the paper's ten chains).
 *
 * ResNet-block: a CIFAR-sized residual block — conv trunk plus an
 * identity-shaped skip edge meeting at an elementwise-sum join.
 * Inception-branch: two parallel branches of different depth (1x1 vs
 * stacked 3x3) off a shared stem, summed at the merge layer.
 *
 * Both are resolvable through modelByName but are deliberately *not*
 * in allModels(): that list feeds chain-only consumers (the greedy
 * hierarchical search, figure sweeps, serve benchmarks).
 */
Network makeResNetBlock();
Network makeInceptionBranch();

/** All ten networks in the paper's presentation order (chains only). */
std::vector<Network> allModels();

/** Names of the ten networks, in order. */
std::vector<std::string> allModelNames();

/**
 * Look up a network by name; fatal on unknown names. Resolves the ten
 * paper chains plus the DAG fixtures "ResNet-block" and
 * "Inception-branch".
 */
Network modelByName(const std::string &name);

} // namespace hypar::dnn

#endif // HYPAR_DNN_MODEL_ZOO_HH
