#include "core/comm_report.hh"

#include <cmath>
#include <sstream>

#include "util/logging.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace hypar::core {

CommReport
buildCommReport(const CommModel &model, const HierarchicalPlan &plan)
{
    const dnn::Network &net = model.network();
    validatePlan(plan, net);

    CommReport report;
    report.layers.resize(net.size());
    for (std::size_t l = 0; l < net.size(); ++l)
        report.layers[l].layer = net.layer(l).name;
    report.levels.resize(plan.numLevels());

    History hist(net.size());
    for (std::size_t h = 0; h < plan.numLevels(); ++h) {
        auto &level = report.levels[h];
        level.level = h;
        const LevelPlan &lp = plan.levels[h];
        const double weight = model.levelWeight(h);

        for (std::size_t l = 0; l < net.size(); ++l) {
            const double intra =
                weight * model.intraBytes(l, lp[l], hist);
            if (lp[l] == Parallelism::kData)
                report.layers[l].gradBytes += intra;
            else
                report.layers[l].psumBytes += intra;
            level.intraBytes += intra;

            if (l + 1 < net.size()) {
                const double f =
                    weight *
                    model.interBytesF(l, lp[l], lp[l + 1], hist);
                const double e =
                    weight *
                    model.interBytesE(l, lp[l], lp[l + 1], hist);
                // Attribute the boundary to its producing layer l.
                report.layers[l].featBytes += f;
                report.layers[l].errBytes += e;
                level.interBytes += f + e;
            }
        }
        hist.push(lp);
    }

    for (const auto &layer : report.layers)
        report.totalBytes += layer.totalBytes();
    return report;
}

std::string
CommReport::toString() const
{
    std::ostringstream os;

    util::Table by_layer(
        {"layer", "grad (dp)", "psum (mp)", "feat", "err", "total"});
    for (const auto &l : layers) {
        by_layer.addRow({l.layer, util::formatBytes(l.gradBytes),
                         util::formatBytes(l.psumBytes),
                         util::formatBytes(l.featBytes),
                         util::formatBytes(l.errBytes),
                         util::formatBytes(l.totalBytes())});
    }
    by_layer.print(os);

    os << "\n";
    util::Table by_level({"level", "intra", "inter", "total"});
    for (const auto &lv : levels) {
        by_level.addRow({"H" + std::to_string(lv.level + 1),
                         util::formatBytes(lv.intraBytes),
                         util::formatBytes(lv.interBytes),
                         util::formatBytes(lv.totalBytes())});
    }
    by_level.print(os);
    os << "\ntotal: " << util::formatBytes(totalBytes) << "\n";
    return os.str();
}

} // namespace hypar::core
