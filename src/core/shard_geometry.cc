#include "core/shard_geometry.hh"

#include "util/logging.hh"

namespace hypar::core {

IndexRange
IndexRange::intersect(const IndexRange &other) const
{
    IndexRange r;
    r.lo = lo > other.lo ? lo : other.lo;
    r.hi = hi < other.hi ? hi : other.hi;
    if (r.hi < r.lo)
        r.hi = r.lo;
    return r;
}

std::size_t
TensorRegion::missingFrom(const TensorRegion &held) const
{
    const std::size_t covered =
        batch.intersect(held.batch).size() *
        channel.intersect(held.channel).size();
    HYPAR_ASSERT(covered <= volume(), "overlap exceeds region");
    return volume() - covered;
}

BoundaryGeometry::BoundaryGeometry(std::size_t batch, std::size_t channels)
    : batch_(batch), channels_(channels)
{
    if (batch_ == 0 || channels_ == 0)
        util::fatal("BoundaryGeometry: empty tensor");
}

TensorRegion
BoundaryGeometry::full() const
{
    return TensorRegion{{0, batch_}, {0, channels_}};
}

TensorRegion
BoundaryGeometry::batchHalf(Group g) const
{
    const std::size_t mid = batch_ / 2;
    if (g == Group::kFirst)
        return TensorRegion{{0, mid}, {0, channels_}};
    return TensorRegion{{mid, batch_}, {0, channels_}};
}

TensorRegion
BoundaryGeometry::channelHalf(Group g) const
{
    const std::size_t mid = channels_ / 2;
    if (g == Group::kFirst)
        return TensorRegion{{0, batch_}, {0, mid}};
    return TensorRegion{{0, batch_}, {mid, channels_}};
}

TensorRegion
BoundaryGeometry::featureHeld(Parallelism producer, Group g) const
{
    // dp: layer l produced its batch half of F_{l+1}. mp: after the
    // output partial-sum reduction each group holds the full tensor
    // (this is exactly why Table 2's mp-* rows charge nothing for F).
    return producer == Parallelism::kData ? batchHalf(g) : full();
}

TensorRegion
BoundaryGeometry::featureNeeded(Parallelism consumer, Group g) const
{
    // dp: layer l+1 consumes its batch half. mp: layer l+1 holds the
    // kernel slice over a channel half of its input.
    return consumer == Parallelism::kData ? batchHalf(g)
                                          : channelHalf(g);
}

TensorRegion
BoundaryGeometry::errorHeld(Parallelism producer_next, Group g) const
{
    // E_{l+1} comes out of layer l+1's backward pass: under dp each
    // group computes its batch half; under mp each group's kernel
    // slice yields exactly its input-channel half of the error.
    return producer_next == Parallelism::kData ? batchHalf(g)
                                               : channelHalf(g);
}

TensorRegion
BoundaryGeometry::errorNeeded(Parallelism consumer_prev, Group g) const
{
    // Layer l's backward/gradient steps need E over its own output
    // region: the batch half under dp, the full tensor under mp (its
    // full-shape output partial sums touched every element).
    return consumer_prev == Parallelism::kData ? batchHalf(g) : full();
}

std::size_t
BoundaryGeometry::featureTraffic(Parallelism prev, Parallelism cur) const
{
    std::size_t total = 0;
    for (Group g : {Group::kFirst, Group::kSecond})
        total += featureNeeded(cur, g).missingFrom(featureHeld(prev, g));
    return total;
}

std::size_t
BoundaryGeometry::errorTraffic(Parallelism prev, Parallelism cur) const
{
    std::size_t total = 0;
    for (Group g : {Group::kFirst, Group::kSecond})
        total += errorNeeded(prev, g).missingFrom(errorHeld(cur, g));
    return total;
}

std::size_t
intraTraffic(Parallelism p, std::size_t weight_elems,
             std::size_t out_raw_elems)
{
    // Both groups hold a full-shape partial sum of the reduced tensor
    // and fetch the peer's copy: 2x the tensor volume either way.
    return 2 * (p == Parallelism::kData ? weight_elems : out_raw_elems);
}

} // namespace hypar::core
