#include "core/plan.hh"

#include <sstream>

#include "dnn/network.hh"
#include "util/logging.hh"

namespace hypar::core {

History::History(std::size_t layers)
    : dp_(layers, 0), mp_(layers, 0)
{}

void
History::push(const LevelPlan &plan)
{
    if (plan.size() != dp_.size())
        util::panic("History::push: layer count mismatch");
    for (std::size_t l = 0; l < plan.size(); ++l) {
        if (plan[l] == Parallelism::kData)
            ++dp_[l];
        else
            ++mp_[l];
    }
    ++depth_;
}

unsigned
History::dpCount(std::size_t l) const
{
    HYPAR_ASSERT(l < dp_.size(), "History layer index");
    return dp_[l];
}

unsigned
History::mpCount(std::size_t l) const
{
    HYPAR_ASSERT(l < mp_.size(), "History layer index");
    return mp_[l];
}

LevelPlan
uniformLevelPlan(std::size_t layers, Parallelism p)
{
    return LevelPlan(layers, p);
}

HierarchicalPlan
uniformPlan(std::size_t layers, std::size_t levels, Parallelism p)
{
    HierarchicalPlan plan;
    plan.levels.assign(levels, uniformLevelPlan(layers, p));
    return plan;
}

LevelPlan
levelPlanFromMask(std::uint64_t mask, std::size_t layers)
{
    if (layers > 63)
        util::fatal("levelPlanFromMask supports at most 63 layers");
    LevelPlan plan(layers, Parallelism::kData);
    for (std::size_t l = 0; l < layers; ++l)
        if (mask & (std::uint64_t{1} << l))
            plan[l] = Parallelism::kModel;
    return plan;
}

void
assignLayerFromState(HierarchicalPlan &plan, std::size_t layer,
                     std::uint64_t state)
{
    if (plan.numLevels() > 64)
        util::fatal("assignLayerFromState supports at most 64 levels");
    if (layer >= plan.numLayers())
        util::fatal("assignLayerFromState: layer out of range");
    for (std::size_t h = 0; h < plan.numLevels(); ++h)
        plan.levels[h][layer] = (state >> h) & 1u ? Parallelism::kModel
                                                  : Parallelism::kData;
}

std::string
toBitString(const LevelPlan &plan)
{
    std::string s;
    s.reserve(plan.size());
    for (Parallelism p : plan)
        s.push_back(toBit(p));
    return s;
}

std::string
toString(const HierarchicalPlan &plan)
{
    std::ostringstream os;
    for (std::size_t h = 0; h < plan.levels.size(); ++h) {
        os << "H" << (h + 1) << ":";
        for (Parallelism p : plan.levels[h])
            os << " " << core::toString(p);
        os << "\n";
    }
    return os.str();
}

void
validatePlan(const HierarchicalPlan &plan, const dnn::Network &network)
{
    for (const auto &level : plan.levels) {
        if (level.size() != network.size()) {
            util::fatal("plan does not match network '" + network.name() +
                        "': level has " + std::to_string(level.size()) +
                        " layers, network has " +
                        std::to_string(network.size()));
        }
    }
}

} // namespace hypar::core
