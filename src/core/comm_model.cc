#include "core/comm_model.hh"

#include <cmath>

#include "util/logging.hh"

namespace hypar::core {

CommModel::CommModel(const dnn::Network &network, const CommConfig &config)
    : network_(&network), config_(config)
{
    if (config_.batch == 0)
        util::fatal("CommModel: batch must be positive");
    if (config_.wordBytes <= 0.0)
        util::fatal("CommModel: word size must be positive");
    if (config_.exchangeFactor <= 0.0)
        util::fatal("CommModel: exchange factor must be positive");

    const auto batch = static_cast<double>(config_.batch);
    weightBytes_.reserve(network.size());
    outRawBytes_.reserve(network.size());
    boundaryBytes_.reserve(network.size());
    for (const auto &layer : network.layers()) {
        weightBytes_.push_back(
            static_cast<double>(layer.weightElems()) * config_.wordBytes);
        outRawBytes_.push_back(
            static_cast<double>(layer.outRawElemsPerSample()) * batch *
            config_.wordBytes);
        boundaryBytes_.push_back(
            static_cast<double>(layer.outElemsPerSample()) * batch *
            config_.wordBytes);
    }
}

double
CommModel::weightBytes(std::size_t l) const
{
    HYPAR_ASSERT(l < weightBytes_.size(), "layer index");
    return weightBytes_[l];
}

double
CommModel::outRawBytes(std::size_t l) const
{
    HYPAR_ASSERT(l < outRawBytes_.size(), "layer index");
    return outRawBytes_[l];
}

double
CommModel::boundaryBytes(std::size_t l) const
{
    HYPAR_ASSERT(l < boundaryBytes_.size(), "layer index");
    return boundaryBytes_[l];
}

double
CommModel::halvings(unsigned n)
{
    return std::ldexp(1.0, -static_cast<int>(n));
}

double
CommModel::gradScale(std::size_t l, const History &hist) const
{
    if (config_.scaling == CommConfig::Scaling::kNone)
        return 1.0;
    return halvings(hist.mpCount(l));
}

double
CommModel::featScale(std::size_t l, const History &hist) const
{
    if (config_.scaling == CommConfig::Scaling::kNone)
        return 1.0;
    return halvings(hist.dpCount(l));
}

double
CommModel::intraBytesAt(std::size_t l, Parallelism p, unsigned dp_above,
                        unsigned mp_above) const
{
    const bool scale = config_.scaling == CommConfig::Scaling::kPartitioned;
    if (p == Parallelism::kData) {
        return config_.exchangeFactor * weightBytes(l) *
               (scale ? halvings(mp_above) : 1.0);
    }
    return config_.exchangeFactor * outRawBytes(l) *
           (scale ? halvings(dp_above) : 1.0);
}

double
CommModel::interBytesAt(std::size_t l, Parallelism prev, Parallelism cur,
                        unsigned dp_above_l, unsigned dp_above_next) const
{
    HYPAR_ASSERT(l + 1 < numLayers(), "inter-layer transition index");
    const bool scale = config_.scaling == CommConfig::Scaling::kPartitioned;
    const double f_bytes =
        boundaryBytes(l) * (scale ? halvings(dp_above_l) : 1.0);
    const double e_bytes =
        boundaryBytes(l) * (scale ? halvings(dp_above_next) : 1.0);

    double coeff_f = 0.0;
    double coeff_e = 0.0;
    if (prev == Parallelism::kData && cur == Parallelism::kModel) {
        coeff_f = 0.25;
        coeff_e = 0.25;
    } else if (prev == Parallelism::kModel) {
        coeff_e = 0.5;
    }
    return config_.exchangeFactor * (coeff_f * f_bytes + coeff_e * e_bytes);
}

double
CommModel::intraBytes(std::size_t l, Parallelism p,
                      const History &hist) const
{
    if (p == Parallelism::kData) {
        // Gradient partial sums: each peer holds a full-shape partial
        // gradient; kernels shrink under upper mp splits.
        return config_.exchangeFactor * weightBytes(l) * gradScale(l, hist);
    }
    // Output partial sums on the raw (pre-pooling) output; the batch
    // shrinks under upper dp splits.
    return config_.exchangeFactor * outRawBytes(l) * featScale(l, hist);
}

double
CommModel::interBytesF(std::size_t l, Parallelism prev, Parallelism cur,
                       const History &hist) const
{
    HYPAR_ASSERT(l + 1 < numLayers(), "inter-layer transition index");

    // Boundary feature tensor: produced by layer l's forward pass, so
    // its batch dimension follows layer l's upper dp splits.
    const double f_bytes = boundaryBytes(l) * featScale(l, hist);
    const double coeff_f =
        (prev == Parallelism::kData && cur == Parallelism::kModel) ? 0.25
                                                                   : 0.0;
    return config_.exchangeFactor * coeff_f * f_bytes;
}

double
CommModel::interBytesE(std::size_t l, Parallelism prev, Parallelism cur,
                       const History &hist) const
{
    HYPAR_ASSERT(l + 1 < numLayers(), "inter-layer transition index");

    // Boundary error tensor: produced by layer l+1's backward pass.
    const double e_bytes = boundaryBytes(l) * featScale(l + 1, hist);
    double coeff_e = 0.0;
    if (prev == Parallelism::kData && cur == Parallelism::kModel)
        coeff_e = 0.25;
    else if (prev == Parallelism::kModel)
        coeff_e = 0.5; // mp-mp and mp-dp (Table 2)
    // dp-dp stays zero.
    return config_.exchangeFactor * coeff_e * e_bytes;
}

double
CommModel::interBytes(std::size_t l, Parallelism prev, Parallelism cur,
                      const History &hist) const
{
    return interBytesF(l, prev, cur, hist) +
           interBytesE(l, prev, cur, hist);
}

double
CommModel::pairBytes(const LevelPlan &plan, const History &hist) const
{
    if (plan.size() != numLayers())
        util::fatal("CommModel::pairBytes: plan size mismatch");

    double total = 0.0;
    for (std::size_t l = 0; l < plan.size(); ++l) {
        total += intraBytes(l, plan[l], hist);
        if (l + 1 < plan.size())
            total += interBytes(l, plan[l], plan[l + 1], hist);
    }
    return total;
}

double
CommModel::planBytes(const HierarchicalPlan &plan) const
{
    History hist(numLayers());
    double total = 0.0;
    double pairs = 1.0; // 2^h group pairs at level h
    for (const auto &level : plan.levels) {
        total += pairs * pairBytes(level, hist);
        hist.push(level);
        pairs *= 2.0;
    }
    return total;
}

} // namespace hypar::core
