#include "core/comm_model.hh"

#include <array>
#include <cmath>

#include "util/logging.hh"

namespace hypar::core {

namespace {

/** Largest halving count served from the lookup table. Histories never
 *  get near this deep (HierarchicalPartitioner caps H at 20). */
constexpr unsigned kMaxTableHalvings = 64;

/** Depth of the precomputed level-weight table; deeper hierarchies than
 *  any cap in the library (Topology fatals above 20, the brute-force
 *  oracles above L*H = 26). */
constexpr std::size_t kMaxWeightLevels = 33;

constexpr std::array<double, kMaxTableHalvings>
makeHalvingsTable()
{
    std::array<double, kMaxTableHalvings> t{};
    double v = 1.0;
    for (unsigned n = 0; n < kMaxTableHalvings; ++n) {
        t[n] = v;
        v *= 0.5;
    }
    return t;
}

constexpr auto kHalvings = makeHalvingsTable();

constexpr std::size_t
idx(Parallelism p)
{
    return static_cast<std::size_t>(p);
}

} // namespace

CommModel::CommModel(const dnn::Network &network, const CommConfig &config)
    : network_(&network), config_(config)
{
    if (config_.batch == 0)
        util::fatal("CommModel: batch must be positive");
    if (config_.wordBytes <= 0.0)
        util::fatal("CommModel: word size must be positive");
    if (config_.exchangeFactor <= 0.0)
        util::fatal("CommModel: exchange factor must be positive");
    for (std::size_t h = 0; h < config_.levelPenalties.size(); ++h) {
        const double p = config_.levelPenalties[h];
        if (!(p > 0.0) || !std::isfinite(p))
            util::fatal("CommModel: level " + std::to_string(h) +
                        " penalty must be positive and finite (an "
                        "infinite penalty means a dead link makes the "
                        "level unusable; reject the fault map instead)");
    }
    levelWeights_.reserve(kMaxWeightLevels);
    for (std::size_t h = 0; h < kMaxWeightLevels; ++h) {
        const double p = h < config_.levelPenalties.size()
                             ? config_.levelPenalties[h]
                             : 1.0;
        // ldexp scales by an exact power of two: with p == 1.0 this is
        // the exact 2^h the engines' pairs *= 2.0 accumulators used to
        // produce, so pristine results stay bit-identical.
        levelWeights_.push_back(std::ldexp(p, static_cast<int>(h)));
    }

    const auto batch = static_cast<double>(config_.batch);
    const double ef = config_.exchangeFactor;
    weightBytes_.reserve(network.size());
    outRawBytes_.reserve(network.size());
    boundaryBytes_.reserve(network.size());
    scaledWeightBytes_.reserve(network.size());
    scaledOutRawBytes_.reserve(network.size());
    scaledBoundaryBytes_.reserve(network.size());
    for (const auto &layer : network.layers()) {
        weightBytes_.push_back(
            static_cast<double>(layer.weightElems()) * config_.wordBytes);
        outRawBytes_.push_back(
            static_cast<double>(layer.outRawElemsPerSample()) * batch *
            config_.wordBytes);
        boundaryBytes_.push_back(
            static_cast<double>(layer.outElemsPerSample()) * batch *
            config_.wordBytes);
        // Hot-path operand tables: the exchange factor is folded in once
        // here; every later scale factor is a power of two, so queries
        // against these are single exact multiplications.
        scaledWeightBytes_.push_back(ef * weightBytes_.back());
        scaledOutRawBytes_.push_back(ef * outRawBytes_.back());
        scaledBoundaryBytes_.push_back(ef * boundaryBytes_.back());
    }
}

double
CommModel::weightBytes(std::size_t l) const
{
    HYPAR_ASSERT(l < weightBytes_.size(), "layer index");
    return weightBytes_[l];
}

double
CommModel::outRawBytes(std::size_t l) const
{
    HYPAR_ASSERT(l < outRawBytes_.size(), "layer index");
    return outRawBytes_[l];
}

double
CommModel::boundaryBytes(std::size_t l) const
{
    HYPAR_ASSERT(l < boundaryBytes_.size(), "layer index");
    return boundaryBytes_[l];
}

double
CommModel::levelPenalty(std::size_t h) const
{
    return h < config_.levelPenalties.size() ? config_.levelPenalties[h]
                                             : 1.0;
}

double
CommModel::levelWeight(std::size_t h) const
{
    HYPAR_ASSERT(h < levelWeights_.size(), "hierarchy level");
    return levelWeights_[h];
}

double
CommModel::halvings(unsigned n)
{
    if (n < kMaxTableHalvings)
        return kHalvings[n];
    return std::ldexp(1.0, -static_cast<int>(n));
}

double
CommModel::gradScale(std::size_t l, const History &hist) const
{
    if (config_.scaling == CommConfig::Scaling::kNone)
        return 1.0;
    return halvings(hist.mpCount(l));
}

double
CommModel::featScale(std::size_t l, const History &hist) const
{
    if (config_.scaling == CommConfig::Scaling::kNone)
        return 1.0;
    return halvings(hist.dpCount(l));
}

double
CommModel::intraBytesAt(std::size_t l, Parallelism p, unsigned dp_above,
                        unsigned mp_above) const
{
    const bool scale = config_.scaling == CommConfig::Scaling::kPartitioned;
    if (p == Parallelism::kData) {
        HYPAR_ASSERT(l < scaledWeightBytes_.size(), "layer index");
        return scaledWeightBytes_[l] * (scale ? halvings(mp_above) : 1.0);
    }
    HYPAR_ASSERT(l < scaledOutRawBytes_.size(), "layer index");
    return scaledOutRawBytes_[l] * (scale ? halvings(dp_above) : 1.0);
}

double
CommModel::interBytesAt(std::size_t l, Parallelism prev, Parallelism cur,
                        unsigned dp_above_l, unsigned dp_above_next) const
{
    HYPAR_ASSERT(l + 1 < numLayers(), "inter-layer transition index");
    const bool scale = config_.scaling == CommConfig::Scaling::kPartitioned;
    const double b = scaledBoundaryBytes_[l];
    const double f_bytes = b * (scale ? halvings(dp_above_l) : 1.0);
    const double e_bytes = b * (scale ? halvings(dp_above_next) : 1.0);

    if (prev == Parallelism::kData) {
        if (cur == Parallelism::kModel)
            return 0.25 * f_bytes + 0.25 * e_bytes;
        return 0.0; // dp-dp
    }
    return 0.5 * e_bytes; // mp-mp and mp-dp (Table 2)
}

double
CommModel::interBytesFAt(std::size_t l, Parallelism prev, Parallelism cur,
                         unsigned dp_above_l) const
{
    HYPAR_ASSERT(l + 1 < numLayers(), "inter-layer transition index");
    if (!(prev == Parallelism::kData && cur == Parallelism::kModel))
        return 0.0;
    const bool scale = config_.scaling == CommConfig::Scaling::kPartitioned;
    return 0.25 * (scaledBoundaryBytes_[l] *
                   (scale ? halvings(dp_above_l) : 1.0));
}

double
CommModel::interBytesEAt(std::size_t l, Parallelism prev, Parallelism cur,
                         unsigned dp_above_next) const
{
    HYPAR_ASSERT(l + 1 < numLayers(), "inter-layer transition index");
    double coeff_e = 0.0;
    if (prev == Parallelism::kData && cur == Parallelism::kModel)
        coeff_e = 0.25;
    else if (prev == Parallelism::kModel)
        coeff_e = 0.5; // mp-mp and mp-dp (Table 2)
    if (coeff_e == 0.0)
        return 0.0;
    const bool scale = config_.scaling == CommConfig::Scaling::kPartitioned;
    return coeff_e * (scaledBoundaryBytes_[l] *
                      (scale ? halvings(dp_above_next) : 1.0));
}

double
CommModel::intraBytes(std::size_t l, Parallelism p,
                      const History &hist) const
{
    if (p == Parallelism::kData) {
        // Gradient partial sums: each peer holds a full-shape partial
        // gradient; kernels shrink under upper mp splits.
        HYPAR_ASSERT(l < scaledWeightBytes_.size(), "layer index");
        return scaledWeightBytes_[l] * gradScale(l, hist);
    }
    // Output partial sums on the raw (pre-pooling) output; the batch
    // shrinks under upper dp splits.
    HYPAR_ASSERT(l < scaledOutRawBytes_.size(), "layer index");
    return scaledOutRawBytes_[l] * featScale(l, hist);
}

double
CommModel::interBytesF(std::size_t l, Parallelism prev, Parallelism cur,
                       const History &hist) const
{
    HYPAR_ASSERT(l + 1 < numLayers(), "inter-layer transition index");

    if (!(prev == Parallelism::kData && cur == Parallelism::kModel))
        return 0.0;
    // Boundary feature tensor: produced by layer l's forward pass, so
    // its batch dimension follows layer l's upper dp splits.
    return 0.25 * (scaledBoundaryBytes_[l] * featScale(l, hist));
}

double
CommModel::interBytesE(std::size_t l, Parallelism prev, Parallelism cur,
                       const History &hist) const
{
    HYPAR_ASSERT(l + 1 < numLayers(), "inter-layer transition index");

    double coeff_e = 0.0;
    if (prev == Parallelism::kData && cur == Parallelism::kModel)
        coeff_e = 0.25;
    else if (prev == Parallelism::kModel)
        coeff_e = 0.5; // mp-mp and mp-dp (Table 2)
    // dp-dp stays zero.
    if (coeff_e == 0.0)
        return 0.0;
    // Boundary error tensor: produced by layer l+1's backward pass.
    return coeff_e * (scaledBoundaryBytes_[l] * featScale(l + 1, hist));
}

double
CommModel::interBytes(std::size_t l, Parallelism prev, Parallelism cur,
                      const History &hist) const
{
    return interBytesF(l, prev, cur, hist) +
           interBytesE(l, prev, cur, hist);
}

double
CommModel::interBytesEdge(std::size_t src, std::size_t dst,
                          Parallelism prev, Parallelism cur,
                          const History &hist) const
{
    HYPAR_ASSERT(src < dst && dst < numLayers(), "edge endpoints");

    // Feature part: identical to the chain formula — it only looks at
    // the producing layer.
    const double f = interBytesF(src, prev, cur, hist);

    // Error part: interBytesE with the consumer made explicit. Same
    // operation shapes, so dst == src + 1 reproduces interBytesE
    // bit-for-bit.
    double coeff_e = 0.0;
    if (prev == Parallelism::kData && cur == Parallelism::kModel)
        coeff_e = 0.25;
    else if (prev == Parallelism::kModel)
        coeff_e = 0.5; // mp-mp and mp-dp (Table 2)
    if (coeff_e == 0.0)
        return f;
    return f + coeff_e * (scaledBoundaryBytes_[src] * featScale(dst, hist));
}

double
CommModel::intraBytesReference(std::size_t l, Parallelism p,
                               const History &hist) const
{
    const bool scale = config_.scaling == CommConfig::Scaling::kPartitioned;
    if (p == Parallelism::kData) {
        const double grad_scale =
            scale ? std::ldexp(1.0, -static_cast<int>(hist.mpCount(l)))
                  : 1.0;
        return config_.exchangeFactor * weightBytes(l) * grad_scale;
    }
    const double feat_scale =
        scale ? std::ldexp(1.0, -static_cast<int>(hist.dpCount(l))) : 1.0;
    return config_.exchangeFactor * outRawBytes(l) * feat_scale;
}

double
CommModel::interBytesReference(std::size_t l, Parallelism prev,
                               Parallelism cur, const History &hist) const
{
    HYPAR_ASSERT(l + 1 < numLayers(), "inter-layer transition index");
    const bool scale = config_.scaling == CommConfig::Scaling::kPartitioned;
    const double f_scale =
        scale ? std::ldexp(1.0, -static_cast<int>(hist.dpCount(l))) : 1.0;
    const double e_scale =
        scale ? std::ldexp(1.0, -static_cast<int>(hist.dpCount(l + 1)))
              : 1.0;
    const double f_bytes = boundaryBytes(l) * f_scale;
    const double e_bytes = boundaryBytes(l) * e_scale;

    const double coeff_f =
        (prev == Parallelism::kData && cur == Parallelism::kModel) ? 0.25
                                                                   : 0.0;
    double coeff_e = 0.0;
    if (prev == Parallelism::kData && cur == Parallelism::kModel)
        coeff_e = 0.25;
    else if (prev == Parallelism::kModel)
        coeff_e = 0.5;

    return config_.exchangeFactor * coeff_f * f_bytes +
           config_.exchangeFactor * coeff_e * e_bytes;
}

void
CommModel::fillPairTables(const History &hist, PairTables &out) const
{
    const std::size_t layers = numLayers();
    if (hist.numLayers() != layers)
        util::fatal("CommModel::fillPairTables: history size mismatch");
    if (!network_->isChain())
        util::fatal("CommModel::fillPairTables is chain-shaped (one "
                    "inter row per layer boundary); DAG networks route "
                    "through the series-parallel search instead");

    out.intra.resize(2 * layers);
    out.inter.resize(layers > 0 ? 4 * (layers - 1) : 0);

    const bool scale = config_.scaling == CommConfig::Scaling::kPartitioned;
    double feat_next =
        layers > 0 && scale ? halvings(hist.dpCount(0)) : 1.0;
    for (std::size_t l = 0; l < layers; ++l) {
        const double grad = scale ? halvings(hist.mpCount(l)) : 1.0;
        const double feat = feat_next;
        out.intra[2 * l + idx(Parallelism::kData)] =
            scaledWeightBytes_[l] * grad;
        out.intra[2 * l + idx(Parallelism::kModel)] =
            scaledOutRawBytes_[l] * feat;

        if (l + 1 == layers)
            break;
        feat_next = scale ? halvings(hist.dpCount(l + 1)) : 1.0;
        const double b = scaledBoundaryBytes_[l];
        // Same single-rounding shapes as interBytes(): every factor
        // besides b is a power of two, so each product is exact and the
        // dp-mp entry rounds once in the final addition.
        double *row = &out.inter[4 * l];
        row[2 * idx(Parallelism::kData) + idx(Parallelism::kData)] = 0.0;
        row[2 * idx(Parallelism::kData) + idx(Parallelism::kModel)] =
            0.25 * (b * feat) + 0.25 * (b * feat_next);
        row[2 * idx(Parallelism::kModel) + idx(Parallelism::kData)] =
            0.5 * (b * feat_next);
        row[2 * idx(Parallelism::kModel) + idx(Parallelism::kModel)] =
            0.5 * (b * feat_next);
    }
}

double
CommModel::pairBytes(const LevelPlan &plan, const History &hist) const
{
    if (plan.size() != numLayers())
        util::fatal("CommModel::pairBytes: plan size mismatch");

    double total = 0.0;
    if (network_->isChain()) {
        for (std::size_t l = 0; l < plan.size(); ++l) {
            total += intraBytes(l, plan[l], hist);
            if (l + 1 < plan.size())
                total += interBytes(l, plan[l], plan[l + 1], hist);
        }
        return total;
    }
    // DAG: each layer's intra charge, then its outgoing edges ascending.
    // On a chain this would visit the same terms in the same order as
    // above; the explicit branch just keeps the hot chain loop free of
    // the succs() indirection.
    for (std::size_t l = 0; l < plan.size(); ++l) {
        total += intraBytes(l, plan[l], hist);
        for (const std::size_t w : network_->succs(l))
            total += interBytesEdge(l, w, plan[l], plan[w], hist);
    }
    return total;
}

double
CommModel::planBytes(const HierarchicalPlan &plan) const
{
    History hist(numLayers());
    double total = 0.0;
    std::size_t h = 0; // 2^h group pairs at level h, times the penalty
    for (const auto &level : plan.levels) {
        total += levelWeight(h) * pairBytes(level, hist);
        hist.push(level);
        ++h;
    }
    return total;
}

std::size_t
CommModel::approxTableBytes() const
{
    const std::size_t doubles =
        levelWeights_.capacity() + weightBytes_.capacity() +
        outRawBytes_.capacity() + boundaryBytes_.capacity() +
        scaledWeightBytes_.capacity() + scaledOutRawBytes_.capacity() +
        scaledBoundaryBytes_.capacity();
    return sizeof(CommModel) + doubles * sizeof(double);
}

} // namespace hypar::core
