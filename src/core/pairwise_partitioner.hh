/**
 * @file
 * Algorithm 1 of the paper: "Partition Between Two Accelerators".
 *
 * A layer-wise dynamic program over the two per-layer states {dp, mp}:
 *
 *   com_dp[l] = min(com_dp[l-1] + inter(dp,dp),
 *                   com_mp[l-1] + inter(mp,dp)) + intra_dp(l)
 *   com_mp[l] = min(com_dp[l-1] + inter(dp,mp),
 *                   com_mp[l-1] + inter(mp,mp)) + intra_mp(l)
 *
 * and the answer is min(com_dp[L-1], com_mp[L-1]) with the parallelism
 * list recovered through back-pointers. Time complexity is O(L) — the
 * linearity the paper emphasizes (validated by bench_partitioner_micro).
 *
 * The implementation is table driven: all per-layer intra/inter costs
 * under the given History are batch-filled into flat tables first
 * (CommModel::fillPairTables), then the DP recurrence runs as pure
 * arithmetic over those tables. partitionReference() keeps the original
 * call-per-transition implementation as a test oracle and before-bench.
 *
 * The same routine partitions two *groups* of accelerators: the History
 * argument carries the upper-level choices so the communication model
 * can scale tensor amounts (see Algorithm 2 / HierarchicalPartitioner).
 */

#ifndef HYPAR_CORE_PAIRWISE_PARTITIONER_HH
#define HYPAR_CORE_PAIRWISE_PARTITIONER_HH

#include "core/comm_model.hh"
#include "core/plan.hh"

namespace hypar::core {

/** Result of one pairwise partition: the per-layer choices and cost. */
struct PairwiseResult
{
    LevelPlan plan;
    double commBytes = 0.0;
};

/**
 * Dynamic-programming partitioner between two accelerator groups.
 * Deterministic tie-breaking (shared by every partitioner in this
 * library, see core/tie_break.hh): on equal cost, data parallelism
 * wins — dp-dp transitions are free, which makes dp the safer default.
 */
class PairwisePartitioner
{
  public:
    explicit PairwisePartitioner(const CommModel &model);

    /** Run Algorithm 1 beneath the given upper-level history. */
    PairwiseResult partition(const History &hist) const;

    /** Convenience overload: top level (empty history). */
    PairwiseResult partition() const;

    /**
     * The pre-optimization implementation: one CommModel call per DP
     * transition, ldexp-chain scaling. Returns bit-identical results to
     * partition(); kept as a test oracle and benchmark baseline.
     */
    PairwiseResult partitionReference(const History &hist) const;

  private:
    const CommModel *model_;
};

} // namespace hypar::core

#endif // HYPAR_CORE_PAIRWISE_PARTITIONER_HH
