#include "core/series_parallel.hh"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>
#include <vector>

#include "core/tie_break.hh"
#include "util/logging.hh"

namespace hypar::core {

namespace {

unsigned
dpAbove(std::uint32_t v, std::size_t h)
{
    const auto mask = static_cast<std::uint32_t>((1u << h) - 1u);
    const auto mp = static_cast<unsigned>(std::popcount(v & mask));
    return static_cast<unsigned>(h) - mp;
}

unsigned
mpAbove(std::uint32_t v, std::size_t h)
{
    const auto mask = static_cast<std::uint32_t>((1u << h) - 1u);
    return static_cast<unsigned>(std::popcount(v & mask));
}

Parallelism
choiceAt(std::uint32_t v, std::size_t h)
{
    return (v >> h) & 1u ? Parallelism::kModel : Parallelism::kData;
}

/** Same level-ascending sum as OptimalPartitioner::intraCost. */
double
intraCost(const CommModel &model, std::size_t layer, std::uint32_t v,
          std::size_t levels)
{
    double total = 0.0;
    for (std::size_t h = 0; h < levels; ++h) {
        total += model.levelWeight(h) *
                 model.intraBytesAt(layer, choiceAt(v, h), dpAbove(v, h),
                                    mpAbove(v, h));
    }
    return total;
}

/**
 * The Table 2 charge of edge (src, dst) over all levels. interBytesAt
 * only reads the producing layer's boundary tensor and the two dp
 * counts, so the chain transition formula is valid verbatim for an
 * arbitrary DAG edge — dst enters through its own dp count.
 */
double
edgeCost(const CommModel &model, std::size_t src, std::uint32_t v_src,
         std::uint32_t v_dst, std::size_t levels)
{
    double total = 0.0;
    for (std::size_t h = 0; h < levels; ++h) {
        total += model.levelWeight(h) *
                 model.interBytesAt(src, choiceAt(v_src, h),
                                    choiceAt(v_dst, h), dpAbove(v_src, h),
                                    dpAbove(v_dst, h));
    }
    return total;
}

/** One node of the TTSP decomposition tree. */
struct SpNode
{
    enum class Kind { kLeaf, kSeries, kParallel };
    Kind kind = Kind::kLeaf;
    std::size_t src = 0; //!< boundary layers of the component
    std::size_t dst = 0;
    std::size_t mid = 0; //!< series: the merged interior layer
    std::size_t a = 0;   //!< child node indices (series: src side)
    std::size_t b = 0;
};

/** A live edge of the shrinking reduction multigraph. */
struct RedEdge
{
    std::size_t src;
    std::size_t dst;
    std::size_t node; //!< decomposition-tree node this edge stands for
    bool alive = true;
};

/**
 * Run the TTSP reduction. Returns the root node index on success; on
 * failure returns SIZE_MAX and, when `reason` is non-null, describes a
 * stuck vertex. Reduction order is deterministic (lowest-index edge /
 * vertex first), so every engine sees the same tree.
 */
std::size_t
decompose(const dnn::Network &network, std::vector<SpNode> &nodes,
          std::string *reason)
{
    const std::size_t n = network.size();
    std::vector<RedEdge> edges;
    for (std::size_t l = 0; l < n; ++l) {
        for (const std::size_t u : network.preds(l)) {
            nodes.push_back({SpNode::Kind::kLeaf, u, l, 0, 0, 0});
            edges.push_back({u, l, nodes.size() - 1, true});
        }
    }

    std::size_t alive = edges.size();
    bool changed = true;
    while (alive > 1 && changed) {
        changed = false;

        // Parallel reductions: fold duplicate (src, dst) pairs, lowest
        // edge indices first.
        for (std::size_t i = 0; i < edges.size(); ++i) {
            if (!edges[i].alive)
                continue;
            for (std::size_t j = i + 1; j < edges.size(); ++j) {
                if (!edges[j].alive || edges[j].src != edges[i].src ||
                    edges[j].dst != edges[i].dst)
                    continue;
                nodes.push_back({SpNode::Kind::kParallel, edges[i].src,
                                 edges[i].dst, 0, edges[i].node,
                                 edges[j].node});
                edges[i].node = nodes.size() - 1;
                edges[j].alive = false;
                --alive;
                changed = true;
            }
        }

        // Series reductions: merge the lowest interior vertex with
        // in-degree 1 and out-degree 1.
        std::vector<std::size_t> indeg(n, 0), outdeg(n, 0);
        std::vector<std::size_t> in_edge(n, 0), out_edge(n, 0);
        for (std::size_t i = 0; i < edges.size(); ++i) {
            if (!edges[i].alive)
                continue;
            ++outdeg[edges[i].src];
            out_edge[edges[i].src] = i;
            ++indeg[edges[i].dst];
            in_edge[edges[i].dst] = i;
        }
        for (std::size_t v = 1; v + 1 < n; ++v) {
            if (indeg[v] != 1 || outdeg[v] != 1)
                continue;
            RedEdge &in = edges[in_edge[v]];
            RedEdge &out = edges[out_edge[v]];
            nodes.push_back({SpNode::Kind::kSeries, in.src, out.dst, v,
                             in.node, out.node});
            in.node = nodes.size() - 1;
            in.dst = out.dst;
            out.alive = false;
            --alive;
            changed = true;
            break; // degree counts are stale now; rescan
        }
    }

    if (alive == 1) {
        for (const auto &e : edges) {
            if (e.alive) {
                // A lone surviving edge must span source to sink
                // (Network validation guarantees unique terminals).
                HYPAR_ASSERT(e.src == 0 && e.dst == n - 1,
                             "TTSP reduction terminal mismatch");
                return e.node;
            }
        }
    }
    if (reason != nullptr) {
        std::vector<std::size_t> indeg(n, 0), outdeg(n, 0);
        for (const auto &e : edges) {
            if (!e.alive)
                continue;
            ++outdeg[e.src];
            ++indeg[e.dst];
        }
        std::size_t stuck = 0;
        for (std::size_t v = 1; v + 1 < n; ++v) {
            if (indeg[v] + outdeg[v] > 0 &&
                (indeg[v] > 1 || outdeg[v] > 1)) {
                stuck = v;
                break;
            }
        }
        *reason = "network '" + network.name() +
                  "' is not two-terminal series-parallel: the reduction "
                  "got stuck with " +
                  std::to_string(alive) + " edges (layer '" +
                  network.layer(stuck).name + "' keeps in-degree " +
                  std::to_string(indeg[stuck]) + " and out-degree " +
                  std::to_string(outdeg[stuck]) + ")";
    }
    return static_cast<std::size_t>(-1);
}

/** DP table of one decomposition component: cost and packed tie-break
 *  key of the best interior assignment per (src state, dst state). */
struct SpTable
{
    std::vector<double> cost;
    std::vector<std::uint64_t> key;
};

struct SolveContext
{
    const CommModel *model;
    std::size_t levels;
    std::size_t states;
    std::size_t num_layers;
    bool early_break; // sparse / A* series merge
    const std::vector<double> *intra; // [l * states + s]
    std::uint64_t transitions = 0;
    std::uint64_t pruned = 0;
};

SpTable
solve(const std::vector<SpNode> &nodes, std::size_t node_idx,
      SolveContext &ctx)
{
    const SpNode &node = nodes[node_idx];
    const std::size_t S = ctx.states;
    SpTable out;
    out.cost.assign(S * S, 0.0);
    out.key.assign(S * S, 0);

    if (node.kind == SpNode::Kind::kLeaf) {
        for (std::size_t a = 0; a < S; ++a) {
            for (std::size_t b = 0; b < S; ++b) {
                out.cost[a * S + b] = edgeCost(
                    *ctx.model, node.src, static_cast<std::uint32_t>(a),
                    static_cast<std::uint32_t>(b), ctx.levels);
            }
        }
        return out;
    }

    const SpTable ta = solve(nodes, node.a, ctx);
    const SpTable tb = solve(nodes, node.b, ctx);

    if (node.kind == SpNode::Kind::kParallel) {
        // Branches share both terminals and own disjoint interiors:
        // merge state-by-state. Disjoint key bit fields make the OR a
        // sum, so the combined key stays the lexicographic minimum.
        for (std::size_t i = 0; i < S * S; ++i) {
            out.cost[i] = ta.cost[i] + tb.cost[i];
            out.key[i] = ta.key[i] | tb.key[i];
        }
        return out;
    }

    // Series: charge the middle layer's intra here — each interior
    // vertex is the middle of exactly one S-node, so it is charged
    // exactly once.
    const double *mid_intra = &(*ctx.intra)[node.mid * S];
    std::vector<std::uint64_t> mid_key(S);
    for (std::size_t x = 0; x < S; ++x)
        mid_key[x] =
            spPackLayerState(ctx.levels, ctx.num_layers, node.mid, x);

    // Per source state, the A-side part (A cost + middle intra) of
    // every middle state, optionally sorted for the early-break scan.
    std::vector<double> apart(S);
    std::vector<std::size_t> order(S);
    for (std::size_t a = 0; a < S; ++a) {
        for (std::size_t x = 0; x < S; ++x)
            apart[x] = ta.cost[a * S + x] + mid_intra[x];
        for (std::size_t x = 0; x < S; ++x)
            order[x] = x;
        if (ctx.early_break) {
            std::sort(order.begin(), order.end(),
                      [&](std::size_t lhs, std::size_t rhs) {
                          if (apart[lhs] != apart[rhs])
                              return apart[lhs] < apart[rhs];
                          return lhs < rhs;
                      });
        }
        for (std::size_t b = 0; b < S; ++b) {
            double best = std::numeric_limits<double>::infinity();
            std::uint64_t best_key = 0;
            for (std::size_t i = 0; i < S; ++i) {
                const std::size_t x = order[i];
                if (ctx.early_break && apart[x] > best) {
                    // The B-side addend is >= 0 and rounding is
                    // monotone: fl(apart + b) >= apart > best, so no
                    // remaining candidate can win or tie.
                    ctx.pruned += S - i;
                    break;
                }
                const double cand = apart[x] + tb.cost[x * S + b];
                const std::uint64_t cand_key = ta.key[a * S + x] |
                                               mid_key[x] |
                                               tb.key[x * S + b];
                ++ctx.transitions;
                if (better(cand, cand_key, best, best_key)) {
                    best = cand;
                    best_key = cand_key;
                }
            }
            out.cost[a * S + b] = best;
            out.key[a * S + b] = best_key;
        }
    }
    return out;
}

} // namespace

bool
isSeriesParallel(const dnn::Network &network, std::string *reason)
{
    if (network.isChain())
        return true;
    std::vector<SpNode> nodes;
    return decompose(network, nodes, reason) !=
           static_cast<std::size_t>(-1);
}

HierarchicalResult
searchSeriesParallel(const CommModel &model, std::size_t levels,
                     SearchEngine engine)
{
    const dnn::Network &network = model.network();
    const std::size_t num_layers = model.numLayers();
    HYPAR_ASSERT(!network.isChain(),
                 "chain networks use the chain engines");
    if (levels > kSpMaxLevels) {
        util::fatal("series-parallel search capped at H = " +
                    std::to_string(kSpMaxLevels) + " (got " +
                    std::to_string(levels) + ")");
    }
    if (levels * num_layers > kSpMaxKeyBits) {
        util::fatal("series-parallel search: H * L = " +
                    std::to_string(levels * num_layers) +
                    " exceeds the " + std::to_string(kSpMaxKeyBits) +
                    "-bit assignment key");
    }

    HierarchicalResult result;
    if (levels == 0)
        return result;

    std::vector<SpNode> nodes;
    std::string reason;
    const std::size_t root = decompose(network, nodes, &reason);
    if (root == static_cast<std::size_t>(-1))
        util::fatal(reason);

    const std::size_t S = std::size_t{1} << levels;
    std::vector<double> intra(num_layers * S);
    for (std::size_t l = 0; l < num_layers; ++l) {
        for (std::size_t s = 0; s < S; ++s) {
            intra[l * S + s] = intraCost(
                model, l, static_cast<std::uint32_t>(s), levels);
        }
    }

    SolveContext ctx;
    ctx.model = &model;
    ctx.levels = levels;
    ctx.states = S;
    ctx.num_layers = num_layers;
    ctx.early_break = engine == SearchEngine::kSparse ||
                      engine == SearchEngine::kAStar;
    ctx.intra = &intra;

    const SpTable top = solve(nodes, root, ctx);

    // Root: charge the two terminals' intra and pick the global best.
    double best = std::numeric_limits<double>::infinity();
    std::uint64_t best_key = 0;
    for (std::size_t a = 0; a < S; ++a) {
        const std::uint64_t a_key =
            spPackLayerState(levels, num_layers, 0, a);
        for (std::size_t b = 0; b < S; ++b) {
            const double cand = (intra[0 * S + a] + top.cost[a * S + b]) +
                                intra[(num_layers - 1) * S + b];
            const std::uint64_t cand_key =
                a_key | top.key[a * S + b] |
                spPackLayerState(levels, num_layers, num_layers - 1, b);
            if (better(cand, cand_key, best, best_key)) {
                best = cand;
                best_key = cand_key;
            }
        }
    }

    // The winning key IS the full assignment: every interior layer's
    // bits were packed by its S-node, the terminals' at the root.
    result.plan.levels.assign(levels,
                              LevelPlan(num_layers, Parallelism::kData));
    for (std::size_t l = 0; l < num_layers; ++l) {
        assignLayerFromState(
            result.plan, l,
            spExtractLayerState(levels, num_layers, l, best_key));
    }
    result.commBytes = best;
    result.transitionsEvaluated = ctx.transitions;
    result.stats.expanded =
        static_cast<std::uint64_t>(nodes.size()) * S * S;
    result.stats.pruned = ctx.pruned;
    result.stats.certifiedExact = true; // exact DP by construction
    result.stats.widthUsed = S;
    return result;
}

} // namespace hypar::core
