/**
 * @file
 * The one deterministic tie-breaking rule shared by every partition
 * search in this library.
 *
 * Rule: strictly lower communication wins; on an *exact* cost tie the
 * dp-heavier candidate wins, where "dp-heavier" means the numerically
 * smaller state index / layer mask (bit set = mp). Since state 0 is
 * all-dp and bit h of a state is the mp choice at level h, preferring
 * the smaller index prefers dp at the highest differing position.
 *
 * Rationale: dp-dp transitions are free in the model (Table 2), so dp
 * is the safer default among equals, and a total order over (cost,
 * index) makes every search — DP argmin, Gray-code enumeration,
 * exhaustive scan — return the same plan no matter the visit order or
 * thread count. Searches that already visit candidates in ascending
 * index order may keep a bare strict `<` comparison; it implements this
 * rule. Searches with any other visit order must use better().
 */

#ifndef HYPAR_CORE_TIE_BREAK_HH
#define HYPAR_CORE_TIE_BREAK_HH

#include <cstdint>

namespace hypar::core {

/**
 * True when candidate (cost, index) beats the incumbent under the
 * library-wide rule: lower cost first, then lower index on exact ties.
 */
constexpr bool
better(double cand_cost, std::uint64_t cand_index, double best_cost,
       std::uint64_t best_index)
{
    if (cand_cost != best_cost)
        return cand_cost < best_cost;
    return cand_index < best_index;
}

} // namespace hypar::core

#endif // HYPAR_CORE_TIE_BREAK_HH
