/**
 * @file
 * Kernel implementations. See simd_kernels.hh for the bit-identity
 * contract; every AVX2 body mirrors its scalar twin addition-for-
 * addition and comparison-for-comparison.
 */

#include "simd_kernels.hh"

#include <cstdlib>
#include <cstring>
#include <limits>

#if defined(__x86_64__) || defined(__i386__)
#define HYPAR_SIMD_X86 1
#include <immintrin.h>
#else
#define HYPAR_SIMD_X86 0
#endif

namespace hypar::core::simd {

namespace {

// ---------------------------------------------------------------- scalar

void
expandLevelScalar(double *trans, std::size_t half, const double *row0,
                  const double *row1, const std::uint8_t *pcnt,
                  unsigned h)
{
    for (std::size_t i = 0; i < half; ++i) {
        const unsigned a = h - pcnt[i];
        const double acc = trans[i];
        trans[i] = acc + row0[a];
        trans[i + half] = acc + row1[a];
    }
}

std::uint32_t
argminAddScalar(const double *cost, const double *trans, std::size_t n,
                double *min_out)
{
    double best = std::numeric_limits<double>::infinity();
    std::uint32_t best_p = 0;
    for (std::size_t p = 0; p < n; ++p) {
        const double c = cost[p] + trans[p];
        if (c < best) {
            best = c;
            best_p = static_cast<std::uint32_t>(p);
        }
    }
    *min_out = best;
    return best_p;
}

void
relaxRowScalar(double *best, std::uint32_t *prev, const double *trans,
               double cost_p, std::uint32_t p, std::size_t n)
{
    for (std::size_t s = 0; s < n; ++s) {
        const double c = cost_p + trans[s];
        if (c < best[s]) {
            best[s] = c;
            prev[s] = p;
        }
    }
}

constexpr Kernels kScalar{"scalar", expandLevelScalar, argminAddScalar,
                          relaxRowScalar};

// ----------------------------------------------------------------- avx2

#if HYPAR_SIMD_X86

/**
 * Compress a 4x64-bit comparison mask into the 4x32-bit shape integer
 * blends want (lane j of the result = low dword of lane j).
 */
__attribute__((target("avx2"))) inline __m128i
mask64to32(__m256d m)
{
    const __m256i idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
    const __m256i packed =
        _mm256_permutevar8x32_epi32(_mm256_castpd_si256(m), idx);
    return _mm256_castsi256_si128(packed);
}

__attribute__((target("avx2"))) void
expandLevelAvx2(double *trans, std::size_t half, const double *row0,
                const double *row1, const std::uint8_t *pcnt, unsigned h)
{
    const __m128i vh = _mm_set1_epi32(static_cast<int>(h));
    std::size_t i = 0;
    for (; i + 4 <= half; i += 4) {
        // a[j] = h - pcnt[i + j]; the rows are tiny (<= H + 1 doubles,
        // L1-resident), so the pair of gathers stays cheap.
        std::uint32_t packed;
        std::memcpy(&packed, pcnt + i, sizeof packed);
        const __m128i pc = _mm_cvtepu8_epi32(
            _mm_cvtsi32_si128(static_cast<int>(packed)));
        const __m128i a = _mm_sub_epi32(vh, pc);
        const __m256d acc = _mm256_loadu_pd(trans + i);
        // Fully-masked gather form: identical result to the plain
        // gather, but with a defined pass-through operand (the plain
        // intrinsic expands to an undefined one, which trips
        // -Wmaybe-uninitialized under gcc).
        const __m256d all =
            _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
        const __m256d zero = _mm256_setzero_pd();
        const __m256d r0 =
            _mm256_mask_i32gather_pd(zero, row0, a, all, 8);
        const __m256d r1 =
            _mm256_mask_i32gather_pd(zero, row1, a, all, 8);
        _mm256_storeu_pd(trans + i, _mm256_add_pd(acc, r0));
        _mm256_storeu_pd(trans + i + half, _mm256_add_pd(acc, r1));
    }
    for (; i < half; ++i) {
        const unsigned a = h - pcnt[i];
        const double acc = trans[i];
        trans[i] = acc + row0[a];
        trans[i + half] = acc + row1[a];
    }
}

__attribute__((target("avx2"))) std::uint32_t
argminAddAvx2(const double *cost, const double *trans, std::size_t n,
              double *min_out)
{
    double best = std::numeric_limits<double>::infinity();
    std::uint32_t best_p = 0;
    std::size_t i = 0;
    if (n >= 4) {
        // Per-lane running (min, index-of-first-min); the strict <
        // keeps the first occurrence within each lane, and lanes at
        // one iteration hold consecutive indices, so the final
        // lexicographic (value, index) merge reproduces the scalar
        // ascending strict-< winner exactly.
        __m256d vmin =
            _mm256_set1_pd(std::numeric_limits<double>::infinity());
        __m128i vidx = _mm_setzero_si128();
        const __m128i lane = _mm_setr_epi32(0, 1, 2, 3);
        for (; i + 4 <= n; i += 4) {
            const __m256d c = _mm256_add_pd(_mm256_loadu_pd(cost + i),
                                            _mm256_loadu_pd(trans + i));
            const __m256d lt = _mm256_cmp_pd(c, vmin, _CMP_LT_OQ);
            vmin = _mm256_blendv_pd(vmin, c, lt);
            const __m128i cur = _mm_add_epi32(
                _mm_set1_epi32(static_cast<int>(i)), lane);
            vidx = _mm_blendv_epi8(vidx, cur, mask64to32(lt));
        }
        alignas(32) double vals[4];
        alignas(16) std::int32_t idxs[4];
        _mm256_store_pd(vals, vmin);
        _mm_store_si128(reinterpret_cast<__m128i *>(idxs), vidx);
        for (int lane_i = 0; lane_i < 4; ++lane_i) {
            const auto p = static_cast<std::uint32_t>(idxs[lane_i]);
            if (vals[lane_i] < best ||
                (vals[lane_i] == best && p < best_p)) {
                best = vals[lane_i];
                best_p = p;
            }
        }
    }
    // Tail indices all exceed the vector winners', so strict < alone
    // preserves the tie-break.
    for (; i < n; ++i) {
        const double c = cost[i] + trans[i];
        if (c < best) {
            best = c;
            best_p = static_cast<std::uint32_t>(i);
        }
    }
    *min_out = best;
    return best_p;
}

__attribute__((target("avx2"))) void
relaxRowAvx2(double *best, std::uint32_t *prev, const double *trans,
             double cost_p, std::uint32_t p, std::size_t n)
{
    const __m256d vc = _mm256_set1_pd(cost_p);
    const __m128i vp = _mm_set1_epi32(static_cast<int>(p));
    std::size_t s = 0;
    for (; s + 4 <= n; s += 4) {
        const __m256d c = _mm256_add_pd(vc, _mm256_loadu_pd(trans + s));
        const __m256d b = _mm256_loadu_pd(best + s);
        const __m256d lt = _mm256_cmp_pd(c, b, _CMP_LT_OQ);
        _mm256_storeu_pd(best + s, _mm256_blendv_pd(b, c, lt));
        __m128i pv;
        std::memcpy(&pv, prev + s, sizeof pv);
        pv = _mm_blendv_epi8(pv, vp, mask64to32(lt));
        std::memcpy(prev + s, &pv, sizeof pv);
    }
    for (; s < n; ++s) {
        const double c = cost_p + trans[s];
        if (c < best[s]) {
            best[s] = c;
            prev[s] = p;
        }
    }
}

constexpr Kernels kAvx2{"avx2", expandLevelAvx2, argminAddAvx2,
                        relaxRowAvx2};

#endif // HYPAR_SIMD_X86

} // namespace

const Kernels &
scalarKernels()
{
    return kScalar;
}

bool
avx2Available()
{
#if HYPAR_SIMD_X86
    static const bool ok = __builtin_cpu_supports("avx2") != 0;
    return ok;
#else
    return false;
#endif
}

const Kernels &
avx2Kernels()
{
#if HYPAR_SIMD_X86
    return kAvx2;
#else
    return kScalar; // never selected; keeps the symbol total
#endif
}

const Kernels &
activeKernels()
{
    // HYPAR_SIMD=scalar|avx2 pins the set — the lever for engine-level
    // before/after bench rows and for forcing the portable path on a
    // machine whose AVX2 is suspect. Unset (the normal case) means
    // best-available. avx2 without hardware support falls back to
    // scalar rather than faulting.
    static const Kernels &chosen = [&]() -> const Kernels & {
        const char *force = std::getenv("HYPAR_SIMD");
        if (force != nullptr && std::strcmp(force, "scalar") == 0)
            return scalarKernels();
        if (force != nullptr && std::strcmp(force, "avx2") == 0)
            return avx2Available() ? avx2Kernels() : scalarKernels();
        return avx2Available() ? avx2Kernels() : scalarKernels();
    }();
    return chosen;
}

} // namespace hypar::core::simd
