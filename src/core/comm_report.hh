/**
 * @file
 * Itemized communication report: where a plan's traffic actually comes
 * from, per layer and per hierarchy level, split into the paper's two
 * sources (intra-layer partial-sum reductions, inter-layer boundary
 * conversions). Backs the analysis-style output of the bench harness
 * and gives library users the "why is this plan expensive" view.
 */

#ifndef HYPAR_CORE_COMM_REPORT_HH
#define HYPAR_CORE_COMM_REPORT_HH

#include <string>
#include <vector>

#include "core/comm_model.hh"
#include "core/plan.hh"

namespace hypar::core {

/** Traffic attributed to one weighted layer (bytes, all levels). */
struct LayerCommBreakdown
{
    std::string layer;

    /** Gradient reductions (dp) — the Table 1 dp column. */
    double gradBytes = 0.0;

    /** Output partial-sum reductions (mp) — the Table 1 mp column. */
    double psumBytes = 0.0;

    /** Boundary feature transfers to the next layer (Table 2, F). */
    double featBytes = 0.0;

    /** Boundary error transfers from the next layer (Table 2, E). */
    double errBytes = 0.0;

    double
    totalBytes() const
    {
        return gradBytes + psumBytes + featBytes + errBytes;
    }
};

/** Traffic attributed to one hierarchy level (bytes, all layers). */
struct LevelCommBreakdown
{
    std::size_t level = 0;  //!< 0-based (H1 == 0)
    double intraBytes = 0.0;
    double interBytes = 0.0;

    double totalBytes() const { return intraBytes + interBytes; }
};

/** Full itemization of a hierarchical plan's communication. */
struct CommReport
{
    std::vector<LayerCommBreakdown> layers;
    std::vector<LevelCommBreakdown> levels;
    double totalBytes = 0.0;

    /** Render as an aligned two-table summary. */
    std::string toString() const;
};

/**
 * Itemize `plan` under `model`. The report's totalBytes equals
 * CommModel::planBytes(plan) exactly (tested invariant).
 */
CommReport buildCommReport(const CommModel &model,
                           const HierarchicalPlan &plan);

} // namespace hypar::core

#endif // HYPAR_CORE_COMM_REPORT_HH
