/**
 * @file
 * First-principles derivation of the communication model from tensor
 * shard geometry.
 *
 * The paper's Tables 1 and 2 state the communication amounts; Figure 2
 * justifies them pictorially by overlapping the "R" tensor a group
 * holds after producing a boundary tensor with the "L" tensor it needs
 * to consume it. This module implements that picture literally: each
 * group's shard of a boundary tensor is an axis-aligned region in
 * (batch x channel) index space; the traffic a group must pull is the
 * volume of its L region not covered by its R region.
 *
 * Geometry facts encoded (Section 3.1):
 *  - dp splits the batch axis; each group *retains* its batch half.
 *  - mp splits the kernel input axis; the consumer's L region is its
 *    channel half of the boundary tensor, and the producer's R region
 *    after the forward partial-sum reduction is the FULL tensor.
 *  - the error boundary E_{l+1} is produced by layer l+1's backward:
 *    dp there yields a batch-half R region, mp a channel-half R
 *    region; layer l needs E over its own output region (full under
 *    mp, batch half under dp).
 *
 * CommModel never calls into this module; instead the test suite
 * verifies that the closed-form table and the geometric derivation
 * agree on arbitrary shapes — Table 2's 0 / 0.25+0.25 / 0.5 / 0.5
 * coefficients are *theorems* here, not inputs.
 */

#ifndef HYPAR_CORE_SHARD_GEOMETRY_HH
#define HYPAR_CORE_SHARD_GEOMETRY_HH

#include <cstddef>

#include "core/parallelism.hh"

namespace hypar::core {

/** Half-open index interval [lo, hi). */
struct IndexRange
{
    std::size_t lo = 0;
    std::size_t hi = 0;

    std::size_t size() const { return hi > lo ? hi - lo : 0; }

    /** Intersection (empty ranges collapse to [0,0)). */
    IndexRange intersect(const IndexRange &other) const;

    bool operator==(const IndexRange &) const = default;
};

/**
 * An axis-aligned region of a boundary tensor in (batch, channel)
 * index space. Spatial dimensions are never split by dp or mp, so two
 * axes fully describe a shard.
 */
struct TensorRegion
{
    IndexRange batch;
    IndexRange channel;

    std::size_t volume() const { return batch.size() * channel.size(); }

    /**
     * Elements of this region NOT covered by `held` — the volume the
     * owner must fetch remotely. Because regions are axis-aligned
     * boxes sharing the same outer bounds, the uncovered part of
     * box-minus-box decomposes exactly (inclusion-exclusion).
     */
    std::size_t missingFrom(const TensorRegion &held) const;

    bool operator==(const TensorRegion &) const = default;
};

/** Which of the two peer groups a shard belongs to. */
enum class Group : std::uint8_t { kFirst = 0, kSecond = 1 };

/**
 * Shard geometry of one boundary tensor (F_{l+1} / E_{l+1}) between
 * layer l (producer side for F, consumer side for E) and layer l+1,
 * for a pair exchange with total `batch` samples and `channels`
 * boundary channels.
 */
class BoundaryGeometry
{
  public:
    BoundaryGeometry(std::size_t batch, std::size_t channels);

    /** R region of F_{l+1}: what `g` holds after layer l's forward. */
    TensorRegion featureHeld(Parallelism producer, Group g) const;

    /** L region of F_{l+1}: what `g` needs to run layer l+1 forward. */
    TensorRegion featureNeeded(Parallelism consumer, Group g) const;

    /** R region of E_{l+1}: what `g` holds after layer l+1 backward. */
    TensorRegion errorHeld(Parallelism producer_next, Group g) const;

    /** L region of E_{l+1}: what `g` needs for layer l's backward and
     *  gradient steps. */
    TensorRegion errorNeeded(Parallelism consumer_prev, Group g) const;

    /**
     * Total elements both groups must fetch for the feature boundary
     * under the transition prev -> cur. Equals Table 2's F coefficient
     * times batch*channels times the exchange factor 2.
     */
    std::size_t featureTraffic(Parallelism prev, Parallelism cur) const;

    /** Same for the error boundary. */
    std::size_t errorTraffic(Parallelism prev, Parallelism cur) const;

    std::size_t batch() const { return batch_; }
    std::size_t channels() const { return channels_; }

  private:
    TensorRegion full() const;
    TensorRegion batchHalf(Group g) const;
    TensorRegion channelHalf(Group g) const;

    std::size_t batch_;
    std::size_t channels_;
};

/**
 * Intra-layer traffic derived from shard geometry (Table 1): in dp both
 * groups hold full-shape gradient partial sums and fetch each other's
 * (2 x weight elements); in mp both hold full-shape output partial sums
 * (2 x raw output elements).
 */
std::size_t intraTraffic(Parallelism p, std::size_t weight_elems,
                         std::size_t out_raw_elems);

} // namespace hypar::core

#endif // HYPAR_CORE_SHARD_GEOMETRY_HH
