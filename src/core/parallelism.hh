/**
 * @file
 * The two per-layer parallelism choices of HyPar (paper Section 3.1).
 *
 * Lowercase "data parallelism" (dp): both peer accelerator groups hold a
 * full copy of the layer's kernel; the batch is split between them.
 * Lowercase "model parallelism" (mp): the kernel is split along its input
 * dimension; both groups process the full batch and the layer's output is
 * produced as partial sums that must be reduced.
 */

#ifndef HYPAR_CORE_PARALLELISM_HH
#define HYPAR_CORE_PARALLELISM_HH

#include <cstdint>

namespace hypar::core {

/** Per-layer, per-hierarchy-level parallelism choice. */
enum class Parallelism : std::uint8_t {
    kData = 0,  //!< "dp": split batch, replicate kernel
    kModel = 1, //!< "mp": split kernel (input dim), replicate batch
};

/** Short token used in reports: "dp" / "mp". */
constexpr const char *
toString(Parallelism p)
{
    return p == Parallelism::kData ? "dp" : "mp";
}

/** Single-character token used in Fig. 9/10 style bitstrings: 0 / 1. */
constexpr char
toBit(Parallelism p)
{
    return p == Parallelism::kData ? '0' : '1';
}

} // namespace hypar::core

#endif // HYPAR_CORE_PARALLELISM_HH
