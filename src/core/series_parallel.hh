/**
 * @file
 * Exact joint partition search over series-parallel DAG networks.
 *
 * Chain networks keep the original engines (optimal_partitioner.cc)
 * untouched; a network with isChain() == false routes here. The DAG
 * must be two-terminal series-parallel (TTSP) between layer 0 (the
 * source) and layer L-1 (the sink) — ResNet residual blocks and
 * inception-style branch/merge graphs are TTSP; a non-TTSP graph is
 * rejected with a descriptive fatal.
 *
 * ## Decomposition
 *
 * The DAG is reduced to a decomposition tree by the classic TTSP
 * reduction: repeatedly merge parallel edges (two edges with the same
 * endpoints become one P-node) and series vertices (an interior vertex
 * with in-degree 1 and out-degree 1 becomes the middle vertex of an
 * S-node). The reduction succeeds — one edge from source to sink
 * remains — iff the DAG is TTSP. Every interior layer disappears as
 * the middle vertex of exactly one S-node, which is where its intra
 * cost is charged; the two terminals are charged once at the root.
 *
 * ## The DP
 *
 * Each tree node is a sub-DAG with two boundary layers (s = its source,
 * t = its sink). The table F[s-state][t-state] holds the cheapest cost
 * of all *interior* choices of the component — edge (inter) charges of
 * every contained edge plus intra charges of every interior layer,
 * excluding the terminals' own intra:
 *
 *   leaf (u, w):  F[a][b] = interCost(u, a, b)   (the Table 2 charge of
 *                 one edge; a join layer's incoming edges each carry a
 *                 full summand of the elementwise sum, so they are
 *                 independent leaves summed by the P-nodes above)
 *   series (A, m, B):  F[a][b] = min_x (F_A[a][x] + I_m[x]) + F_B[x][b]
 *   parallel (A, B):   F[a][b] = F_A[a][b] + F_B[a][b]
 *   root: total[a][b] = (I_0[a] + F[a][b]) + I_{L-1}[b]
 *
 * Parallel branches therefore solve independently per boundary state
 * and merge state-by-state — never jointly — which is what keeps the
 * search polynomial in the branch count.
 *
 * ## Ties and exactness
 *
 * Ties follow the shared rule (core/tie_break.hh) on the packed
 * assignment key — the *same* concatenated level-mask key the chain
 * oracles use (level 0's mask most significant; within a level, layer
 * 0 at the least significant bit), so the flat enumeration oracle's
 * "first optimum in ascending mask order" resolves ties identically.
 * The DP carries the key alongside the cost; because parallel branches own
 * disjoint interior layers (disjoint key bit fields) and all byte
 * amounts are dyadic rationals whose sums are exact in double
 * precision, the per-branch (cost, key) minima compose to the global
 * lexicographic minimum, and the DP total equals planBytes() of the
 * returned plan bit-for-bit. The randomized differential suite
 * (tests/test_dag_differential.cc) pins all four engines against the
 * flat enumeration oracle on both claims.
 *
 * Engine mapping on DAGs: dense and beam run the full series merge;
 * sparse and A* scan middle states in ascending A-side order and stop
 * once that part alone exceeds the incumbent (admissible because the
 * B-side addend is non-negative and float rounding is monotone:
 * apart > best implies fl(apart + b) >= apart > best, so nothing
 * skipped could win or even tie). All four are exact and certify
 * (SearchStats::certifiedExact), with widthUsed = 2^H.
 */

#ifndef HYPAR_CORE_SERIES_PARALLEL_HH
#define HYPAR_CORE_SERIES_PARALLEL_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/comm_model.hh"
#include "core/hierarchical_partitioner.hh"
#include "core/optimal_partitioner.hh"

namespace hypar::core {

/** Depth ceiling of the series-parallel engines: the S-node merge is
 *  O(8^H) per interior layer, and 8 levels keep the packed key within
 *  64 bits for any network the oracle can check. */
constexpr std::size_t kSpMaxLevels = 8;

/** The packed assignment key must fit one uint64 (H * L <= 64). */
constexpr std::size_t kSpMaxKeyBits = 64;

/**
 * Pack one layer's H-bit level vector into the concatenated
 * level-mask key (bit h of `state` lands at bit
 * (levels-1-h) * num_layers + l). Each layer owns a disjoint set of
 * key bits, so parallel-branch keys compose by OR, and the convention
 * matches the chain oracles' tie-break key exactly.
 */
constexpr std::uint64_t
spPackLayerState(std::size_t levels, std::size_t num_layers,
                 std::size_t l, std::uint64_t state)
{
    std::uint64_t key = 0;
    for (std::size_t h = 0; h < levels; ++h) {
        if ((state >> h) & 1u)
            key |= std::uint64_t{1} << ((levels - 1 - h) * num_layers + l);
    }
    return key;
}

/** Inverse of spPackLayerState: layer l's level vector from a key. */
constexpr std::uint64_t
spExtractLayerState(std::size_t levels, std::size_t num_layers,
                    std::size_t l, std::uint64_t key)
{
    std::uint64_t state = 0;
    for (std::size_t h = 0; h < levels; ++h) {
        if ((key >> ((levels - 1 - h) * num_layers + l)) & 1u)
            state |= std::uint64_t{1} << h;
    }
    return state;
}

/**
 * True when `network`'s DAG is two-terminal series-parallel between
 * layer 0 and layer L-1 (chains trivially are). When false and
 * `reason` is non-null, *reason describes where the TTSP reduction got
 * stuck.
 */
bool isSeriesParallel(const dnn::Network &network,
                      std::string *reason = nullptr);

/**
 * Exact joint search over a series-parallel DAG (the non-chain branch
 * of OptimalPartitioner::partition). Fatal on non-TTSP networks,
 * levels > kSpMaxLevels, or levels * L > kSpMaxKeyBits.
 */
HierarchicalResult searchSeriesParallel(const CommModel &model,
                                        std::size_t levels,
                                        SearchEngine engine);

} // namespace hypar::core

#endif // HYPAR_CORE_SERIES_PARALLEL_HH
