#include "core/hierarchical_partitioner.hh"

#include "util/logging.hh"

namespace hypar::core {

HierarchicalPartitioner::HierarchicalPartitioner(const CommModel &model)
    : model_(&model), pairwise_(model)
{}

HierarchicalResult
HierarchicalPartitioner::partition(std::size_t levels) const
{
    if (!model_->network().isChain())
        util::fatal("the greedy hierarchical search (Algorithm 2) is "
                    "chain-only; DAG networks are solved exactly by "
                    "the joint search — use strategy 'optimal'");
    if (levels > 20)
        util::fatal("HierarchicalPartitioner: unreasonable level count");

    HierarchicalResult result;
    History hist(model_->numLayers());
    result.commBytes = partitionRecursive(levels, hist, result.plan.levels);
    return result;
}

double
HierarchicalPartitioner::partitionRecursive(
    std::size_t levels, History &hist, std::vector<LevelPlan> &out) const
{
    // Algorithm 2 line 1-2: a single accelerator left, nothing to split.
    if (levels == 0)
        return 0.0;

    // Line 4: partition between the two subarrays of this level.
    PairwiseResult here = pairwise_.partition(hist);

    // Hierarchy level of this split: how many choices are already on
    // the stack above us.
    const std::size_t h = out.size();

    // Line 5-6: recurse into the subarrays with the choice recorded.
    out.push_back(here.plan);
    hist.push(here.plan);
    const double below = partitionRecursive(levels - 1, hist, out);

    // Line 7: com = com_h + 2 * com_n (two subarrays below). The fault
    // penalty weights this level's own term; the Horner doubling of the
    // suffix stays exact because the recursive total already carries
    // the deeper levels' penalties (2^h * penalty factors out of every
    // addend, and scaling by 2 commutes with rounding), so the greedy
    // total equals planBytes of the emitted plan bit for bit.
    return here.commBytes * model_->levelPenalty(h) + 2.0 * below;
}

} // namespace hypar::core
