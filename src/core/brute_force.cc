#include "core/brute_force.hh"

#include "util/logging.hh"

namespace hypar::core {

PairwiseResult
bruteForcePairwise(const CommModel &model, const History &hist)
{
    const std::size_t num_layers = model.numLayers();
    if (num_layers > 24)
        util::fatal("bruteForcePairwise: network too large to enumerate");

    PairwiseResult best;
    bool first = true;
    const std::uint64_t count = std::uint64_t{1} << num_layers;
    for (std::uint64_t mask = 0; mask < count; ++mask) {
        LevelPlan plan = levelPlanFromMask(mask, num_layers);
        const double bytes = model.pairBytes(plan, hist);
        if (first || bytes < best.commBytes) {
            best.plan = std::move(plan);
            best.commBytes = bytes;
            first = false;
        }
    }
    return best;
}

namespace {

/** Recursively enumerate level plans, tracking the scaled history. */
void
enumerateLevels(const CommModel &model, std::size_t levels_left,
                double pair_weight, double bytes_so_far, History &hist,
                std::vector<LevelPlan> &stack, BruteForceResult &best,
                bool &first)
{
    if (levels_left == 0) {
        if (first || bytes_so_far < best.commBytes) {
            best.plan.levels = stack;
            best.commBytes = bytes_so_far;
            first = false;
        }
        return;
    }

    const std::size_t num_layers = model.numLayers();
    const std::uint64_t count = std::uint64_t{1} << num_layers;
    for (std::uint64_t mask = 0; mask < count; ++mask) {
        LevelPlan plan = levelPlanFromMask(mask, num_layers);
        const double bytes = model.pairBytes(plan, hist);

        History next = hist;
        next.push(plan);
        stack.push_back(std::move(plan));
        enumerateLevels(model, levels_left - 1, pair_weight * 2.0,
                        bytes_so_far + pair_weight * bytes, next, stack,
                        best, first);
        stack.pop_back();
    }
}

} // namespace

BruteForceResult
bruteForceHierarchical(const CommModel &model, std::size_t levels)
{
    if (model.numLayers() * levels > 24)
        util::fatal("bruteForceHierarchical: search space too large");

    BruteForceResult best;
    bool first = true;
    History hist(model.numLayers());
    std::vector<LevelPlan> stack;
    enumerateLevels(model, levels, 1.0, 0.0, hist, stack, best, first);
    return best;
}

void
sweepLevelMasks(
    const HierarchicalPlan &base, std::size_t level,
    const std::function<void(std::uint64_t, const HierarchicalPlan &)>
        &visit)
{
    if (level >= base.numLevels())
        util::fatal("sweepLevelMasks: level out of range");
    const std::size_t num_layers = base.numLayers();
    if (num_layers > 24)
        util::fatal("sweepLevelMasks: too many layers to sweep");

    HierarchicalPlan plan = base;
    const std::uint64_t count = std::uint64_t{1} << num_layers;
    for (std::uint64_t mask = 0; mask < count; ++mask) {
        plan.levels[level] = levelPlanFromMask(mask, num_layers);
        visit(mask, plan);
    }
}

} // namespace hypar::core
