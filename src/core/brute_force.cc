#include "core/brute_force.hh"

#include <bit>

#include "core/optimal_partitioner.hh"
#include "core/tie_break.hh"
#include "util/logging.hh"

namespace hypar::core {

namespace {

/**
 * Prefix-sum tape over the 2L-1 cost terms of one level plan, laid out
 * exactly as CommModel::pairBytes accumulates them: intra(0), inter(0),
 * intra(1), inter(1), ..., intra(L-1). total() replays that precise
 * left-to-right addition order, so it is bit-identical to a pairBytes
 * rescore while a single-term repair only touches a suffix.
 */
class TermTape
{
  public:
    explicit TermTape(std::size_t layers)
        : terms_(layers > 0 ? 2 * layers - 1 : 0),
          prefix_(terms_.size())
    {}

    double &term(std::size_t i) { return terms_[i]; }

    /** Recompute prefix sums from term index `from` to the end. */
    void repairFrom(std::size_t from)
    {
        for (std::size_t i = from; i < terms_.size(); ++i)
            prefix_[i] = i == 0 ? terms_[0] : prefix_[i - 1] + terms_[i];
    }

    double total() const
    {
        return prefix_.empty() ? 0.0 : prefix_.back();
    }

    /** Sum of terms 0..i — the same left-to-right partial total()
     *  walks through; used by the suffix-bound block pruning. */
    double prefixAt(std::size_t i) const { return prefix_[i]; }

  private:
    std::vector<double> terms_;
    std::vector<double> prefix_;
};

/** First tape index affected by a flip of layer j: its left inter term
 *  (or its own intra term for the first layer). */
std::size_t
repairStart(std::size_t j)
{
    return j > 0 ? 2 * j - 1 : 0;
}

/**
 * Relative slack for the Gray-walk suffix-bound pruning, mirroring
 * the engines' kBoundSlack convention: the bound is admissible in the
 * DP's float semantics while the walk scores plans through the tape
 * algebra, and 1e-9 dwarfs the ~tens-of-ulp re-association drift
 * between the two, so `prefix + bound > best * (1 + slack)` proves no
 * plan in the block can beat — or exactly tie — the incumbent.
 */
constexpr double kPruneSlack = 1e-9;

} // namespace

PairwiseResult
bruteForcePairwise(const CommModel &model, const History &hist)
{
    // The prefix-sum tape mirrors the chain term order; on a DAG the
    // naive rescan (whose pairBytes is DAG-aware) is the enumerator.
    if (!model.network().isChain())
        return bruteForcePairwiseReference(model, hist);
    const std::size_t num_layers = model.numLayers();
    if (num_layers > 24)
        util::fatal("bruteForcePairwise: network too large to enumerate");

    PairwiseResult best;
    if (num_layers == 0) {
        best.plan = levelPlanFromMask(0, 0);
        best.commBytes = model.pairBytes(best.plan, hist);
        return best;
    }

    PairTables t;
    model.fillPairTables(hist, t);

    // Start at mask 0: all layers dp, all inter terms dp-dp (= 0).
    TermTape tape(num_layers);
    for (std::size_t l = 0; l < num_layers; ++l) {
        tape.term(2 * l) = t.intra[2 * l];
        if (l + 1 < num_layers)
            tape.term(2 * l + 1) = t.inter[4 * l];
    }
    tape.repairFrom(0);

    std::uint64_t mask = 0;
    std::uint64_t best_mask = 0;
    double best_bytes = tape.total();

    const std::uint64_t count = std::uint64_t{1} << num_layers;
    for (std::uint64_t i = 1; i < count; ++i) {
        // Reflected Gray code: step i flips exactly one bit. Map the
        // low (frequently flipped) Gray bits to the *last* layers so
        // the tape suffix to repair is O(1) amortized.
        const auto gray_bit =
            static_cast<std::size_t>(std::countr_zero(i));
        const std::size_t j = num_layers - 1 - gray_bit;
        mask ^= std::uint64_t{1} << j;

        const std::size_t pj = (mask >> j) & 1u;
        tape.term(2 * j) = t.intra[2 * j + pj];
        if (j > 0) {
            const std::size_t pp = (mask >> (j - 1)) & 1u;
            tape.term(2 * j - 1) = t.inter[4 * (j - 1) + 2 * pp + pj];
        }
        if (j + 1 < num_layers) {
            const std::size_t pn = (mask >> (j + 1)) & 1u;
            tape.term(2 * j + 1) = t.inter[4 * j + 2 * pj + pn];
        }
        tape.repairFrom(repairStart(j));

        const double bytes = tape.total();
        if (better(bytes, mask, best_bytes, best_mask)) {
            best_bytes = bytes;
            best_mask = mask;
        }
    }

    best.plan = levelPlanFromMask(best_mask, num_layers);
    best.commBytes = best_bytes;
    return best;
}

PairwiseResult
bruteForcePairwiseReference(const CommModel &model, const History &hist)
{
    const std::size_t num_layers = model.numLayers();
    if (num_layers > 24)
        util::fatal("bruteForcePairwise: network too large to enumerate");

    PairwiseResult best;
    bool first = true;
    const std::uint64_t count = std::uint64_t{1} << num_layers;
    for (std::uint64_t mask = 0; mask < count; ++mask) {
        LevelPlan plan = levelPlanFromMask(mask, num_layers);
        const double bytes = model.pairBytes(plan, hist);
        if (first || bytes < best.commBytes) {
            best.plan = std::move(plan);
            best.commBytes = bytes;
            first = false;
        }
    }
    return best;
}

namespace {

/** Recursively enumerate level plans, tracking the scaled history. The
 *  current level index is hist.depth(); its contribution is weighted
 *  by CommModel::levelWeight (2^h pristine, 2^h * penalty degraded). */
void
enumerateLevels(const CommModel &model, std::size_t levels_left,
                double bytes_so_far, History &hist,
                std::vector<LevelPlan> &stack, BruteForceResult &best,
                bool &first)
{
    if (levels_left == 0) {
        if (first || bytes_so_far < best.commBytes) {
            best.plan.levels = stack;
            best.commBytes = bytes_so_far;
            first = false;
        }
        return;
    }

    const std::size_t num_layers = model.numLayers();
    const double weight = model.levelWeight(hist.depth());
    const std::uint64_t count = std::uint64_t{1} << num_layers;
    for (std::uint64_t mask = 0; mask < count; ++mask) {
        LevelPlan plan = levelPlanFromMask(mask, num_layers);
        const double bytes = model.pairBytes(plan, hist);

        History next = hist;
        next.push(plan);
        stack.push_back(std::move(plan));
        enumerateLevels(model, levels_left - 1,
                        bytes_so_far + weight * bytes, next, stack,
                        best, first);
        stack.pop_back();
    }
}

} // namespace

BruteForceResult
bruteForceHierarchical(const CommModel &model, std::size_t levels)
{
    // The Gray-walk tapes are chain-shaped (one inter term per layer
    // boundary). On a DAG network the naive enumerator is the oracle:
    // it rescores every plan through the DAG-aware pairBytes, and its
    // ascending-mask visit order implements the shared tie-break on
    // the concatenated level-mask key — the same key the
    // series-parallel DP packs (core/series_parallel.hh).
    if (!model.network().isChain())
        return bruteForceHierarchicalReference(model, levels);
    const std::size_t num_layers = model.numLayers();
    const std::size_t bits = num_layers * levels;
    if (bits > 26)
        util::fatal("bruteForceHierarchical: search space too large");
    if (levels == 0 || num_layers == 0)
        return bruteForceHierarchicalReference(model, levels);

    // One TermTape per level, exactly as in sweepLevelBytes — but here
    // *every* level is swept jointly: the enumeration walks a Gray code
    // over all H*L (level, layer) bits, so each visited plan differs
    // from the previous one by a single choice flip. A flip at (h, j)
    // repairs level h's own terms at layer j and, through the upper
    // dp/mp counts, the terms of every level below h.

    // choices[h][l] under the current joint mask (all-dp at the start).
    std::vector<LevelPlan> choices(
        levels, LevelPlan(num_layers, Parallelism::kData));

    // Per-level upper dp/mp counts under the current joint mask.
    std::vector<std::vector<unsigned>> dpc(
        levels, std::vector<unsigned>(num_layers, 0));
    std::vector<std::vector<unsigned>> mpc(
        levels, std::vector<unsigned>(num_layers, 0));
    for (std::size_t h = 1; h < levels; ++h)
        for (std::size_t l = 0; l < num_layers; ++l)
            dpc[h][l] = static_cast<unsigned>(h);

    auto fillTerm = [&](TermTape &tape, std::size_t h, std::size_t l) {
        tape.term(2 * l) = model.intraBytesAt(l, choices[h][l],
                                              dpc[h][l], mpc[h][l]);
        if (l + 1 < num_layers) {
            tape.term(2 * l + 1) =
                model.interBytesAt(l, choices[h][l], choices[h][l + 1],
                                   dpc[h][l], dpc[h][l + 1]);
        }
    };

    std::vector<TermTape> tapes(levels, TermTape(num_layers));
    for (std::size_t h = 0; h < levels; ++h) {
        for (std::size_t l = 0; l < num_layers; ++l)
            fillTerm(tapes[h], h, l);
        tapes[h].repairFrom(0);
    }

    // Replays the naive recursion's accumulation exactly: level-
    // ascending adds of levelWeight(h) * per-pair bytes, each per-pair
    // total itself tape-exact.
    auto totalBytes = [&] {
        double total = 0.0;
        for (std::size_t h = 0; h < levels; ++h)
            total += model.levelWeight(h) * tapes[h].total();
        return total;
    };

    // The naive recursion enumerates level-0 masks outermost and keeps
    // the first optimum it meets, i.e. the smallest value of the
    // concatenated key mask_0 .. mask_{H-1} (mask_0 most significant).
    // The Gray walk visits plans in a different order, so ties resolve
    // through better() on that same key, keeping the returned plan
    // bit-identical to the reference.
    auto keyBit = [&](std::size_t h, std::size_t j) {
        return std::uint64_t{1} << ((levels - 1 - h) * num_layers + j);
    };

    // Layer-major Gray mapping: the low (frequently flipped) joint
    // bits cover *all* levels of the last layer — bottom level
    // fastest, so the cheapest flips touch no other level and the
    // shortest tape suffix. Crucially, the high bits then hold a
    // fully-fixed layer *prefix*, which is exactly the shape the
    // engines' suffix bound h[l][s] can prune: whenever the walk
    // enters a block whose fixed prefix provably cannot complete
    // below the incumbent, the entire 2^g sub-sweep is skipped.
    auto flipLayer = [&](std::size_t g) {
        return num_layers - 1 - g / levels;
    };
    auto flipLevel = [&](std::size_t g) {
        return levels - 1 - g % levels;
    };

    // Per-layer DP state (bit h = mp at level h), kept in lockstep
    // with `choices` so the suffix bound can be indexed directly.
    std::vector<std::uint32_t> lstate(num_layers, 0);

    // The engines' admissible completion bound, [l * 2^H + s]. The
    // joint cap L*H <= 26 keeps H <= 13 whenever L >= 2, far under
    // the partitioner's H = 16 ceiling.
    std::vector<double> suffix;
    if (num_layers >= 2)
        suffix = OptimalPartitioner(model).suffixTable(levels);
    const std::uint32_t states = std::uint32_t{1} << levels;

    std::uint64_t key = 0;
    std::uint64_t best_key = 0;
    double best_bytes = totalBytes();

    // One Gray flip: update the choice, the tie-break key, the DP
    // state, the flipped level's terms, and the upper counts (and
    // terms) of every level below it.
    auto applyFlip = [&](std::size_t g) {
        const std::size_t j = flipLayer(g);
        const std::size_t h = flipLevel(g);
        const bool now_mp = choices[h][j] == Parallelism::kData;
        choices[h][j] = now_mp ? Parallelism::kModel : Parallelism::kData;
        key ^= keyBit(h, j);
        lstate[j] ^= std::uint32_t{1} << h;

        const std::size_t start = repairStart(j);
        fillTerm(tapes[h], h, j);
        if (j > 0)
            fillTerm(tapes[h], h, j - 1);
        tapes[h].repairFrom(start);
        for (std::size_t below = h + 1; below < levels; ++below) {
            if (now_mp) {
                --dpc[below][j];
                ++mpc[below][j];
            } else {
                ++dpc[below][j];
                --mpc[below][j];
            }
            fillTerm(tapes[below], below, j);
            if (j > 0)
                fillTerm(tapes[below], below, j - 1);
            tapes[below].repairFrom(start);
        }
    };

    const std::uint64_t count = std::uint64_t{1} << bits;
    for (std::uint64_t i = 1; i < count; ++i) {
        const auto g = static_cast<std::size_t>(std::countr_zero(i));
        applyFlip(g);

        // Block pruning: the next 2^g - 1 steps sweep only bits
        // below g, so layers 0..anchor (the deepest fully-fixed
        // layer) stay put for the whole block. If the prefix cost
        // through the anchor plus the anchor state's completion
        // bound clears the incumbent with slack, no plan in the
        // block can beat or tie it — fast-forward the Gray counter
        // and resync the walk state by flipping the bits that
        // differ, without scoring anything in between.
        if (!suffix.empty() && g >= levels) {
            const std::size_t j = flipLayer(g);
            // The deepest fully-fixed layer for the coming block: j
            // itself when the flip was j's top bit (every lower bit
            // belongs to later layers), else j - 1 — which does not
            // exist when j == 0, so no prefix is fixed and the block
            // cannot be pruned.
            const bool top_bit = g % levels == 0;
            const std::size_t anchor =
                top_bit ? j : (j > 0 ? j - 1 : num_layers);
            if (anchor + 1 < num_layers) {
                double prefix_bytes = 0.0;
                for (std::size_t h = 0; h < levels; ++h)
                    prefix_bytes += model.levelWeight(h) *
                                    tapes[h].prefixAt(2 * anchor);
                const double bound =
                    suffix[anchor * states + lstate[anchor]];
                if (prefix_bytes + bound >
                    best_bytes * (1.0 + kPruneSlack)) {
                    const std::uint64_t target =
                        i + (std::uint64_t{1} << g) - 1;
                    std::uint64_t diff =
                        (i ^ (i >> 1)) ^ (target ^ (target >> 1));
                    while (diff != 0) {
                        applyFlip(static_cast<std::size_t>(
                            std::countr_zero(diff)));
                        diff &= diff - 1;
                    }
                    i = target;
                    continue;
                }
            }
        }

        const double bytes = totalBytes();
        if (better(bytes, key, best_bytes, best_key)) {
            best_bytes = bytes;
            best_key = key;
        }
    }

    BruteForceResult best;
    best.commBytes = best_bytes;
    best.plan.levels.reserve(levels);
    const std::uint64_t layer_mask =
        (std::uint64_t{1} << num_layers) - 1;
    for (std::size_t h = 0; h < levels; ++h)
        best.plan.levels.push_back(levelPlanFromMask(
            (best_key >> ((levels - 1 - h) * num_layers)) & layer_mask,
            num_layers));
    return best;
}

BruteForceResult
bruteForceHierarchicalReference(const CommModel &model, std::size_t levels)
{
    if (model.numLayers() * levels > 24)
        util::fatal("bruteForceHierarchical: search space too large");

    BruteForceResult best;
    bool first = true;
    History hist(model.numLayers());
    std::vector<LevelPlan> stack;
    enumerateLevels(model, levels, 0.0, hist, stack, best, first);
    return best;
}

void
sweepLevelMasks(
    const HierarchicalPlan &base, std::size_t level,
    const std::function<void(std::uint64_t, const HierarchicalPlan &)>
        &visit)
{
    if (level >= base.numLevels())
        util::fatal("sweepLevelMasks: level out of range");
    const std::size_t num_layers = base.numLayers();
    if (num_layers > 24)
        util::fatal("sweepLevelMasks: too many layers to sweep");

    HierarchicalPlan plan = base;
    plan.levels[level] = levelPlanFromMask(0, num_layers);
    visit(0, plan);

    // Ascending masks, patched in place: the increment mask -> mask+1
    // flips exactly the bits of mask ^ (mask+1) (amortized two per
    // step), so no per-mask LevelPlan is ever built.
    const std::uint64_t count = std::uint64_t{1} << num_layers;
    for (std::uint64_t mask = 1; mask < count; ++mask) {
        std::uint64_t toggled = mask ^ (mask - 1);
        while (toggled != 0) {
            const auto l =
                static_cast<std::size_t>(std::countr_zero(toggled));
            plan.levels[level][l] = (mask >> l) & 1u
                                        ? Parallelism::kModel
                                        : Parallelism::kData;
            toggled &= toggled - 1;
        }
        visit(mask, plan);
    }
}

void
sweepLevelBytes(const CommModel &model, const HierarchicalPlan &base,
                std::size_t level,
                const std::function<void(std::uint64_t, double)> &visit)
{
    if (level >= base.numLevels())
        util::fatal("sweepLevelBytes: level out of range");
    const std::size_t num_layers = base.numLayers();
    if (num_layers > 24)
        util::fatal("sweepLevelBytes: too many layers to sweep");
    if (num_layers != model.numLayers())
        util::fatal("sweepLevelBytes: plan does not match the model");
    const std::size_t num_levels = base.numLevels();
    for (const auto &level_plan : base.levels)
        if (level_plan.size() != num_layers)
            util::fatal("sweepLevelBytes: ragged plan (level layer "
                        "counts differ)");

    // The incremental tapes below are chain-shaped; on a DAG network
    // fall back to substituting each mask and rescoring through the
    // DAG-aware planBytes — same values, no tape.
    if (!model.network().isChain()) {
        sweepLevelMasks(base, level,
                        [&](std::uint64_t mask,
                            const HierarchicalPlan &plan) {
                            visit(mask, model.planBytes(plan));
                        });
        return;
    }

    if (num_layers == 0) {
        // Degenerate: every mask is the empty plan.
        visit(0, model.planBytes(base));
        return;
    }

    // choices[h][l], with the swept level starting at mask 0 (all dp).
    std::vector<LevelPlan> choices(base.levels);
    choices[level].assign(num_layers, Parallelism::kData);

    // Per-level upper dp/mp counts under the *current* swept mask.
    std::vector<std::vector<unsigned>> dpc(
        num_levels, std::vector<unsigned>(num_layers, 0));
    std::vector<std::vector<unsigned>> mpc(
        num_levels, std::vector<unsigned>(num_layers, 0));
    for (std::size_t h = 1; h < num_levels; ++h) {
        for (std::size_t l = 0; l < num_layers; ++l) {
            const bool mp = choices[h - 1][l] == Parallelism::kModel;
            dpc[h][l] = dpc[h - 1][l] + (mp ? 0u : 1u);
            mpc[h][l] = mpc[h - 1][l] + (mp ? 1u : 0u);
        }
    }

    auto fillTerm = [&](TermTape &tape, std::size_t h, std::size_t l) {
        tape.term(2 * l) = model.intraBytesAt(l, choices[h][l],
                                              dpc[h][l], mpc[h][l]);
        if (l + 1 < num_layers) {
            tape.term(2 * l + 1) =
                model.interBytesAt(l, choices[h][l], choices[h][l + 1],
                                   dpc[h][l], dpc[h][l + 1]);
        }
    };

    std::vector<TermTape> tapes(num_levels, TermTape(num_layers));
    for (std::size_t h = 0; h < num_levels; ++h) {
        for (std::size_t l = 0; l < num_layers; ++l)
            fillTerm(tapes[h], h, l);
        tapes[h].repairFrom(0);
    }

    // Replays planBytes' accumulation exactly: level-ascending adds of
    // levelWeight(h) * per-pair bytes, each per-pair total itself
    // tape-exact.
    auto totalBytes = [&] {
        double total = 0.0;
        for (std::size_t h = 0; h < num_levels; ++h)
            total += model.levelWeight(h) * tapes[h].total();
        return total;
    };

    std::uint64_t mask = 0;
    visit(0, totalBytes());

    const std::uint64_t count = std::uint64_t{1} << num_layers;
    for (std::uint64_t i = 1; i < count; ++i) {
        const auto gray_bit =
            static_cast<std::size_t>(std::countr_zero(i));
        const std::size_t j = num_layers - 1 - gray_bit;
        mask ^= std::uint64_t{1} << j;
        const bool now_mp = (mask >> j) & 1u;
        choices[level][j] =
            now_mp ? Parallelism::kModel : Parallelism::kData;

        // The swept level's own terms change through the choice; the
        // levels below it see layer j's upper counts shift by one.
        const std::size_t start = repairStart(j);
        fillTerm(tapes[level], level, j);
        if (j > 0)
            fillTerm(tapes[level], level, j - 1);
        tapes[level].repairFrom(start);
        for (std::size_t h = level + 1; h < num_levels; ++h) {
            if (now_mp) {
                --dpc[h][j];
                ++mpc[h][j];
            } else {
                ++dpc[h][j];
                --mpc[h][j];
            }
            fillTerm(tapes[h], h, j);
            if (j > 0)
                fillTerm(tapes[h], h, j - 1);
            tapes[h].repairFrom(start);
        }

        visit(mask, totalBytes());
    }
}

} // namespace hypar::core
