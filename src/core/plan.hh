/**
 * @file
 * Partition plans: the output of the HyPar search.
 *
 * A LevelPlan assigns one Parallelism to every weighted layer at a single
 * hierarchy level; a HierarchicalPlan stacks H LevelPlans (level 0 splits
 * the whole array into two subarrays, level H-1 splits pairs of
 * accelerators). A plan for H levels drives an array of 2^H accelerators.
 */

#ifndef HYPAR_CORE_PLAN_HH
#define HYPAR_CORE_PLAN_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/parallelism.hh"

namespace hypar::dnn {
class Network;
} // namespace hypar::dnn

namespace hypar::core {

/** Parallelism choice for every weighted layer at one hierarchy level. */
using LevelPlan = std::vector<Parallelism>;

/**
 * Full hierarchical plan: levels[h][l] is the choice for layer l at
 * hierarchy level h (h = 0 is the top split).
 */
struct HierarchicalPlan
{
    std::vector<LevelPlan> levels;

    /** Number of hierarchy levels H. */
    std::size_t numLevels() const { return levels.size(); }

    /** Number of weighted layers (0 if the plan is empty). */
    std::size_t numLayers() const
    {
        return levels.empty() ? 0 : levels.front().size();
    }

    /** Accelerators driven by this plan: 2^H. */
    std::size_t numAccelerators() const
    {
        return std::size_t{1} << numLevels();
    }

    bool operator==(const HierarchicalPlan &) const = default;
};

/**
 * Running record of the choices made at the hierarchy levels above the
 * one currently being partitioned. The communication model uses the
 * per-layer dp/mp counts to scale tensor amounts (DESIGN.md Section 2).
 */
class History
{
  public:
    /** Empty history (top level) for `layers` weighted layers. */
    explicit History(std::size_t layers);

    /** Record one more upper level. Fatal on layer-count mismatch. */
    void push(const LevelPlan &plan);

    /** Number of upper levels where layer l ran in data parallelism. */
    unsigned dpCount(std::size_t l) const;

    /** Number of upper levels where layer l ran in model parallelism. */
    unsigned mpCount(std::size_t l) const;

    /** Levels recorded so far. */
    std::size_t depth() const { return depth_; }

    std::size_t numLayers() const { return dp_.size(); }

  private:
    std::vector<unsigned> dp_;
    std::vector<unsigned> mp_;
    std::size_t depth_ = 0;
};

/** A uniform level plan (all layers the same choice). */
LevelPlan uniformLevelPlan(std::size_t layers, Parallelism p);

/** A uniform hierarchical plan (all layers, all levels). */
HierarchicalPlan uniformPlan(std::size_t layers, std::size_t levels,
                             Parallelism p);

/**
 * Decode a Fig. 9/10 style bitmask into a LevelPlan: bit l of `mask`
 * (LSB = layer 0) selects mp when set. Fatal if layers > 63.
 */
LevelPlan levelPlanFromMask(std::uint64_t mask, std::size_t layers);

/**
 * Write one layer's column of a plan from a level vector: bit h of
 * `state` selects mp at hierarchy level h for `layer`. This is the
 * joint-DP state decoding shared by every OptimalPartitioner engine's
 * plan reconstruction. Fatal if the plan has more than 64 levels or
 * `layer` is out of range.
 */
void assignLayerFromState(HierarchicalPlan &plan, std::size_t layer,
                          std::uint64_t state);

/** Render a level plan as a bitstring, layer 0 leftmost ("0011"). */
std::string toBitString(const LevelPlan &plan);

/** Render a plan as one "dp dp mp ..." line per level. */
std::string toString(const HierarchicalPlan &plan);

/**
 * Validate a plan against a network: every level must cover exactly the
 * network's weighted layers. Fatal on mismatch.
 */
void validatePlan(const HierarchicalPlan &plan,
                  const dnn::Network &network);

} // namespace hypar::core

#endif // HYPAR_CORE_PLAN_HH
