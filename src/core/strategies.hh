/**
 * @file
 * Baseline partition strategies the paper compares against:
 *
 *  - default Data Parallelism: every layer dp at every level,
 *  - default Model Parallelism: every layer mp at every level,
 *  - "one weird trick" (Krizhevsky 2014): conv layers dp, fc layers mp,
 *    at every level,
 *  - HyPar itself (a thin wrapper over HierarchicalPartitioner).
 */

#ifndef HYPAR_CORE_STRATEGIES_HH
#define HYPAR_CORE_STRATEGIES_HH

#include <string>
#include <vector>

#include "core/comm_model.hh"
#include "core/plan.hh"
#include "dnn/network.hh"

namespace hypar::core {

/** All layers data parallel at all `levels` hierarchy levels. */
HierarchicalPlan makeDataParallelPlan(const dnn::Network &network,
                                      std::size_t levels);

/** All layers model parallel at all `levels` hierarchy levels. */
HierarchicalPlan makeModelParallelPlan(const dnn::Network &network,
                                       std::size_t levels);

/** Krizhevsky's "one weird trick": conv -> dp, fc -> mp, all levels. */
HierarchicalPlan makeOneWeirdTrickPlan(const dnn::Network &network,
                                       std::size_t levels);

/** The HyPar plan for this model/config (Algorithm 2). */
HierarchicalPlan makeHyparPlan(const CommModel &model, std::size_t levels);

/** Identifier for the four named strategies. */
enum class Strategy { kDataParallel, kModelParallel, kOneWeirdTrick,
                      kHypar };

/** Human-readable strategy name as used in the paper's figures. */
const char *toString(Strategy s);

/** Build the plan for a named strategy. */
HierarchicalPlan makePlan(Strategy s, const CommModel &model,
                          std::size_t levels);

} // namespace hypar::core

#endif // HYPAR_CORE_STRATEGIES_HH
