#include "core/pairwise_partitioner.hh"

#include <array>

#include "util/logging.hh"

namespace hypar::core {

PairwisePartitioner::PairwisePartitioner(const CommModel &model)
    : model_(&model)
{}

PairwiseResult
PairwisePartitioner::partition(const History &hist) const
{
    const std::size_t num_layers = model_->numLayers();
    HYPAR_ASSERT(num_layers > 0, "partitioning an empty network");
    if (hist.numLayers() != num_layers)
        util::fatal("PairwisePartitioner: history size mismatch");

    PairTables t;
    model_->fillPairTables(hist, t);

    // cost[s]: minimal accumulated communication with layer l in state s.
    std::array<double, 2> cost{t.intra[0], t.intra[1]};
    // parent[l][s]: best predecessor state of layer l in state s.
    std::vector<std::array<std::uint8_t, 2>> parent(num_layers);

    for (std::size_t l = 1; l < num_layers; ++l) {
        const double *inter = &t.inter[4 * (l - 1)];
        std::array<double, 2> next{};
        for (std::size_t s = 0; s < 2; ++s) {
            const double via_dp = cost[0] + inter[s];
            const double via_mp = cost[1] + inter[2 + s];
            // Tie-break toward the dp predecessor (core/tie_break.hh).
            if (via_dp <= via_mp) {
                next[s] = via_dp;
                parent[l][s] = 0;
            } else {
                next[s] = via_mp;
                parent[l][s] = 1;
            }
            next[s] += t.intra[2 * l + s];
        }
        cost = next;
    }

    PairwiseResult result;
    // Tie-break toward dp at the last layer as well.
    std::uint8_t state = cost[0] <= cost[1] ? std::uint8_t{0}
                                            : std::uint8_t{1};
    result.commBytes = cost[state];
    result.plan.assign(num_layers, Parallelism::kData);
    for (std::size_t l = num_layers; l-- > 0;) {
        result.plan[l] = state ? Parallelism::kModel : Parallelism::kData;
        if (l > 0)
            state = parent[l][state];
    }
    return result;
}

PairwiseResult
PairwisePartitioner::partitionReference(const History &hist) const
{
    const std::size_t num_layers = model_->numLayers();
    HYPAR_ASSERT(num_layers > 0, "partitioning an empty network");
    if (hist.numLayers() != num_layers)
        util::fatal("PairwisePartitioner: history size mismatch");

    constexpr std::array<Parallelism, 2> kStates = {
        Parallelism::kData, Parallelism::kModel};

    std::array<double, 2> cost{};
    std::vector<std::array<std::uint8_t, 2>> parent(num_layers);

    for (std::size_t s = 0; s < 2; ++s)
        cost[s] = model_->intraBytesReference(0, kStates[s], hist);

    for (std::size_t l = 1; l < num_layers; ++l) {
        std::array<double, 2> next{};
        for (std::size_t s = 0; s < 2; ++s) {
            const double via_dp =
                cost[0] +
                model_->interBytesReference(l - 1, Parallelism::kData,
                                            kStates[s], hist);
            const double via_mp =
                cost[1] +
                model_->interBytesReference(l - 1, Parallelism::kModel,
                                            kStates[s], hist);
            // Tie-break toward the dp predecessor for determinism.
            if (via_dp <= via_mp) {
                next[s] = via_dp;
                parent[l][s] = 0;
            } else {
                next[s] = via_mp;
                parent[l][s] = 1;
            }
            next[s] += model_->intraBytesReference(l, kStates[s], hist);
        }
        cost = next;
    }

    PairwiseResult result;
    std::uint8_t state = cost[0] <= cost[1] ? std::uint8_t{0}
                                            : std::uint8_t{1};
    result.commBytes = cost[state];
    result.plan.assign(num_layers, Parallelism::kData);
    for (std::size_t l = num_layers; l-- > 0;) {
        result.plan[l] = kStates[state];
        if (l > 0)
            state = parent[l][state];
    }
    return result;
}

PairwiseResult
PairwisePartitioner::partition() const
{
    return partition(History(model_->numLayers()));
}

} // namespace hypar::core
