/**
 * @file
 * Exhaustive enumeration baselines.
 *
 * The paper motivates Algorithm 1 by the O(2^N) cost of enumerating all
 * per-layer assignments (Section 3.4). These enumerators implement that
 * brute force for two purposes:
 *   1. validating that Algorithm 1 returns the exact optimum (tests),
 *   2. the parallelism-space exploration studies of Fig. 9 and Fig. 10.
 *
 * The single-level enumerators are Gray-code incremental: per visited
 * mask exactly one layer flips, so only that layer's intra term and its
 * two adjacent inter terms change, and the running total is repaired
 * through a prefix-sum tape instead of a full O(N) rescore. Because the
 * tape replays the exact left-to-right addition order of
 * CommModel::pairBytes, every per-mask total — and therefore the
 * returned optimum and plan — is bit-identical to the naive rescan
 * (kept as bruteForcePairwiseReference). The frequently flipped Gray
 * bits are mapped to the *last* layers so the tape suffix that needs
 * recomputation is O(1) amortized, and no per-mask allocation happens.
 */

#ifndef HYPAR_CORE_BRUTE_FORCE_HH
#define HYPAR_CORE_BRUTE_FORCE_HH

#include <cstdint>
#include <functional>

#include "core/comm_model.hh"
#include "core/pairwise_partitioner.hh"
#include "core/plan.hh"

namespace hypar::core {

/** Result of the exhaustive hierarchical search. */
struct BruteForceResult
{
    HierarchicalPlan plan;
    double commBytes = 0.0;
};

/**
 * Enumerate all 2^L single-level assignments under `hist` and return the
 * cheapest (ties resolved toward the smaller mask, i.e. dp-heavy — the
 * shared rule of core/tie_break.hh). Fatal for L > 24 — this is a
 * validation tool, not a search engine.
 */
PairwiseResult bruteForcePairwise(const CommModel &model,
                                  const History &hist);

/**
 * The pre-optimization enumerator: one LevelPlan allocation and one
 * full pairBytes rescore per mask. Bit-identical results to
 * bruteForcePairwise(); kept as a test oracle and benchmark baseline.
 */
PairwiseResult bruteForcePairwiseReference(const CommModel &model,
                                           const History &hist);

/**
 * Enumerate all (2^L)^H hierarchical plans and return the cheapest by
 * total communication — the oracle for the joint (OptimalPartitioner)
 * search. The walk is a Gray code over the joint H*L bit-string: each
 * visited plan differs from the previous one by a single (level, layer)
 * flip, which repairs that level's prefix-sum tape and the upper-count
 * dependent terms of the levels below it, so a visit costs O(1)
 * amortized instead of a full O(L*H) rescore. Costs and the returned
 * plan are bit-identical to the naive recursion (kept as
 * bruteForceHierarchicalReference); ties resolve by the shared rule of
 * core/tie_break.hh on the concatenated level-mask key. Fatal when
 * L*H > 26.
 */
BruteForceResult bruteForceHierarchical(const CommModel &model,
                                        std::size_t levels);

/**
 * The pre-optimization enumerator: the naive (2^L)^H recursion with one
 * LevelPlan allocation and one full pairBytes rescore per plan.
 * Bit-identical results to bruteForceHierarchical(); kept as a test
 * oracle and benchmark baseline. Fatal when L*H > 24.
 */
BruteForceResult bruteForceHierarchicalReference(const CommModel &model,
                                                 std::size_t levels);

/**
 * Visit every plan produced by substituting all 2^(layers) masks at the
 * given hierarchy level of `base` (the Fig. 9/10 sweep building block).
 * The visitor receives the mask and the substituted plan. Masks are
 * visited in ascending order; the plan is patched in place between
 * visits, so no allocation happens per mask.
 */
void sweepLevelMasks(
    const HierarchicalPlan &base, std::size_t level,
    const std::function<void(std::uint64_t, const HierarchicalPlan &)>
        &visit);

/**
 * Communication-space variant of sweepLevelMasks: visit the *total plan
 * communication* (CommModel::planBytes of `base` with the level's plan
 * replaced by the mask) for all 2^(layers) masks, without materializing
 * or rescoring any plan. Masks are visited in Gray-code order — one
 * layer flip apart — and each flip repairs only the affected terms of
 * the swept level and of the levels below it (whose tensor scaling
 * depends on the swept choice). Every reported value is bit-identical
 * to calling planBytes on the substituted plan. Fatal when the level is
 * out of range, the plan has more than 24 layers, or the plan does not
 * match the model's network.
 */
void sweepLevelBytes(const CommModel &model, const HierarchicalPlan &base,
                     std::size_t level,
                     const std::function<void(std::uint64_t, double)>
                         &visit);

} // namespace hypar::core

#endif // HYPAR_CORE_BRUTE_FORCE_HH
