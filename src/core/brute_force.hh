/**
 * @file
 * Exhaustive enumeration baselines.
 *
 * The paper motivates Algorithm 1 by the O(2^N) cost of enumerating all
 * per-layer assignments (Section 3.4). These enumerators implement that
 * brute force for two purposes:
 *   1. validating that Algorithm 1 returns the exact optimum (tests),
 *   2. the parallelism-space exploration studies of Fig. 9 and Fig. 10.
 */

#ifndef HYPAR_CORE_BRUTE_FORCE_HH
#define HYPAR_CORE_BRUTE_FORCE_HH

#include <cstdint>
#include <functional>

#include "core/comm_model.hh"
#include "core/pairwise_partitioner.hh"
#include "core/plan.hh"

namespace hypar::core {

/** Result of the exhaustive hierarchical search. */
struct BruteForceResult
{
    HierarchicalPlan plan;
    double commBytes = 0.0;
};

/**
 * Enumerate all 2^L single-level assignments under `hist` and return the
 * cheapest (ties resolved toward the smaller mask, i.e. dp-heavy).
 * Fatal for L > 24 — this is a validation tool, not a search engine.
 */
PairwiseResult bruteForcePairwise(const CommModel &model,
                                  const History &hist);

/**
 * Enumerate all (2^L)^H hierarchical plans and return the cheapest by
 * total communication. Fatal when L*H > 24.
 */
BruteForceResult bruteForceHierarchical(const CommModel &model,
                                        std::size_t levels);

/**
 * Visit every plan produced by substituting all 2^(layers) masks at the
 * given hierarchy level of `base` (the Fig. 9/10 sweep building block).
 * The visitor receives the mask and the substituted plan.
 */
void sweepLevelMasks(
    const HierarchicalPlan &base, std::size_t level,
    const std::function<void(std::uint64_t, const HierarchicalPlan &)>
        &visit);

} // namespace hypar::core

#endif // HYPAR_CORE_BRUTE_FORCE_HH
