/**
 * @file
 * Algorithm 2 of the paper: "Hierarchical Partition".
 *
 * The array of 2^H accelerators is split recursively: Algorithm 1
 * partitions the workload between two subarrays, then each subarray is
 * partitioned the same way with the upper-level choices recorded, until
 * single accelerators remain. Total communication follows the paper's
 * recursion com = com_h + 2 * com_n (level h has 2^h independent group
 * pairs). Because both subarrays of a level share the same upper-level
 * history, the recursion visits a single path, making the whole search
 * O(H * L).
 */

#ifndef HYPAR_CORE_HIERARCHICAL_PARTITIONER_HH
#define HYPAR_CORE_HIERARCHICAL_PARTITIONER_HH

#include "core/comm_model.hh"
#include "core/pairwise_partitioner.hh"
#include "core/plan.hh"

namespace hypar::core {

/** Result of the hierarchical search. */
struct HierarchicalResult
{
    HierarchicalPlan plan;
    /** Total communication, com = sum_h 2^h * com_h, in bytes. */
    double commBytes = 0.0;
    /**
     * Transition relaxations the search evaluated — one candidate
     * cost[p] + trans(p -> s) considered by a DP engine. 0 for searches
     * that don't count (greedy Algorithm 2, the naive references).
     * Deterministic for a given model and engine, so tests can assert
     * how much work the sparse/beam engines actually skipped.
     */
    std::uint64_t transitionsEvaluated = 0;
};

/**
 * The HyPar search: stack Algorithm 1 over H hierarchy levels.
 * H == 0 yields an empty plan with zero communication (one accelerator).
 */
class HierarchicalPartitioner
{
  public:
    explicit HierarchicalPartitioner(const CommModel &model);

    /** Run Algorithm 2 for `levels` hierarchy levels (2^levels accs). */
    HierarchicalResult partition(std::size_t levels) const;

  private:
    /**
     * The paper's literal recursion; `hist` carries upper choices and
     * `out` collects one LevelPlan per level. Returns com_h + 2*com_n.
     */
    double partitionRecursive(std::size_t levels, History &hist,
                              std::vector<LevelPlan> &out) const;

    const CommModel *model_;
    PairwisePartitioner pairwise_;
};

} // namespace hypar::core

#endif // HYPAR_CORE_HIERARCHICAL_PARTITIONER_HH
