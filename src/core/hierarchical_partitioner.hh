/**
 * @file
 * Algorithm 2 of the paper: "Hierarchical Partition".
 *
 * The array of 2^H accelerators is split recursively: Algorithm 1
 * partitions the workload between two subarrays, then each subarray is
 * partitioned the same way with the upper-level choices recorded, until
 * single accelerators remain. Total communication follows the paper's
 * recursion com = com_h + 2 * com_n (level h has 2^h independent group
 * pairs). Because both subarrays of a level share the same upper-level
 * history, the recursion visits a single path, making the whole search
 * O(H * L).
 */

#ifndef HYPAR_CORE_HIERARCHICAL_PARTITIONER_HH
#define HYPAR_CORE_HIERARCHICAL_PARTITIONER_HH

#include "core/comm_model.hh"
#include "core/pairwise_partitioner.hh"
#include "core/plan.hh"

namespace hypar::core {

/**
 * Per-search diagnostics of a joint-DP engine (OptimalPartitioner).
 *
 * `expanded` counts (layer, state) DP nodes the engine computed and
 * kept as live predecessors for the next layer. `pruned` counts the
 * work the engine eliminated, in the engine's own work unit: for the
 * beam and A* engines it is nodes — dropped from a frontier, or
 * proven useless by the A* bound `g + h > incumbent`; for the sparse
 * engine (whose nodes are all expanded) it is the dominance-skipped
 * *transitions* its early break never evaluated, i.e. the dense
 * engine's 4^H * (L-1) transition bill minus transitionsEvaluated.
 * The dense and reference engines skip nothing, so their pruned count
 * is genuinely zero. `widthUsed` is the per-layer frontier the
 * engine actually worked with: the final beam width for the beam
 * engine (after adaptive growth), the largest per-layer live set for
 * A*, and the full 2^H for the exhaustive engines.
 *
 * `certifiedExact` is a machine-checked optimality certificate: true
 * only when the engine *proved* its plan is the exact joint optimum —
 * bit-identical, cost and plan, to the dense DP. The exhaustive and A*
 * engines always certify; a pruned beam certifies when every state it
 * ever dropped had `g + h` strictly above the returned cost (see
 * optimal_partitioner.hh for the admissibility argument). False means
 * "no certificate", not "wrong": searches that don't certify (greedy
 * Algorithm 2, an uncertified beam) leave the default-constructed
 * value in place.
 *
 * Scope under adaptive beam growth: `expanded`, `pruned`,
 * `certifiedExact`, and `widthUsed` describe the final (certifying)
 * pass only, while `HierarchicalResult::transitionsEvaluated`
 * accumulates over every growth pass — it is the total work bill, not
 * a per-pass figure, so expanded + pruned relates to it only for the
 * single-pass engines.
 *
 * All four fields are deterministic for a given model, engine, and
 * options — independent of thread count — so tests can assert on them.
 */
struct SearchStats
{
    std::uint64_t expanded = 0; //!< DP nodes computed and kept
    std::uint64_t pruned = 0;   //!< DP nodes eliminated by bound/beam
    bool certifiedExact = false; //!< proven equal to the dense DP
    std::size_t widthUsed = 0;   //!< per-layer frontier actually used
};

/** Result of the hierarchical search. */
struct HierarchicalResult
{
    HierarchicalPlan plan;
    /** Total communication, com = sum_h 2^h * com_h, in bytes. */
    double commBytes = 0.0;
    /**
     * Transition relaxations the search evaluated — one candidate
     * cost[p] + trans(p -> s) considered by a DP engine. 0 for searches
     * that don't count (greedy Algorithm 2, the naive references).
     * Deterministic for a given model and engine, so tests can assert
     * how much work the sparse/beam engines actually skipped.
     */
    std::uint64_t transitionsEvaluated = 0;
    /** Node-level search diagnostics + optimality certificate. */
    SearchStats stats;
};

/**
 * The HyPar search: stack Algorithm 1 over H hierarchy levels.
 * H == 0 yields an empty plan with zero communication (one accelerator).
 */
class HierarchicalPartitioner
{
  public:
    explicit HierarchicalPartitioner(const CommModel &model);

    /** Run Algorithm 2 for `levels` hierarchy levels (2^levels accs). */
    HierarchicalResult partition(std::size_t levels) const;

  private:
    /**
     * The paper's literal recursion; `hist` carries upper choices and
     * `out` collects one LevelPlan per level. Returns com_h + 2*com_n.
     */
    double partitionRecursive(std::size_t levels, History &hist,
                              std::vector<LevelPlan> &out) const;

    const CommModel *model_;
    PairwisePartitioner pairwise_;
};

} // namespace hypar::core

#endif // HYPAR_CORE_HIERARCHICAL_PARTITIONER_HH
