#include "core/optimal_partitioner.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <limits>
#include <cstring>
#include <numeric>

#include "core/series_parallel.hh"
#include "core/simd_kernels.hh"
#include "core/tie_break.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace hypar::core {

namespace {

constexpr std::size_t kDenseMax = OptimalPartitioner::kDenseMaxLevels;
constexpr std::size_t kWideMax = OptimalPartitioner::kMaxLevels;

/** dp count among the bits of `v` strictly below level h (bit = mp). */
unsigned
dpAbove(std::uint32_t v, std::size_t h)
{
    const auto mask = static_cast<std::uint32_t>((1u << h) - 1u);
    const auto mp = static_cast<unsigned>(std::popcount(v & mask));
    return static_cast<unsigned>(h) - mp;
}

unsigned
mpAbove(std::uint32_t v, std::size_t h)
{
    const auto mask = static_cast<std::uint32_t>((1u << h) - 1u);
    return static_cast<unsigned>(std::popcount(v & mask));
}

Parallelism
choiceAt(std::uint32_t v, std::size_t h)
{
    return (v >> h) & 1u ? Parallelism::kModel : Parallelism::kData;
}

/**
 * Factored inter-layer cost table of one l -> l+1 transition.
 *
 * interCost(l, p, s) = sum_h w_h * interBytesAt(l, p_h, s_h,
 *                                               dpAbove(p,h),
 *                                               dpAbove(s,h))
 *
 * with w_h = CommModel::levelWeight(h): the exact 2^h on a pristine
 * array, 2^h * penalty_h on a degraded one — the weighting is uniform
 * per level, so every per-level min/dominance argument below carries
 * over unchanged.
 *
 * Each addend depends on the level h, the two choices at h, and the two
 * producer dp counts below h — at most H * 2 * 2 * (H+1) * (H+1)
 * distinct values per layer, which this table enumerates up front so
 * the DP never calls the CommModel again. Layout groups the s-side keys
 * (h, s_h, dpAbove(s,h)) outermost: for a fixed target state the DP
 * grabs one contiguous [p_h][dpAbove(p,h)] row per level.
 */
class InterTermTable
{
  public:
    InterTermTable(const CommModel &model, std::size_t layer,
                   std::size_t levels)
        : levels_(levels), terms_(levels * 2 * (levels + 1) * 2 *
                                  (levels + 1))
    {
        for (std::size_t h = 0; h < levels; ++h) {
            const double weight = model.levelWeight(h);
            for (unsigned sb = 0; sb < 2; ++sb) {
                for (unsigned b = 0; b <= levels; ++b) {
                    double *row = rowAt(h, sb, b);
                    for (unsigned pb = 0; pb < 2; ++pb) {
                        for (unsigned a = 0; a <= levels; ++a) {
                            row[pb * (levels_ + 1) + a] =
                                weight *
                                model.interBytesAt(
                                    layer,
                                    pb ? Parallelism::kModel
                                       : Parallelism::kData,
                                    sb ? Parallelism::kModel
                                       : Parallelism::kData,
                                    a, b);
                        }
                    }
                }
            }
        }
    }

    /** Contiguous [p_h][dpAbove(p,h)] row for the s-side key (h, sb, b). */
    const double *rowAt(std::size_t h, unsigned sb, unsigned b) const
    {
        return &terms_[((h * 2 + sb) * (levels_ + 1) + b) * 2 *
                       (levels_ + 1)];
    }

  private:
    double *rowAt(std::size_t h, unsigned sb, unsigned b)
    {
        return &terms_[((h * 2 + sb) * (levels_ + 1) + b) * 2 *
                       (levels_ + 1)];
    }

    std::size_t levels_;
    std::vector<double> terms_;
};

/**
 * Relative slack used whenever a floating-point `g + h` is compared
 * against an incumbent cost C: a node is pruned (and a beam pass
 * certified) only when the value exceeds C * (1 + kBoundSlack). The
 * suffix bound is admissible addend-by-addend, but its multi-layer
 * sum is associated differently from the DP's own left-to-right
 * accumulation; the slack absorbs that re-association drift (at most
 * ~2L * 2^-53 relative — five orders of magnitude below 1e-9) so no
 * state whose true float-semantics completion is <= C — including
 * exact ties, which the shared tie-break rule must still see — is
 * ever cut. See the admissibility argument in optimal_partitioner.hh.
 */
constexpr double kBoundSlack = 1e-9;

/**
 * Deflation for A*'s fast transition screen: a re-associated sum of
 * the same non-negative addends (two-level pair sums, or a
 * 4-accumulator split on short scans) is within
 * 2H * 2^-53 < 4e-15 relative of the canonical ascending-order sum, so
 * multiplying it by (1 - 1e-12) yields a certified lower bound on the
 * exact value — candidates rejected against it can never win (or tie)
 * the argmin.
 */
constexpr double kScreenSlack = 1.0 - 1e-12;

/**
 * Minimum binary-searched scan-prefix length at which A* builds the
 * per-node level-pair screen table: the ~3k-add build amortizes over
 * the halved per-candidate screen cost only on long scans, and short
 * scans keep the gather-based four-accumulator screen.
 */
constexpr std::size_t kPairScreenMin = 256;

double
inflate(double cost)
{
    return cost * (1.0 + kBoundSlack);
}

/**
 * Per-target row minima of one factored table: the cheapest admissible
 * p-side entry (p_h in {0,1}, dpAbove(p,h) <= h) of each (h, sb,
 * b <= h) row. This is the sparse engine's per-target lower-bound
 * ingredient (lbIn), shared with the suffix bound's M term and the A*
 * per-target screen. Slots with b > h are unreachable and stay +inf.
 */
std::vector<double>
targetRowMins(const InterTermTable &iterm, std::size_t levels)
{
    std::vector<double> rowmin(levels * 2 * (levels + 1),
                               std::numeric_limits<double>::infinity());
    for (std::size_t h = 0; h < levels; ++h) {
        for (unsigned sb = 0; sb < 2; ++sb) {
            for (unsigned b = 0; b <= h; ++b) {
                const double *row = iterm.rowAt(h, sb, b);
                double m = std::numeric_limits<double>::infinity();
                for (unsigned pb = 0; pb < 2; ++pb)
                    for (unsigned a = 0; a <= h; ++a)
                        m = std::min(m, row[pb * (levels + 1) + a]);
                rowmin[(h * 2 + sb) * (levels + 1) + b] = m;
            }
        }
    }
    return rowmin;
}

/**
 * pcol[p * levels + h]: column of state p in the level-h row of a
 * factored table — (p_h, dpAbove(p,h)) flattened. Shared by every
 * layer transition of the sparse and A* engines.
 */
std::vector<std::uint16_t>
buildPcol(std::size_t levels)
{
    const std::uint32_t states = 1u << levels;
    std::vector<std::uint16_t> pcol(std::size_t{states} * levels);
    for (std::uint32_t p = 0; p < states; ++p)
        for (std::size_t h = 0; h < levels; ++h)
            pcol[std::size_t{p} * levels + h] =
                static_cast<std::uint16_t>(((p >> h) & 1u) *
                                               (levels + 1) +
                                           dpAbove(p, h));
    return pcol;
}

/** One InterTermTable per l -> l+1 transition, shared by the wide
 *  engines (several passes reuse them: bound, incumbent, search). */
std::vector<InterTermTable>
buildInterTables(const CommModel &model, std::size_t levels)
{
    const std::size_t num_layers = model.numLayers();
    std::vector<InterTermTable> tables;
    if (num_layers > 1) {
        tables.reserve(num_layers - 1);
        for (std::size_t l = 0; l + 1 < num_layers; ++l)
            tables.emplace_back(model, l, levels);
    }
    return tables;
}

/**
 * The admissible suffix bound h[l * 2^levels + s] of
 * optimal_partitioner.hh: a real-arithmetic lower bound on everything
 * the DP adds after layer l's intra term when layer l sits in state s
 * (the l -> l+1 transition plus every deeper intra and transition).
 * One backward min-over-transitions pass per layer over the factored
 * tables:
 *
 *   h[l][s] = max( lbOut(l, s) + m[l+1],  M[l],  C(l, s) )
 *
 * with lbOut/m/M and the per-level chain term C as documented in the
 * header. Monotone (consistent)
 * by construction: both arguments of the max bound the one-step
 * expansion trans + intra' + h' from below. O(L * (2^H * H + H^3))
 * on the pool; the per-state sums run level-ascending like every
 * real transition sum, so addend-wise domination survives the float
 * arithmetic (the cross-layer re-association is what kBoundSlack
 * absorbs at comparison time).
 */
std::vector<double>
suffixBound(const CommModel &model, std::size_t levels,
            std::size_t num_layers, const std::vector<double> &intra,
            const std::vector<InterTermTable> &inter)
{
    const std::size_t states = std::size_t{1} << levels;
    std::vector<double> bound(num_layers * states, 0.0);
    auto &pool = util::ThreadPool::global();
    const std::size_t grain = pool.grainFor(states);
    const std::size_t cols = 2 * (levels + 1);
    constexpr double kInf = std::numeric_limits<double>::infinity();

    // Per-level chain term: the joint cost decomposes as a sum over
    // hierarchy levels, and for a fixed level h the per-layer choices
    // form a plain 2-state chain. Relax each level-h addend over the
    // upper-level count arguments (min over dp_above + mp_above = h)
    // and solve that tiny chain *exactly* backward:
    //
    //   chain[l][h][bit] = min over next bit nb of
    //       transMin_h(l, bit, nb) + intraMin_h(l+1, nb)
    //     + chain[l+1][h][nb]
    //
    // Then sum_h chain[l][h][s_h] lower-bounds the full remaining
    // cost from (l, s) — per level it is a minimum over all bit
    // sequences that start at s's own bit, so unlike the scalar m/M
    // terms it charges every mp bit its unavoidable downstream cost.
    // imin[(l * levels + h) * 2 + bit] is the relaxed per-level intra
    // term (levelWeight(h) = 2^h * penalty_h included; the weight is
    // the same for every candidate of a level, so the relaxation stays
    // an addend-wise lower bound under degraded links too).
    std::vector<double> imin(num_layers * levels * 2, kInf);
    for (std::size_t l = 0; l < num_layers; ++l) {
        for (std::size_t h = 0; h < levels; ++h) {
            const double weight = model.levelWeight(h);
            for (unsigned bit = 0; bit < 2; ++bit) {
                double m = kInf;
                for (unsigned a = 0; a <= h; ++a)
                    m = std::min(
                        m, weight * model.intraBytesAt(
                                        l,
                                        bit ? Parallelism::kModel
                                            : Parallelism::kData,
                                        a, static_cast<unsigned>(h) - a));
                imin[(l * levels + h) * 2 + bit] = m;
            }
        }
    }
    std::vector<double> chain(num_layers * levels * 2, 0.0);
    for (std::size_t l = num_layers - 1; l-- > 0;) {
        const InterTermTable &iterm = inter[l];
        for (std::size_t h = 0; h < levels; ++h) {
            for (unsigned pb = 0; pb < 2; ++pb) {
                double best = kInf;
                for (unsigned sb = 0; sb < 2; ++sb) {
                    double tmin = kInf;
                    for (unsigned b = 0; b <= h; ++b) {
                        const double *row = iterm.rowAt(h, sb, b);
                        for (unsigned a = 0; a <= h; ++a)
                            tmin = std::min(
                                tmin, row[pb * (levels + 1) + a]);
                    }
                    best = std::min(
                        best,
                        tmin + imin[((l + 1) * levels + h) * 2 + sb] +
                            chain[((l + 1) * levels + h) * 2 + sb]);
                }
                chain[(l * levels + h) * 2 + pb] = best;
            }
        }
    }

    // outmin[h * cols + col]: cheapest admissible target-side entry
    // (s'_h in {0,1}, dpAbove(s',h) <= h) of level h at the source's
    // fixed column `col` — the per-level ingredient of lbOut.
    std::vector<double> outmin(levels * cols);

    for (std::size_t l = num_layers - 1; l-- > 0;) {
        const InterTermTable &iterm = inter[l];
        for (std::size_t h = 0; h < levels; ++h) {
            for (std::size_t col = 0; col < cols; ++col) {
                double m = kInf;
                for (unsigned sb = 0; sb < 2; ++sb)
                    for (unsigned b = 0; b <= h; ++b)
                        m = std::min(m, iterm.rowAt(h, sb, b)[col]);
                outmin[h * cols + col] = m;
            }
        }
        // The sparse engine's per-target row minima: the lbIn
        // ingredient of the M term.
        const std::vector<double> inmin = targetRowMins(iterm, levels);

        const double *intra_next = &intra[(l + 1) * states];
        const double *bound_next = &bound[(l + 1) * states];
        // m = min_s'(intra' + h'); M = min_s'(lbIn(s') + intra' + h').
        // Scalar float mins are order-independent, so the chunked
        // reduction is deterministic for every thread count.
        const auto mins = pool.parallelReduce(
            0, states, grain, std::pair<double, double>{kInf, kInf},
            [&](std::size_t begin, std::size_t end) {
                std::pair<double, double> acc{kInf, kInf};
                for (std::size_t s = begin; s < end; ++s) {
                    const auto sv = static_cast<std::uint32_t>(s);
                    const double rest = intra_next[s] + bound_next[s];
                    acc.first = std::min(acc.first, rest);
                    double lbin = 0.0;
                    for (std::size_t h = 0; h < levels; ++h)
                        lbin += inmin[(h * 2 + ((sv >> h) & 1u)) *
                                          (levels + 1) +
                                      dpAbove(sv, h)];
                    acc.second = std::min(acc.second, lbin + rest);
                }
                return acc;
            },
            [](std::pair<double, double> a, std::pair<double, double> b) {
                return std::pair<double, double>{
                    std::min(a.first, b.first),
                    std::min(a.second, b.second)};
            });

        double *bound_l = &bound[l * states];
        const double *chain_l = &chain[l * levels * 2];
        pool.parallelFor(
            0, states, grain, [&](std::size_t begin, std::size_t end) {
                for (std::size_t s = begin; s < end; ++s) {
                    const auto sv = static_cast<std::uint32_t>(s);
                    double lbout = 0.0;
                    double per_level = 0.0;
                    for (std::size_t h = 0; h < levels; ++h) {
                        const unsigned bit = (sv >> h) & 1u;
                        lbout += outmin[h * cols + bit * (levels + 1) +
                                        dpAbove(sv, h)];
                        per_level += chain_l[h * 2 + bit];
                    }
                    bound_l[s] = std::max(
                        std::max(lbout + mins.first, mins.second),
                        per_level);
                }
            });
    }
    return bound;
}

HierarchicalResult assemblePlan(std::size_t levels,
                                std::size_t num_layers,
                                std::uint32_t states,
                                const std::vector<double> &cost,
                                const std::vector<std::uint32_t> &parent);

/** Tables shared by the wide engines (beam passes and A*). */
struct WideTables
{
    std::vector<double> intra;         //!< [l * 2^H + s]
    std::vector<InterTermTable> inter; //!< one per l -> l+1
    std::vector<double> suffix;        //!< admissible bound h[l][s]
};

/**
 * Result of one fixed-width beam pass. `minDroppedF` is the smallest
 * f = g + h over every state dropped from any frontier (+inf when
 * nothing was dropped, i.e. width >= 2^H); the caller checks it
 * against the returned cost to certify exactness.
 */
struct BeamOutcome
{
    HierarchicalResult result;
    double minDroppedF = std::numeric_limits<double>::infinity();
    std::uint64_t expanded = 0; //!< kept predecessor nodes, all layers
    std::uint64_t dropped = 0;  //!< frontier states pruned, all layers
};

/**
 * popcount(p) for every state, as the u8 side table the expandLevel
 * kernel indexes (a = h - pcnt[p]); built once per engine pass.
 */
std::vector<std::uint8_t>
buildPcnt(std::uint32_t states)
{
    std::vector<std::uint8_t> pcnt(states);
    for (std::uint32_t p = 0; p < states; ++p)
        pcnt[p] = static_cast<std::uint8_t>(std::popcount(p));
    return pcnt;
}

BeamOutcome
beamPass(std::size_t levels, std::size_t num_layers,
         std::size_t beam_width, const WideTables &tables)
{
    const std::uint32_t states = 1u << levels;
    auto &pool = util::ThreadPool::global();
    const simd::Kernels &kern = simd::activeKernels();
    const std::vector<std::uint8_t> pcnt = buildPcnt(states);

    const std::vector<double> &intra = tables.intra;
    std::vector<double> cost(intra.begin(), intra.begin() + states);
    std::vector<std::uint32_t> parent(num_layers * states, 0);
    std::vector<double> next(states);
    std::vector<std::uint32_t> frontier;
    std::vector<double> fscore(states);
    std::uint64_t total_evaluated = 0;
    BeamOutcome out;

    // The beam: the `beam_width` best states under (f, index) with
    // f = cost-so-far + suffix bound — ranked by provable completable
    // cost, not by prefix cost alone — listed in ascending state
    // index. The best set under a strict total order is unique, so
    // the frontier — and everything downstream — is deterministic.
    auto pruneFrontier = [&](std::size_t l) {
        frontier.resize(states);
        std::iota(frontier.begin(), frontier.end(), 0u);
        if (beam_width < states) {
            const double *suffix_l = &tables.suffix[l * states];
            for (std::uint32_t s = 0; s < states; ++s)
                fscore[s] = cost[s] + suffix_l[s];
            std::nth_element(frontier.begin(),
                             frontier.begin() +
                                 static_cast<std::ptrdiff_t>(beam_width),
                             frontier.end(),
                             [&](std::uint32_t x, std::uint32_t y) {
                                 return better(fscore[x], x, fscore[y],
                                               y);
                             });
            for (std::size_t k = beam_width; k < states; ++k)
                out.minDroppedF =
                    std::min(out.minDroppedF, fscore[frontier[k]]);
            out.dropped += states - beam_width;
            frontier.resize(beam_width);
            std::sort(frontier.begin(), frontier.end());
        }
    };

    for (std::size_t l = 1; l < num_layers; ++l) {
        const InterTermTable &iterm = tables.inter[l - 1];
        const double *intra_l = &intra[l * states];
        std::uint32_t *parent_l = &parent[l * states];

        pruneFrontier(l - 1);
        const std::size_t fsize = frontier.size();
        out.expanded += fsize;
        total_evaluated += static_cast<std::uint64_t>(fsize) * states;

        // Parallelize over frontier chunks: each chunk relaxes every
        // target state into its own (best, prev) arrays, merged below.
        // An argmin under the strict total order of better() is
        // independent of how candidates are grouped, so the merge is
        // bit-identical for every chunk grid and thread count.
        const std::size_t fgrain = std::max<std::size_t>(
            1, fsize / (2 * pool.parallelism()));
        const std::size_t chunks = (fsize + fgrain - 1) / fgrain;
        std::vector<std::vector<double>> chunk_best(
            chunks,
            std::vector<double>(
                states, std::numeric_limits<double>::infinity()));
        std::vector<std::vector<std::uint32_t>> chunk_prev(
            chunks, std::vector<std::uint32_t>(states, 0));

        pool.parallelFor(0, fsize, fgrain, [&](std::size_t f_begin,
                                               std::size_t f_end) {
            const std::size_t ci = f_begin / fgrain;
            std::vector<double> &best = chunk_best[ci];
            std::vector<std::uint32_t> &prev = chunk_prev[ci];
            // trans[s] = interCost(l-1, p, s) for the chunk's current
            // predecessor p, built for all 2^H target states at once by
            // expanding one level bit at a time — the mirror image of
            // the dense engine's p-side expansion, with the additions
            // in the same level-ascending order, so every transition
            // sum is bit-identical to the dense DP's.
            std::vector<double> trans(states);
            // tp[(h * 2 + sb) * (levels + 1) + b]: the (h, sb, b) table
            // entry at p's fixed column, gathered up front so the
            // expansion reads contiguously.
            std::vector<double> tp(levels * 2 * (levels + 1));

            for (std::size_t k = f_begin; k < f_end; ++k) {
                const std::uint32_t p = frontier[k];
                for (std::size_t h = 0; h < levels; ++h) {
                    const std::size_t col =
                        ((p >> h) & 1u) * (levels + 1) + dpAbove(p, h);
                    for (unsigned sb = 0; sb < 2; ++sb) {
                        for (unsigned b = 0; b <= h; ++b)
                            tp[(h * 2 + sb) * (levels + 1) + b] =
                                iterm.rowAt(h, sb, b)[col];
                    }
                }

                trans[0] = 0.0;
                for (std::size_t h = 0; h < levels; ++h) {
                    const std::size_t half = std::size_t{1} << h;
                    kern.expandLevel(
                        trans.data(), half,
                        &tp[(h * 2 + 0) * (levels + 1)],
                        &tp[(h * 2 + 1) * (levels + 1)], pcnt.data(),
                        static_cast<unsigned>(h));
                }

                // relaxRow keeps the incumbent on exact ties, which
                // equals better() here because the frontier is sorted:
                // within a chunk p strictly ascends, so the incumbent
                // is always the lower-index candidate.
                kern.relaxRow(best.data(), prev.data(), trans.data(),
                              cost[p], p, states);
            }
        });

        const std::size_t sgrain = pool.grainFor(states);
        pool.parallelFor(0, states, sgrain, [&](std::size_t s_begin,
                                                std::size_t s_end) {
            for (std::size_t s = s_begin; s < s_end; ++s) {
                double best = chunk_best[0][s];
                std::uint32_t best_prev = chunk_prev[0][s];
                for (std::size_t ci = 1; ci < chunks; ++ci) {
                    if (better(chunk_best[ci][s], chunk_prev[ci][s],
                               best, best_prev)) {
                        best = chunk_best[ci][s];
                        best_prev = chunk_prev[ci][s];
                    }
                }
                next[s] = best + intra_l[s];
                parent_l[s] = best_prev;
            }
        });
        cost.swap(next);
    }

    out.result = assemblePlan(levels, num_layers, states, cost, parent);
    out.result.transitionsEvaluated = total_evaluated;
    return out;
}

/**
 * Final argmin over the last layer's costs (ascending s with strict <
 * == the dp-heavier tie-break) plus parent-chain plan reconstruction,
 * shared by every table engine. `parent` is the flat
 * [layer * states + state] predecessor table.
 */
HierarchicalResult
assemblePlan(std::size_t levels, std::size_t num_layers,
             std::uint32_t states, const std::vector<double> &cost,
             const std::vector<std::uint32_t> &parent)
{
    HierarchicalResult result;
    result.plan.levels.assign(levels,
                              LevelPlan(num_layers, Parallelism::kData));

    std::uint32_t state = 0;
    double best = cost[0];
    for (std::uint32_t s = 1; s < states; ++s) {
        if (cost[s] < best) {
            best = cost[s];
            state = s;
        }
    }

    result.commBytes = best;
    for (std::size_t l = num_layers; l-- > 0;) {
        assignLayerFromState(result.plan, l, state);
        if (l > 0)
            state = parent[l * states + state];
    }
    return result;
}

} // namespace

SearchEngine
searchEngineFromName(const std::string &name)
{
    if (name == "auto")
        return SearchEngine::kAuto;
    if (name == "dense")
        return SearchEngine::kDense;
    if (name == "sparse")
        return SearchEngine::kSparse;
    if (name == "beam")
        return SearchEngine::kBeam;
    if (name == "astar")
        return SearchEngine::kAStar;
    util::fatal("unknown search engine '" + name +
                "' (auto|dense|sparse|beam|astar)");
}

OptimalPartitioner::OptimalPartitioner(const CommModel &model)
    : model_(&model)
{}

double
OptimalPartitioner::intraCost(std::size_t layer, std::uint32_t v,
                              std::size_t levels) const
{
    double total = 0.0;
    for (std::size_t h = 0; h < levels; ++h) {
        total += model_->levelWeight(h) *
                 model_->intraBytesAt(layer, choiceAt(v, h),
                                      dpAbove(v, h), mpAbove(v, h));
    }
    return total;
}

double
OptimalPartitioner::interCost(std::size_t layer, std::uint32_t v_l,
                              std::uint32_t v_next,
                              std::size_t levels) const
{
    double total = 0.0;
    for (std::size_t h = 0; h < levels; ++h) {
        total += model_->levelWeight(h) *
                 model_->interBytesAt(layer, choiceAt(v_l, h),
                                      choiceAt(v_next, h),
                                      dpAbove(v_l, h),
                                      dpAbove(v_next, h));
    }
    return total;
}

std::vector<double>
OptimalPartitioner::intraTable(std::size_t levels) const
{
    const std::size_t num_layers = model_->numLayers();
    const std::size_t states = std::size_t{1} << levels;
    // Flat per-layer intra tables: intra[l * states + s], each entry
    // summed exactly as intraCost does (2^h pair weighting, level
    // ascending) so every engine stays bit-identical to the reference.
    std::vector<double> intra(num_layers * states);
    util::ThreadPool::global().parallelFor(
        0, num_layers * states, states,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                intra[i] = intraCost(i / states,
                                     static_cast<std::uint32_t>(i % states),
                                     levels);
        });
    return intra;
}

HierarchicalResult
OptimalPartitioner::partition(std::size_t levels) const
{
    return partition(levels, SearchOptions{});
}

HierarchicalResult
OptimalPartitioner::partition(std::size_t levels,
                              const SearchOptions &options) const
{
    SearchEngine engine = options.engine;
    if (engine == SearchEngine::kAuto)
        engine = levels <= kDenseMax ? SearchEngine::kDense
                                     : SearchEngine::kAStar;
    // Non-chain networks route to the series-parallel decomposition
    // search (core/series_parallel.hh); every engine stays exact there.
    // Chains never enter it, so every historical chain result is
    // produced by the exact same code as before.
    if (!model_->network().isChain())
        return searchSeriesParallel(*model_, levels, engine);
    switch (engine) {
    case SearchEngine::kDense:
        return partitionDense(levels);
    case SearchEngine::kSparse:
        return partitionSparse(levels);
    case SearchEngine::kBeam:
        return partitionBeam(levels, options);
    case SearchEngine::kAStar:
        return partitionAStar(levels);
    case SearchEngine::kAuto:
        break;
    }
    util::fatal("OptimalPartitioner: unresolved search engine");
}

std::vector<double>
OptimalPartitioner::suffixTable(std::size_t levels) const
{
    if (!model_->network().isChain())
        util::fatal("OptimalPartitioner::suffixTable is chain-shaped "
                    "(per-transition terms); DAG networks have no "
                    "single successor per layer");
    if (levels > kWideMax)
        util::fatal("OptimalPartitioner: suffix bound capped at H = 16");
    const std::size_t num_layers = model_->numLayers();
    HYPAR_ASSERT(num_layers > 0, "suffix bound of an empty network");
    return suffixBound(*model_, levels, num_layers, intraTable(levels),
                       buildInterTables(*model_, levels));
}

HierarchicalResult
OptimalPartitioner::partitionDense(std::size_t levels) const
{
    if (levels > kDenseMax)
        util::fatal("OptimalPartitioner: 4^H transitions explode past "
                    "H = 10 (use the sparse or beam engine)");

    // Below H = 3 the factored table holds more entries than the DP has
    // transitions, so the naive loop is cheaper. Results are identical.
    if (levels <= 2)
        return partitionReference(levels);

    const std::size_t num_layers = model_->numLayers();
    HYPAR_ASSERT(num_layers > 0, "partitioning an empty network");

    const std::uint32_t states = 1u << levels;
    auto &pool = util::ThreadPool::global();
    // Fixed chunking => identical chunk grids (and thus identical
    // per-state results) for every thread count; see thread_pool.hh.
    const std::size_t grain = pool.grainFor(states);

    const std::vector<double> intra = intraTable(levels);
    const simd::Kernels &kern = simd::activeKernels();
    const std::vector<std::uint8_t> pcnt = buildPcnt(states);

    // Chain DP: cost[s] = best total with layer l in level vector s.
    std::vector<double> cost(intra.begin(), intra.begin() + states);
    std::vector<std::uint32_t> parent(num_layers * states, 0);

    std::vector<double> next(states);
    for (std::size_t l = 1; l < num_layers; ++l) {
        // All inter terms of the l-1 -> l transition, keyed by level.
        const InterTermTable iterm(*model_, l - 1, levels);
        const double *intra_l = &intra[l * states];
        std::uint32_t *parent_l = &parent[l * states];

        pool.parallelFor(0, states, grain, [&](std::size_t s_begin,
                                               std::size_t s_end) {
            // trans[p] = interCost(l-1, p, s), built for all 2^H
            // predecessor states at once by expanding one level bit at
            // a time: after step h, trans[p_low] holds the partial sum
            // of the first h terms for the length-h prefix p_low. The
            // additions run in the same level-ascending order as
            // interCost, keeping every partial sum bit-identical.
            std::array<double, std::size_t{1} << kDenseMax> trans;
            std::array<const double *, kDenseMax> rows;

            for (std::size_t s = s_begin; s < s_end; ++s) {
                const auto sv = static_cast<std::uint32_t>(s);
                for (std::size_t h = 0; h < levels; ++h)
                    rows[h] = iterm.rowAt(h, (sv >> h) & 1u,
                                          dpAbove(sv, h));

                trans[0] = 0.0;
                for (std::size_t h = 0; h < levels; ++h) {
                    const double *row = rows[h];
                    const std::size_t half = std::size_t{1} << h;
                    kern.expandLevel(trans.data(), half, row,
                                     row + (levels + 1), pcnt.data(),
                                     static_cast<unsigned>(h));
                }

                // argminAdd's ascending strict < implements the shared
                // tie-break rule (core/tie_break.hh): dp-heavier
                // predecessor wins exact ties.
                double best;
                const std::uint32_t best_prev = kern.argminAdd(
                    cost.data(), trans.data(), states, &best);
                next[s] = best + intra_l[s];
                parent_l[s] = best_prev;
            }
        });
        cost.swap(next);
    }

    HierarchicalResult result =
        assemblePlan(levels, num_layers, states, cost, parent);
    result.transitionsEvaluated = static_cast<std::uint64_t>(states) *
                                  states * (num_layers - 1);
    result.stats.expanded =
        static_cast<std::uint64_t>(states) * num_layers;
    result.stats.certifiedExact = true; // exhaustive
    result.stats.widthUsed = states;
    // pruned stays 0: the dense engine skips no transitions, so its
    // dominance-skipped count is genuinely zero.
    return result;
}

HierarchicalResult
OptimalPartitioner::partitionSparse(std::size_t levels) const
{
    if (levels > kWideMax)
        util::fatal("OptimalPartitioner: sparse engine capped at H = 16");
    if (levels <= 2)
        return partitionReference(levels);

    const std::size_t num_layers = model_->numLayers();
    HYPAR_ASSERT(num_layers > 0, "partitioning an empty network");

    const std::uint32_t states = 1u << levels;
    auto &pool = util::ThreadPool::global();
    const std::size_t grain = pool.grainFor(states);
    const std::size_t chunks = (states + grain - 1) / grain;

    const std::vector<double> intra = intraTable(levels);

    const std::vector<std::uint16_t> pcol = buildPcol(levels);

    std::vector<double> cost(intra.begin(), intra.begin() + states);
    std::vector<std::uint32_t> parent(num_layers * states, 0);
    std::vector<double> next(states);
    std::vector<std::uint32_t> order(states);
    std::vector<std::uint64_t> evaluated(chunks);
    std::uint64_t total_evaluated = 0;

    for (std::size_t l = 1; l < num_layers; ++l) {
        const InterTermTable iterm(*model_, l - 1, levels);
        const double *intra_l = &intra[l * states];
        std::uint32_t *parent_l = &parent[l * states];

        // Per-level ingredients of the lower bound below.
        const std::vector<double> rowmin = targetRowMins(iterm, levels);

        // Predecessors in ascending (cost, index): the scan below then
        // visits candidates best-first under the shared tie-break
        // order, which is what makes the early break exact.
        std::iota(order.begin(), order.end(), 0u);
        std::sort(order.begin(), order.end(),
                  [&](std::uint32_t x, std::uint32_t y) {
                      return better(cost[x], x, cost[y], y);
                  });

        std::fill(evaluated.begin(), evaluated.end(), 0);
        pool.parallelFor(0, states, grain, [&](std::size_t s_begin,
                                               std::size_t s_end) {
            std::uint64_t &count = evaluated[s_begin / grain];
            std::array<const double *, kWideMax> rows;
            std::array<double, kWideMax> rmins;

            for (std::size_t s = s_begin; s < s_end; ++s) {
                const auto sv = static_cast<std::uint32_t>(s);
                for (std::size_t h = 0; h < levels; ++h) {
                    const unsigned sb = (sv >> h) & 1u;
                    const unsigned b = dpAbove(sv, h);
                    rows[h] = iterm.rowAt(h, sb, b);
                    rmins[h] = rowmin[(h * 2 + sb) * (levels + 1) + b];
                }
                // Floating-point lower bound on any transition into s,
                // accumulated in the same level-ascending order as the
                // real transition sums. Rounding is monotone, so
                // lb <= trans(p, s) holds in float arithmetic for every
                // p, making the break below exact (and the surviving
                // argmin bit-identical to the dense DP).
                double lb = 0.0;
                for (std::size_t h = 0; h < levels; ++h)
                    lb += rmins[h];

                double best = std::numeric_limits<double>::infinity();
                std::uint32_t best_prev = 0;
                for (std::uint32_t k = 0; k < states; ++k) {
                    const std::uint32_t p = order[k];
                    if (cost[p] + lb > best)
                        break; // every later p costs at least as much
                    double t = 0.0;
                    const std::uint16_t *pc = &pcol[std::size_t{p} *
                                                    levels];
                    for (std::size_t h = 0; h < levels; ++h)
                        t += rows[h][pc[h]];
                    ++count;
                    const double c = cost[p] + t;
                    if (better(c, p, best, best_prev)) {
                        best = c;
                        best_prev = p;
                    }
                }
                next[s] = best + intra_l[s];
                parent_l[s] = best_prev;
            }
        });
        for (std::uint64_t e : evaluated)
            total_evaluated += e;
        cost.swap(next);
    }

    HierarchicalResult result =
        assemblePlan(levels, num_layers, states, cost, parent);
    result.transitionsEvaluated = total_evaluated;
    result.stats.expanded =
        static_cast<std::uint64_t>(states) * num_layers;
    result.stats.certifiedExact = true; // exact: dominance-only pruning
    result.stats.widthUsed = states;
    // Every node stays expanded (the engine is exact), so `pruned`
    // reports the work it skipped instead: the dominance-skipped
    // transitions the early break never evaluated, complementing
    // transitionsEvaluated to the dense engine's 4^H * (L-1) bill.
    result.stats.pruned = static_cast<std::uint64_t>(states) * states *
                              (num_layers - 1) -
                          total_evaluated;
    return result;
}

HierarchicalResult
OptimalPartitioner::partitionBeam(std::size_t levels,
                                  const SearchOptions &options) const
{
    if (levels > kWideMax)
        util::fatal("OptimalPartitioner: beam engine capped at H = 16");
    if (levels <= 2)
        return partitionReference(levels);

    const std::size_t num_layers = model_->numLayers();
    HYPAR_ASSERT(num_layers > 0, "partitioning an empty network");
    const std::size_t states = std::size_t{1} << levels;

    WideTables tables;
    tables.intra = intraTable(levels);
    tables.inter = buildInterTables(*model_, levels);
    tables.suffix =
        suffixBound(*model_, levels, num_layers, tables.intra,
                    tables.inter);

    // Width policy: an explicit width runs one fixed pass; width 0 is
    // adaptive growth by default (legacy fixed default with
    // adaptiveBeam off). See SearchOptions.
    const bool adaptive = options.beamWidth == 0 && options.adaptiveBeam;
    std::size_t width;
    if (options.beamWidth > 0)
        width = std::min(options.beamWidth, states);
    else if (adaptive)
        width = std::min(options.beamWidthStart > 0
                             ? options.beamWidthStart
                             : kAdaptiveBeamStart,
                         states);
    else
        width =
            std::min(std::max(kDefaultBeamWidth, states / 16), states);

    std::uint64_t total_evaluated = 0;
    for (;;) {
        BeamOutcome pass = beamPass(levels, num_layers, width, tables);
        total_evaluated += pass.result.transitionsEvaluated;
        // The certificate: every state any frontier dropped had
        // f = g + h strictly above the achieved cost (with the slack
        // absorbing float re-association), so no pruned path can beat
        // or tie the returned plan — which therefore equals the dense
        // DP's, cost and plan. Vacuously true when nothing was
        // dropped (width >= 2^H: the beam is exhaustive).
        const bool certified =
            pass.minDroppedF > inflate(pass.result.commBytes);
        if (!adaptive || certified || width >= states) {
            HierarchicalResult result = std::move(pass.result);
            result.transitionsEvaluated = total_evaluated;
            result.stats.expanded = pass.expanded;
            result.stats.pruned = pass.dropped;
            result.stats.certifiedExact = certified;
            result.stats.widthUsed = width;
            return result;
        }
        width = std::min(width * kAdaptiveBeamGrowth, states);
    }
}

HierarchicalResult
OptimalPartitioner::partitionAStar(std::size_t levels) const
{
    if (levels > kWideMax)
        util::fatal("OptimalPartitioner: A* engine capped at H = 16");
    if (levels <= 2)
        return partitionReference(levels);

    const std::size_t num_layers = model_->numLayers();
    HYPAR_ASSERT(num_layers > 0, "partitioning an empty network");

    const std::uint32_t states = 1u << levels;
    auto &pool = util::ThreadPool::global();
    const std::size_t grain = pool.grainFor(states);
    const std::size_t chunks = (states + grain - 1) / grain;

    WideTables tables;
    tables.intra = intraTable(levels);
    tables.inter = buildInterTables(*model_, levels);
    tables.suffix =
        suffixBound(*model_, levels, num_layers, tables.intra,
                    tables.inter);

    // Incumbent: one narrow beam pass over the same tables. Its cost
    // is an *achieved* plan cost in the DP's own float semantics, so
    // it upper-bounds the optimum; after the (1 + slack) inflation,
    // `g + h > ub` proves no completion through the node can beat —
    // or exactly tie — the optimum, which is what keeps the surviving
    // search bit-identical to the dense DP (header, "admissible
    // suffix bound").
    const BeamOutcome incumbent = beamPass(
        levels, num_layers,
        std::min<std::size_t>(kIncumbentBeamWidth, states), tables);
    const double ub = inflate(incumbent.result.commBytes);

    const std::vector<std::uint16_t> pcol = buildPcol(levels);
    // Popcount class of every state (number of mp bits).
    std::vector<std::uint8_t> pclass(states);
    for (std::uint32_t s = 0; s < states; ++s)
        pclass[s] = static_cast<std::uint8_t>(std::popcount(s));

    // Level-pair screen geometry. Levels are grouped in pairs
    // (0,1), (2,3), ...; per scanned node a small table P holds every
    // fl(rows[2j][colA] + rows[2j+1][colB]) over the *admissible*
    // columns of both levels (a <= h), so the per-candidate screen
    // sums `pairs` table entries instead of `levels` row entries. A
    // level-h row has only 2 * (h + 1) admissible columns, so the
    // whole table is ~3k doubles at H = 16 — it lives in L1 while the
    // packed candidate codes below stream past it. `rankOf` compacts
    // a full column index (pb * (H+1) + a) to pb * (h+1) + a.
    const std::size_t pairs = levels / 2;
    const bool odd_levels = (levels & 1) != 0;
    const std::size_t c2stride = pairs + (odd_levels ? 1 : 0);
    std::array<std::size_t, kWideMax / 2> pair_off{};
    std::array<std::size_t, kWideMax / 2> pair_wb{};
    std::size_t pair_total = 0;
    for (std::size_t j = 0; j < pairs; ++j) {
        const std::size_t wa = 2 * (2 * j + 1);
        const std::size_t wb = 2 * (2 * j + 2);
        pair_off[j] = pair_total;
        pair_wb[j] = wb;
        pair_total += wa * wb;
    }
    // colTab[h][r]: full column index of compact rank r at level h.
    std::vector<std::uint16_t> colTab(levels * 2 * (levels + 1));
    for (std::size_t h = 0; h < levels; ++h)
        for (std::size_t r = 0; r < 2 * (h + 1); ++r)
            colTab[h * 2 * (levels + 1) + r] = static_cast<std::uint16_t>(
                r <= h ? r : (levels + 1) + (r - (h + 1)));
    const auto rankOf = [&](std::uint16_t col, std::size_t h) {
        const std::uint16_t pb = col >= levels + 1 ? 1 : 0;
        const std::uint16_t a =
            static_cast<std::uint16_t>(col - pb * (levels + 1));
        return static_cast<std::uint16_t>(pb * (h + 1) + a);
    };
    // pcode2[p * c2stride + j]: p's flattened (rankA, rankB) into pair
    // j's table; the odd tail level's full column rides in the last
    // slot. Layer-invariant, packed into scan order each layer.
    std::vector<std::uint16_t> pcode2(std::size_t{states} * c2stride);
    for (std::uint32_t p = 0; p < states; ++p) {
        const std::uint16_t *pc = &pcol[std::size_t{p} * levels];
        std::uint16_t *code = &pcode2[std::size_t{p} * c2stride];
        for (std::size_t j = 0; j < pairs; ++j)
            code[j] = static_cast<std::uint16_t>(
                rankOf(pc[2 * j], 2 * j) * pair_wb[j] +
                rankOf(pc[2 * j + 1], 2 * j + 1));
        if (odd_levels)
            code[pairs] = pc[levels - 1];
    }

    const std::vector<double> &intra = tables.intra;
    std::vector<double> cost(intra.begin(), intra.begin() + states);
    std::vector<std::uint32_t> parent(num_layers * states, 0);
    std::vector<double> next(states);
    std::vector<std::uint8_t> dead(states, 0);
    std::vector<std::uint32_t> alive;
    // Class-conditioned predecessor keys: a target class is the
    // triple (top two level bits, popcount) — keyC[cls * states + p]
    // = cost[p] + (a lower bound on trans(p, s) valid for every
    // target s in the class), plus one predecessor ordering per
    // class. Conditioning on the two top bits on top of the popcount
    // pins the two heaviest addends (weights 2^(H-1) + 2^(H-2), ~75%
    // of the total level weight) to their exact values in the bound.
    const std::size_t nclass = 4 * (levels + 1);
    const auto classOf = [&](std::uint32_t sv) {
        const std::uint32_t tt = (sv >> (levels - 2)) & 3u;
        return tt * (levels + 1) +
               static_cast<std::size_t>(std::popcount(sv));
    };
    std::vector<double> keyC(nclass * states);
    std::vector<double> min_keyC(nclass);
    std::vector<std::size_t> navailC(nclass);
    // Scan-order packing of each class's sorted candidates: key, g,
    // state id, and pair-screen codes laid out contiguously in the
    // order the scan walks them. The hot loop then streams sequential
    // cache lines instead of gathering cost/key/column data from
    // state-indexed tables — the gathers, not the arithmetic, were
    // the measured bottleneck of the predecessor scan.
    std::vector<double> ordKey(nclass * std::size_t{states});
    std::vector<double> ordCost(nclass * std::size_t{states});
    std::vector<std::uint32_t> ordP(nclass * std::size_t{states});
    std::vector<std::uint16_t> ordC2(nclass * std::size_t{states} *
                                     c2stride);
    std::vector<std::uint64_t> evaluated(chunks);
    std::uint64_t total_evaluated = incumbent.result.transitionsEvaluated;
    std::uint64_t expanded = 0;
    std::uint64_t pruned = 0;
    std::size_t width_used = 0;

    // Layer-0 frontier: a state whose certified completable cost
    // g + h already exceeds the incumbent can never be on an optimal
    // path; everything else stays live.
    alive.reserve(states);
    for (std::uint32_t s = 0; s < states; ++s)
        if (!(cost[s] + tables.suffix[s] > ub))
            alive.push_back(s);
    expanded += alive.size();
    pruned += states - alive.size();
    width_used = std::max(width_used, alive.size());

    for (std::size_t l = 1; l < num_layers; ++l) {
        const InterTermTable &iterm = tables.inter[l - 1];
        const double *intra_l = &intra[l * states];
        const double *suffix_l = &tables.suffix[l * states];
        std::uint32_t *parent_l = &parent[l * states];

        // sAdd[(h * cols + col) * cols + sb * (H+1) + c]: the *exact*
        // level-h addend rowAt(h, sb, h - c)[col] of a transition whose
        // target picks sb at level h with exactly c mp bits below it,
        // seen from source column `col`. Slots with c > h stay +inf
        // (unreachable). Indexing the factored table by the target's
        // exact dpAbove count — instead of min-relaxing it away as the
        // old per-column minima did — is what conditions the class key
        // DP below on *both* endpoint popcounts.
        const std::size_t cols = 2 * (levels + 1);
        std::vector<double> sAdd(
            levels * cols * cols,
            std::numeric_limits<double>::infinity());
        for (std::size_t h = 0; h < levels; ++h)
            for (unsigned sb = 0; sb < 2; ++sb)
                for (unsigned b = 0; b <= h; ++b) {
                    const double *row = iterm.rowAt(h, sb, b);
                    const std::size_t c = h - b;
                    for (std::size_t col = 0; col < cols; ++col)
                        sAdd[(h * cols + col) * cols +
                             sb * (levels + 1) + c] = row[col];
                }

        // Assignment-aware predecessor keys, one per target class. A
        // target with pc mp bits forces *some* pc levels onto the
        // mp-side column of the factored table, so for each live
        // predecessor p a tiny count DP over levels —
        //
        //   f[c] after level h = cheapest transition prefix through
        //                        levels 0..h-1 at p's columns, over
        //                        targets with exactly c mp bits there
        //
        // — yields keyC[pc][p] = cost[p] + f[pc], a lower bound on
        // cost[p] + trans(p, s) for every target s with popcount pc.
        // The DP steps through the sAdd table, so every addend is the
        // *exact* factored entry for the target's (sb, dpAbove) at
        // that level — the pair-conditioned bound — and each realized
        // f is a level-ascending float sum of a real target's addends
        // with min-propagation, so the bound is exact in float.
        // Scanning each target's class order makes `keyC > best` an
        // early break that knows mp-heavy targets cannot be reached
        // for free — the per-level row minima alone collapse to ~0
        // because every level can pretend another one pays.
        HYPAR_ASSERT(!alive.empty(),
                     "A*: the bound pruned every live state");
        const std::size_t na = alive.size();
        const std::size_t agrain =
            std::max<std::size_t>(1, na / (4 * pool.parallelism()));
        pool.parallelFor(0, na, agrain, [&](std::size_t a_begin,
                                            std::size_t a_end) {
            std::array<double, kWideMax + 1> f;
            for (std::size_t i = a_begin; i < a_end; ++i) {
                const std::uint32_t p = alive[i];
                const std::uint16_t *pc = &pcol[std::size_t{p} * levels];
                f[0] = 0.0;
                for (std::size_t h = 0; h + 2 < levels; ++h) {
                    const double *sa0 =
                        &sAdd[(h * cols + pc[h]) * cols];
                    const double *sa1 = sa0 + (levels + 1);
                    f[h + 1] = f[h] + sa1[h];
                    for (std::size_t c = h; c > 0; --c)
                        f[c] = std::min(f[c] + sa0[c],
                                        f[c - 1] + sa1[c - 1]);
                    f[0] += sa0[0];
                }
                // Finalize per class: f covers levels 0..H-3; the
                // class fixes the two top bits (t14, t15) and the mp
                // count below them, so both heavy addends are added
                // exactly — still in level-ascending order.
                const double cost_p = cost[p];
                const double *sb0 = &sAdd[((levels - 2) * cols +
                                           pc[levels - 2]) *
                                          cols];
                const double *sb1 = sb0 + (levels + 1);
                const double *sa0 = &sAdd[((levels - 1) * cols +
                                           pc[levels - 1]) *
                                          cols];
                const double *sa1 = sa0 + (levels + 1);
                for (std::size_t tt = 0; tt < 4; ++tt) {
                    const std::size_t t14 = tt & 1;
                    const std::size_t t15 = tt >> 1;
                    const double *sb = t14 ? sb1 : sb0;
                    const double *sa = t15 ? sa1 : sa0;
                    double *key = &keyC[tt * (levels + 1) * states];
                    for (std::size_t cs = t14 + t15;
                         cs + 2 <= levels + t14 + t15; ++cs) {
                        const std::size_t cl = cs - t14 - t15;
                        key[cs * states + p] =
                            cost_p +
                            ((f[cl] + sb[cl]) + sa[cl + t14]);
                    }
                }
            }
        });
        // The scan's prefix cut accepts a candidate only while
        // (key + intra_l[s]) + suffix_l[s] <= ub for its node, so a
        // key beyond ub - min_s(intra + suffix) + margin can never be
        // reached by *any* node of the class — sorting and packing it
        // is pure waste. The 1e-6-relative margin dwarfs the ~4-ulp
        // float drift between the two association orders, so every
        // excluded key provably fails the scan predicate for every
        // node; over-inclusion near the cut only lengthens the sorted
        // prefix, never changes what the scan visits.
        std::vector<double> minRest(
            nclass, std::numeric_limits<double>::infinity());
        for (std::uint32_t s = 0; s < states; ++s) {
            double &m = minRest[classOf(s)];
            m = std::min(m, intra_l[s] + suffix_l[s]);
        }
        std::vector<double> thrC(nclass);
        for (std::size_t c = 0; c < nclass; ++c)
            thrC[c] = std::isfinite(ub)
                          ? (ub - minRest[c]) + 1e-6 * std::abs(ub)
                          : std::numeric_limits<double>::infinity();
        pool.parallelFor(
            0, nclass, 1, [&](std::size_t c_begin, std::size_t c_end) {
                std::vector<std::pair<double, std::uint32_t>> tmp(na);
                for (std::size_t c = c_begin; c < c_end; ++c) {
                    // Classes whose popcount is inconsistent with
                    // their top-bit pattern contain no targets; skip
                    // their sort and leave them unused.
                    const std::size_t tt = c / (levels + 1);
                    const std::size_t cs = c % (levels + 1);
                    const std::size_t tbits =
                        (tt & 1) + (tt >> 1);
                    if (cs < tbits || cs - tbits > levels - 2) {
                        min_keyC[c] =
                            std::numeric_limits<double>::infinity();
                        navailC[c] = 0;
                        continue;
                    }
                    const double *keyc = &keyC[c * states];
                    const double thr = thrC[c];
                    double mk = std::numeric_limits<double>::infinity();
                    std::size_t m = 0;
                    for (std::size_t i = 0; i < na; ++i) {
                        const std::uint32_t p = alive[i];
                        const double key = keyc[p];
                        mk = std::min(mk, key);
                        if (key <= thr)
                            tmp[m++] = {key, p};
                    }
                    min_keyC[c] = mk;
                    navailC[c] = m;
                    // std::pair's lexicographic order (key, then state
                    // id) is exactly better()'s total order.
                    std::sort(tmp.begin(), tmp.begin() + m);
                    double *okey = &ordKey[c * na];
                    double *ocost = &ordCost[c * na];
                    std::uint32_t *op = &ordP[c * na];
                    std::uint16_t *oc2 = &ordC2[c * na * c2stride];
                    for (std::size_t k = 0; k < m; ++k) {
                        const std::uint32_t p = tmp[k].second;
                        okey[k] = tmp[k].first;
                        ocost[k] = cost[p];
                        op[k] = p;
                        std::memcpy(&oc2[k * c2stride],
                                    &pcode2[std::size_t{p} * c2stride],
                                    c2stride * sizeof(std::uint16_t));
                    }
                }
            });
        // Cheapest live g per predecessor class: pairs with the
        // per-target pred-class bound lbc[] below for a node precheck
        // that knows *which* class the cheap predecessors live in.
        std::array<double, kWideMax + 1> minCostC;
        minCostC.fill(std::numeric_limits<double>::infinity());
        for (const std::uint32_t p : alive) {
            double &m = minCostC[pclass[p]];
            m = std::min(m, cost[p]);
        }

        std::fill(evaluated.begin(), evaluated.end(), 0);
        pool.parallelFor(0, states, grain, [&](std::size_t s_begin,
                                               std::size_t s_end) {
            std::uint64_t &count = evaluated[s_begin / grain];
            std::array<const double *, kWideMax> rows;
            std::array<double, kWideMax + 1> lbc;
            std::array<double, 2976> P; // level-pair sums, H = 16 max

            for (std::size_t s = s_begin; s < s_end; ++s) {
                const auto sv = static_cast<std::uint32_t>(s);
                for (std::size_t h = 0; h < levels; ++h) {
                    const unsigned sb = (sv >> h) & 1u;
                    const unsigned b = dpAbove(sv, h);
                    rows[h] = iterm.rowAt(h, sb, b);
                }

                const std::size_t pc_s = classOf(sv);

                // Cheap node precheck first: if even the cheapest
                // live class key plus this node's intra and suffix
                // bound cannot reach the incumbent, prune the node
                // without touching its rows at all.
                if ((min_keyC[pc_s] + intra_l[s]) + suffix_l[s] > ub) {
                    next[s] = std::numeric_limits<double>::infinity();
                    parent_l[s] = 0;
                    dead[s] = 1;
                    continue;
                }

                // The target-side mirror of keyC: a count DP over the
                // *predecessor's* mp bits through this target's exact
                // rows — lbc[c] lower-bounds trans(p, s) for every
                // predecessor p with popcount c. Same float-exactness
                // argument as keyC (level-ascending sums of real
                // addends with min-propagation), and strictly tighter
                // than the old per-row minima, which let every level
                // pick its column independently.
                lbc[0] = 0.0;
                for (std::size_t h = 0; h < levels; ++h) {
                    const double *r = rows[h];
                    const double *r1 = r + (levels + 1);
                    lbc[h + 1] = lbc[h] + r1[0];
                    for (std::size_t c = h; c > 0; --c)
                        lbc[c] = std::min(lbc[c] + r[h - c],
                                          lbc[c - 1] + r1[h - c + 1]);
                    lbc[0] += r[h];
                }

                // Second precheck: the cheapest live g *within each
                // predecessor class*, plus that class's transition
                // bound, keyed to this node. Each chain is single
                // additions dominated addend-wise by a real
                // relaxation, so the comparison is safe.
                double pre = std::numeric_limits<double>::infinity();
                for (std::size_t c = 0; c <= levels; ++c)
                    pre = std::min(pre, minCostC[c] + lbc[c]);
                if ((pre + intra_l[s]) + suffix_l[s] > ub) {
                    next[s] = std::numeric_limits<double>::infinity();
                    parent_l[s] = 0;
                    dead[s] = 1;
                    continue;
                }

                const double *okey = &ordKey[pc_s * na];
                const double *ocost = &ordCost[pc_s * na];
                const std::uint32_t *op = &ordP[pc_s * na];
                const std::uint16_t *oc2 = &ordC2[pc_s * na * c2stride];

                // Incumbent break, hoisted out of the loop: the packed
                // keys ascend, so the first candidate whose bound
                // chain overshoots ub is a fixed prefix boundary —
                // binary-search it with the *same* float expression
                // the per-candidate break used. Cutting the scan there
                // may leave this node's cost above its dense value,
                // but never for a node on an optimal path (whose dense
                // argmin predecessor chain stays <= ub and therefore
                // sits inside the prefix).
                std::size_t blo = 0, bhi = navailC[pc_s];
                while (blo < bhi) {
                    const std::size_t mid = blo + (bhi - blo) / 2;
                    if ((okey[mid] + intra_l[s]) + suffix_l[s] > ub)
                        bhi = mid;
                    else
                        blo = mid + 1;
                }
                const std::size_t kmax = blo;

                // Level-pair screen table: every admissible two-level
                // partial sum fl(rows[2j][colA] + rows[2j+1][colB]),
                // built once per node (~3k adds) when the scan prefix
                // is long enough to amortize it, then hit `pairs`
                // times per candidate instead of `levels`.
                const bool use_pairs = kmax >= kPairScreenMin;
                if (use_pairs) {
                    for (std::size_t j = 0; j < pairs; ++j) {
                        const double *rowA = rows[2 * j];
                        const double *rowB = rows[2 * j + 1];
                        const std::uint16_t *ctA =
                            &colTab[(2 * j) * 2 * (levels + 1)];
                        const std::uint16_t *ctB =
                            &colTab[(2 * j + 1) * 2 * (levels + 1)];
                        const std::size_t wa = 2 * (2 * j + 1);
                        const std::size_t wb = pair_wb[j];
                        double *dst = &P[pair_off[j]];
                        for (std::size_t ra = 0; ra < wa; ++ra) {
                            const double va = rowA[ctA[ra]];
                            for (std::size_t rb = 0; rb < wb; ++rb)
                                dst[ra * wb + rb] = va + rowB[ctB[rb]];
                        }
                    }
                }
                const double *tail_row =
                    odd_levels ? rows[levels - 1] : nullptr;

                double best = std::numeric_limits<double>::infinity();
                std::uint32_t best_prev = 0;
                for (std::size_t k = 0; k < kmax; ++k) {
                    if (okey[k] > best)
                        break; // every later p bounds at least as high
                    // Fast screen: re-associate the same non-negative
                    // addends (two-level pair sums when the table is
                    // built, four independent accumulators otherwise).
                    // The re-associated value differs from the
                    // canonical ascending-order sum by < 2H * 2^-53
                    // relative, so deflating it by kScreenSlack makes
                    // `cost + t_deflated > best` a proof the candidate
                    // loses; only the few candidates near the
                    // incumbent re-run the exact level-ascending sum
                    // that bit-identity requires.
                    double tfast;
                    if (use_pairs) {
                        const std::uint16_t *code = &oc2[k * c2stride];
                        double t0 = 0.0, t1 = 0.0;
                        std::size_t j = 0;
                        for (; j + 2 <= pairs; j += 2) {
                            t0 += P[pair_off[j] + code[j]];
                            t1 += P[pair_off[j + 1] + code[j + 1]];
                        }
                        if (j < pairs)
                            t0 += P[pair_off[j] + code[j]];
                        if (tail_row)
                            t1 += tail_row[code[pairs]];
                        tfast = t0 + t1;
                    } else {
                        const std::uint16_t *pc =
                            &pcol[std::size_t{op[k]} * levels];
                        double t0 = 0.0, t1 = 0.0, t2 = 0.0, t3 = 0.0;
                        std::size_t h = 0;
                        for (; h + 4 <= levels; h += 4) {
                            t0 += rows[h][pc[h]];
                            t1 += rows[h + 1][pc[h + 1]];
                            t2 += rows[h + 2][pc[h + 2]];
                            t3 += rows[h + 3][pc[h + 3]];
                        }
                        for (; h < levels; ++h)
                            t0 += rows[h][pc[h]];
                        tfast = (t0 + t1) + (t2 + t3);
                    }
                    ++count;
                    if (ocost[k] + tfast * kScreenSlack > best)
                        continue;
                    const std::uint32_t p = op[k];
                    const std::uint16_t *pc =
                        &pcol[std::size_t{p} * levels];
                    double t = 0.0;
                    for (std::size_t hh = 0; hh < levels; ++hh)
                        t += rows[hh][pc[hh]];
                    const double c = ocost[k] + t;
                    if (better(c, p, best, best_prev)) {
                        best = c;
                        best_prev = p;
                    }
                }
                const double g = best + intra_l[s];
                next[s] = g;
                parent_l[s] = best_prev;
                dead[s] = g + suffix_l[s] > ub ? 1 : 0;
            }
        });

        for (std::uint64_t e : evaluated)
            total_evaluated += e;
        alive.clear();
        for (std::uint32_t s = 0; s < states; ++s)
            if (!dead[s])
                alive.push_back(s);
        expanded += alive.size();
        pruned += states - alive.size();
        width_used = std::max(width_used, alive.size());
        cost.swap(next);
    }

    HierarchicalResult result =
        assemblePlan(levels, num_layers, states, cost, parent);
    result.transitionsEvaluated = total_evaluated;
    result.stats.expanded = expanded;
    result.stats.pruned = pruned;
    result.stats.certifiedExact = true; // exact by construction
    result.stats.widthUsed = width_used;
    return result;
}

HierarchicalResult
OptimalPartitioner::partitionReference(std::size_t levels) const
{
    if (!model_->network().isChain())
        util::fatal("OptimalPartitioner::partitionReference is "
                    "chain-only; DAG networks are checked against the "
                    "flat enumeration oracle (bruteForceHierarchical)");
    if (levels > kDenseMax)
        util::fatal("OptimalPartitioner: 4^H transitions explode past "
                    "H = 10");

    const std::size_t num_layers = model_->numLayers();
    HierarchicalResult result;
    result.plan.levels.assign(levels,
                              LevelPlan(num_layers, Parallelism::kData));
    result.stats.certifiedExact = true; // exhaustive
    result.stats.widthUsed = std::size_t{1} << levels;
    result.stats.expanded =
        static_cast<std::uint64_t>(result.stats.widthUsed) * num_layers;
    if (levels == 0)
        return result;

    const std::uint32_t states = 1u << levels;

    std::vector<double> cost(states);
    std::vector<std::vector<std::uint32_t>> parent(
        num_layers, std::vector<std::uint32_t>(states, 0));

    for (std::uint32_t s = 0; s < states; ++s)
        cost[s] = intraCost(0, s, levels);

    for (std::size_t l = 1; l < num_layers; ++l) {
        std::vector<double> next(states,
                                 std::numeric_limits<double>::infinity());
        for (std::uint32_t s = 0; s < states; ++s) {
            double best = std::numeric_limits<double>::infinity();
            std::uint32_t best_prev = 0;
            for (std::uint32_t p = 0; p < states; ++p) {
                const double c =
                    cost[p] + interCost(l - 1, p, s, levels);
                if (c < best) {
                    best = c;
                    best_prev = p;
                }
            }
            next[s] = best + intraCost(l, s, levels);
            parent[l][s] = best_prev;
        }
        cost = std::move(next);
    }

    std::uint32_t state = 0;
    double best = cost[0];
    for (std::uint32_t s = 1; s < states; ++s) {
        if (cost[s] < best) {
            best = cost[s];
            state = s;
        }
    }

    result.commBytes = best;
    for (std::size_t l = num_layers; l-- > 0;) {
        assignLayerFromState(result.plan, l, state);
        if (l > 0)
            state = parent[l][state];
    }
    return result;
}

} // namespace hypar::core
