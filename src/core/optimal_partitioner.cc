#include "core/optimal_partitioner.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/tie_break.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace hypar::core {

namespace {

constexpr std::size_t kDenseMax = OptimalPartitioner::kDenseMaxLevels;
constexpr std::size_t kWideMax = OptimalPartitioner::kMaxLevels;

/** dp count among the bits of `v` strictly below level h (bit = mp). */
unsigned
dpAbove(std::uint32_t v, std::size_t h)
{
    const auto mask = static_cast<std::uint32_t>((1u << h) - 1u);
    const auto mp = static_cast<unsigned>(std::popcount(v & mask));
    return static_cast<unsigned>(h) - mp;
}

unsigned
mpAbove(std::uint32_t v, std::size_t h)
{
    const auto mask = static_cast<std::uint32_t>((1u << h) - 1u);
    return static_cast<unsigned>(std::popcount(v & mask));
}

Parallelism
choiceAt(std::uint32_t v, std::size_t h)
{
    return (v >> h) & 1u ? Parallelism::kModel : Parallelism::kData;
}

/**
 * Factored inter-layer cost table of one l -> l+1 transition.
 *
 * interCost(l, p, s) = sum_h w_h * interBytesAt(l, p_h, s_h,
 *                                               dpAbove(p,h),
 *                                               dpAbove(s,h))
 *
 * with w_h = CommModel::levelWeight(h): the exact 2^h on a pristine
 * array, 2^h * penalty_h on a degraded one — the weighting is uniform
 * per level, so every per-level min/dominance argument below carries
 * over unchanged.
 *
 * Each addend depends on the level h, the two choices at h, and the two
 * producer dp counts below h — at most H * 2 * 2 * (H+1) * (H+1)
 * distinct values per layer, which this table enumerates up front so
 * the DP never calls the CommModel again. Layout groups the s-side keys
 * (h, s_h, dpAbove(s,h)) outermost: for a fixed target state the DP
 * grabs one contiguous [p_h][dpAbove(p,h)] row per level.
 */
class InterTermTable
{
  public:
    InterTermTable(const CommModel &model, std::size_t layer,
                   std::size_t levels)
        : levels_(levels), terms_(levels * 2 * (levels + 1) * 2 *
                                  (levels + 1))
    {
        for (std::size_t h = 0; h < levels; ++h) {
            const double weight = model.levelWeight(h);
            for (unsigned sb = 0; sb < 2; ++sb) {
                for (unsigned b = 0; b <= levels; ++b) {
                    double *row = rowAt(h, sb, b);
                    for (unsigned pb = 0; pb < 2; ++pb) {
                        for (unsigned a = 0; a <= levels; ++a) {
                            row[pb * (levels_ + 1) + a] =
                                weight *
                                model.interBytesAt(
                                    layer,
                                    pb ? Parallelism::kModel
                                       : Parallelism::kData,
                                    sb ? Parallelism::kModel
                                       : Parallelism::kData,
                                    a, b);
                        }
                    }
                }
            }
        }
    }

    /** Contiguous [p_h][dpAbove(p,h)] row for the s-side key (h, sb, b). */
    const double *rowAt(std::size_t h, unsigned sb, unsigned b) const
    {
        return &terms_[((h * 2 + sb) * (levels_ + 1) + b) * 2 *
                       (levels_ + 1)];
    }

  private:
    double *rowAt(std::size_t h, unsigned sb, unsigned b)
    {
        return &terms_[((h * 2 + sb) * (levels_ + 1) + b) * 2 *
                       (levels_ + 1)];
    }

    std::size_t levels_;
    std::vector<double> terms_;
};

/**
 * Relative slack used whenever a floating-point `g + h` is compared
 * against an incumbent cost C: a node is pruned (and a beam pass
 * certified) only when the value exceeds C * (1 + kBoundSlack). The
 * suffix bound is admissible addend-by-addend, but its multi-layer
 * sum is associated differently from the DP's own left-to-right
 * accumulation; the slack absorbs that re-association drift (at most
 * ~2L * 2^-53 relative — five orders of magnitude below 1e-9) so no
 * state whose true float-semantics completion is <= C — including
 * exact ties, which the shared tie-break rule must still see — is
 * ever cut. See the admissibility argument in optimal_partitioner.hh.
 */
constexpr double kBoundSlack = 1e-9;

/**
 * Deflation for A*'s fast transition screen: a re-associated
 * (4-accumulator) sum of the same non-negative addends is within
 * H * 2^-53 < 4e-15 relative of the canonical ascending-order sum, so
 * multiplying it by (1 - 1e-12) yields a certified lower bound on the
 * exact value — candidates rejected against it can never win (or tie)
 * the argmin.
 */
constexpr double kScreenSlack = 1.0 - 1e-12;

double
inflate(double cost)
{
    return cost * (1.0 + kBoundSlack);
}

/**
 * Per-target row minima of one factored table: the cheapest admissible
 * p-side entry (p_h in {0,1}, dpAbove(p,h) <= h) of each (h, sb,
 * b <= h) row. This is the sparse engine's per-target lower-bound
 * ingredient (lbIn), shared with the suffix bound's M term and the A*
 * per-target screen. Slots with b > h are unreachable and stay +inf.
 */
std::vector<double>
targetRowMins(const InterTermTable &iterm, std::size_t levels)
{
    std::vector<double> rowmin(levels * 2 * (levels + 1),
                               std::numeric_limits<double>::infinity());
    for (std::size_t h = 0; h < levels; ++h) {
        for (unsigned sb = 0; sb < 2; ++sb) {
            for (unsigned b = 0; b <= h; ++b) {
                const double *row = iterm.rowAt(h, sb, b);
                double m = std::numeric_limits<double>::infinity();
                for (unsigned pb = 0; pb < 2; ++pb)
                    for (unsigned a = 0; a <= h; ++a)
                        m = std::min(m, row[pb * (levels + 1) + a]);
                rowmin[(h * 2 + sb) * (levels + 1) + b] = m;
            }
        }
    }
    return rowmin;
}

/**
 * pcol[p * levels + h]: column of state p in the level-h row of a
 * factored table — (p_h, dpAbove(p,h)) flattened. Shared by every
 * layer transition of the sparse and A* engines.
 */
std::vector<std::uint16_t>
buildPcol(std::size_t levels)
{
    const std::uint32_t states = 1u << levels;
    std::vector<std::uint16_t> pcol(std::size_t{states} * levels);
    for (std::uint32_t p = 0; p < states; ++p)
        for (std::size_t h = 0; h < levels; ++h)
            pcol[std::size_t{p} * levels + h] =
                static_cast<std::uint16_t>(((p >> h) & 1u) *
                                               (levels + 1) +
                                           dpAbove(p, h));
    return pcol;
}

/** One InterTermTable per l -> l+1 transition, shared by the wide
 *  engines (several passes reuse them: bound, incumbent, search). */
std::vector<InterTermTable>
buildInterTables(const CommModel &model, std::size_t levels)
{
    const std::size_t num_layers = model.numLayers();
    std::vector<InterTermTable> tables;
    if (num_layers > 1) {
        tables.reserve(num_layers - 1);
        for (std::size_t l = 0; l + 1 < num_layers; ++l)
            tables.emplace_back(model, l, levels);
    }
    return tables;
}

/**
 * The admissible suffix bound h[l * 2^levels + s] of
 * optimal_partitioner.hh: a real-arithmetic lower bound on everything
 * the DP adds after layer l's intra term when layer l sits in state s
 * (the l -> l+1 transition plus every deeper intra and transition).
 * One backward min-over-transitions pass per layer over the factored
 * tables:
 *
 *   h[l][s] = max( lbOut(l, s) + m[l+1],  M[l],  C(l, s) )
 *
 * with lbOut/m/M and the per-level chain term C as documented in the
 * header. Monotone (consistent)
 * by construction: both arguments of the max bound the one-step
 * expansion trans + intra' + h' from below. O(L * (2^H * H + H^3))
 * on the pool; the per-state sums run level-ascending like every
 * real transition sum, so addend-wise domination survives the float
 * arithmetic (the cross-layer re-association is what kBoundSlack
 * absorbs at comparison time).
 */
std::vector<double>
suffixBound(const CommModel &model, std::size_t levels,
            std::size_t num_layers, const std::vector<double> &intra,
            const std::vector<InterTermTable> &inter)
{
    const std::size_t states = std::size_t{1} << levels;
    std::vector<double> bound(num_layers * states, 0.0);
    auto &pool = util::ThreadPool::global();
    const std::size_t grain = pool.grainFor(states);
    const std::size_t cols = 2 * (levels + 1);
    constexpr double kInf = std::numeric_limits<double>::infinity();

    // Per-level chain term: the joint cost decomposes as a sum over
    // hierarchy levels, and for a fixed level h the per-layer choices
    // form a plain 2-state chain. Relax each level-h addend over the
    // upper-level count arguments (min over dp_above + mp_above = h)
    // and solve that tiny chain *exactly* backward:
    //
    //   chain[l][h][bit] = min over next bit nb of
    //       transMin_h(l, bit, nb) + intraMin_h(l+1, nb)
    //     + chain[l+1][h][nb]
    //
    // Then sum_h chain[l][h][s_h] lower-bounds the full remaining
    // cost from (l, s) — per level it is a minimum over all bit
    // sequences that start at s's own bit, so unlike the scalar m/M
    // terms it charges every mp bit its unavoidable downstream cost.
    // imin[(l * levels + h) * 2 + bit] is the relaxed per-level intra
    // term (levelWeight(h) = 2^h * penalty_h included; the weight is
    // the same for every candidate of a level, so the relaxation stays
    // an addend-wise lower bound under degraded links too).
    std::vector<double> imin(num_layers * levels * 2, kInf);
    for (std::size_t l = 0; l < num_layers; ++l) {
        for (std::size_t h = 0; h < levels; ++h) {
            const double weight = model.levelWeight(h);
            for (unsigned bit = 0; bit < 2; ++bit) {
                double m = kInf;
                for (unsigned a = 0; a <= h; ++a)
                    m = std::min(
                        m, weight * model.intraBytesAt(
                                        l,
                                        bit ? Parallelism::kModel
                                            : Parallelism::kData,
                                        a, static_cast<unsigned>(h) - a));
                imin[(l * levels + h) * 2 + bit] = m;
            }
        }
    }
    std::vector<double> chain(num_layers * levels * 2, 0.0);
    for (std::size_t l = num_layers - 1; l-- > 0;) {
        const InterTermTable &iterm = inter[l];
        for (std::size_t h = 0; h < levels; ++h) {
            for (unsigned pb = 0; pb < 2; ++pb) {
                double best = kInf;
                for (unsigned sb = 0; sb < 2; ++sb) {
                    double tmin = kInf;
                    for (unsigned b = 0; b <= h; ++b) {
                        const double *row = iterm.rowAt(h, sb, b);
                        for (unsigned a = 0; a <= h; ++a)
                            tmin = std::min(
                                tmin, row[pb * (levels + 1) + a]);
                    }
                    best = std::min(
                        best,
                        tmin + imin[((l + 1) * levels + h) * 2 + sb] +
                            chain[((l + 1) * levels + h) * 2 + sb]);
                }
                chain[(l * levels + h) * 2 + pb] = best;
            }
        }
    }

    // outmin[h * cols + col]: cheapest admissible target-side entry
    // (s'_h in {0,1}, dpAbove(s',h) <= h) of level h at the source's
    // fixed column `col` — the per-level ingredient of lbOut.
    std::vector<double> outmin(levels * cols);

    for (std::size_t l = num_layers - 1; l-- > 0;) {
        const InterTermTable &iterm = inter[l];
        for (std::size_t h = 0; h < levels; ++h) {
            for (std::size_t col = 0; col < cols; ++col) {
                double m = kInf;
                for (unsigned sb = 0; sb < 2; ++sb)
                    for (unsigned b = 0; b <= h; ++b)
                        m = std::min(m, iterm.rowAt(h, sb, b)[col]);
                outmin[h * cols + col] = m;
            }
        }
        // The sparse engine's per-target row minima: the lbIn
        // ingredient of the M term.
        const std::vector<double> inmin = targetRowMins(iterm, levels);

        const double *intra_next = &intra[(l + 1) * states];
        const double *bound_next = &bound[(l + 1) * states];
        // m = min_s'(intra' + h'); M = min_s'(lbIn(s') + intra' + h').
        // Scalar float mins are order-independent, so the chunked
        // reduction is deterministic for every thread count.
        const auto mins = pool.parallelReduce(
            0, states, grain, std::pair<double, double>{kInf, kInf},
            [&](std::size_t begin, std::size_t end) {
                std::pair<double, double> acc{kInf, kInf};
                for (std::size_t s = begin; s < end; ++s) {
                    const auto sv = static_cast<std::uint32_t>(s);
                    const double rest = intra_next[s] + bound_next[s];
                    acc.first = std::min(acc.first, rest);
                    double lbin = 0.0;
                    for (std::size_t h = 0; h < levels; ++h)
                        lbin += inmin[(h * 2 + ((sv >> h) & 1u)) *
                                          (levels + 1) +
                                      dpAbove(sv, h)];
                    acc.second = std::min(acc.second, lbin + rest);
                }
                return acc;
            },
            [](std::pair<double, double> a, std::pair<double, double> b) {
                return std::pair<double, double>{
                    std::min(a.first, b.first),
                    std::min(a.second, b.second)};
            });

        double *bound_l = &bound[l * states];
        const double *chain_l = &chain[l * levels * 2];
        pool.parallelFor(
            0, states, grain, [&](std::size_t begin, std::size_t end) {
                for (std::size_t s = begin; s < end; ++s) {
                    const auto sv = static_cast<std::uint32_t>(s);
                    double lbout = 0.0;
                    double per_level = 0.0;
                    for (std::size_t h = 0; h < levels; ++h) {
                        const unsigned bit = (sv >> h) & 1u;
                        lbout += outmin[h * cols + bit * (levels + 1) +
                                        dpAbove(sv, h)];
                        per_level += chain_l[h * 2 + bit];
                    }
                    bound_l[s] = std::max(
                        std::max(lbout + mins.first, mins.second),
                        per_level);
                }
            });
    }
    return bound;
}

HierarchicalResult assemblePlan(std::size_t levels,
                                std::size_t num_layers,
                                std::uint32_t states,
                                const std::vector<double> &cost,
                                const std::vector<std::uint32_t> &parent);

/** Tables shared by the wide engines (beam passes and A*). */
struct WideTables
{
    std::vector<double> intra;         //!< [l * 2^H + s]
    std::vector<InterTermTable> inter; //!< one per l -> l+1
    std::vector<double> suffix;        //!< admissible bound h[l][s]
};

/**
 * Result of one fixed-width beam pass. `minDroppedF` is the smallest
 * f = g + h over every state dropped from any frontier (+inf when
 * nothing was dropped, i.e. width >= 2^H); the caller checks it
 * against the returned cost to certify exactness.
 */
struct BeamOutcome
{
    HierarchicalResult result;
    double minDroppedF = std::numeric_limits<double>::infinity();
    std::uint64_t expanded = 0; //!< kept predecessor nodes, all layers
    std::uint64_t dropped = 0;  //!< frontier states pruned, all layers
};

BeamOutcome
beamPass(std::size_t levels, std::size_t num_layers,
         std::size_t beam_width, const WideTables &tables)
{
    const std::uint32_t states = 1u << levels;
    auto &pool = util::ThreadPool::global();

    const std::vector<double> &intra = tables.intra;
    std::vector<double> cost(intra.begin(), intra.begin() + states);
    std::vector<std::uint32_t> parent(num_layers * states, 0);
    std::vector<double> next(states);
    std::vector<std::uint32_t> frontier;
    std::vector<double> fscore(states);
    std::uint64_t total_evaluated = 0;
    BeamOutcome out;

    // The beam: the `beam_width` best states under (f, index) with
    // f = cost-so-far + suffix bound — ranked by provable completable
    // cost, not by prefix cost alone — listed in ascending state
    // index. The best set under a strict total order is unique, so
    // the frontier — and everything downstream — is deterministic.
    auto pruneFrontier = [&](std::size_t l) {
        frontier.resize(states);
        std::iota(frontier.begin(), frontier.end(), 0u);
        if (beam_width < states) {
            const double *suffix_l = &tables.suffix[l * states];
            for (std::uint32_t s = 0; s < states; ++s)
                fscore[s] = cost[s] + suffix_l[s];
            std::nth_element(frontier.begin(),
                             frontier.begin() +
                                 static_cast<std::ptrdiff_t>(beam_width),
                             frontier.end(),
                             [&](std::uint32_t x, std::uint32_t y) {
                                 return better(fscore[x], x, fscore[y],
                                               y);
                             });
            for (std::size_t k = beam_width; k < states; ++k)
                out.minDroppedF =
                    std::min(out.minDroppedF, fscore[frontier[k]]);
            out.dropped += states - beam_width;
            frontier.resize(beam_width);
            std::sort(frontier.begin(), frontier.end());
        }
    };

    for (std::size_t l = 1; l < num_layers; ++l) {
        const InterTermTable &iterm = tables.inter[l - 1];
        const double *intra_l = &intra[l * states];
        std::uint32_t *parent_l = &parent[l * states];

        pruneFrontier(l - 1);
        const std::size_t fsize = frontier.size();
        out.expanded += fsize;
        total_evaluated += static_cast<std::uint64_t>(fsize) * states;

        // Parallelize over frontier chunks: each chunk relaxes every
        // target state into its own (best, prev) arrays, merged below.
        // An argmin under the strict total order of better() is
        // independent of how candidates are grouped, so the merge is
        // bit-identical for every chunk grid and thread count.
        const std::size_t fgrain = std::max<std::size_t>(
            1, fsize / (2 * pool.parallelism()));
        const std::size_t chunks = (fsize + fgrain - 1) / fgrain;
        std::vector<std::vector<double>> chunk_best(
            chunks,
            std::vector<double>(
                states, std::numeric_limits<double>::infinity()));
        std::vector<std::vector<std::uint32_t>> chunk_prev(
            chunks, std::vector<std::uint32_t>(states, 0));

        pool.parallelFor(0, fsize, fgrain, [&](std::size_t f_begin,
                                               std::size_t f_end) {
            const std::size_t ci = f_begin / fgrain;
            std::vector<double> &best = chunk_best[ci];
            std::vector<std::uint32_t> &prev = chunk_prev[ci];
            // trans[s] = interCost(l-1, p, s) for the chunk's current
            // predecessor p, built for all 2^H target states at once by
            // expanding one level bit at a time — the mirror image of
            // the dense engine's p-side expansion, with the additions
            // in the same level-ascending order, so every transition
            // sum is bit-identical to the dense DP's.
            std::vector<double> trans(states);
            // tp[(h * 2 + sb) * (levels + 1) + b]: the (h, sb, b) table
            // entry at p's fixed column, gathered up front so the
            // expansion reads contiguously.
            std::vector<double> tp(levels * 2 * (levels + 1));

            for (std::size_t k = f_begin; k < f_end; ++k) {
                const std::uint32_t p = frontier[k];
                for (std::size_t h = 0; h < levels; ++h) {
                    const std::size_t col =
                        ((p >> h) & 1u) * (levels + 1) + dpAbove(p, h);
                    for (unsigned sb = 0; sb < 2; ++sb) {
                        for (unsigned b = 0; b <= h; ++b)
                            tp[(h * 2 + sb) * (levels + 1) + b] =
                                iterm.rowAt(h, sb, b)[col];
                    }
                }

                trans[0] = 0.0;
                for (std::size_t h = 0; h < levels; ++h) {
                    const std::size_t half = std::size_t{1} << h;
                    const double *t0 = &tp[(h * 2 + 0) * (levels + 1)];
                    const double *t1 = &tp[(h * 2 + 1) * (levels + 1)];
                    for (std::size_t s_low = 0; s_low < half; ++s_low) {
                        const auto mp_below = static_cast<unsigned>(
                            std::popcount(static_cast<std::uint32_t>(
                                s_low)));
                        const unsigned b =
                            static_cast<unsigned>(h) - mp_below;
                        const double acc = trans[s_low];
                        trans[s_low] = acc + t0[b];
                        trans[s_low + half] = acc + t1[b];
                    }
                }

                const double cost_p = cost[p];
                for (std::uint32_t s = 0; s < states; ++s) {
                    const double c = cost_p + trans[s];
                    if (better(c, p, best[s], prev[s])) {
                        best[s] = c;
                        prev[s] = p;
                    }
                }
            }
        });

        const std::size_t sgrain = pool.grainFor(states);
        pool.parallelFor(0, states, sgrain, [&](std::size_t s_begin,
                                                std::size_t s_end) {
            for (std::size_t s = s_begin; s < s_end; ++s) {
                double best = chunk_best[0][s];
                std::uint32_t best_prev = chunk_prev[0][s];
                for (std::size_t ci = 1; ci < chunks; ++ci) {
                    if (better(chunk_best[ci][s], chunk_prev[ci][s],
                               best, best_prev)) {
                        best = chunk_best[ci][s];
                        best_prev = chunk_prev[ci][s];
                    }
                }
                next[s] = best + intra_l[s];
                parent_l[s] = best_prev;
            }
        });
        cost.swap(next);
    }

    out.result = assemblePlan(levels, num_layers, states, cost, parent);
    out.result.transitionsEvaluated = total_evaluated;
    return out;
}

/**
 * Final argmin over the last layer's costs (ascending s with strict <
 * == the dp-heavier tie-break) plus parent-chain plan reconstruction,
 * shared by every table engine. `parent` is the flat
 * [layer * states + state] predecessor table.
 */
HierarchicalResult
assemblePlan(std::size_t levels, std::size_t num_layers,
             std::uint32_t states, const std::vector<double> &cost,
             const std::vector<std::uint32_t> &parent)
{
    HierarchicalResult result;
    result.plan.levels.assign(levels,
                              LevelPlan(num_layers, Parallelism::kData));

    std::uint32_t state = 0;
    double best = cost[0];
    for (std::uint32_t s = 1; s < states; ++s) {
        if (cost[s] < best) {
            best = cost[s];
            state = s;
        }
    }

    result.commBytes = best;
    for (std::size_t l = num_layers; l-- > 0;) {
        assignLayerFromState(result.plan, l, state);
        if (l > 0)
            state = parent[l * states + state];
    }
    return result;
}

} // namespace

SearchEngine
searchEngineFromName(const std::string &name)
{
    if (name == "auto")
        return SearchEngine::kAuto;
    if (name == "dense")
        return SearchEngine::kDense;
    if (name == "sparse")
        return SearchEngine::kSparse;
    if (name == "beam")
        return SearchEngine::kBeam;
    if (name == "astar")
        return SearchEngine::kAStar;
    util::fatal("unknown search engine '" + name +
                "' (auto|dense|sparse|beam|astar)");
}

OptimalPartitioner::OptimalPartitioner(const CommModel &model)
    : model_(&model)
{}

double
OptimalPartitioner::intraCost(std::size_t layer, std::uint32_t v,
                              std::size_t levels) const
{
    double total = 0.0;
    for (std::size_t h = 0; h < levels; ++h) {
        total += model_->levelWeight(h) *
                 model_->intraBytesAt(layer, choiceAt(v, h),
                                      dpAbove(v, h), mpAbove(v, h));
    }
    return total;
}

double
OptimalPartitioner::interCost(std::size_t layer, std::uint32_t v_l,
                              std::uint32_t v_next,
                              std::size_t levels) const
{
    double total = 0.0;
    for (std::size_t h = 0; h < levels; ++h) {
        total += model_->levelWeight(h) *
                 model_->interBytesAt(layer, choiceAt(v_l, h),
                                      choiceAt(v_next, h),
                                      dpAbove(v_l, h),
                                      dpAbove(v_next, h));
    }
    return total;
}

std::vector<double>
OptimalPartitioner::intraTable(std::size_t levels) const
{
    const std::size_t num_layers = model_->numLayers();
    const std::size_t states = std::size_t{1} << levels;
    // Flat per-layer intra tables: intra[l * states + s], each entry
    // summed exactly as intraCost does (2^h pair weighting, level
    // ascending) so every engine stays bit-identical to the reference.
    std::vector<double> intra(num_layers * states);
    util::ThreadPool::global().parallelFor(
        0, num_layers * states, states,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                intra[i] = intraCost(i / states,
                                     static_cast<std::uint32_t>(i % states),
                                     levels);
        });
    return intra;
}

HierarchicalResult
OptimalPartitioner::partition(std::size_t levels) const
{
    return partition(levels, SearchOptions{});
}

HierarchicalResult
OptimalPartitioner::partition(std::size_t levels,
                              const SearchOptions &options) const
{
    SearchEngine engine = options.engine;
    if (engine == SearchEngine::kAuto)
        engine = levels <= kDenseMax ? SearchEngine::kDense
                                     : SearchEngine::kAStar;
    switch (engine) {
    case SearchEngine::kDense:
        return partitionDense(levels);
    case SearchEngine::kSparse:
        return partitionSparse(levels);
    case SearchEngine::kBeam:
        return partitionBeam(levels, options);
    case SearchEngine::kAStar:
        return partitionAStar(levels);
    case SearchEngine::kAuto:
        break;
    }
    util::fatal("OptimalPartitioner: unresolved search engine");
}

HierarchicalResult
OptimalPartitioner::partitionDense(std::size_t levels) const
{
    if (levels > kDenseMax)
        util::fatal("OptimalPartitioner: 4^H transitions explode past "
                    "H = 10 (use the sparse or beam engine)");

    // Below H = 3 the factored table holds more entries than the DP has
    // transitions, so the naive loop is cheaper. Results are identical.
    if (levels <= 2)
        return partitionReference(levels);

    const std::size_t num_layers = model_->numLayers();
    HYPAR_ASSERT(num_layers > 0, "partitioning an empty network");

    const std::uint32_t states = 1u << levels;
    auto &pool = util::ThreadPool::global();
    // Fixed chunking => identical chunk grids (and thus identical
    // per-state results) for every thread count; see thread_pool.hh.
    const std::size_t grain = pool.grainFor(states);

    const std::vector<double> intra = intraTable(levels);

    // Chain DP: cost[s] = best total with layer l in level vector s.
    std::vector<double> cost(intra.begin(), intra.begin() + states);
    std::vector<std::uint32_t> parent(num_layers * states, 0);

    std::vector<double> next(states);
    for (std::size_t l = 1; l < num_layers; ++l) {
        // All inter terms of the l-1 -> l transition, keyed by level.
        const InterTermTable iterm(*model_, l - 1, levels);
        const double *intra_l = &intra[l * states];
        std::uint32_t *parent_l = &parent[l * states];

        pool.parallelFor(0, states, grain, [&](std::size_t s_begin,
                                               std::size_t s_end) {
            // trans[p] = interCost(l-1, p, s), built for all 2^H
            // predecessor states at once by expanding one level bit at
            // a time: after step h, trans[p_low] holds the partial sum
            // of the first h terms for the length-h prefix p_low. The
            // additions run in the same level-ascending order as
            // interCost, keeping every partial sum bit-identical.
            std::array<double, std::size_t{1} << kDenseMax> trans;
            std::array<const double *, kDenseMax> rows;

            for (std::size_t s = s_begin; s < s_end; ++s) {
                const auto sv = static_cast<std::uint32_t>(s);
                for (std::size_t h = 0; h < levels; ++h)
                    rows[h] = iterm.rowAt(h, (sv >> h) & 1u,
                                          dpAbove(sv, h));

                trans[0] = 0.0;
                for (std::size_t h = 0; h < levels; ++h) {
                    const double *row = rows[h];
                    const std::size_t half = std::size_t{1} << h;
                    for (std::size_t p_low = 0; p_low < half; ++p_low) {
                        const auto mp_below = static_cast<unsigned>(
                            std::popcount(static_cast<std::uint32_t>(
                                p_low)));
                        const unsigned a =
                            static_cast<unsigned>(h) - mp_below;
                        const double acc = trans[p_low];
                        trans[p_low] = acc + row[a];
                        trans[p_low + half] =
                            acc + row[(levels + 1) + a];
                    }
                }

                // Ascending p with strict < implements the shared
                // tie-break rule (core/tie_break.hh): dp-heavier
                // predecessor wins exact ties.
                double best = std::numeric_limits<double>::infinity();
                std::uint32_t best_prev = 0;
                for (std::uint32_t p = 0; p < states; ++p) {
                    const double c = cost[p] + trans[p];
                    if (c < best) {
                        best = c;
                        best_prev = p;
                    }
                }
                next[s] = best + intra_l[s];
                parent_l[s] = best_prev;
            }
        });
        cost.swap(next);
    }

    HierarchicalResult result =
        assemblePlan(levels, num_layers, states, cost, parent);
    result.transitionsEvaluated = static_cast<std::uint64_t>(states) *
                                  states * (num_layers - 1);
    result.stats.expanded =
        static_cast<std::uint64_t>(states) * num_layers;
    result.stats.certifiedExact = true; // exhaustive
    result.stats.widthUsed = states;
    // pruned stays 0: the dense engine skips no transitions, so its
    // dominance-skipped count is genuinely zero.
    return result;
}

HierarchicalResult
OptimalPartitioner::partitionSparse(std::size_t levels) const
{
    if (levels > kWideMax)
        util::fatal("OptimalPartitioner: sparse engine capped at H = 16");
    if (levels <= 2)
        return partitionReference(levels);

    const std::size_t num_layers = model_->numLayers();
    HYPAR_ASSERT(num_layers > 0, "partitioning an empty network");

    const std::uint32_t states = 1u << levels;
    auto &pool = util::ThreadPool::global();
    const std::size_t grain = pool.grainFor(states);
    const std::size_t chunks = (states + grain - 1) / grain;

    const std::vector<double> intra = intraTable(levels);

    const std::vector<std::uint16_t> pcol = buildPcol(levels);

    std::vector<double> cost(intra.begin(), intra.begin() + states);
    std::vector<std::uint32_t> parent(num_layers * states, 0);
    std::vector<double> next(states);
    std::vector<std::uint32_t> order(states);
    std::vector<std::uint64_t> evaluated(chunks);
    std::uint64_t total_evaluated = 0;

    for (std::size_t l = 1; l < num_layers; ++l) {
        const InterTermTable iterm(*model_, l - 1, levels);
        const double *intra_l = &intra[l * states];
        std::uint32_t *parent_l = &parent[l * states];

        // Per-level ingredients of the lower bound below.
        const std::vector<double> rowmin = targetRowMins(iterm, levels);

        // Predecessors in ascending (cost, index): the scan below then
        // visits candidates best-first under the shared tie-break
        // order, which is what makes the early break exact.
        std::iota(order.begin(), order.end(), 0u);
        std::sort(order.begin(), order.end(),
                  [&](std::uint32_t x, std::uint32_t y) {
                      return better(cost[x], x, cost[y], y);
                  });

        std::fill(evaluated.begin(), evaluated.end(), 0);
        pool.parallelFor(0, states, grain, [&](std::size_t s_begin,
                                               std::size_t s_end) {
            std::uint64_t &count = evaluated[s_begin / grain];
            std::array<const double *, kWideMax> rows;
            std::array<double, kWideMax> rmins;

            for (std::size_t s = s_begin; s < s_end; ++s) {
                const auto sv = static_cast<std::uint32_t>(s);
                for (std::size_t h = 0; h < levels; ++h) {
                    const unsigned sb = (sv >> h) & 1u;
                    const unsigned b = dpAbove(sv, h);
                    rows[h] = iterm.rowAt(h, sb, b);
                    rmins[h] = rowmin[(h * 2 + sb) * (levels + 1) + b];
                }
                // Floating-point lower bound on any transition into s,
                // accumulated in the same level-ascending order as the
                // real transition sums. Rounding is monotone, so
                // lb <= trans(p, s) holds in float arithmetic for every
                // p, making the break below exact (and the surviving
                // argmin bit-identical to the dense DP).
                double lb = 0.0;
                for (std::size_t h = 0; h < levels; ++h)
                    lb += rmins[h];

                double best = std::numeric_limits<double>::infinity();
                std::uint32_t best_prev = 0;
                for (std::uint32_t k = 0; k < states; ++k) {
                    const std::uint32_t p = order[k];
                    if (cost[p] + lb > best)
                        break; // every later p costs at least as much
                    double t = 0.0;
                    const std::uint16_t *pc = &pcol[std::size_t{p} *
                                                    levels];
                    for (std::size_t h = 0; h < levels; ++h)
                        t += rows[h][pc[h]];
                    ++count;
                    const double c = cost[p] + t;
                    if (better(c, p, best, best_prev)) {
                        best = c;
                        best_prev = p;
                    }
                }
                next[s] = best + intra_l[s];
                parent_l[s] = best_prev;
            }
        });
        for (std::uint64_t e : evaluated)
            total_evaluated += e;
        cost.swap(next);
    }

    HierarchicalResult result =
        assemblePlan(levels, num_layers, states, cost, parent);
    result.transitionsEvaluated = total_evaluated;
    result.stats.expanded =
        static_cast<std::uint64_t>(states) * num_layers;
    result.stats.certifiedExact = true; // exact: dominance-only pruning
    result.stats.widthUsed = states;
    // Every node stays expanded (the engine is exact), so `pruned`
    // reports the work it skipped instead: the dominance-skipped
    // transitions the early break never evaluated, complementing
    // transitionsEvaluated to the dense engine's 4^H * (L-1) bill.
    result.stats.pruned = static_cast<std::uint64_t>(states) * states *
                              (num_layers - 1) -
                          total_evaluated;
    return result;
}

HierarchicalResult
OptimalPartitioner::partitionBeam(std::size_t levels,
                                  const SearchOptions &options) const
{
    if (levels > kWideMax)
        util::fatal("OptimalPartitioner: beam engine capped at H = 16");
    if (levels <= 2)
        return partitionReference(levels);

    const std::size_t num_layers = model_->numLayers();
    HYPAR_ASSERT(num_layers > 0, "partitioning an empty network");
    const std::size_t states = std::size_t{1} << levels;

    WideTables tables;
    tables.intra = intraTable(levels);
    tables.inter = buildInterTables(*model_, levels);
    tables.suffix =
        suffixBound(*model_, levels, num_layers, tables.intra,
                    tables.inter);

    // Width policy: an explicit width runs one fixed pass; width 0 is
    // adaptive growth by default (legacy fixed default with
    // adaptiveBeam off). See SearchOptions.
    const bool adaptive = options.beamWidth == 0 && options.adaptiveBeam;
    std::size_t width;
    if (options.beamWidth > 0)
        width = std::min(options.beamWidth, states);
    else if (adaptive)
        width = std::min(options.beamWidthStart > 0
                             ? options.beamWidthStart
                             : kAdaptiveBeamStart,
                         states);
    else
        width =
            std::min(std::max(kDefaultBeamWidth, states / 16), states);

    std::uint64_t total_evaluated = 0;
    for (;;) {
        BeamOutcome pass = beamPass(levels, num_layers, width, tables);
        total_evaluated += pass.result.transitionsEvaluated;
        // The certificate: every state any frontier dropped had
        // f = g + h strictly above the achieved cost (with the slack
        // absorbing float re-association), so no pruned path can beat
        // or tie the returned plan — which therefore equals the dense
        // DP's, cost and plan. Vacuously true when nothing was
        // dropped (width >= 2^H: the beam is exhaustive).
        const bool certified =
            pass.minDroppedF > inflate(pass.result.commBytes);
        if (!adaptive || certified || width >= states) {
            HierarchicalResult result = std::move(pass.result);
            result.transitionsEvaluated = total_evaluated;
            result.stats.expanded = pass.expanded;
            result.stats.pruned = pass.dropped;
            result.stats.certifiedExact = certified;
            result.stats.widthUsed = width;
            return result;
        }
        width = std::min(width * kAdaptiveBeamGrowth, states);
    }
}

HierarchicalResult
OptimalPartitioner::partitionAStar(std::size_t levels) const
{
    if (levels > kWideMax)
        util::fatal("OptimalPartitioner: A* engine capped at H = 16");
    if (levels <= 2)
        return partitionReference(levels);

    const std::size_t num_layers = model_->numLayers();
    HYPAR_ASSERT(num_layers > 0, "partitioning an empty network");

    const std::uint32_t states = 1u << levels;
    auto &pool = util::ThreadPool::global();
    const std::size_t grain = pool.grainFor(states);
    const std::size_t chunks = (states + grain - 1) / grain;

    WideTables tables;
    tables.intra = intraTable(levels);
    tables.inter = buildInterTables(*model_, levels);
    tables.suffix =
        suffixBound(*model_, levels, num_layers, tables.intra,
                    tables.inter);

    // Incumbent: one narrow beam pass over the same tables. Its cost
    // is an *achieved* plan cost in the DP's own float semantics, so
    // it upper-bounds the optimum; after the (1 + slack) inflation,
    // `g + h > ub` proves no completion through the node can beat —
    // or exactly tie — the optimum, which is what keeps the surviving
    // search bit-identical to the dense DP (header, "admissible
    // suffix bound").
    const BeamOutcome incumbent = beamPass(
        levels, num_layers,
        std::min<std::size_t>(kIncumbentBeamWidth, states), tables);
    const double ub = inflate(incumbent.result.commBytes);

    const std::vector<std::uint16_t> pcol = buildPcol(levels);

    const std::vector<double> &intra = tables.intra;
    std::vector<double> cost(intra.begin(), intra.begin() + states);
    std::vector<std::uint32_t> parent(num_layers * states, 0);
    std::vector<double> next(states);
    std::vector<std::uint8_t> dead(states, 0);
    std::vector<std::uint32_t> alive;
    // Class-conditioned predecessor keys: keyC[pc * states + p] =
    // cost[p] + (a lower bound on trans(p, s) valid for every target s
    // with popcount(s) == pc), plus one predecessor ordering per class.
    std::vector<double> keyC((levels + 1) * states);
    std::vector<std::vector<std::uint32_t>> orderC(levels + 1);
    std::vector<double> min_keyC(levels + 1);
    std::vector<std::uint64_t> evaluated(chunks);
    std::uint64_t total_evaluated = incumbent.result.transitionsEvaluated;
    std::uint64_t expanded = 0;
    std::uint64_t pruned = 0;
    std::size_t width_used = 0;

    // Layer-0 frontier: a state whose certified completable cost
    // g + h already exceeds the incumbent can never be on an optimal
    // path; everything else stays live.
    alive.reserve(states);
    for (std::uint32_t s = 0; s < states; ++s)
        if (!(cost[s] + tables.suffix[s] > ub))
            alive.push_back(s);
    expanded += alive.size();
    pruned += states - alive.size();
    width_used = std::max(width_used, alive.size());

    for (std::size_t l = 1; l < num_layers; ++l) {
        const InterTermTable &iterm = tables.inter[l - 1];
        const double *intra_l = &intra[l * states];
        const double *suffix_l = &tables.suffix[l * states];
        std::uint32_t *parent_l = &parent[l * states];

        // The sparse engine's per-target row minima (lbIn).
        const std::vector<double> rowmin = targetRowMins(iterm, levels);

        // colmin[(h * cols + col) * 2 + sb]: cheapest level-h entry at
        // source column `col` toward a dp (sb = 0) or mp (sb = 1)
        // target, minimized over the target's dpAbove b <= h. Only
        // 2 * (H+1) columns exist per level, so hoisting this out of
        // the per-predecessor key DP below removes an O(alive * H^2)
        // recompute per layer.
        const std::size_t cols = 2 * (levels + 1);
        std::vector<double> colmin(
            levels * cols * 2, std::numeric_limits<double>::infinity());
        for (std::size_t h = 0; h < levels; ++h)
            for (unsigned sb = 0; sb < 2; ++sb)
                for (unsigned b = 0; b <= h; ++b) {
                    const double *row = iterm.rowAt(h, sb, b);
                    for (std::size_t col = 0; col < cols; ++col) {
                        double &m = colmin[(h * cols + col) * 2 + sb];
                        m = std::min(m, row[col]);
                    }
                }

        // Assignment-aware predecessor keys, one per target class. A
        // target with pc mp bits forces *some* pc levels onto the
        // mp-side column of the factored table, so for each live
        // predecessor p a tiny count DP over levels —
        //
        //   f[c] after level h = cheapest way to route c mp bits
        //                        through levels 0..h at p's column
        //
        // — yields keyC[pc][p] = cost[p] + f[pc], a lower bound on
        // cost[p] + trans(p, s) for every target s with popcount pc.
        // Each realized f is a level-ascending float sum of addends
        // dominated by the real ones, so the bound is exact in float.
        // Scanning each target's class order makes `keyC > best` an
        // early break that knows mp-heavy targets cannot be reached
        // for free — the per-level row minima alone collapse to ~0
        // because every level can pretend another one pays.
        HYPAR_ASSERT(!alive.empty(),
                     "A*: the bound pruned every live state");
        const std::size_t na = alive.size();
        const std::size_t agrain =
            std::max<std::size_t>(1, na / (4 * pool.parallelism()));
        pool.parallelFor(0, na, agrain, [&](std::size_t a_begin,
                                            std::size_t a_end) {
            std::array<double, kWideMax> dpmin;
            std::array<double, kWideMax> mpmin;
            std::array<double, kWideMax + 1> f;
            for (std::size_t i = a_begin; i < a_end; ++i) {
                const std::uint32_t p = alive[i];
                const std::uint16_t *pc = &pcol[std::size_t{p} * levels];
                for (std::size_t h = 0; h < levels; ++h) {
                    const double *cm = &colmin[(h * cols + pc[h]) * 2];
                    dpmin[h] = cm[0];
                    mpmin[h] = cm[1];
                }
                f[0] = 0.0;
                for (std::size_t h = 0; h < levels; ++h) {
                    f[h + 1] = f[h] + mpmin[h];
                    for (std::size_t c = h; c > 0; --c)
                        f[c] = std::min(f[c] + dpmin[h],
                                        f[c - 1] + mpmin[h]);
                    f[0] += dpmin[h];
                }
                const double cost_p = cost[p];
                for (std::size_t c = 0; c <= levels; ++c)
                    keyC[c * states + p] = cost_p + f[c];
            }
        });
        pool.parallelFor(
            0, levels + 1, 1, [&](std::size_t c_begin, std::size_t c_end) {
                for (std::size_t c = c_begin; c < c_end; ++c) {
                    std::vector<std::uint32_t> &ord = orderC[c];
                    ord = alive;
                    const double *keyc = &keyC[c * states];
                    std::sort(ord.begin(), ord.end(),
                              [&](std::uint32_t x, std::uint32_t y) {
                                  return better(keyc[x], x, keyc[y], y);
                              });
                    min_keyC[c] = keyc[ord[0]];
                }
            });
        double min_alive_cost = cost[alive[0]];
        for (const std::uint32_t p : alive)
            min_alive_cost = std::min(min_alive_cost, cost[p]);

        std::fill(evaluated.begin(), evaluated.end(), 0);
        pool.parallelFor(0, states, grain, [&](std::size_t s_begin,
                                               std::size_t s_end) {
            std::uint64_t &count = evaluated[s_begin / grain];
            std::array<const double *, kWideMax> rows;
            std::array<double, kWideMax> rmins;

            for (std::size_t s = s_begin; s < s_end; ++s) {
                const auto sv = static_cast<std::uint32_t>(s);
                for (std::size_t h = 0; h < levels; ++h) {
                    const unsigned sb = (sv >> h) & 1u;
                    const unsigned b = dpAbove(sv, h);
                    rows[h] = iterm.rowAt(h, sb, b);
                    rmins[h] = rowmin[(h * 2 + sb) * (levels + 1) + b];
                }
                // Per-target lower bound on any transition into s,
                // accumulated in the same level-ascending order as
                // the real transition sums (monotone rounding makes
                // lb <= trans(p, s) exact in float, as in the sparse
                // engine).
                double lb = 0.0;
                for (std::size_t h = 0; h < levels; ++h)
                    lb += rmins[h];

                const auto pc_s = static_cast<std::size_t>(
                    std::popcount(sv));
                const std::vector<std::uint32_t> &ord = orderC[pc_s];
                const double *keyc = &keyC[pc_s * states];

                // Node precheck: if even the best conceivable
                // relaxation — cheapest live class key (or cheapest
                // live cost plus the per-target bound) plus this
                // node's intra and suffix bound — cannot reach the
                // incumbent, prune the node without scanning anything.
                // Every chain is single additions dominated
                // addend-wise by the real relaxation, so the
                // comparisons are safe.
                if ((min_keyC[pc_s] + intra_l[s]) + suffix_l[s] > ub ||
                    (min_alive_cost + lb + intra_l[s]) + suffix_l[s] >
                        ub) {
                    next[s] = std::numeric_limits<double>::infinity();
                    parent_l[s] = 0;
                    dead[s] = 1;
                    continue;
                }

                double best = std::numeric_limits<double>::infinity();
                std::uint32_t best_prev = 0;
                for (std::size_t k = 0; k < ord.size(); ++k) {
                    const std::uint32_t p = ord[k];
                    const double base = keyc[p];
                    if (base > best)
                        break; // every later p bounds at least as high
                    // Incumbent break: the class key grows along the
                    // scan, so once even the bound chain overshoots
                    // ub, no remaining predecessor can sit on a path
                    // that beats or ties the incumbent — cutting them
                    // may leave this node's cost above its dense
                    // value, but never for a node on an optimal path
                    // (whose dense argmin predecessor chain stays
                    // <= ub and is therefore reached before this
                    // break fires).
                    if ((base + intra_l[s]) + suffix_l[s] > ub)
                        break;
                    // Per-target screen: lbIn can reject p where the
                    // class key (which relaxed the target's exact
                    // dpAbove counts) cannot.
                    if (cost[p] + lb > best)
                        continue;
                    // Fast screen: sum the same addends with four
                    // independent accumulators (breaks the add
                    // latency chain). The re-associated value tfast
                    // differs from the canonical ascending-order sum
                    // by < H * 2^-53 relative, so deflating it by
                    // kScreenSlack makes `cost + tfast_deflated >
                    // best` a proof the candidate loses; only the few
                    // candidates near the incumbent re-run the exact
                    // level-ascending sum that bit-identity requires.
                    const std::uint16_t *pc =
                        &pcol[std::size_t{p} * levels];
                    double t0 = 0.0, t1 = 0.0, t2 = 0.0, t3 = 0.0;
                    std::size_t h = 0;
                    for (; h + 4 <= levels; h += 4) {
                        t0 += rows[h][pc[h]];
                        t1 += rows[h + 1][pc[h + 1]];
                        t2 += rows[h + 2][pc[h + 2]];
                        t3 += rows[h + 3][pc[h + 3]];
                    }
                    for (; h < levels; ++h)
                        t0 += rows[h][pc[h]];
                    ++count;
                    const double tfast = (t0 + t1) + (t2 + t3);
                    if (cost[p] + tfast * kScreenSlack > best)
                        continue;
                    double t = 0.0;
                    for (std::size_t hh = 0; hh < levels; ++hh)
                        t += rows[hh][pc[hh]];
                    const double c = cost[p] + t;
                    if (better(c, p, best, best_prev)) {
                        best = c;
                        best_prev = p;
                    }
                }
                const double g = best + intra_l[s];
                next[s] = g;
                parent_l[s] = best_prev;
                dead[s] = g + suffix_l[s] > ub ? 1 : 0;
            }
        });

        for (std::uint64_t e : evaluated)
            total_evaluated += e;
        alive.clear();
        for (std::uint32_t s = 0; s < states; ++s)
            if (!dead[s])
                alive.push_back(s);
        expanded += alive.size();
        pruned += states - alive.size();
        width_used = std::max(width_used, alive.size());
        cost.swap(next);
    }

    HierarchicalResult result =
        assemblePlan(levels, num_layers, states, cost, parent);
    result.transitionsEvaluated = total_evaluated;
    result.stats.expanded = expanded;
    result.stats.pruned = pruned;
    result.stats.certifiedExact = true; // exact by construction
    result.stats.widthUsed = width_used;
    return result;
}

HierarchicalResult
OptimalPartitioner::partitionReference(std::size_t levels) const
{
    if (levels > kDenseMax)
        util::fatal("OptimalPartitioner: 4^H transitions explode past "
                    "H = 10");

    const std::size_t num_layers = model_->numLayers();
    HierarchicalResult result;
    result.plan.levels.assign(levels,
                              LevelPlan(num_layers, Parallelism::kData));
    result.stats.certifiedExact = true; // exhaustive
    result.stats.widthUsed = std::size_t{1} << levels;
    result.stats.expanded =
        static_cast<std::uint64_t>(result.stats.widthUsed) * num_layers;
    if (levels == 0)
        return result;

    const std::uint32_t states = 1u << levels;

    std::vector<double> cost(states);
    std::vector<std::vector<std::uint32_t>> parent(
        num_layers, std::vector<std::uint32_t>(states, 0));

    for (std::uint32_t s = 0; s < states; ++s)
        cost[s] = intraCost(0, s, levels);

    for (std::size_t l = 1; l < num_layers; ++l) {
        std::vector<double> next(states,
                                 std::numeric_limits<double>::infinity());
        for (std::uint32_t s = 0; s < states; ++s) {
            double best = std::numeric_limits<double>::infinity();
            std::uint32_t best_prev = 0;
            for (std::uint32_t p = 0; p < states; ++p) {
                const double c =
                    cost[p] + interCost(l - 1, p, s, levels);
                if (c < best) {
                    best = c;
                    best_prev = p;
                }
            }
            next[s] = best + intraCost(l, s, levels);
            parent[l][s] = best_prev;
        }
        cost = std::move(next);
    }

    std::uint32_t state = 0;
    double best = cost[0];
    for (std::uint32_t s = 1; s < states; ++s) {
        if (cost[s] < best) {
            best = cost[s];
            state = s;
        }
    }

    result.commBytes = best;
    for (std::size_t l = num_layers; l-- > 0;) {
        assignLayerFromState(result.plan, l, state);
        if (l > 0)
            state = parent[l][state];
    }
    return result;
}

} // namespace hypar::core
