#include "core/optimal_partitioner.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <limits>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace hypar::core {

namespace {

/** Hard ceiling on the joint search depth (4^H transition blow-up). */
constexpr std::size_t kMaxLevels = 10;

/** dp count among the bits of `v` strictly below level h (bit = mp). */
unsigned
dpAbove(std::uint32_t v, std::size_t h)
{
    const auto mask = static_cast<std::uint32_t>((1u << h) - 1u);
    const auto mp = static_cast<unsigned>(std::popcount(v & mask));
    return static_cast<unsigned>(h) - mp;
}

unsigned
mpAbove(std::uint32_t v, std::size_t h)
{
    const auto mask = static_cast<std::uint32_t>((1u << h) - 1u);
    return static_cast<unsigned>(std::popcount(v & mask));
}

Parallelism
choiceAt(std::uint32_t v, std::size_t h)
{
    return (v >> h) & 1u ? Parallelism::kModel : Parallelism::kData;
}

/**
 * Factored inter-layer cost table of one l -> l+1 transition.
 *
 * interCost(l, p, s) = sum_h 2^h * interBytesAt(l, p_h, s_h,
 *                                               dpAbove(p,h),
 *                                               dpAbove(s,h))
 *
 * Each addend depends on the level h, the two choices at h, and the two
 * producer dp counts below h — at most H * 2 * 2 * (H+1) * (H+1)
 * distinct values per layer, which this table enumerates up front so
 * the DP never calls the CommModel again. Layout groups the s-side keys
 * (h, s_h, dpAbove(s,h)) outermost: for a fixed target state the DP
 * grabs one contiguous [p_h][dpAbove(p,h)] row per level.
 */
class InterTermTable
{
  public:
    InterTermTable(const CommModel &model, std::size_t layer,
                   std::size_t levels)
        : levels_(levels), terms_(levels * 2 * (levels + 1) * 2 *
                                  (levels + 1))
    {
        double pairs = 1.0;
        for (std::size_t h = 0; h < levels; ++h) {
            for (unsigned sb = 0; sb < 2; ++sb) {
                for (unsigned b = 0; b <= levels; ++b) {
                    double *row = rowAt(h, sb, b);
                    for (unsigned pb = 0; pb < 2; ++pb) {
                        for (unsigned a = 0; a <= levels; ++a) {
                            row[pb * (levels_ + 1) + a] =
                                pairs *
                                model.interBytesAt(
                                    layer,
                                    pb ? Parallelism::kModel
                                       : Parallelism::kData,
                                    sb ? Parallelism::kModel
                                       : Parallelism::kData,
                                    a, b);
                        }
                    }
                }
            }
            pairs *= 2.0;
        }
    }

    /** Contiguous [p_h][dpAbove(p,h)] row for the s-side key (h, sb, b). */
    const double *rowAt(std::size_t h, unsigned sb, unsigned b) const
    {
        return &terms_[((h * 2 + sb) * (levels_ + 1) + b) * 2 *
                       (levels_ + 1)];
    }

  private:
    double *rowAt(std::size_t h, unsigned sb, unsigned b)
    {
        return &terms_[((h * 2 + sb) * (levels_ + 1) + b) * 2 *
                       (levels_ + 1)];
    }

    std::size_t levels_;
    std::vector<double> terms_;
};

} // namespace

OptimalPartitioner::OptimalPartitioner(const CommModel &model)
    : model_(&model)
{}

double
OptimalPartitioner::intraCost(std::size_t layer, std::uint32_t v,
                              std::size_t levels) const
{
    double total = 0.0;
    double pairs = 1.0;
    for (std::size_t h = 0; h < levels; ++h) {
        total += pairs * model_->intraBytesAt(layer, choiceAt(v, h),
                                              dpAbove(v, h),
                                              mpAbove(v, h));
        pairs *= 2.0;
    }
    return total;
}

double
OptimalPartitioner::interCost(std::size_t layer, std::uint32_t v_l,
                              std::uint32_t v_next,
                              std::size_t levels) const
{
    double total = 0.0;
    double pairs = 1.0;
    for (std::size_t h = 0; h < levels; ++h) {
        total += pairs * model_->interBytesAt(layer, choiceAt(v_l, h),
                                              choiceAt(v_next, h),
                                              dpAbove(v_l, h),
                                              dpAbove(v_next, h));
        pairs *= 2.0;
    }
    return total;
}

HierarchicalResult
OptimalPartitioner::partition(std::size_t levels) const
{
    if (levels > kMaxLevels)
        util::fatal("OptimalPartitioner: 4^H transitions explode past "
                    "H = 10");

    // Below H = 3 the factored table holds more entries than the DP has
    // transitions, so the naive loop is cheaper. Results are identical.
    if (levels <= 2)
        return partitionReference(levels);

    const std::size_t num_layers = model_->numLayers();
    HYPAR_ASSERT(num_layers > 0, "partitioning an empty network");
    HierarchicalResult result;
    result.plan.levels.assign(levels,
                              LevelPlan(num_layers, Parallelism::kData));

    const std::uint32_t states = 1u << levels;
    auto &pool = util::ThreadPool::global();
    // Fixed chunking => identical chunk grids (and thus identical
    // per-state results) for every thread count; see thread_pool.hh.
    const std::size_t grain =
        std::max<std::size_t>(1, states / (4 * pool.parallelism()));

    // Flat per-layer intra tables: intra[l * states + s], each entry
    // summed exactly as intraCost does (2^h pair weighting, level
    // ascending) so the DP stays bit-identical to the reference.
    std::vector<double> intra(num_layers * states);
    pool.parallelFor(0, num_layers * states, states,
                     [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i)
                             intra[i] = intraCost(i / states,
                                                  static_cast<std::uint32_t>(
                                                      i % states),
                                                  levels);
                     });

    // Chain DP: cost[s] = best total with layer l in level vector s.
    std::vector<double> cost(intra.begin(), intra.begin() + states);
    std::vector<std::uint32_t> parent(num_layers * states, 0);

    std::vector<double> next(states);
    for (std::size_t l = 1; l < num_layers; ++l) {
        // All inter terms of the l-1 -> l transition, keyed by level.
        const InterTermTable iterm(*model_, l - 1, levels);
        const double *intra_l = &intra[l * states];
        std::uint32_t *parent_l = &parent[l * states];

        pool.parallelFor(0, states, grain, [&](std::size_t s_begin,
                                               std::size_t s_end) {
            // trans[p] = interCost(l-1, p, s), built for all 2^H
            // predecessor states at once by expanding one level bit at
            // a time: after step h, trans[p_low] holds the partial sum
            // of the first h terms for the length-h prefix p_low. The
            // additions run in the same level-ascending order as
            // interCost, keeping every partial sum bit-identical.
            std::array<double, std::size_t{1} << kMaxLevels> trans;
            std::array<const double *, kMaxLevels> rows;

            for (std::size_t s = s_begin; s < s_end; ++s) {
                const auto sv = static_cast<std::uint32_t>(s);
                for (std::size_t h = 0; h < levels; ++h)
                    rows[h] = iterm.rowAt(h, (sv >> h) & 1u,
                                          dpAbove(sv, h));

                trans[0] = 0.0;
                for (std::size_t h = 0; h < levels; ++h) {
                    const double *row = rows[h];
                    const std::size_t half = std::size_t{1} << h;
                    for (std::size_t p_low = 0; p_low < half; ++p_low) {
                        const auto mp_below = static_cast<unsigned>(
                            std::popcount(static_cast<std::uint32_t>(
                                p_low)));
                        const unsigned a =
                            static_cast<unsigned>(h) - mp_below;
                        const double acc = trans[p_low];
                        trans[p_low] = acc + row[a];
                        trans[p_low + half] =
                            acc + row[(levels + 1) + a];
                    }
                }

                // Ascending p with strict < implements the shared
                // tie-break rule (core/tie_break.hh): dp-heavier
                // predecessor wins exact ties.
                double best = std::numeric_limits<double>::infinity();
                std::uint32_t best_prev = 0;
                for (std::uint32_t p = 0; p < states; ++p) {
                    const double c = cost[p] + trans[p];
                    if (c < best) {
                        best = c;
                        best_prev = p;
                    }
                }
                next[s] = best + intra_l[s];
                parent_l[s] = best_prev;
            }
        });
        cost.swap(next);
    }

    // Final argmin: ascending s with strict < == dp-heavier tie-break.
    std::uint32_t state = 0;
    double best = cost[0];
    for (std::uint32_t s = 1; s < states; ++s) {
        if (cost[s] < best) {
            best = cost[s];
            state = s;
        }
    }

    result.commBytes = best;
    for (std::size_t l = num_layers; l-- > 0;) {
        for (std::size_t h = 0; h < levels; ++h)
            result.plan.levels[h][l] = choiceAt(state, h);
        if (l > 0)
            state = parent[l * states + state];
    }
    return result;
}

HierarchicalResult
OptimalPartitioner::partitionReference(std::size_t levels) const
{
    if (levels > kMaxLevels)
        util::fatal("OptimalPartitioner: 4^H transitions explode past "
                    "H = 10");

    const std::size_t num_layers = model_->numLayers();
    HierarchicalResult result;
    result.plan.levels.assign(levels,
                              LevelPlan(num_layers, Parallelism::kData));
    if (levels == 0)
        return result;

    const std::uint32_t states = 1u << levels;

    std::vector<double> cost(states);
    std::vector<std::vector<std::uint32_t>> parent(
        num_layers, std::vector<std::uint32_t>(states, 0));

    for (std::uint32_t s = 0; s < states; ++s)
        cost[s] = intraCost(0, s, levels);

    for (std::size_t l = 1; l < num_layers; ++l) {
        std::vector<double> next(states,
                                 std::numeric_limits<double>::infinity());
        for (std::uint32_t s = 0; s < states; ++s) {
            double best = std::numeric_limits<double>::infinity();
            std::uint32_t best_prev = 0;
            for (std::uint32_t p = 0; p < states; ++p) {
                const double c =
                    cost[p] + interCost(l - 1, p, s, levels);
                if (c < best) {
                    best = c;
                    best_prev = p;
                }
            }
            next[s] = best + intraCost(l, s, levels);
            parent[l][s] = best_prev;
        }
        cost = std::move(next);
    }

    std::uint32_t state = 0;
    double best = cost[0];
    for (std::uint32_t s = 1; s < states; ++s) {
        if (cost[s] < best) {
            best = cost[s];
            state = s;
        }
    }

    result.commBytes = best;
    for (std::size_t l = num_layers; l-- > 0;) {
        for (std::size_t h = 0; h < levels; ++h)
            result.plan.levels[h][l] = choiceAt(state, h);
        if (l > 0)
            state = parent[l][state];
    }
    return result;
}

} // namespace hypar::core
