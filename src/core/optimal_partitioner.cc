#include "core/optimal_partitioner.hh"

#include <bit>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace hypar::core {

namespace {

/** dp count among the bits of `v` strictly below level h (bit = mp). */
unsigned
dpAbove(std::uint32_t v, std::size_t h)
{
    const auto mask = static_cast<std::uint32_t>((1u << h) - 1u);
    const auto mp = static_cast<unsigned>(std::popcount(v & mask));
    return static_cast<unsigned>(h) - mp;
}

unsigned
mpAbove(std::uint32_t v, std::size_t h)
{
    const auto mask = static_cast<std::uint32_t>((1u << h) - 1u);
    return static_cast<unsigned>(std::popcount(v & mask));
}

Parallelism
choiceAt(std::uint32_t v, std::size_t h)
{
    return (v >> h) & 1u ? Parallelism::kModel : Parallelism::kData;
}

} // namespace

OptimalPartitioner::OptimalPartitioner(const CommModel &model)
    : model_(&model)
{}

double
OptimalPartitioner::intraCost(std::size_t layer, std::uint32_t v,
                              std::size_t levels) const
{
    double total = 0.0;
    double pairs = 1.0;
    for (std::size_t h = 0; h < levels; ++h) {
        total += pairs * model_->intraBytesAt(layer, choiceAt(v, h),
                                              dpAbove(v, h),
                                              mpAbove(v, h));
        pairs *= 2.0;
    }
    return total;
}

double
OptimalPartitioner::interCost(std::size_t layer, std::uint32_t v_l,
                              std::uint32_t v_next,
                              std::size_t levels) const
{
    double total = 0.0;
    double pairs = 1.0;
    for (std::size_t h = 0; h < levels; ++h) {
        total += pairs * model_->interBytesAt(layer, choiceAt(v_l, h),
                                              choiceAt(v_next, h),
                                              dpAbove(v_l, h),
                                              dpAbove(v_next, h));
        pairs *= 2.0;
    }
    return total;
}

HierarchicalResult
OptimalPartitioner::partition(std::size_t levels) const
{
    if (levels > 10)
        util::fatal("OptimalPartitioner: 4^H transitions explode past "
                    "H = 10");

    const std::size_t num_layers = model_->numLayers();
    HierarchicalResult result;
    result.plan.levels.assign(levels,
                              LevelPlan(num_layers, Parallelism::kData));
    if (levels == 0)
        return result;

    const std::uint32_t states = 1u << levels;

    // Chain DP: cost[s] = best total with layer l in level vector s.
    std::vector<double> cost(states);
    std::vector<std::vector<std::uint32_t>> parent(
        num_layers, std::vector<std::uint32_t>(states, 0));

    for (std::uint32_t s = 0; s < states; ++s)
        cost[s] = intraCost(0, s, levels);

    for (std::size_t l = 1; l < num_layers; ++l) {
        std::vector<double> next(states,
                                 std::numeric_limits<double>::infinity());
        for (std::uint32_t s = 0; s < states; ++s) {
            double best = std::numeric_limits<double>::infinity();
            std::uint32_t best_prev = 0;
            for (std::uint32_t p = 0; p < states; ++p) {
                const double c =
                    cost[p] + interCost(l - 1, p, s, levels);
                if (c < best) {
                    best = c;
                    best_prev = p;
                }
            }
            next[s] = best + intraCost(l, s, levels);
            parent[l][s] = best_prev;
        }
        cost = std::move(next);
    }

    std::uint32_t state = 0;
    double best = cost[0];
    for (std::uint32_t s = 1; s < states; ++s) {
        if (cost[s] < best) {
            best = cost[s];
            state = s;
        }
    }

    result.commBytes = best;
    for (std::size_t l = num_layers; l-- > 0;) {
        for (std::size_t h = 0; h < levels; ++h)
            result.plan.levels[h][l] = choiceAt(state, h);
        if (l > 0)
            state = parent[l][state];
    }
    return result;
}

} // namespace hypar::core
