#include "core/optimal_partitioner.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/tie_break.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace hypar::core {

namespace {

constexpr std::size_t kDenseMax = OptimalPartitioner::kDenseMaxLevels;
constexpr std::size_t kWideMax = OptimalPartitioner::kMaxLevels;

/** dp count among the bits of `v` strictly below level h (bit = mp). */
unsigned
dpAbove(std::uint32_t v, std::size_t h)
{
    const auto mask = static_cast<std::uint32_t>((1u << h) - 1u);
    const auto mp = static_cast<unsigned>(std::popcount(v & mask));
    return static_cast<unsigned>(h) - mp;
}

unsigned
mpAbove(std::uint32_t v, std::size_t h)
{
    const auto mask = static_cast<std::uint32_t>((1u << h) - 1u);
    return static_cast<unsigned>(std::popcount(v & mask));
}

Parallelism
choiceAt(std::uint32_t v, std::size_t h)
{
    return (v >> h) & 1u ? Parallelism::kModel : Parallelism::kData;
}

/**
 * Factored inter-layer cost table of one l -> l+1 transition.
 *
 * interCost(l, p, s) = sum_h 2^h * interBytesAt(l, p_h, s_h,
 *                                               dpAbove(p,h),
 *                                               dpAbove(s,h))
 *
 * Each addend depends on the level h, the two choices at h, and the two
 * producer dp counts below h — at most H * 2 * 2 * (H+1) * (H+1)
 * distinct values per layer, which this table enumerates up front so
 * the DP never calls the CommModel again. Layout groups the s-side keys
 * (h, s_h, dpAbove(s,h)) outermost: for a fixed target state the DP
 * grabs one contiguous [p_h][dpAbove(p,h)] row per level.
 */
class InterTermTable
{
  public:
    InterTermTable(const CommModel &model, std::size_t layer,
                   std::size_t levels)
        : levels_(levels), terms_(levels * 2 * (levels + 1) * 2 *
                                  (levels + 1))
    {
        double pairs = 1.0;
        for (std::size_t h = 0; h < levels; ++h) {
            for (unsigned sb = 0; sb < 2; ++sb) {
                for (unsigned b = 0; b <= levels; ++b) {
                    double *row = rowAt(h, sb, b);
                    for (unsigned pb = 0; pb < 2; ++pb) {
                        for (unsigned a = 0; a <= levels; ++a) {
                            row[pb * (levels_ + 1) + a] =
                                pairs *
                                model.interBytesAt(
                                    layer,
                                    pb ? Parallelism::kModel
                                       : Parallelism::kData,
                                    sb ? Parallelism::kModel
                                       : Parallelism::kData,
                                    a, b);
                        }
                    }
                }
            }
            pairs *= 2.0;
        }
    }

    /** Contiguous [p_h][dpAbove(p,h)] row for the s-side key (h, sb, b). */
    const double *rowAt(std::size_t h, unsigned sb, unsigned b) const
    {
        return &terms_[((h * 2 + sb) * (levels_ + 1) + b) * 2 *
                       (levels_ + 1)];
    }

  private:
    double *rowAt(std::size_t h, unsigned sb, unsigned b)
    {
        return &terms_[((h * 2 + sb) * (levels_ + 1) + b) * 2 *
                       (levels_ + 1)];
    }

    std::size_t levels_;
    std::vector<double> terms_;
};

/**
 * Final argmin over the last layer's costs (ascending s with strict <
 * == the dp-heavier tie-break) plus parent-chain plan reconstruction,
 * shared by every table engine. `parent` is the flat
 * [layer * states + state] predecessor table.
 */
HierarchicalResult
assemblePlan(std::size_t levels, std::size_t num_layers,
             std::uint32_t states, const std::vector<double> &cost,
             const std::vector<std::uint32_t> &parent)
{
    HierarchicalResult result;
    result.plan.levels.assign(levels,
                              LevelPlan(num_layers, Parallelism::kData));

    std::uint32_t state = 0;
    double best = cost[0];
    for (std::uint32_t s = 1; s < states; ++s) {
        if (cost[s] < best) {
            best = cost[s];
            state = s;
        }
    }

    result.commBytes = best;
    for (std::size_t l = num_layers; l-- > 0;) {
        assignLayerFromState(result.plan, l, state);
        if (l > 0)
            state = parent[l * states + state];
    }
    return result;
}

} // namespace

SearchEngine
searchEngineFromName(const std::string &name)
{
    if (name == "auto")
        return SearchEngine::kAuto;
    if (name == "dense")
        return SearchEngine::kDense;
    if (name == "sparse")
        return SearchEngine::kSparse;
    if (name == "beam")
        return SearchEngine::kBeam;
    util::fatal("unknown search engine '" + name +
                "' (auto|dense|sparse|beam)");
}

OptimalPartitioner::OptimalPartitioner(const CommModel &model)
    : model_(&model)
{}

double
OptimalPartitioner::intraCost(std::size_t layer, std::uint32_t v,
                              std::size_t levels) const
{
    double total = 0.0;
    double pairs = 1.0;
    for (std::size_t h = 0; h < levels; ++h) {
        total += pairs * model_->intraBytesAt(layer, choiceAt(v, h),
                                              dpAbove(v, h),
                                              mpAbove(v, h));
        pairs *= 2.0;
    }
    return total;
}

double
OptimalPartitioner::interCost(std::size_t layer, std::uint32_t v_l,
                              std::uint32_t v_next,
                              std::size_t levels) const
{
    double total = 0.0;
    double pairs = 1.0;
    for (std::size_t h = 0; h < levels; ++h) {
        total += pairs * model_->interBytesAt(layer, choiceAt(v_l, h),
                                              choiceAt(v_next, h),
                                              dpAbove(v_l, h),
                                              dpAbove(v_next, h));
        pairs *= 2.0;
    }
    return total;
}

std::vector<double>
OptimalPartitioner::intraTable(std::size_t levels) const
{
    const std::size_t num_layers = model_->numLayers();
    const std::size_t states = std::size_t{1} << levels;
    // Flat per-layer intra tables: intra[l * states + s], each entry
    // summed exactly as intraCost does (2^h pair weighting, level
    // ascending) so every engine stays bit-identical to the reference.
    std::vector<double> intra(num_layers * states);
    util::ThreadPool::global().parallelFor(
        0, num_layers * states, states,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                intra[i] = intraCost(i / states,
                                     static_cast<std::uint32_t>(i % states),
                                     levels);
        });
    return intra;
}

HierarchicalResult
OptimalPartitioner::partition(std::size_t levels) const
{
    return partition(levels, SearchOptions{});
}

HierarchicalResult
OptimalPartitioner::partition(std::size_t levels,
                              const SearchOptions &options) const
{
    SearchEngine engine = options.engine;
    if (engine == SearchEngine::kAuto)
        engine = levels <= kDenseMax ? SearchEngine::kDense
                                     : SearchEngine::kBeam;
    switch (engine) {
    case SearchEngine::kDense:
        return partitionDense(levels);
    case SearchEngine::kSparse:
        return partitionSparse(levels);
    case SearchEngine::kBeam:
        return partitionBeam(levels, options.beamWidth);
    case SearchEngine::kAuto:
        break;
    }
    util::fatal("OptimalPartitioner: unresolved search engine");
}

HierarchicalResult
OptimalPartitioner::partitionDense(std::size_t levels) const
{
    if (levels > kDenseMax)
        util::fatal("OptimalPartitioner: 4^H transitions explode past "
                    "H = 10 (use the sparse or beam engine)");

    // Below H = 3 the factored table holds more entries than the DP has
    // transitions, so the naive loop is cheaper. Results are identical.
    if (levels <= 2)
        return partitionReference(levels);

    const std::size_t num_layers = model_->numLayers();
    HYPAR_ASSERT(num_layers > 0, "partitioning an empty network");

    const std::uint32_t states = 1u << levels;
    auto &pool = util::ThreadPool::global();
    // Fixed chunking => identical chunk grids (and thus identical
    // per-state results) for every thread count; see thread_pool.hh.
    const std::size_t grain = pool.grainFor(states);

    const std::vector<double> intra = intraTable(levels);

    // Chain DP: cost[s] = best total with layer l in level vector s.
    std::vector<double> cost(intra.begin(), intra.begin() + states);
    std::vector<std::uint32_t> parent(num_layers * states, 0);

    std::vector<double> next(states);
    for (std::size_t l = 1; l < num_layers; ++l) {
        // All inter terms of the l-1 -> l transition, keyed by level.
        const InterTermTable iterm(*model_, l - 1, levels);
        const double *intra_l = &intra[l * states];
        std::uint32_t *parent_l = &parent[l * states];

        pool.parallelFor(0, states, grain, [&](std::size_t s_begin,
                                               std::size_t s_end) {
            // trans[p] = interCost(l-1, p, s), built for all 2^H
            // predecessor states at once by expanding one level bit at
            // a time: after step h, trans[p_low] holds the partial sum
            // of the first h terms for the length-h prefix p_low. The
            // additions run in the same level-ascending order as
            // interCost, keeping every partial sum bit-identical.
            std::array<double, std::size_t{1} << kDenseMax> trans;
            std::array<const double *, kDenseMax> rows;

            for (std::size_t s = s_begin; s < s_end; ++s) {
                const auto sv = static_cast<std::uint32_t>(s);
                for (std::size_t h = 0; h < levels; ++h)
                    rows[h] = iterm.rowAt(h, (sv >> h) & 1u,
                                          dpAbove(sv, h));

                trans[0] = 0.0;
                for (std::size_t h = 0; h < levels; ++h) {
                    const double *row = rows[h];
                    const std::size_t half = std::size_t{1} << h;
                    for (std::size_t p_low = 0; p_low < half; ++p_low) {
                        const auto mp_below = static_cast<unsigned>(
                            std::popcount(static_cast<std::uint32_t>(
                                p_low)));
                        const unsigned a =
                            static_cast<unsigned>(h) - mp_below;
                        const double acc = trans[p_low];
                        trans[p_low] = acc + row[a];
                        trans[p_low + half] =
                            acc + row[(levels + 1) + a];
                    }
                }

                // Ascending p with strict < implements the shared
                // tie-break rule (core/tie_break.hh): dp-heavier
                // predecessor wins exact ties.
                double best = std::numeric_limits<double>::infinity();
                std::uint32_t best_prev = 0;
                for (std::uint32_t p = 0; p < states; ++p) {
                    const double c = cost[p] + trans[p];
                    if (c < best) {
                        best = c;
                        best_prev = p;
                    }
                }
                next[s] = best + intra_l[s];
                parent_l[s] = best_prev;
            }
        });
        cost.swap(next);
    }

    HierarchicalResult result =
        assemblePlan(levels, num_layers, states, cost, parent);
    result.transitionsEvaluated = static_cast<std::uint64_t>(states) *
                                  states * (num_layers - 1);
    return result;
}

HierarchicalResult
OptimalPartitioner::partitionSparse(std::size_t levels) const
{
    if (levels > kWideMax)
        util::fatal("OptimalPartitioner: sparse engine capped at H = 16");
    if (levels <= 2)
        return partitionReference(levels);

    const std::size_t num_layers = model_->numLayers();
    HYPAR_ASSERT(num_layers > 0, "partitioning an empty network");

    const std::uint32_t states = 1u << levels;
    auto &pool = util::ThreadPool::global();
    const std::size_t grain = pool.grainFor(states);
    const std::size_t chunks = (states + grain - 1) / grain;

    const std::vector<double> intra = intraTable(levels);

    // pcol[p * levels + h]: column of predecessor p in the level-h row
    // of the factored table — (p_h, dpAbove(p,h)) flattened. Shared by
    // every layer transition.
    std::vector<std::uint16_t> pcol(states * levels);
    for (std::uint32_t p = 0; p < states; ++p)
        for (std::size_t h = 0; h < levels; ++h)
            pcol[p * levels + h] = static_cast<std::uint16_t>(
                ((p >> h) & 1u) * (levels + 1) + dpAbove(p, h));

    std::vector<double> cost(intra.begin(), intra.begin() + states);
    std::vector<std::uint32_t> parent(num_layers * states, 0);
    std::vector<double> next(states);
    std::vector<std::uint32_t> order(states);
    std::vector<std::uint64_t> evaluated(chunks);
    std::uint64_t total_evaluated = 0;

    for (std::size_t l = 1; l < num_layers; ++l) {
        const InterTermTable iterm(*model_, l - 1, levels);
        const double *intra_l = &intra[l * states];
        std::uint32_t *parent_l = &parent[l * states];

        // rowmin[(h * 2 + sb) * (levels + 1) + b]: the cheapest
        // admissible p-side entry (p_h in {0,1}, dpAbove(p,h) <= h) of
        // the (h, sb, b) row — the per-level ingredient of the lower
        // bound below.
        std::vector<double> rowmin(levels * 2 * (levels + 1),
                                   std::numeric_limits<double>::infinity());
        for (std::size_t h = 0; h < levels; ++h) {
            for (unsigned sb = 0; sb < 2; ++sb) {
                for (unsigned b = 0; b <= h; ++b) {
                    const double *row = iterm.rowAt(h, sb, b);
                    double m = std::numeric_limits<double>::infinity();
                    for (unsigned pb = 0; pb < 2; ++pb)
                        for (unsigned a = 0; a <= h; ++a)
                            m = std::min(m, row[pb * (levels + 1) + a]);
                    rowmin[(h * 2 + sb) * (levels + 1) + b] = m;
                }
            }
        }

        // Predecessors in ascending (cost, index): the scan below then
        // visits candidates best-first under the shared tie-break
        // order, which is what makes the early break exact.
        std::iota(order.begin(), order.end(), 0u);
        std::sort(order.begin(), order.end(),
                  [&](std::uint32_t x, std::uint32_t y) {
                      return better(cost[x], x, cost[y], y);
                  });

        std::fill(evaluated.begin(), evaluated.end(), 0);
        pool.parallelFor(0, states, grain, [&](std::size_t s_begin,
                                               std::size_t s_end) {
            std::uint64_t &count = evaluated[s_begin / grain];
            std::array<const double *, kWideMax> rows;
            std::array<double, kWideMax> rmins;

            for (std::size_t s = s_begin; s < s_end; ++s) {
                const auto sv = static_cast<std::uint32_t>(s);
                for (std::size_t h = 0; h < levels; ++h) {
                    const unsigned sb = (sv >> h) & 1u;
                    const unsigned b = dpAbove(sv, h);
                    rows[h] = iterm.rowAt(h, sb, b);
                    rmins[h] = rowmin[(h * 2 + sb) * (levels + 1) + b];
                }
                // Floating-point lower bound on any transition into s,
                // accumulated in the same level-ascending order as the
                // real transition sums. Rounding is monotone, so
                // lb <= trans(p, s) holds in float arithmetic for every
                // p, making the break below exact (and the surviving
                // argmin bit-identical to the dense DP).
                double lb = 0.0;
                for (std::size_t h = 0; h < levels; ++h)
                    lb += rmins[h];

                double best = std::numeric_limits<double>::infinity();
                std::uint32_t best_prev = 0;
                for (std::uint32_t k = 0; k < states; ++k) {
                    const std::uint32_t p = order[k];
                    if (cost[p] + lb > best)
                        break; // every later p costs at least as much
                    double t = 0.0;
                    const std::uint16_t *pc = &pcol[std::size_t{p} *
                                                    levels];
                    for (std::size_t h = 0; h < levels; ++h)
                        t += rows[h][pc[h]];
                    ++count;
                    const double c = cost[p] + t;
                    if (better(c, p, best, best_prev)) {
                        best = c;
                        best_prev = p;
                    }
                }
                next[s] = best + intra_l[s];
                parent_l[s] = best_prev;
            }
        });
        for (std::uint64_t e : evaluated)
            total_evaluated += e;
        cost.swap(next);
    }

    HierarchicalResult result =
        assemblePlan(levels, num_layers, states, cost, parent);
    result.transitionsEvaluated = total_evaluated;
    return result;
}

HierarchicalResult
OptimalPartitioner::partitionBeam(std::size_t levels,
                                  std::size_t beam_width) const
{
    if (levels > kWideMax)
        util::fatal("OptimalPartitioner: beam engine capped at H = 16");
    if (levels <= 2)
        return partitionReference(levels);

    const std::size_t num_layers = model_->numLayers();
    HYPAR_ASSERT(num_layers > 0, "partitioning an empty network");

    const std::uint32_t states = 1u << levels;
    if (beam_width == 0)
        beam_width = std::max<std::size_t>(kDefaultBeamWidth, states / 16);
    beam_width = std::min<std::size_t>(beam_width, states);

    auto &pool = util::ThreadPool::global();
    const std::vector<double> intra = intraTable(levels);

    std::vector<double> cost(intra.begin(), intra.begin() + states);
    std::vector<std::uint32_t> parent(num_layers * states, 0);
    std::vector<double> next(states);
    std::vector<std::uint32_t> frontier;
    std::uint64_t total_evaluated = 0;

    // The beam: the `beam_width` cheapest states under the shared
    // (cost, index) tie-break order, listed in ascending state index.
    // The best set under a strict total order is unique, so the
    // frontier — and everything downstream — is deterministic.
    auto pruneFrontier = [&] {
        frontier.resize(states);
        std::iota(frontier.begin(), frontier.end(), 0u);
        if (beam_width < states) {
            std::nth_element(frontier.begin(),
                             frontier.begin() +
                                 static_cast<std::ptrdiff_t>(beam_width),
                             frontier.end(),
                             [&](std::uint32_t x, std::uint32_t y) {
                                 return better(cost[x], x, cost[y], y);
                             });
            frontier.resize(beam_width);
            std::sort(frontier.begin(), frontier.end());
        }
    };

    for (std::size_t l = 1; l < num_layers; ++l) {
        const InterTermTable iterm(*model_, l - 1, levels);
        const double *intra_l = &intra[l * states];
        std::uint32_t *parent_l = &parent[l * states];

        pruneFrontier();
        const std::size_t fsize = frontier.size();
        total_evaluated += static_cast<std::uint64_t>(fsize) * states;

        // Parallelize over frontier chunks: each chunk relaxes every
        // target state into its own (best, prev) arrays, merged below.
        // An argmin under the strict total order of better() is
        // independent of how candidates are grouped, so the merge is
        // bit-identical for every chunk grid and thread count.
        const std::size_t fgrain = std::max<std::size_t>(
            1, fsize / (2 * pool.parallelism()));
        const std::size_t chunks = (fsize + fgrain - 1) / fgrain;
        std::vector<std::vector<double>> chunk_best(
            chunks, std::vector<double>(
                        states, std::numeric_limits<double>::infinity()));
        std::vector<std::vector<std::uint32_t>> chunk_prev(
            chunks, std::vector<std::uint32_t>(states, 0));

        pool.parallelFor(0, fsize, fgrain, [&](std::size_t f_begin,
                                               std::size_t f_end) {
            const std::size_t ci = f_begin / fgrain;
            std::vector<double> &best = chunk_best[ci];
            std::vector<std::uint32_t> &prev = chunk_prev[ci];
            // trans[s] = interCost(l-1, p, s) for the chunk's current
            // predecessor p, built for all 2^H target states at once by
            // expanding one level bit at a time — the mirror image of
            // the dense engine's p-side expansion, with the additions
            // in the same level-ascending order, so every transition
            // sum is bit-identical to the dense DP's.
            std::vector<double> trans(states);
            // tp[(h * 2 + sb) * (levels + 1) + b]: the (h, sb, b) table
            // entry at p's fixed column, gathered up front so the
            // expansion reads contiguously.
            std::vector<double> tp(levels * 2 * (levels + 1));

            for (std::size_t k = f_begin; k < f_end; ++k) {
                const std::uint32_t p = frontier[k];
                for (std::size_t h = 0; h < levels; ++h) {
                    const std::size_t col =
                        ((p >> h) & 1u) * (levels + 1) + dpAbove(p, h);
                    for (unsigned sb = 0; sb < 2; ++sb) {
                        for (unsigned b = 0; b <= h; ++b)
                            tp[(h * 2 + sb) * (levels + 1) + b] =
                                iterm.rowAt(h, sb, b)[col];
                    }
                }

                trans[0] = 0.0;
                for (std::size_t h = 0; h < levels; ++h) {
                    const std::size_t half = std::size_t{1} << h;
                    const double *t0 = &tp[(h * 2 + 0) * (levels + 1)];
                    const double *t1 = &tp[(h * 2 + 1) * (levels + 1)];
                    for (std::size_t s_low = 0; s_low < half; ++s_low) {
                        const auto mp_below = static_cast<unsigned>(
                            std::popcount(static_cast<std::uint32_t>(
                                s_low)));
                        const unsigned b =
                            static_cast<unsigned>(h) - mp_below;
                        const double acc = trans[s_low];
                        trans[s_low] = acc + t0[b];
                        trans[s_low + half] = acc + t1[b];
                    }
                }

                const double cost_p = cost[p];
                for (std::uint32_t s = 0; s < states; ++s) {
                    const double c = cost_p + trans[s];
                    if (better(c, p, best[s], prev[s])) {
                        best[s] = c;
                        prev[s] = p;
                    }
                }
            }
        });

        const std::size_t sgrain = pool.grainFor(states);
        pool.parallelFor(0, states, sgrain, [&](std::size_t s_begin,
                                                std::size_t s_end) {
            for (std::size_t s = s_begin; s < s_end; ++s) {
                double best = chunk_best[0][s];
                std::uint32_t best_prev = chunk_prev[0][s];
                for (std::size_t ci = 1; ci < chunks; ++ci) {
                    if (better(chunk_best[ci][s], chunk_prev[ci][s],
                               best, best_prev)) {
                        best = chunk_best[ci][s];
                        best_prev = chunk_prev[ci][s];
                    }
                }
                next[s] = best + intra_l[s];
                parent_l[s] = best_prev;
            }
        });
        cost.swap(next);
    }

    HierarchicalResult result =
        assemblePlan(levels, num_layers, states, cost, parent);
    result.transitionsEvaluated = total_evaluated;
    return result;
}

HierarchicalResult
OptimalPartitioner::partitionReference(std::size_t levels) const
{
    if (levels > kDenseMax)
        util::fatal("OptimalPartitioner: 4^H transitions explode past "
                    "H = 10");

    const std::size_t num_layers = model_->numLayers();
    HierarchicalResult result;
    result.plan.levels.assign(levels,
                              LevelPlan(num_layers, Parallelism::kData));
    if (levels == 0)
        return result;

    const std::uint32_t states = 1u << levels;

    std::vector<double> cost(states);
    std::vector<std::vector<std::uint32_t>> parent(
        num_layers, std::vector<std::uint32_t>(states, 0));

    for (std::uint32_t s = 0; s < states; ++s)
        cost[s] = intraCost(0, s, levels);

    for (std::size_t l = 1; l < num_layers; ++l) {
        std::vector<double> next(states,
                                 std::numeric_limits<double>::infinity());
        for (std::uint32_t s = 0; s < states; ++s) {
            double best = std::numeric_limits<double>::infinity();
            std::uint32_t best_prev = 0;
            for (std::uint32_t p = 0; p < states; ++p) {
                const double c =
                    cost[p] + interCost(l - 1, p, s, levels);
                if (c < best) {
                    best = c;
                    best_prev = p;
                }
            }
            next[s] = best + intraCost(l, s, levels);
            parent[l][s] = best_prev;
        }
        cost = std::move(next);
    }

    std::uint32_t state = 0;
    double best = cost[0];
    for (std::uint32_t s = 1; s < states; ++s) {
        if (cost[s] < best) {
            best = cost[s];
            state = s;
        }
    }

    result.commBytes = best;
    for (std::size_t l = num_layers; l-- > 0;) {
        assignLayerFromState(result.plan, l, state);
        if (l > 0)
            state = parent[l][state];
    }
    return result;
}

} // namespace hypar::core
