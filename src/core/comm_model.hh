/**
 * @file
 * The HyPar communication model (paper Section 3, Tables 1 and 2).
 *
 * For a pair of accelerator groups the model charges, per weighted layer:
 *
 *   intra-layer   dp: A(dW_l)        (gradient partial-sum exchange)
 *                 mp: A(F^out_l)     (output partial-sum exchange,
 *                                     pre-pooling)
 *
 *   inter-layer   dp-dp: 0
 *   (l -> l+1)    dp-mp: 0.25 A(F_{l+1}) + 0.25 A(E_{l+1})
 *                 mp-mp: 0.5 A(E_{l+1})
 *                 mp-dp: 0.5 A(E_{l+1})
 *
 * where F_{l+1}/E_{l+1} are the boundary tensors between the layers
 * (post-pooling). Every charge is multiplied by the exchange factor 2
 * because both peers fetch the remote half (the paper's 56 KB example in
 * Section 3.4 counts 2 x 70x100 x 4 B).
 *
 * Hierarchical scaling ("Partitioned" policy, DESIGN.md Section 2): at
 * level h the amounts shrink according to the choices made above --
 * upper mp halves kernels/gradients, upper dp halves batches (feature
 * and error tensors). This reproduces the paper's Fig. 8 Data
 * Parallelism column exactly and Fig. 5(a)'s fc1@H3 flip for SFC.
 *
 * Evaluation is table driven: the constructor pre-multiplies every
 * per-layer tensor amount by the exchange factor, and the hierarchical
 * halvings come from a power-of-two lookup table, so a query is one or
 * two exact multiplications instead of an ldexp chain. Because every
 * scale factor is a power of two, the cached path returns bit-identical
 * results to the straightforward formula (kept as the *Reference
 * methods and cross-checked in tests), and the History-based and
 * count-based APIs agree exactly as well.
 */

#ifndef HYPAR_CORE_COMM_MODEL_HH
#define HYPAR_CORE_COMM_MODEL_HH

#include <cstddef>
#include <vector>

#include "core/plan.hh"
#include "dnn/network.hh"

namespace hypar::core {

/** Tunables of the communication model. */
struct CommConfig
{
    /** Hierarchical tensor-amount scaling policy. */
    enum class Scaling {
        kNone,        //!< every level sees full-size tensors (ablation)
        kPartitioned, //!< amounts follow the physical partitioning
    };

    /** Mini-batch size B (the paper evaluates with 256). */
    std::size_t batch = 256;

    /** Bytes per tensor element (fp32). */
    double wordBytes = 4.0;

    /**
     * Per-pair exchange factor: 2.0 means both peers fetch the remote
     * part (paper Section 3.4); 1.0 counts one-directional traffic.
     */
    double exchangeFactor = 2.0;

    Scaling scaling = Scaling::kPartitioned;

    /**
     * Per-hierarchy-level cost penalties for a degraded interconnect
     * (noc::Topology::levelPenalties after applyLinkScales): level h's
     * communication is weighted 2^h * levelPenalties[h] instead of the
     * pristine 2^h, steering every search away from levels whose group
     * pairs cross slow links. Empty (the default) or all-1.0 means
     * pristine and is bit-identical to the unweighted model: the
     * weights are built with ldexp, so 2^h * 1.0 is the exact same
     * double the engines' old pairs *= 2.0 accumulation produced.
     * Levels beyond the vector are charged penalty 1.0. Entries must
     * be positive and finite — an infinite penalty means a dead link
     * makes the level unusable, which callers must reject *before*
     * building a model (see sim::Evaluator).
     */
    std::vector<double> levelPenalties;
};

/**
 * Flat per-layer cost tables for one fixed History: everything a
 * single-level search over that history can ask the model. Filled by
 * CommModel::fillPairTables; reused across calls to avoid allocation.
 */
struct PairTables
{
    /** intra[2*l + p]: intra-layer bytes of layer l under choice p. */
    std::vector<double> intra;
    /** inter[4*l + 2*prev + cur]: l -> l+1 bytes, l < layers-1. */
    std::vector<double> inter;
};

/**
 * Precomputes per-layer tensor amounts for one network and evaluates
 * intra-/inter-layer and whole-plan communication. All results are in
 * bytes. Immutable and cheap to copy around by reference.
 */
class CommModel
{
  public:
    CommModel(const dnn::Network &network, const CommConfig &config);

    const dnn::Network &network() const { return *network_; }
    const CommConfig &config() const { return config_; }
    std::size_t numLayers() const { return weightBytes_.size(); }

    // --- per-level weighting (fault model) ------------------------------

    /** Fault penalty of hierarchy level h (1.0 pristine / off the end
     *  of CommConfig::levelPenalties). */
    double levelPenalty(std::size_t h) const;

    /**
     * Weight of one unit of level-h per-pair communication in a plan's
     * total: 2^h * levelPenalty(h), precomputed with ldexp so the
     * power-of-two factor is exact. With pristine penalties this is
     * the exact double 2^h, so every consumer that replaced a
     * pairs *= 2.0 accumulator with levelWeight(h) stays bit-identical
     * on healthy arrays; with penalties, w (x) c == 2^h * (p (x) c)
     * (power-of-two scaling commutes with rounding), so the engines'
     * exactness proofs carry over unchanged.
     */
    double levelWeight(std::size_t h) const;

    // --- unscaled amounts (bytes) -------------------------------------

    /** A(W_l) = A(dW_l): kernel/gradient tensor bytes. */
    double weightBytes(std::size_t l) const;

    /** A(F^out_l): raw (pre-pooling) output for the whole batch. */
    double outRawBytes(std::size_t l) const;

    /** A(F_{l+1}) = A(E_{l+1}): boundary tensor after layer l's pool. */
    double boundaryBytes(std::size_t l) const;

    // --- scaled model (bytes, includes the exchange factor) ------------

    /** Intra-layer communication of layer l under choice p at the level
     *  whose upper choices are recorded in hist. */
    double intraBytes(std::size_t l, Parallelism p,
                      const History &hist) const;

    /** Inter-layer communication of the transition layer l -> l+1. */
    double interBytes(std::size_t l, Parallelism prev, Parallelism cur,
                      const History &hist) const;

    /**
     * Feature-map part of the inter-layer cost (moves during the
     * forward pass): 0.25 A(F_{l+1}) for dp-mp, otherwise 0.
     */
    double interBytesF(std::size_t l, Parallelism prev, Parallelism cur,
                       const History &hist) const;

    /**
     * Error part of the inter-layer cost (moves during error backward):
     * 0.25 A(E_{l+1}) for dp-mp, 0.5 A(E_{l+1}) for mp-mp and mp-dp.
     */
    double interBytesE(std::size_t l, Parallelism prev, Parallelism cur,
                       const History &hist) const;

    /**
     * Inter-layer communication of an arbitrary DAG edge src -> dst:
     * the boundary tensor is src's pooled output (for a join, each
     * incoming edge carries its own full summand of the elementwise
     * sum, so edges are charged independently), the feature part
     * scales with src's upper dp splits and the error part with dst's.
     * For dst == src + 1 this is bit-identical to interBytes — the
     * chain transition is the degenerate edge.
     */
    double interBytesEdge(std::size_t src, std::size_t dst,
                          Parallelism prev, Parallelism cur,
                          const History &hist) const;

    /**
     * Per-pair communication of a whole level plan: every layer's
     * intra charge plus every DAG edge's inter charge, layers
     * ascending and each layer's outgoing edges ascending by
     * destination. On a chain this visits exactly the old
     * intra(0), inter(0->1), intra(1), ... sequence, so the
     * accumulation is bit-identical.
     */
    double pairBytes(const LevelPlan &plan, const History &hist) const;

    /**
     * Total communication of a hierarchical plan: sum over levels of
     * 2^h * per-pair bytes, i.e. Algorithm 2's com = com_h + 2 com_n.
     */
    double planBytes(const HierarchicalPlan &plan) const;

    // --- count-based variants (exact joint optimization) ---------------
    //
    // The History overloads above derive the upper-level dp/mp counts
    // from a recorded history; these take the counts directly, which
    // lets OptimalPartitioner evaluate arbitrary per-layer level
    // vectors without materializing History objects. They return
    // bit-identical values to the History-based API for equal counts.

    /** Intra-layer bytes with explicit upper-level counts for layer l. */
    double intraBytesAt(std::size_t l, Parallelism p, unsigned dp_above,
                        unsigned mp_above) const;

    /**
     * Inter-layer bytes for the l -> l+1 transition with explicit
     * upper-level dp counts of the producing layers (layer l for the
     * feature boundary, layer l+1 for the error boundary).
     */
    double interBytesAt(std::size_t l, Parallelism prev, Parallelism cur,
                        unsigned dp_above_l, unsigned dp_above_next) const;

    /**
     * Count-based split of the inter-layer cost, mirroring
     * interBytesF/interBytesE: the feature part scales with layer l's
     * upper dp count, the error part with layer l+1's. Bit-identical to
     * the History-based methods for equal counts; these are what
     * TrainingSimulator::sweepNeighborhood uses to precompute exchange
     * variants without materializing History objects per mask.
     */
    double interBytesFAt(std::size_t l, Parallelism prev, Parallelism cur,
                         unsigned dp_above_l) const;
    double interBytesEAt(std::size_t l, Parallelism prev, Parallelism cur,
                         unsigned dp_above_next) const;

    // --- batch precompute ----------------------------------------------

    /**
     * Fill flat intra/inter cost tables for every layer and choice
     * combination under `hist` — one pass over the cached per-layer
     * amounts, no per-entry call overhead. Every entry is bit-identical
     * to the corresponding intraBytes/interBytes call. Existing vector
     * capacity in `out` is reused.
     */
    void fillPairTables(const History &hist, PairTables &out) const;

    // --- reference implementations (test oracles / before-benches) ----
    //
    // The original straight-line formulas with per-call ldexp chains,
    // kept so tests can assert that the table-driven path above is
    // bit-identical and so the micro benches can quote before/after
    // numbers from one binary.

    /** intraBytes computed the pre-optimization way. */
    double intraBytesReference(std::size_t l, Parallelism p,
                               const History &hist) const;

    /** interBytes computed the pre-optimization way. */
    double interBytesReference(std::size_t l, Parallelism prev,
                               Parallelism cur, const History &hist) const;

    /**
     * Approximate resident size of the precomputed byte tables (the
     * serving tier's memory-budgeted session LRU charges warm
     * Evaluators by this plus the simulator's tables).
     */
    std::size_t approxTableBytes() const;

  private:
    /** 2^-n, via lookup table (exact for every representable n). */
    static double halvings(unsigned n);

    double gradScale(std::size_t l, const History &hist) const;
    double featScale(std::size_t l, const History &hist) const;

    const dnn::Network *network_;
    CommConfig config_;
    /** levelWeight(h) for h < kMaxWeightLevels, built in the ctor. */
    std::vector<double> levelWeights_;
    std::vector<double> weightBytes_;
    std::vector<double> outRawBytes_;
    std::vector<double> boundaryBytes_;
    // Exchange-factor-premultiplied copies: the hot-path operand tables.
    std::vector<double> scaledWeightBytes_;
    std::vector<double> scaledOutRawBytes_;
    std::vector<double> scaledBoundaryBytes_;
};

} // namespace hypar::core

#endif // HYPAR_CORE_COMM_MODEL_HH
