#include "core/strategies.hh"

#include "core/hierarchical_partitioner.hh"
#include "util/logging.hh"

namespace hypar::core {

HierarchicalPlan
makeDataParallelPlan(const dnn::Network &network, std::size_t levels)
{
    return uniformPlan(network.size(), levels, Parallelism::kData);
}

HierarchicalPlan
makeModelParallelPlan(const dnn::Network &network, std::size_t levels)
{
    return uniformPlan(network.size(), levels, Parallelism::kModel);
}

HierarchicalPlan
makeOneWeirdTrickPlan(const dnn::Network &network, std::size_t levels)
{
    LevelPlan level;
    level.reserve(network.size());
    for (const auto &layer : network.layers()) {
        level.push_back(layer.isConv() ? Parallelism::kData
                                       : Parallelism::kModel);
    }
    HierarchicalPlan plan;
    plan.levels.assign(levels, level);
    return plan;
}

HierarchicalPlan
makeHyparPlan(const CommModel &model, std::size_t levels)
{
    return HierarchicalPartitioner(model).partition(levels).plan;
}

const char *
toString(Strategy s)
{
    switch (s) {
      case Strategy::kDataParallel:
        return "Data Parallelism";
      case Strategy::kModelParallel:
        return "Model Parallelism";
      case Strategy::kOneWeirdTrick:
        return "One Weird Trick";
      case Strategy::kHypar:
        return "HyPar";
    }
    util::panic("unknown Strategy");
}

HierarchicalPlan
makePlan(Strategy s, const CommModel &model, std::size_t levels)
{
    switch (s) {
      case Strategy::kDataParallel:
        return makeDataParallelPlan(model.network(), levels);
      case Strategy::kModelParallel:
        return makeModelParallelPlan(model.network(), levels);
      case Strategy::kOneWeirdTrick:
        return makeOneWeirdTrickPlan(model.network(), levels);
      case Strategy::kHypar:
        return makeHyparPlan(model, levels);
    }
    util::panic("unknown Strategy");
}

} // namespace hypar::core
