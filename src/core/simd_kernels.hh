/**
 * @file
 * Runtime-dispatched scalar/AVX2 kernel pairs for the partition
 * searches' contiguous inner loops.
 *
 * Three loop shapes dominate the table engines (ISSUE 8 / ROADMAP
 * item 5): the level-bit expansion that materializes all 2^H
 * transition sums from one factored row pair, the dense engine's
 * predecessor argmin over cost[p] + trans[p], and the beam engine's
 * elementwise relax of one predecessor into a (best, prev) row. All
 * three are branch-light float reduces over contiguous tables — prime
 * AVX2 targets — while the A* predecessor scan stays scalar on
 * purpose: its candidate walk is data-dependent and gathers from
 * state-indexed tables, where Skylake-class gather throughput makes a
 * vector version break-even at best (measured; see
 * bench_partitioner_micro).
 *
 * Bit-identity by construction: every vector kernel performs exactly
 * the additions and exactly the comparisons of its scalar twin — same
 * operands, same association order, same strict-< selection — so the
 * results are bit-identical, not merely close. The per-lane argmin
 * keeps the first (lowest-index) minimum per lane and the horizontal
 * merge is lexicographic in (value, index), which reproduces the
 * ascending strict-< scan's winner exactly; relaxRow keeps the
 * incumbent on exact ties, which equals the shared better() rule
 * whenever predecessors are relaxed in ascending order (beamPass
 * sorts its frontier, so they are). test_simd_kernels pins
 * scalar-vs-AVX2 bit-equivalence across H = 1..16 including
 * non-multiple-of-lane tails, and runs under ASan/UBSan in CI.
 */

#ifndef HYPAR_CORE_SIMD_KERNELS_HH
#define HYPAR_CORE_SIMD_KERNELS_HH

#include <cstddef>
#include <cstdint>

namespace hypar::core::simd {

/**
 * One dispatchable kernel set. All pointers are non-null; `name` is
 * "scalar" or "avx2" for logs and bench rows.
 */
struct Kernels {
    const char *name;

    /**
     * One level-bit expansion step: for i in [0, half),
     *
     *   a            = h - popcount(i)   (given as pcnt[i])
     *   trans[i+half] = trans[i] + row1[a]
     *   trans[i]      = trans[i] + row0[a]
     *
     * `row0`/`row1` are the factored-table rows for target bit 0/1 at
     * level h (each h+1 entries, so a <= h keeps reads in range).
     */
    void (*expandLevel)(double *trans, std::size_t half,
                        const double *row0, const double *row1,
                        const std::uint8_t *pcnt, unsigned h);

    /**
     * Argmin of cost[p] + trans[p] over p in [0, n) under the shared
     * tie-break rule (ascending strict <: lowest index among exact
     * minima). Writes the winning sum to *min_out and returns the
     * winning p. n >= 1.
     */
    std::uint32_t (*argminAdd)(const double *cost, const double *trans,
                               std::size_t n, double *min_out);

    /**
     * Elementwise relax of predecessor p into a (best, prev) row:
     * for s in [0, n), when cost_p + trans[s] < best[s], set
     * best[s] = cost_p + trans[s] and prev[s] = p. Exact ties keep
     * the incumbent — equal to better() iff callers relax
     * predecessors in ascending p order.
     */
    void (*relaxRow)(double *best, std::uint32_t *prev,
                     const double *trans, double cost_p,
                     std::uint32_t p, std::size_t n);
};

/** The portable reference set; always valid. */
const Kernels &scalarKernels();

/** True when the CPU executes AVX2 (checked once, cached). */
bool avx2Available();

/**
 * The AVX2 set. Valid to *call* only when avx2Available(); always
 * valid to take (test code compares the two sets directly).
 */
const Kernels &avx2Kernels();

/** avx2Kernels() when supported, scalarKernels() otherwise. */
const Kernels &activeKernels();

} // namespace hypar::core::simd

#endif // HYPAR_CORE_SIMD_KERNELS_HH
