/**
 * @file
 * Exact joint partitioner across all hierarchy levels — an extension
 * beyond the paper.
 *
 * Algorithm 2 is greedy across levels: it fixes level h's plan before
 * considering level h+1, even though the upper choice changes the
 * tensor amounts the lower levels see. The joint problem is still a
 * chain: give every layer a *level vector* v in {dp,mp}^H (bit h =
 * choice at level h). Then
 *
 *   total(v_0..v_{L-1}) = sum_l I(l, v_l)
 *                       + sum_l T(l, v_l, v_{l+1})
 *
 * where I and T expand over levels with the 2^h pair weighting and the
 * partitioned scaling derived from the vector's own prefix. That is a
 * standard chain DP over 2^H states per layer: O(L * 4^H) time — for
 * the paper's H = 4, a 256-state DP, exactly optimal.
 *
 * Engines (SearchEngine):
 *
 *  - kDense — the table-driven exhaustive DP. Precomputes flat tables
 *    (intra[l][s] for all 2^H states, and the inter cost factored per
 *    level into terms keyed by (level, choice pair, producer dp
 *    counts), only O(H^3) entries per layer) and evaluates all 2^H
 *    transition costs into a state s with one in-place prefix expansion
 *    over the level bits. Exact; capped at H = 10 by the 4^H transition
 *    blow-up.
 *
 *  - kSparse — exact like the dense DP but skips provably dominated
 *    transitions: predecessors are scanned in ascending (cost, index)
 *    order and the scan stops once cost[p] plus a per-target lower
 *    bound (the floating-point sum of per-level row minima of the
 *    factored inter table) can no longer beat the incumbent. Because
 *    rounding is monotone, the bound is safe in float arithmetic, so
 *    the result — cost and plan — is bit-identical to the dense DP.
 *    Reaches H = 16.
 *
 *  - kBeam — keeps only the `beamWidth` best states of each layer
 *    frontier as transition predecessors, ranked by f = g + h where h
 *    is the admissible suffix bound described below (falling back to
 *    the shared tie-break order on exact ties). Exhaustive (and
 *    bit-identical to the dense DP) when beamWidth >= 2^H. Every pass
 *    also computes an optimality *certificate*: if every state the
 *    beam ever dropped had f strictly above the returned cost, the
 *    plan is provably the exact optimum (SearchStats::certifiedExact).
 *    By default the width is adaptive — it grows geometrically until
 *    the certificate holds — so the default beam is self-certifying
 *    exact. Reaches H = 16.
 *
 *  - kAStar — exact best-first search over the same chain. A backward
 *    pass over the factored inter tables precomputes an admissible
 *    suffix bound h[l][s] <= the cheapest completion of layers
 *    l..L-1 from state s; a small beam pass supplies an incumbent
 *    upper bound; then a layer-ordered expansion relaxes only states
 *    whose g + h does not exceed the incumbent, scanning predecessors
 *    best-first with the sparse engine's per-target early break.
 *    Exact and bit-identical to the dense DP at every depth (the
 *    bound never prunes a state on an optimal path — see "The
 *    admissible suffix bound" below). H = 16 on VGG-E runs in ~22 s
 *    on the 1-core reference container where the sparse engine's
 *    per-target-only bound needs ~96 s, and the per-state loops
 *    parallelize on multi-core hosts.
 *
 *  - kAuto (default) — dense up to H = 10 (bit-exact historical
 *    behaviour for every depth that was previously reachable), A*
 *    beyond: exact at every depth the library accepts.
 *
 * Every engine runs its per-state loops on util::ThreadPool with fixed
 * chunking (or order-independent total-order argmins), so results are
 * bit-identical for every thread count; the dense path is also
 * bit-identical to partitionReference(), the original naive DP kept as
 * a test oracle.
 *
 * ## The admissible suffix bound h[l][s]
 *
 * All wide engines share one heuristic table, built by suffixBound():
 *
 *   h[L-1][s] = 0
 *   h[l][s]   = max( lbOut(l, s) + m[l+1],  M[l],  C(l, s) )
 *
 *   lbOut(l, s) = sum_h min over target-side keys (s'_h, dpAbove(s',h))
 *                 of the factored inter term at s's own column — a
 *                 lower bound on trans(s -> s') for *every* successor
 *                 s', because each addend is the per-level row minimum
 *                 of the exact factored table and the sum runs in the
 *                 same level-ascending order as the real transition
 *                 sums (floating-point rounding is monotone, so
 *                 addend-wise domination survives the float sums).
 *   m[l+1]      = min_s'( intra[l+1][s'] + h[l+1][s'] )  — the cheapest
 *                 possible rest-of-chain from any successor.
 *   M[l]        = min_s'( lbIn(l, s') + intra[l+1][s'] + h[l+1][s'] )
 *                 where lbIn is the sparse engine's per-target row-min
 *                 bound; a second valid lower bound (the max of any
 *                 set of admissible bounds is admissible).
 *   C(l, s)     = sum_h chain[l][h][s_h]: the joint cost decomposes
 *                 as a sum over levels, and for one level h the
 *                 per-layer dp/mp choices form a plain 2-state chain.
 *                 chain[l][h][bit] solves that chain *exactly*
 *                 backward over per-level costs relaxed over their
 *                 upper-level count arguments, so it lower-bounds the
 *                 level-h share of any completion whose layer-l bit
 *                 is s_h; summing the per-level minima bounds the
 *                 whole remaining cost (each level's true share >= its
 *                 chain value for the bit sequence the completion
 *                 actually takes).
 *
 * Admissibility (real arithmetic) is by construction: every addend
 * bounds the corresponding exact DP addend from below, layer by layer
 * (the bound is also *consistent*: h[l][s] <= trans(s,s') +
 * intra[l+1][s'] + h[l+1][s'] for every successor — lbOut <= trans
 * and m <= intra + h cover the first argument of the max, M[l] <=
 * lbIn + intra + h <= the expansion directly, and each per-level
 * chain obeys its own one-step recursion). Floating point
 * re-associates the
 * multi-layer sums, so comparisons against an incumbent C use the
 * inflated threshold C * (1 + kBoundSlack) with kBoundSlack = 1e-9:
 * the worst-case relative rounding drift of the <= 2L additions on any
 * root-to-leaf chain is ~2L * 2^-53 < 1e-14, five orders of magnitude
 * inside the slack, so a state is pruned (or a certificate granted)
 * only when its true float-semantics completion provably exceeds C.
 * Exact ties (g + h == C) are never pruned, which is what preserves
 * the shared tie-break rule and makes A* plans — not just costs —
 * bit-identical to the dense DP.
 *
 * Used by the ablation harness to measure how much the greedy
 * hierarchical search leaves on the table (empirically: nothing for
 * most of the zoo, small single-digit percentages elsewhere).
 */

#ifndef HYPAR_CORE_OPTIMAL_PARTITIONER_HH
#define HYPAR_CORE_OPTIMAL_PARTITIONER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/comm_model.hh"
#include "core/hierarchical_partitioner.hh"
#include "core/plan.hh"

namespace hypar::core {

/** Which transition engine OptimalPartitioner::partition runs. */
enum class SearchEngine {
    kAuto,   //!< dense up to H = 10, A* beyond (exact everywhere)
    kDense,  //!< exhaustive O(L * 4^H) table DP (exact, H <= 10)
    kSparse, //!< exact DP with dominance pruning (H <= 16)
    kBeam,   //!< frontier-pruned DP, self-certifying adaptive width
    kAStar,  //!< exact best-first DP under the suffix bound (H <= 16)
};

/** Parse "auto" | "dense" | "sparse" | "beam" | "astar" (fatal
 *  otherwise). */
SearchEngine searchEngineFromName(const std::string &name);

/**
 * Tunables of the joint search. The defaults make every engine exact:
 * kAuto routes to dense or A*, and kBeam grows its width until its
 * optimality certificate holds (SearchStats::certifiedExact — see
 * hierarchical_partitioner.hh for the stats every search returns).
 */
struct SearchOptions
{
    SearchEngine engine = SearchEngine::kAuto;

    /**
     * Beam frontier width (kBeam only). 0 (default) leaves the width
     * to the engine: adaptive growth when `adaptiveBeam` is set, the
     * fixed legacy default max(1024, 2^H / 16) otherwise. A width
     * >= 2^H keeps every state and makes the beam exhaustive — exact
     * and bit-identical to the dense DP. An explicit width disables
     * adaptive growth (single fixed-width pass, certificate still
     * computed and reported).
     */
    std::size_t beamWidth = 0;

    /**
     * kBeam with beamWidth == 0: grow the width geometrically
     * (x kAdaptiveBeamGrowth per pass, capped at 2^H) until the pass
     * certifies exactness — every dropped state's g + h cleared the
     * returned cost. The final pass's width is reported in
     * SearchStats::widthUsed; transitionsEvaluated accumulates over
     * all passes. Termination is guaranteed: at width 2^H nothing is
     * dropped and the certificate holds vacuously.
     */
    bool adaptiveBeam = true;

    /**
     * Initial width of the adaptive growth (kBeam, beamWidth == 0,
     * adaptiveBeam). 0 picks kAdaptiveBeamStart.
     */
    std::size_t beamWidthStart = 0;
};

/** Exact minimum-communication partitioner over all level vectors. */
class OptimalPartitioner
{
  public:
    /** Depth ceiling of the dense engine (4^H transition blow-up). */
    static constexpr std::size_t kDenseMaxLevels = 10;

    /** Depth ceiling of the sparse/beam/A* engines (and of kAuto). */
    static constexpr std::size_t kMaxLevels = 16;

    /** Legacy fixed beam width floor; see SearchOptions::beamWidth. */
    static constexpr std::size_t kDefaultBeamWidth = 1024;

    /** First width the adaptive beam tries (SearchOptions). */
    static constexpr std::size_t kAdaptiveBeamStart = 256;

    /** Geometric growth factor between adaptive beam passes. */
    static constexpr std::size_t kAdaptiveBeamGrowth = 4;

    /** Width of the internal beam pass that seeds the A* incumbent. */
    static constexpr std::size_t kIncumbentBeamWidth = 64;

    explicit OptimalPartitioner(const CommModel &model);

    /**
     * Optimal hierarchical plan for `levels` levels via the kAuto
     * engine policy: the exact dense DP up to H = 10 (bit-identical to
     * the historical behaviour), the A* engine beyond — exact at every
     * accepted depth. Ties break toward the dp-heavier state
     * (core/tie_break.hh). Fatal for levels > 16.
     */
    HierarchicalResult partition(std::size_t levels) const;

    /** Same search with an explicit engine / beam width. */
    HierarchicalResult partition(std::size_t levels,
                                 const SearchOptions &options) const;

    /**
     * The pre-optimization DP: per-transition intraCost/interCost
     * calls, serial. Bit-identical results to the dense engine; kept
     * as a test oracle and benchmark baseline. Fatal for levels > 10.
     */
    HierarchicalResult partitionReference(std::size_t levels) const;

    /**
     * Total communication of a single layer under level vector `v`
     * (bit h set = mp at level h), including the 2^h pair weighting.
     * Exposed for tests.
     */
    double intraCost(std::size_t layer, std::uint32_t v,
                     std::size_t levels) const;

    /** Total inter-layer cost of the l -> l+1 transition. */
    double interCost(std::size_t layer, std::uint32_t v_l,
                     std::uint32_t v_next, std::size_t levels) const;

    /**
     * The admissible per-(layer, state) completion bound h[l][s] the
     * beam and A* engines prune with: a lower bound (in the DP's own
     * float semantics, minus the re-association drift kBoundSlack
     * absorbs) on the cost of layers after l given layer l in level
     * vector s, flat [l * 2^H + s]. Exposed so external enumerations
     * — bruteForceHierarchical's Gray walk — can prune against the
     * same certificate the engines use. Fatal for levels > 16.
     */
    std::vector<double> suffixTable(std::size_t levels) const;

  private:
    HierarchicalResult partitionDense(std::size_t levels) const;
    HierarchicalResult partitionSparse(std::size_t levels) const;
    HierarchicalResult partitionBeam(std::size_t levels,
                                     const SearchOptions &options) const;
    HierarchicalResult partitionAStar(std::size_t levels) const;

    /** Flat intra[l * 2^levels + s] table, filled on the pool. */
    std::vector<double> intraTable(std::size_t levels) const;

    const CommModel *model_;
};

} // namespace hypar::core

#endif // HYPAR_CORE_OPTIMAL_PARTITIONER_HH
