/**
 * @file
 * Exact joint partitioner across all hierarchy levels — an extension
 * beyond the paper.
 *
 * Algorithm 2 is greedy across levels: it fixes level h's plan before
 * considering level h+1, even though the upper choice changes the
 * tensor amounts the lower levels see. The joint problem is still a
 * chain: give every layer a *level vector* v in {dp,mp}^H (bit h =
 * choice at level h). Then
 *
 *   total(v_0..v_{L-1}) = sum_l I(l, v_l)
 *                       + sum_l T(l, v_l, v_{l+1})
 *
 * where I and T expand over levels with the 2^h pair weighting and the
 * partitioned scaling derived from the vector's own prefix. That is a
 * standard chain DP over 2^H states per layer: O(L * 4^H) time — for
 * the paper's H = 4, a 256-state DP, exactly optimal.
 *
 * Used by the ablation harness to measure how much the greedy
 * hierarchical search leaves on the table (empirically: nothing for
 * most of the zoo, small single-digit percentages elsewhere).
 */

#ifndef HYPAR_CORE_OPTIMAL_PARTITIONER_HH
#define HYPAR_CORE_OPTIMAL_PARTITIONER_HH

#include <cstdint>
#include <vector>

#include "core/comm_model.hh"
#include "core/hierarchical_partitioner.hh"
#include "core/plan.hh"

namespace hypar::core {

/** Exact minimum-communication partitioner over all level vectors. */
class OptimalPartitioner
{
  public:
    explicit OptimalPartitioner(const CommModel &model);

    /**
     * Globally optimal hierarchical plan for `levels` levels.
     * Fatal for levels > 10 (4^H transition blow-up).
     */
    HierarchicalResult partition(std::size_t levels) const;

    /**
     * Total communication of a single layer under level vector `v`
     * (bit h set = mp at level h), including the 2^h pair weighting.
     * Exposed for tests.
     */
    double intraCost(std::size_t layer, std::uint32_t v,
                     std::size_t levels) const;

    /** Total inter-layer cost of the l -> l+1 transition. */
    double interCost(std::size_t layer, std::uint32_t v_l,
                     std::uint32_t v_next, std::size_t levels) const;

  private:
    const CommModel *model_;
};

} // namespace hypar::core

#endif // HYPAR_CORE_OPTIMAL_PARTITIONER_HH
