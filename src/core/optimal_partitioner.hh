/**
 * @file
 * Exact joint partitioner across all hierarchy levels — an extension
 * beyond the paper.
 *
 * Algorithm 2 is greedy across levels: it fixes level h's plan before
 * considering level h+1, even though the upper choice changes the
 * tensor amounts the lower levels see. The joint problem is still a
 * chain: give every layer a *level vector* v in {dp,mp}^H (bit h =
 * choice at level h). Then
 *
 *   total(v_0..v_{L-1}) = sum_l I(l, v_l)
 *                       + sum_l T(l, v_l, v_{l+1})
 *
 * where I and T expand over levels with the 2^h pair weighting and the
 * partitioned scaling derived from the vector's own prefix. That is a
 * standard chain DP over 2^H states per layer: O(L * 4^H) time — for
 * the paper's H = 4, a 256-state DP, exactly optimal.
 *
 * Engines (SearchEngine):
 *
 *  - kDense — the table-driven exhaustive DP. Precomputes flat tables
 *    (intra[l][s] for all 2^H states, and the inter cost factored per
 *    level into terms keyed by (level, choice pair, producer dp
 *    counts), only O(H^3) entries per layer) and evaluates all 2^H
 *    transition costs into a state s with one in-place prefix expansion
 *    over the level bits. Exact; capped at H = 10 by the 4^H transition
 *    blow-up.
 *
 *  - kSparse — exact like the dense DP but skips provably dominated
 *    transitions: predecessors are scanned in ascending (cost, index)
 *    order and the scan stops once cost[p] plus a per-target lower
 *    bound (the floating-point sum of per-level row minima of the
 *    factored inter table) can no longer beat the incumbent. Because
 *    rounding is monotone, the bound is safe in float arithmetic, so
 *    the result — cost and plan — is bit-identical to the dense DP.
 *    Reaches H = 16.
 *
 *  - kBeam — keeps only the `beamWidth` cheapest states of each layer
 *    frontier (by the shared tie-break order) as transition
 *    predecessors. Heuristic in general; exhaustive (and bit-identical
 *    to the dense DP) when beamWidth >= 2^H. Empirically the optimality
 *    gap is zero on the model zoo at the default width. Reaches H = 16;
 *    H = 12-14 searches finish in seconds.
 *
 *  - kAuto (default) — dense up to H = 10, beam beyond, preserving the
 *    historical bit-exact behaviour for every depth that was previously
 *    reachable while lifting the ceiling.
 *
 * Every engine runs its per-state loops on util::ThreadPool with fixed
 * chunking (or order-independent total-order argmins), so results are
 * bit-identical for every thread count; the dense path is also
 * bit-identical to partitionReference(), the original naive DP kept as
 * a test oracle.
 *
 * Used by the ablation harness to measure how much the greedy
 * hierarchical search leaves on the table (empirically: nothing for
 * most of the zoo, small single-digit percentages elsewhere).
 */

#ifndef HYPAR_CORE_OPTIMAL_PARTITIONER_HH
#define HYPAR_CORE_OPTIMAL_PARTITIONER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/comm_model.hh"
#include "core/hierarchical_partitioner.hh"
#include "core/plan.hh"

namespace hypar::core {

/** Which transition engine OptimalPartitioner::partition runs. */
enum class SearchEngine {
    kAuto,   //!< dense up to H = 10, beam beyond
    kDense,  //!< exhaustive O(L * 4^H) table DP (exact, H <= 10)
    kSparse, //!< exact DP with dominance pruning (H <= 16)
    kBeam,   //!< frontier-pruned DP (exact when beamWidth >= 2^H)
};

/** Parse "auto" | "dense" | "sparse" | "beam" (fatal otherwise). */
SearchEngine searchEngineFromName(const std::string &name);

/** Tunables of the joint search. */
struct SearchOptions
{
    SearchEngine engine = SearchEngine::kAuto;

    /**
     * Beam frontier width (kBeam only). 0 picks the default
     * max(1024, 2^H / 16). A width >= 2^H keeps every state and makes
     * the beam exhaustive — exact and bit-identical to the dense DP.
     */
    std::size_t beamWidth = 0;
};

/** Exact minimum-communication partitioner over all level vectors. */
class OptimalPartitioner
{
  public:
    /** Depth ceiling of the dense engine (4^H transition blow-up). */
    static constexpr std::size_t kDenseMaxLevels = 10;

    /** Depth ceiling of the sparse/beam engines (and of kAuto). */
    static constexpr std::size_t kMaxLevels = 16;

    /** Default beam width floor; see SearchOptions::beamWidth. */
    static constexpr std::size_t kDefaultBeamWidth = 1024;

    explicit OptimalPartitioner(const CommModel &model);

    /**
     * Optimal hierarchical plan for `levels` levels via the kAuto
     * engine policy: the exact dense DP up to H = 10 (bit-identical to
     * the historical behaviour), the beam engine beyond. Ties break
     * toward the dp-heavier state (core/tie_break.hh). Fatal for
     * levels > 16.
     */
    HierarchicalResult partition(std::size_t levels) const;

    /** Same search with an explicit engine / beam width. */
    HierarchicalResult partition(std::size_t levels,
                                 const SearchOptions &options) const;

    /**
     * The pre-optimization DP: per-transition intraCost/interCost
     * calls, serial. Bit-identical results to the dense engine; kept
     * as a test oracle and benchmark baseline. Fatal for levels > 10.
     */
    HierarchicalResult partitionReference(std::size_t levels) const;

    /**
     * Total communication of a single layer under level vector `v`
     * (bit h set = mp at level h), including the 2^h pair weighting.
     * Exposed for tests.
     */
    double intraCost(std::size_t layer, std::uint32_t v,
                     std::size_t levels) const;

    /** Total inter-layer cost of the l -> l+1 transition. */
    double interCost(std::size_t layer, std::uint32_t v_l,
                     std::uint32_t v_next, std::size_t levels) const;

  private:
    HierarchicalResult partitionDense(std::size_t levels) const;
    HierarchicalResult partitionSparse(std::size_t levels) const;
    HierarchicalResult partitionBeam(std::size_t levels,
                                     std::size_t beam_width) const;

    /** Flat intra[l * 2^levels + s] table, filled on the pool. */
    std::vector<double> intraTable(std::size_t levels) const;

    const CommModel *model_;
};

} // namespace hypar::core

#endif // HYPAR_CORE_OPTIMAL_PARTITIONER_HH
