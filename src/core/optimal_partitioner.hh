/**
 * @file
 * Exact joint partitioner across all hierarchy levels — an extension
 * beyond the paper.
 *
 * Algorithm 2 is greedy across levels: it fixes level h's plan before
 * considering level h+1, even though the upper choice changes the
 * tensor amounts the lower levels see. The joint problem is still a
 * chain: give every layer a *level vector* v in {dp,mp}^H (bit h =
 * choice at level h). Then
 *
 *   total(v_0..v_{L-1}) = sum_l I(l, v_l)
 *                       + sum_l T(l, v_l, v_{l+1})
 *
 * where I and T expand over levels with the 2^h pair weighting and the
 * partitioned scaling derived from the vector's own prefix. That is a
 * standard chain DP over 2^H states per layer: O(L * 4^H) time — for
 * the paper's H = 4, a 256-state DP, exactly optimal.
 *
 * Engine: the naive DP re-derived every per-level cost term inside the
 * O(L * 4^H) transition loop, costing O(L * 4^H * H) CommModel calls.
 * partition() instead precomputes flat tables — intra[l][s] for all 2^H
 * states, and the inter cost factored per level into terms keyed by
 * (level, choice pair, producer dp-counts), a table of only O(H^3)
 * entries per layer — and then evaluates all 2^H transition costs into
 * a state s with one in-place prefix expansion over the level bits
 * (O(2^H) adds instead of O(2^H * H)). The per-state transition loop
 * runs on util::ThreadPool with fixed chunking, so results are
 * bit-identical for every thread count; they are also bit-identical to
 * partitionReference(), the original naive DP kept as a test oracle.
 *
 * Used by the ablation harness to measure how much the greedy
 * hierarchical search leaves on the table (empirically: nothing for
 * most of the zoo, small single-digit percentages elsewhere).
 */

#ifndef HYPAR_CORE_OPTIMAL_PARTITIONER_HH
#define HYPAR_CORE_OPTIMAL_PARTITIONER_HH

#include <cstdint>
#include <vector>

#include "core/comm_model.hh"
#include "core/hierarchical_partitioner.hh"
#include "core/plan.hh"

namespace hypar::core {

/** Exact minimum-communication partitioner over all level vectors. */
class OptimalPartitioner
{
  public:
    explicit OptimalPartitioner(const CommModel &model);

    /**
     * Globally optimal hierarchical plan for `levels` levels, via the
     * table-driven parallel DP. Ties break toward the dp-heavier state
     * (core/tie_break.hh). Fatal for levels > 10 (4^H transition
     * blow-up).
     */
    HierarchicalResult partition(std::size_t levels) const;

    /**
     * The pre-optimization DP: per-transition intraCost/interCost
     * calls, serial. Bit-identical results to partition(); kept as a
     * test oracle and benchmark baseline.
     */
    HierarchicalResult partitionReference(std::size_t levels) const;

    /**
     * Total communication of a single layer under level vector `v`
     * (bit h set = mp at level h), including the 2^h pair weighting.
     * Exposed for tests.
     */
    double intraCost(std::size_t layer, std::uint32_t v,
                     std::size_t levels) const;

    /** Total inter-layer cost of the l -> l+1 transition. */
    double interCost(std::size_t layer, std::uint32_t v_l,
                     std::uint32_t v_next, std::size_t levels) const;

  private:
    const CommModel *model_;
};

} // namespace hypar::core

#endif // HYPAR_CORE_OPTIMAL_PARTITIONER_HH
