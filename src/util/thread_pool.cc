#include "util/thread_pool.hh"

#include <algorithm>

namespace hypar::util {

namespace {

/**
 * The pool whose batch the current thread is executing a chunk of, if
 * any. parallelFor consults it to detect nested calls into the same
 * pool (which must run inline: the batch state holds exactly one loop,
 * and a worker blocking on its own pool would deadlock).
 */
thread_local const ThreadPool *tls_active_pool = nullptr;

/** RAII save/restore of tls_active_pool across runChunks. */
struct ActivePoolScope
{
    const ThreadPool *saved;
    explicit ActivePoolScope(const ThreadPool *pool) : saved(tls_active_pool)
    {
        tls_active_pool = pool;
    }
    ~ActivePoolScope() { tls_active_pool = saved; }
};

} // namespace

ThreadPool::ThreadPool(std::size_t workers)
{
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
ThreadPool::runChunks()
{
    const ActivePoolScope scope(this);
    std::unique_lock<std::mutex> lock(mu_);
    while (next_ < end_) {
        const std::size_t b = next_;
        const std::size_t e = std::min(end_, b + grain_);
        next_ = e;
        ++busy_;
        lock.unlock();
        try {
            (*body_)(b, e);
        } catch (...) {
            lock.lock();
            if (!error_)
                error_ = std::current_exception();
            // Drain the remaining chunks: with a poisoned batch there is
            // no point running them, and skipping keeps shutdown simple.
            next_ = end_;
            --busy_;
            break;
        }
        lock.lock();
        --busy_;
    }
    if (next_ >= end_ && busy_ == 0)
        done_cv_.notify_all();
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen_epoch = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [&] {
                return stop_ || (epoch_ != seen_epoch && next_ < end_);
            });
            if (stop_)
                return;
            seen_epoch = epoch_;
        }
        runChunks();
    }
}

void
ThreadPool::parallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)> &body)
{
    if (end <= begin)
        return;
    if (grain == 0)
        grain = 1;

    // Serial pool, too little work to amortize a wakeup, or a nested
    // call from inside one of this pool's own batch bodies: run inline.
    // The fixed chunk grid makes the inline walk bit-identical to a
    // fanned-out run, so nesting costs parallelism, never correctness.
    if (workers_.empty() || end - begin <= grain ||
        tls_active_pool == this) {
        for (std::size_t b = begin; b < end; b += grain)
            body(b, std::min(end, b + grain));
        return;
    }

    // One top-level batch in flight at a time; concurrent submitters
    // (e.g. the serving tier's request groups) queue up here.
    std::lock_guard<std::mutex> submit(submit_mu_);
    {
        std::lock_guard<std::mutex> lock(mu_);
        body_ = &body;
        next_ = begin;
        end_ = end;
        grain_ = grain;
        error_ = nullptr;
        ++epoch_;
    }
    work_cv_.notify_all();

    // The caller works too, then waits for stragglers.
    runChunks();
    {
        std::unique_lock<std::mutex> lock(mu_);
        done_cv_.wait(lock, [&] { return next_ >= end_ && busy_ == 0; });
        body_ = nullptr;
        if (error_)
            std::rethrow_exception(error_);
    }
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool([] {
        const unsigned hw = std::thread::hardware_concurrency();
        const std::size_t workers = hw > 1 ? hw - 1 : 0;
        return std::min<std::size_t>(workers, 15);
    }());
    return pool;
}

} // namespace hypar::util
