/**
 * @file
 * Fixed-bucket latency histogram for the serving tier's `stats` op.
 *
 * Geometric buckets (ratio kBucketRatio, first bound kFirstBoundSec)
 * cover 100 ns .. ~100 s with ~5 % resolution at a few dozen counters,
 * so a long-lived server can report p50/p95/p99 per op without storing
 * samples. Everything is deterministic for a given record() sequence:
 * quantile() returns the *upper bound* of the bucket in which the
 * requested rank falls (clamped to the exact observed min/max), so two
 * servers that saw the same latencies report the same percentiles.
 *
 * Not internally synchronized: the server records at serial points
 * (batch folds), which is also what keeps the counts deterministic
 * under parallel request execution.
 */

#ifndef HYPAR_UTIL_LATENCY_HISTOGRAM_HH
#define HYPAR_UTIL_LATENCY_HISTOGRAM_HH

#include <array>
#include <cstddef>

namespace hypar::util {

class LatencyHistogram
{
  public:
    /** Upper bound of the first finite bucket (seconds). */
    static constexpr double kFirstBoundSec = 1e-7;

    /** Geometric growth factor between bucket bounds. */
    static constexpr double kBucketRatio = 1.25;

    /** Bucket count: [0, b0), [b0, b0*r), ... plus a catch-all tail. */
    static constexpr std::size_t kBuckets = 96;

    /** Fold one observation in. Negative values clamp to zero. */
    void record(double seconds);

    /** Observations recorded so far. */
    std::size_t count() const { return count_; }

    /**
     * The q-quantile (q in [0, 1]) as the upper bound of the bucket
     * holding the ceil(q * count)-th smallest observation, clamped to
     * [min(), max()]. 0.0 when empty.
     */
    double quantile(double q) const;

    /** Exact smallest / largest recorded value (0.0 when empty). */
    double min() const { return count_ > 0 ? min_ : 0.0; }
    double max() const { return count_ > 0 ? max_ : 0.0; }

  private:
    /** Upper bound of bucket b (the tail bucket is unbounded). */
    static double bound(std::size_t b);

    std::array<std::size_t, kBuckets> counts_{};
    std::size_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace hypar::util

#endif // HYPAR_UTIL_LATENCY_HISTOGRAM_HH
