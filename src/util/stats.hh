/**
 * @file
 * Small statistics helpers used by the evaluation harness: geometric and
 * arithmetic means, and an ordinary-least-squares linear fit used by the
 * partitioner linearity benchmark.
 */

#ifndef HYPAR_UTIL_STATS_HH
#define HYPAR_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace hypar::util {

/**
 * Geometric mean of a set of strictly positive values.
 * The paper reports all cross-network results as geometric means.
 */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; fatal on empty input. */
double mean(const std::vector<double> &values);

/** Sample standard deviation (n-1 denominator); 0 for n < 2. */
double stddev(const std::vector<double> &values);

/** Result of an ordinary least squares fit y = slope*x + intercept. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination in [0, 1]. */
    double r2 = 0.0;
};

/** Least-squares fit; fatal unless xs.size() == ys.size() >= 2. */
LinearFit linearFit(const std::vector<double> &xs,
                    const std::vector<double> &ys);

} // namespace hypar::util

#endif // HYPAR_UTIL_STATS_HH
