/**
 * @file
 * Unit helpers: bytes, bandwidths, times and energies used across the
 * simulator. All quantities are carried as double in SI base units
 * (bytes, bytes/second, seconds, joules); these helpers exist to make
 * call sites read unambiguously.
 */

#ifndef HYPAR_UTIL_UNITS_HH
#define HYPAR_UTIL_UNITS_HH

#include <cstdint>

namespace hypar::util {

// --- byte quantities -----------------------------------------------------

constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

/** Decimal giga used by the paper's "GB" communication figures. */
constexpr double kKB = 1e3;
constexpr double kMB = 1e6;
constexpr double kGB = 1e9;

// --- bandwidth -----------------------------------------------------------

/** Convert megabits/second to bytes/second. */
constexpr double
mbitsPerSec(double mbits)
{
    return mbits * 1e6 / 8.0;
}

/** Convert gigabits/second to bytes/second. */
constexpr double
gbitsPerSec(double gbits)
{
    return gbits * 1e9 / 8.0;
}

/** Convert gigabytes/second to bytes/second. */
constexpr double
gbytesPerSec(double gbytes)
{
    return gbytes * 1e9;
}

// --- energy --------------------------------------------------------------

constexpr double kPicoJoule = 1e-12;
constexpr double kNanoJoule = 1e-9;
constexpr double kMicroJoule = 1e-6;
constexpr double kMilliJoule = 1e-3;

// --- time ----------------------------------------------------------------

constexpr double kMicroSec = 1e-6;
constexpr double kMilliSec = 1e-3;

} // namespace hypar::util

#endif // HYPAR_UTIL_UNITS_HH
