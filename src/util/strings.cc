#include "util/strings.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace hypar::util {

namespace {

std::string
formatWithUnit(double value, const char *unit)
{
    char buf[64];
    if (value == 0.0) {
        std::snprintf(buf, sizeof(buf), "0 %s", unit);
    } else if (value >= 100.0) {
        std::snprintf(buf, sizeof(buf), "%.0f %s", value, unit);
    } else if (value >= 10.0) {
        std::snprintf(buf, sizeof(buf), "%.1f %s", value, unit);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3g %s", value, unit);
    }
    return buf;
}

} // namespace

std::string
formatBytes(double bytes)
{
    if (bytes >= 1e9)
        return formatWithUnit(bytes / 1e9, "GB");
    if (bytes >= 1e6)
        return formatWithUnit(bytes / 1e6, "MB");
    if (bytes >= 1e3)
        return formatWithUnit(bytes / 1e3, "KB");
    return formatWithUnit(bytes, "B");
}

std::string
formatSeconds(double seconds)
{
    const double a = std::fabs(seconds);
    if (a >= 1.0)
        return formatWithUnit(seconds, "s");
    if (a >= 1e-3)
        return formatWithUnit(seconds * 1e3, "ms");
    if (a >= 1e-6)
        return formatWithUnit(seconds * 1e6, "us");
    return formatWithUnit(seconds * 1e9, "ns");
}

std::string
formatJoules(double joules)
{
    const double a = std::fabs(joules);
    if (a >= 1.0)
        return formatWithUnit(joules, "J");
    if (a >= 1e-3)
        return formatWithUnit(joules * 1e3, "mJ");
    if (a >= 1e-6)
        return formatWithUnit(joules * 1e6, "uJ");
    return formatWithUnit(joules * 1e9, "nJ");
}

std::string
formatSig(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
    return buf;
}

std::string
formatRatio(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2fx", value);
    return buf;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            os << sep;
        os << parts[i];
    }
    return os.str();
}

} // namespace hypar::util
