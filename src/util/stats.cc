#include "util/stats.hh"

#include <cmath>

#include "util/logging.hh"

namespace hypar::util {

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        fatal("geomean of empty set");
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fatal("geomean requires strictly positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        fatal("mean of empty set");
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    const double m = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

LinearFit
linearFit(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size())
        fatal("linearFit: mismatched vector lengths");
    if (xs.size() < 2)
        fatal("linearFit: need at least two points");

    const auto n = static_cast<double>(xs.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
        syy += ys[i] * ys[i];
    }

    const double denom = n * sxx - sx * sx;
    if (denom == 0.0)
        fatal("linearFit: degenerate x values");

    LinearFit fit;
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;

    const double ss_tot = syy - sy * sy / n;
    if (ss_tot <= 0.0) {
        fit.r2 = 1.0; // all y equal: a flat line fits exactly
    } else {
        double ss_res = 0.0;
        for (std::size_t i = 0; i < xs.size(); ++i) {
            const double e = ys[i] - (fit.slope * xs[i] + fit.intercept);
            ss_res += e * e;
        }
        fit.r2 = 1.0 - ss_res / ss_tot;
    }
    return fit;
}

} // namespace hypar::util
