/**
 * @file
 * Minimal console table printer used by the benchmark harness to emit
 * paper-style tables (Fig. 6/7/8 rows etc.).
 */

#ifndef HYPAR_UTIL_TABLE_HH
#define HYPAR_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace hypar::util {

/**
 * A column-aligned ASCII table. Usage:
 *
 *   Table t({"network", "DP", "HyPar"});
 *   t.addRow({"VGG-A", "1.00", "3.27"});
 *   t.print(std::cout);
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append one row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Render to a stream with aligned columns. */
    void print(std::ostream &os) const;

    /** Render to a string (for tests). */
    std::string toString() const;

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numCols() const { return header_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace hypar::util

#endif // HYPAR_UTIL_TABLE_HH
