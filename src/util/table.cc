#include "util/table.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace hypar::util {

Table::Table(std::vector<std::string> header)
    : header_(std::move(header))
{
    if (header_.empty())
        fatal("Table: empty header");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != header_.size())
        fatal("Table: row arity mismatch");
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c ? "  " : "");
            os << row[c];
            os << std::string(width[c] - row[c].size(), ' ');
        }
        os << "\n";
    };

    emit_row(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
Table::toString() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

} // namespace hypar::util
