/**
 * @file
 * A small persistent worker pool with a deterministic parallel-for.
 *
 * The partition-search engines fan their per-state transition loops out
 * over this pool. Determinism is a hard requirement there — a plan must
 * not depend on thread count or scheduling — so the primitives are
 * shaped accordingly:
 *
 *  - parallelFor(begin, end, grain, body) splits [begin, end) into
 *    fixed contiguous chunks of `grain` iterations. Chunk boundaries
 *    depend only on (begin, end, grain), never on the thread count, so
 *    any per-chunk state a caller accumulates is reproducible.
 *  - parallelReduce(...) maps every chunk to a partial value and
 *    combines the partials serially in ascending chunk order, which
 *    makes even non-associative (floating-point) reductions exact and
 *    repeatable.
 *
 * The caller's thread participates in the work, so a pool constructed
 * with 0 extra workers degrades to a plain serial loop with no
 * synchronization overhead — important on single-core hosts where
 * spawning threads would only slow the search down.
 *
 * Composition rules (the serving tier runs whole request groups as
 * pool bodies, and those bodies call the search engines, which use the
 * pool themselves):
 *
 *  - Nested: a body running on pool P that calls P.parallelFor again
 *    executes the nested loop inline on its own thread, chunk by chunk
 *    in ascending order. Because the chunk grid is fixed, the nested
 *    results are bit-identical to a top-level run — the nested caller
 *    just doesn't recruit help.
 *  - Concurrent: top-level parallelFor calls from different threads
 *    serialize on an internal submission mutex (one batch in flight at
 *    a time). Safe, deterministic per call site, but the batches run
 *    back to back — concurrency should come from one outer
 *    parallelFor, not from racing submitters.
 */

#ifndef HYPAR_UTIL_THREAD_POOL_HH
#define HYPAR_UTIL_THREAD_POOL_HH

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hypar::util {

/** Persistent worker pool; see the file comment for the guarantees. */
class ThreadPool
{
  public:
    /**
     * Create a pool with `workers` background threads. 0 means "serial":
     * every parallelFor runs inline on the calling thread.
     */
    explicit ThreadPool(std::size_t workers);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Threads that execute work, including the caller. */
    std::size_t parallelism() const { return workers_.size() + 1; }

    /**
     * The library's shared chunking convention for fanning `items`
     * independent work units over this pool: ~4 chunks per thread for
     * load balancing, never below one item. Callers that accumulate
     * order-sensitive per-chunk state must NOT use this (it varies with
     * the pool size); it is only for loops whose per-item results are
     * written independently by index, where any chunk grid yields
     * bit-identical output.
     */
    std::size_t grainFor(std::size_t items) const
    {
        return std::max<std::size_t>(1, items / (4 * parallelism()));
    }

    /**
     * Run body(chunk_begin, chunk_end) for fixed chunks of `grain`
     * iterations covering [begin, end). Chunks never overlap and their
     * boundaries are independent of the thread count. The first
     * exception thrown by a body is rethrown on the calling thread.
     * Reentrant and thread-safe per the file comment: a body calling
     * back into the same pool runs its nested loop inline; top-level
     * calls from several threads serialize on submit_mu_.
     */
    void parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                     const std::function<void(std::size_t, std::size_t)>
                         &body);

    /**
     * Deterministic reduction: partials[i] = map(chunk_i begin, end) for
     * the same fixed chunk grid as parallelFor, combined left-to-right
     * with `combine` on the calling thread. The result is bit-identical
     * for every thread count, including pure serial execution.
     */
    template <typename T, typename Map, typename Combine>
    T parallelReduce(std::size_t begin, std::size_t end, std::size_t grain,
                     T init, const Map &map, const Combine &combine)
    {
        if (end <= begin)
            return init;
        if (grain == 0)
            grain = 1;
        const std::size_t chunks = (end - begin + grain - 1) / grain;
        std::vector<T> partials(chunks);
        parallelFor(begin, end, grain,
                    [&](std::size_t b, std::size_t e) {
                        partials[(b - begin) / grain] = map(b, e);
                    });
        T acc = init;
        for (const T &p : partials)
            acc = combine(acc, p);
        return acc;
    }

    /**
     * Process-wide pool sized to the hardware (hardware_concurrency - 1
     * workers, clamped to [0, 15]). Lazily constructed, never destroyed
     * before process exit.
     */
    static ThreadPool &global();

  private:
    void workerLoop();
    void runChunks();

    std::vector<std::thread> workers_;

    /** Held for the whole lifetime of a top-level batch so concurrent
     *  submitters (the serving tier's request groups) line up instead
     *  of corrupting the single-batch state below. */
    std::mutex submit_mu_;

    std::mutex mu_;
    std::condition_variable work_cv_; //!< signals a new batch / shutdown
    std::condition_variable done_cv_; //!< signals batch completion

    // State of the (single) in-flight batch, guarded by mu_.
    const std::function<void(std::size_t, std::size_t)> *body_ = nullptr;
    std::size_t next_ = 0;
    std::size_t end_ = 0;
    std::size_t grain_ = 1;
    std::size_t busy_ = 0;     //!< workers currently inside body()
    std::uint64_t epoch_ = 0;  //!< bumped per batch so workers wake once
    std::exception_ptr error_; //!< first body exception, if any
    bool stop_ = false;
};

} // namespace hypar::util

#endif // HYPAR_UTIL_THREAD_POOL_HH
