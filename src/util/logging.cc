#include "util/logging.hh"

#include <atomic>
#include <iostream>

namespace hypar::util {

namespace {
std::atomic<bool> verboseEnabled{true};
} // namespace

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

void
warn(const std::string &msg)
{
    if (verboseEnabled.load(std::memory_order_relaxed))
        std::cerr << "warn: " << msg << "\n";
}

void
inform(const std::string &msg)
{
    if (verboseEnabled.load(std::memory_order_relaxed))
        std::cerr << "info: " << msg << "\n";
}

void
setVerbose(bool verbose)
{
    verboseEnabled.store(verbose, std::memory_order_relaxed);
}

} // namespace hypar::util
