#include "util/latency_histogram.hh"

#include <algorithm>
#include <cmath>

namespace hypar::util {

double
LatencyHistogram::bound(std::size_t b)
{
    // bound(0) = kFirstBoundSec, growing geometrically. Computed with
    // pow so the bounds are identical however record() walked to the
    // bucket.
    return kFirstBoundSec * std::pow(kBucketRatio, static_cast<double>(b));
}

void
LatencyHistogram::record(double seconds)
{
    const double v = seconds > 0.0 ? seconds : 0.0;
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    std::size_t b = 0;
    while (b + 1 < kBuckets && v >= bound(b))
        ++b;
    ++counts_[b];
    ++count_;
}

double
LatencyHistogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    const double clamped = std::clamp(q, 0.0, 1.0);
    // Rank of the requested observation, 1-based, at least 1.
    const std::size_t rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(clamped * static_cast<double>(count_))));
    std::size_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        seen += counts_[b];
        if (seen >= rank)
            return std::clamp(bound(b), min_, max_);
    }
    return max_;
}

} // namespace hypar::util
