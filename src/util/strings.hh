/**
 * @file
 * String formatting helpers for human-readable reports: engineering
 * formatting of byte counts, times and ratios.
 */

#ifndef HYPAR_UTIL_STRINGS_HH
#define HYPAR_UTIL_STRINGS_HH

#include <string>
#include <vector>

namespace hypar::util {

/** Format a byte count using decimal units (B, KB, MB, GB) as the paper. */
std::string formatBytes(double bytes);

/** Format seconds with an adaptive unit (s / ms / us / ns). */
std::string formatSeconds(double seconds);

/** Format joules with an adaptive unit (J / mJ / uJ / nJ). */
std::string formatJoules(double joules);

/** Format a double with the given number of significant digits. */
std::string formatSig(double value, int digits);

/** Format a ratio like "3.39x". */
std::string formatRatio(double value);

/** Join strings with a separator. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

} // namespace hypar::util

#endif // HYPAR_UTIL_STRINGS_HH
