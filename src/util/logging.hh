/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * Two failure classes are distinguished:
 *  - fatal():  the simulation cannot continue because of a *user* error
 *              (bad configuration, invalid network, unsupported shape).
 *              Raises util::FatalError.
 *  - panic():  an internal invariant was violated — a bug in this library.
 *              Raises util::PanicError.
 *
 * Both throw exceptions rather than calling std::abort so the library is
 * usable (and testable) as an embedded component.
 */

#ifndef HYPAR_UTIL_LOGGING_HH
#define HYPAR_UTIL_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace hypar::util {

/** User-caused error: invalid input, impossible configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error("fatal: " + msg)
    {}
};

/** Internal invariant violation: a library bug, not a user error. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error("panic: " + msg)
    {}
};

/** Throw a FatalError with a formatted message. */
[[noreturn]] void fatal(const std::string &msg);

/** Throw a PanicError with a formatted message. */
[[noreturn]] void panic(const std::string &msg);

/** Print a warning to stderr (never stops execution). */
void warn(const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

/** Enable/disable inform()/warn() output (tests silence it). */
void setVerbose(bool verbose);

} // namespace hypar::util

/**
 * Assert a library invariant. Unlike assert(3) this is always compiled in
 * and throws PanicError so tests can check invariant enforcement.
 */
#define HYPAR_ASSERT(cond, msg)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream hypar_assert_ss;                             \
            hypar_assert_ss << "assertion '" #cond "' failed at "           \
                            << __FILE__ << ":" << __LINE__ << ": " << msg;  \
            ::hypar::util::panic(hypar_assert_ss.str());                    \
        }                                                                   \
    } while (0)

#endif // HYPAR_UTIL_LOGGING_HH
