/**
 * @file
 * Fault/heterogeneity maps for a degraded accelerator array (HyCA-style:
 * dead or derated nodes, broken or throttled links).
 *
 * A FaultMap is a sparse list of per-node compute scales and per-link
 * bandwidth scales, each in [0, 1]:
 *
 *   - node scale s: the node computes at fraction s of a healthy node
 *     (derated clock / disabled PE rows); s = 0 means the node is dead
 *     and its shard is redistributed over the survivors.
 *   - link scale s: the link carries fraction s of its nominal
 *     bandwidth; s = 0 means the link is down.
 *
 * Unlisted nodes/links are healthy (scale 1). Link ids follow each
 * topology's numbering (see noc::HTreeTopology / noc::TorusTopology).
 * Topologies without a link-level fault model (the mesh, whose
 * inherited torus id space contains wrap links that carry no traffic)
 * reject link entries outright — see noc::Topology::supportsLinkFaults
 * and the Evaluator's line-numbered rejection.
 *
 * The array executes in lockstep, so degradation has slowest-member
 * semantics: compute is priced on the slowest surviving node
 * (computeScaleFactor), and a level exchange on the worst link its
 * group pairs cross (noc::Topology::levelPenalty).
 *
 * Text format (parseFaultMap), one entry per line, '#' comments:
 *
 *   node <id> <scale>
 *   link <id> <scale>
 */

#ifndef HYPAR_ARCH_FAULT_MAP_HH
#define HYPAR_ARCH_FAULT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hypar::arch {

/** One degraded component: a node or link id with its scale. */
struct FaultEntry
{
    std::size_t id = 0;
    double scale = 1.0; //!< in [0, 1]; 0 = dead
    /** 1-based source line when parsed from the text format, 0 for
     *  programmatic entries — lets later validation stages (e.g. the
     *  Evaluator's topology checks) point at the offending line. */
    std::size_t line = 0;

    bool operator==(const FaultEntry &o) const
    {
        // Provenance is not identity: the same fault parsed from a
        // different line is the same fault.
        return id == o.id && scale == o.scale;
    }
};

/** Sparse fault map over an accelerator array. */
struct FaultMap
{
    std::vector<FaultEntry> nodes;
    std::vector<FaultEntry> links;

    bool empty() const { return nodes.empty() && links.empty(); }

    bool operator==(const FaultMap &) const = default;
};

/**
 * Parse the text format above. Fatal on malformed lines, scales outside
 * [0, 1], or duplicate ids (per kind). Id range is checked later by
 * validateFaultMap, which knows the array.
 */
FaultMap parseFaultMap(std::istream &in);

/** parseFaultMap over a file; fatal when the file cannot be read. */
FaultMap parseFaultMapFile(const std::string &path);

/**
 * Check a map against a concrete array: every node id < numNodes,
 * every link id < numLinks, and at least one node survives (scale > 0).
 * Fatal with a precise message otherwise.
 */
void validateFaultMap(const FaultMap &map, std::size_t numNodes,
                      std::size_t numLinks);

/** Dense per-node scale vector (1.0 for unlisted nodes). Fatal on
 *  out-of-range or duplicate ids. */
std::vector<double> nodeScales(const FaultMap &map, std::size_t numNodes);

/** Dense per-link scale vector (1.0 for unlisted links). Fatal on
 *  out-of-range or duplicate ids. */
std::vector<double> linkScales(const FaultMap &map, std::size_t numLinks);

/**
 * Lockstep compute slowdown of the degraded array, >= 1:
 *
 *   (numNodes / survivors) / min surviving scale
 *
 * Dead nodes' shards are redistributed evenly over the survivors, and
 * the step then waits for the slowest survivor. Exactly 1.0 for an
 * empty map. Fatal when every node is dead (there is nothing to plan
 * for — callers must not silently return a degenerate plan).
 */
double computeScaleFactor(const FaultMap &map, std::size_t numNodes);

/**
 * Mix a base seed with a sample index into an independent stream seed
 * (splitmix64 finalizer); sampleFaultMap(rate, n, l, mixSeed(seed, k))
 * gives the k-th sample of a deterministic fault distribution.
 */
std::uint64_t mixSeed(std::uint64_t seed, std::uint64_t index);

/**
 * Draw one fault map from the (rate, seed) distribution,
 * deterministically: each node dies with probability `rate` (with a
 * revive guard so at least one node survives), and each link is
 * independently throttled with probability `rate` to a scale in
 * [0.25, 0.75) — never killed, so sampled sweeps stay finite. Fatal
 * when rate is outside [0, 1].
 */
FaultMap sampleFaultMap(double rate, std::size_t numNodes,
                        std::size_t numLinks, std::uint64_t seed);

} // namespace hypar::arch

#endif // HYPAR_ARCH_FAULT_MAP_HH
