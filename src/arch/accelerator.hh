/**
 * @file
 * Configuration of one HMC-based accelerator (paper Section 5 / 6.1):
 * an Eyeriss-like row-stationary processing unit with 168 PEs (12 x 14)
 * at 250 MHz (84 GOPS at 2 ops per MAC), a 108 KB on-chip buffer, placed
 * on the logic die of a Hybrid Memory Cube with 320 GB/s of internal
 * DRAM bandwidth and 8 GB of stacked DRAM.
 */

#ifndef HYPAR_ARCH_ACCELERATOR_HH
#define HYPAR_ARCH_ACCELERATOR_HH

#include <cstddef>

#include "util/units.hh"

namespace hypar::arch {

/** Static parameters of one accelerator (PU + HMC). */
struct AcceleratorConfig
{
    // --- processing unit ----------------------------------------------
    std::size_t peRows = 12;
    std::size_t peCols = 14;
    double clockHz = 250e6;

    /** On-chip (global buffer) capacity in bytes. */
    double bufferBytes = 108.0 * util::kKiB;

    // --- hybrid memory cube -------------------------------------------
    double dramBandwidth = util::gbytesPerSec(320.0);
    double dramCapacity = 8.0 * util::kGiB;

    /** Total PEs in the array. */
    std::size_t numPes() const { return peRows * peCols; }

    /** Peak MACs/second with every PE busy (1 MAC per PE per cycle). */
    double
    peakMacsPerSec() const
    {
        return static_cast<double>(numPes()) * clockHz;
    }

    /** Peak ops/second as marketed (2 ops per MAC): 84 GOPS default. */
    double peakOpsPerSec() const { return 2.0 * peakMacsPerSec(); }
};

/**
 * Reject configurations the cost model silently mispredicts on:
 * zero/negative PE grids, and non-positive or non-finite clock, buffer,
 * or DRAM parameters (a NaN clock used to flow straight into task
 * seconds). Fatal with a message naming the offending field.
 */
void validateAcceleratorConfig(const AcceleratorConfig &config);

} // namespace hypar::arch

#endif // HYPAR_ARCH_ACCELERATOR_HH
