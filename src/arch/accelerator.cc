#include "arch/accelerator.hh"

#include <cmath>

#include "util/logging.hh"

namespace hypar::arch {

void
validateAcceleratorConfig(const AcceleratorConfig &config)
{
    if (config.peRows == 0 || config.peCols == 0)
        util::fatal("AcceleratorConfig: PE grid must be non-empty "
                    "(peRows and peCols must be positive)");
    // Negated comparisons so NaN fails the check too.
    if (!(config.clockHz > 0.0) || !std::isfinite(config.clockHz))
        util::fatal("AcceleratorConfig: clockHz must be positive and "
                    "finite");
    if (!(config.bufferBytes > 0.0) || !std::isfinite(config.bufferBytes))
        util::fatal("AcceleratorConfig: bufferBytes must be positive "
                    "and finite");
    if (!(config.dramBandwidth > 0.0) ||
        !std::isfinite(config.dramBandwidth))
        util::fatal("AcceleratorConfig: dramBandwidth must be positive "
                    "and finite");
    if (!(config.dramCapacity > 0.0) ||
        !std::isfinite(config.dramCapacity))
        util::fatal("AcceleratorConfig: dramCapacity must be positive "
                    "and finite");
}

} // namespace hypar::arch
