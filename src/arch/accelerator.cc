#include "arch/accelerator.hh"

// AcceleratorConfig is a header-only aggregate; this translation unit
// anchors the library target.
