#include "arch/fault_map.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "util/logging.hh"

namespace hypar::arch {

namespace {

/** splitmix64 step: the standard 64-bit mixer, chosen over the std
 *  distributions because its stream is identical on every platform. */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Uniform double in [0, 1) from one splitmix64 draw. */
double
u01(std::uint64_t &state)
{
    return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

void
checkScale(double scale, const std::string &what, std::size_t line)
{
    // The negated comparison also rejects NaN.
    if (!(scale >= 0.0 && scale <= 1.0))
        util::fatal("fault map line " + std::to_string(line) + ": " +
                    what + " scale must be in [0, 1]");
}

} // namespace

FaultMap
parseFaultMap(std::istream &in)
{
    FaultMap map;
    std::set<std::size_t> seen_nodes, seen_links;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string kind;
        if (!(ls >> kind))
            continue; // blank / comment-only line
        if (kind != "node" && kind != "link")
            util::fatal("fault map line " + std::to_string(lineno) +
                        ": expected 'node' or 'link', got '" + kind + "'");
        long long id = -1;
        double scale = -1.0;
        if (!(ls >> id >> scale) || id < 0)
            util::fatal("fault map line " + std::to_string(lineno) +
                        ": expected '" + kind + " <id> <scale>'");
        std::string extra;
        if (ls >> extra)
            util::fatal("fault map line " + std::to_string(lineno) +
                        ": trailing junk '" + extra + "'");
        checkScale(scale, kind, lineno);
        const auto uid = static_cast<std::size_t>(id);
        auto &seen = kind == "node" ? seen_nodes : seen_links;
        if (!seen.insert(uid).second)
            util::fatal("fault map line " + std::to_string(lineno) +
                        ": duplicate " + kind + " id " +
                        std::to_string(uid));
        (kind == "node" ? map.nodes : map.links)
            .push_back({uid, scale, lineno});
    }
    return map;
}

FaultMap
parseFaultMapFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        util::fatal("cannot read fault map '" + path + "'");
    return parseFaultMap(in);
}

namespace {

std::vector<double>
denseScales(const std::vector<FaultEntry> &entries, std::size_t count,
            const std::string &what)
{
    std::vector<double> scales(count, 1.0);
    std::vector<bool> seen(count, false);
    for (const auto &e : entries) {
        if (e.id >= count)
            util::fatal("fault map: " + what + " id " +
                        std::to_string(e.id) + " out of range (array has " +
                        std::to_string(count) + " " + what + "s)");
        if (seen[e.id])
            util::fatal("fault map: duplicate " + what + " id " +
                        std::to_string(e.id));
        seen[e.id] = true;
        if (!(e.scale >= 0.0 && e.scale <= 1.0))
            util::fatal("fault map: " + what + " " +
                        std::to_string(e.id) + " scale must be in [0, 1]");
        scales[e.id] = e.scale;
    }
    return scales;
}

} // namespace

std::vector<double>
nodeScales(const FaultMap &map, std::size_t numNodes)
{
    return denseScales(map.nodes, numNodes, "node");
}

std::vector<double>
linkScales(const FaultMap &map, std::size_t numLinks)
{
    return denseScales(map.links, numLinks, "link");
}

void
validateFaultMap(const FaultMap &map, std::size_t numNodes,
                 std::size_t numLinks)
{
    (void)nodeScales(map, numNodes);
    (void)linkScales(map, numLinks);
    (void)computeScaleFactor(map, numNodes);
}

double
computeScaleFactor(const FaultMap &map, std::size_t numNodes)
{
    if (numNodes == 0)
        util::fatal("computeScaleFactor: empty array");
    const std::vector<double> scales = nodeScales(map, numNodes);
    std::size_t survivors = 0;
    double min_scale = 1.0;
    for (const double s : scales) {
        if (s > 0.0) {
            ++survivors;
            min_scale = std::min(min_scale, s);
        }
    }
    if (survivors == 0)
        util::fatal("fault map kills every node in the array; nothing "
                    "to plan for");
    // Redistribute the dead nodes' shards over the survivors, then wait
    // for the slowest survivor (lockstep). Exactly 1.0 for a pristine
    // map: numNodes/numNodes == 1.0 and min_scale == 1.0.
    return (static_cast<double>(numNodes) /
            static_cast<double>(survivors)) /
           min_scale;
}

std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t index)
{
    std::uint64_t state = seed ^ (0xd1342543de82ef95ULL * (index + 1));
    return splitmix64(state);
}

FaultMap
sampleFaultMap(double rate, std::size_t numNodes, std::size_t numLinks,
               std::uint64_t seed)
{
    if (!(rate >= 0.0 && rate <= 1.0))
        util::fatal("sampleFaultMap: rate must be in [0, 1]");

    FaultMap map;
    std::uint64_t state = seed;
    std::size_t survivors = numNodes;
    for (std::size_t n = 0; n < numNodes; ++n) {
        if (u01(state) < rate) {
            map.nodes.push_back({n, 0.0});
            --survivors;
        }
    }
    // Revive guard: a sample must leave something to plan for.
    if (survivors == 0 && !map.nodes.empty()) {
        map.nodes.erase(map.nodes.begin() +
                        static_cast<std::ptrdiff_t>(
                            splitmix64(state) % map.nodes.size()));
    }
    for (std::size_t l = 0; l < numLinks; ++l) {
        if (u01(state) < rate) {
            // Throttled, never dead: sampled sweeps stay finite.
            map.links.push_back({l, 0.25 + 0.5 * u01(state)});
        }
    }
    return map;
}

} // namespace hypar::arch
