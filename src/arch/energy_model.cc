#include "arch/energy_model.hh"

// EnergyModel is a header-only aggregate; this translation unit anchors
// the library target so every module ships a .cc with its header.
