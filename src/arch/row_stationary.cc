#include "arch/row_stationary.hh"

#include <algorithm>

#include "util/logging.hh"

namespace hypar::arch {

RowStationaryMapper::RowStationaryMapper(const AcceleratorConfig &config)
    : config_(config)
{
    if (config_.peRows == 0 || config_.peCols == 0)
        util::fatal("RowStationaryMapper: empty PE array");
    if (config_.clockHz <= 0.0)
        util::fatal("RowStationaryMapper: non-positive clock");
}

Mapping
RowStationaryMapper::map(const dnn::Layer &layer,
                         std::size_t batch_shard) const
{
    if (batch_shard == 0)
        util::fatal("RowStationaryMapper: empty batch shard");

    const std::size_t rows = config_.peRows;
    const std::size_t cols = config_.peCols;

    // Spatial extent of one PE set.
    std::size_t set_h; // kernel rows pinned down a column of PEs
    std::size_t set_w; // output rows spread across PE columns
    if (layer.isConv()) {
        set_h = std::min(layer.kernel, rows);
        set_w = std::min(layer.outRaw.h, cols);
    } else {
        // FC: the batch plays the role of the sliding output dimension.
        set_h = 1;
        set_w = std::min(batch_shard, cols);
    }

    // Concurrent sets on distinct output channels / neurons.
    const std::size_t sets_v = std::max<std::size_t>(rows / set_h, 1);
    const std::size_t sets_h = std::max<std::size_t>(cols / set_w, 1);
    std::size_t channel_limit = layer.outChannels;
    if (layer.isConv()) {
        // Additional replication across unused columns processes more
        // output rows, not more channels; keep the channel dimension on
        // the vertical replication only.
        channel_limit = layer.outChannels;
    }
    const std::size_t sets =
        std::min(sets_v * sets_h, std::max<std::size_t>(channel_limit, 1));

    Mapping m;
    m.usedPes = static_cast<double>(
        std::min(sets * set_h * set_w, rows * cols));
    m.utilization = m.usedPes / static_cast<double>(config_.numPes());

    // Row-stationary reuse: weights are reused across the output row
    // sliding (W_out positions), feature rows across the K kernel rows,
    // and partial sums accumulate inside the array over the K rows
    // (one read + one write per K MACs).
    const double k = layer.isConv() ? static_cast<double>(layer.kernel)
                                    : 1.0;
    const double w_out = layer.isConv()
                             ? static_cast<double>(layer.outRaw.w)
                             : static_cast<double>(batch_shard);
    const double weight_words = 1.0 / std::max(w_out, 1.0);
    const double ifmap_words = 1.0 / std::max(k, 1.0);
    const double psum_words = 2.0 / std::max(k, 1.0);
    m.sramWordsPerMac = weight_words + ifmap_words + psum_words;
    return m;
}

double
RowStationaryMapper::phaseSeconds(const dnn::Layer &layer,
                                  std::size_t batch_shard,
                                  double macs) const
{
    if (macs <= 0.0)
        return 0.0;
    const Mapping m = map(layer, batch_shard);
    const double macs_per_sec = m.usedPes * config_.clockHz;
    HYPAR_ASSERT(macs_per_sec > 0.0, "zero effective throughput");
    return macs / macs_per_sec;
}

} // namespace hypar::arch
