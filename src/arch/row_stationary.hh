/**
 * @file
 * Row-stationary mapping model (Eyeriss-style, paper Section 5).
 *
 * The paper's PUs use Eyeriss's row-stationary dataflow: kernel rows are
 * pinned to PE rows (reused across output columns), feature-map rows move
 * diagonally (reused across kernel rows), and partial sums accumulate
 * vertically. We model the mapping analytically:
 *
 *  - a PE *set* for a conv layer occupies K PE rows by min(H_out, cols)
 *    PE columns; floor(rows/K) sets run concurrently on distinct output
 *    channels; K > rows folds over multiple passes.
 *  - a fully-connected layer is mapped with the batch taking the role of
 *    output columns (K = 1, H_out = batch shard).
 *
 * This yields a utilization factor and SRAM-traffic-per-MAC estimate.
 * The intra-accelerator dataflow is intentionally approximate: HyPar's
 * contribution is the coarse-grain organization *between* accelerators
 * and the paper treats the stand-alone PU design as orthogonal.
 */

#ifndef HYPAR_ARCH_ROW_STATIONARY_HH
#define HYPAR_ARCH_ROW_STATIONARY_HH

#include <cstddef>

#include "arch/accelerator.hh"
#include "dnn/layer.hh"

namespace hypar::arch {

/** Result of mapping one layer's phase onto the PE array. */
struct Mapping
{
    /** PEs doing useful work each cycle, <= config.numPes(). */
    double usedPes = 0.0;

    /** usedPes / numPes in (0, 1]. */
    double utilization = 0.0;

    /** Estimated SRAM words touched per MAC (RS reuse applied). */
    double sramWordsPerMac = 0.0;
};

/** Analytic row-stationary mapper for one accelerator configuration. */
class RowStationaryMapper
{
  public:
    explicit RowStationaryMapper(const AcceleratorConfig &config);

    /**
     * Map one layer processed with the given per-accelerator batch
     * shard. The mapping (and thus utilization) is identical for the
     * forward, error-backward and gradient phases — all three multiply
     * the same matrices in different orders.
     */
    Mapping map(const dnn::Layer &layer, std::size_t batch_shard) const;

    /**
     * Seconds to execute `macs` multiply-accumulates of this layer on
     * one accelerator, at the mapped utilization.
     */
    double phaseSeconds(const dnn::Layer &layer, std::size_t batch_shard,
                        double macs) const;

    const AcceleratorConfig &config() const { return config_; }

  private:
    AcceleratorConfig config_;
};

} // namespace hypar::arch

#endif // HYPAR_ARCH_ROW_STATIONARY_HH
