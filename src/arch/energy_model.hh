/**
 * @file
 * Energy model with the per-operation costs the paper uses (Section 6.1,
 * taken from Horowitz, ISSCC'14):
 *
 *   32-bit float ADD            0.9 pJ
 *   32-bit float MULT           3.7 pJ
 *   32-bit SRAM access          5.0 pJ
 *   32-bit DRAM access          640 pJ
 *
 * The paper does not print a per-hop link energy; we model the HMC
 * SerDes at 2 pJ/bit (64 pJ per 32-bit word per hop), a mid-range
 * figure for short-reach serial links of that era (documented
 * substitution, see DESIGN.md Section 4). A remote word additionally
 * pays DRAM on both ends, which the simulator accounts separately.
 */

#ifndef HYPAR_ARCH_ENERGY_MODEL_HH
#define HYPAR_ARCH_ENERGY_MODEL_HH

#include "util/units.hh"

namespace hypar::arch {

/** Per-event energies in joules; defaults follow the paper. */
struct EnergyModel
{
    double addJ = 0.9 * util::kPicoJoule;
    double multJ = 3.7 * util::kPicoJoule;
    double sramWordJ = 5.0 * util::kPicoJoule;
    double dramWordJ = 640.0 * util::kPicoJoule;
    double linkWordPerHopJ = 64.0 * util::kPicoJoule;

    /** One multiply-accumulate (one MULT + one ADD). */
    double macJ() const { return addJ + multJ; }

    /** Energy of `macs` multiply-accumulates. */
    double computeEnergy(double macs) const { return macs * macJ(); }

    /** Energy of `words` 32-bit SRAM accesses. */
    double sramEnergy(double words) const { return words * sramWordJ; }

    /** Energy of `words` 32-bit DRAM accesses. */
    double dramEnergy(double words) const { return words * dramWordJ; }

    /** Link energy of `words` 32-bit words moved over `hops` hops. */
    double
    linkEnergy(double words, double hops) const
    {
        return words * hops * linkWordPerHopJ;
    }
};

} // namespace hypar::arch

#endif // HYPAR_ARCH_ENERGY_MODEL_HH
