#include "serve/json.hh"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "util/logging.hh"

namespace hypar::serve {

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::kBool)
        util::fatal("json: expected a boolean");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::kNumber)
        util::fatal("json: expected a number");
    return number_;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::kString)
        util::fatal("json: expected a string");
    return string_;
}

const JsonValue::Array &
JsonValue::asArray() const
{
    if (kind_ != Kind::kArray)
        util::fatal("json: expected an array");
    return array_;
}

const JsonValue::Object &
JsonValue::asObject() const
{
    if (kind_ != Kind::kObject)
        util::fatal("json: expected an object");
    return object_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::kObject)
        return nullptr;
    const auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeNumber(double d)
{
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = d;
    return v;
}

/** Strict recursive-descent parser over one string_view. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage after the JSON value");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        util::fatal("json: " + what + " at byte " + std::to_string(pos_));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + peek() +
                 "'");
        ++pos_;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) != lit)
            return false;
        pos_ += lit.size();
        return true;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        const char c = peek();
        JsonValue v;
        switch (c) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            v.kind_ = JsonValue::Kind::kString;
            v.string_ = parseString();
            return v;
          case 't':
            if (!consumeLiteral("true"))
                fail("bad literal");
            v.kind_ = JsonValue::Kind::kBool;
            v.bool_ = true;
            return v;
          case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal");
            v.kind_ = JsonValue::Kind::kBool;
            v.bool_ = false;
            return v;
          case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            return v;
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind_ = JsonValue::Kind::kObject;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            if (!v.object_.emplace(std::move(key), parseValue()).second)
                fail("duplicate object key");
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind_ = JsonValue::Kind::kArray;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array_.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': appendUnicodeEscape(out); break;
              default: fail("unknown escape");
            }
        }
    }

    std::uint32_t
    parseHex4()
    {
        if (pos_ + 4 > text_.size())
            fail("truncated \\u escape");
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                fail("bad \\u escape digit");
        }
        return value;
    }

    void
    appendUnicodeEscape(std::string &out)
    {
        std::uint32_t cp = parseHex4();
        if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: require the paired low surrogate.
            if (!consumeLiteral("\\u"))
                fail("unpaired surrogate");
            const std::uint32_t lo = parseHex4();
            if (lo < 0xdc00 || lo > 0xdfff)
                fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
        } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail("unpaired surrogate");
        }
        // UTF-8 encode.
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else {
            out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        }
    }

    JsonValue
    parseNumber()
    {
        // Enforce the JSON number grammar exactly — std::from_chars is
        // laxer (it accepts strtod-isms like "01" and "1.").
        const std::size_t start = pos_;
        const auto digits = [&] {
            const std::size_t first = pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
            return pos_ - first;
        };
        if (peek() == '-')
            ++pos_;
        if (peek() == '0') {
            ++pos_; // a leading zero must stand alone
        } else if (digits() == 0) {
            pos_ = start;
            fail("bad number");
        }
        if (peek() == '.') {
            ++pos_;
            if (digits() == 0) {
                pos_ = start;
                fail("bad number");
            }
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (digits() == 0) {
                pos_ = start;
                fail("bad number");
            }
        }
        double value = 0.0;
        const auto [end, ec] = std::from_chars(
            text_.data() + start, text_.data() + pos_, value);
        if (ec != std::errc{} || end != text_.data() + pos_) {
            pos_ = start;
            fail("bad number");
        }
        JsonValue v;
        v.kind_ = JsonValue::Kind::kNumber;
        v.number_ = value;
        return v;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

JsonValue
JsonValue::parse(std::string_view text)
{
    return JsonParser(text).parseDocument();
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace hypar::serve
