/**
 * @file
 * Minimal JSON for the serving tier: a value type, a strict
 * recursive-descent parser, and a string escaper for writers.
 *
 * Scope is deliberately small — exactly what newline-delimited
 * request/response framing and the on-disk plan cache need: objects,
 * arrays, strings (with \uXXXX escapes decoded to UTF-8), numbers
 * (stored as double; the cache writes %.17g so doubles round-trip
 * bit-identically), booleans, and null. Parse errors raise
 * util::FatalError with a byte offset, so the server can turn a
 * malformed request line into an error *response* instead of dying.
 *
 * Writers in this repo emit JSON by hand (see plan_cache.cc,
 * server.cc) — the parser only has to accept what they and external
 * clients produce, and strictness is a feature: trailing garbage
 * after the top-level value is an error, which is what lets the plan
 * cache treat a truncated-then-appended file as corrupt.
 */

#ifndef HYPAR_SERVE_JSON_HH
#define HYPAR_SERVE_JSON_HH

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace hypar::serve {

/** One parsed JSON value (object keys are sorted — std::map). */
class JsonValue
{
  public:
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    using Array = std::vector<JsonValue>;
    using Object = std::map<std::string, JsonValue>;

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::kNull; }
    bool isObject() const { return kind_ == Kind::kObject; }
    bool isArray() const { return kind_ == Kind::kArray; }
    bool isString() const { return kind_ == Kind::kString; }
    bool isNumber() const { return kind_ == Kind::kNumber; }
    bool isBool() const { return kind_ == Kind::kBool; }

    /** Typed accessors; fatal when the kind does not match. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /**
     * Parse one complete JSON document. Fatal (util::FatalError, with
     * the byte offset) on malformed input or trailing garbage.
     */
    static JsonValue parse(std::string_view text);

    // Construction helpers for tests.
    static JsonValue makeString(std::string s);
    static JsonValue makeNumber(double d);

  private:
    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;

    friend class JsonParser;
};

/**
 * Escape a string for embedding between JSON double quotes: quotes,
 * backslashes, and control characters (the latter as \u00XX).
 */
std::string jsonEscape(std::string_view s);

} // namespace hypar::serve

#endif // HYPAR_SERVE_JSON_HH
