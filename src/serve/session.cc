#include "serve/session.hh"

#include "serve/canonical.hh"
#include "util/logging.hh"

namespace hypar::serve {

Session::Session(std::string hash, dnn::Network net, sim::SimConfig cfg)
    : contextHash(std::move(hash)), network(std::move(net)),
      config(std::move(cfg)),
      evaluator(std::make_unique<sim::Evaluator>(network, config))
{}

SessionRegistry::SessionRegistry(std::size_t capacity) : capacity_(capacity)
{
    if (capacity_ == 0)
        util::fatal("session registry capacity must be positive");
}

Session &
SessionRegistry::acquire(const dnn::Network &network,
                         const sim::SimConfig &config)
{
    return acquire(network, config, contextHash(network, config));
}

Session &
SessionRegistry::acquire(const dnn::Network &network,
                         const sim::SimConfig &config,
                         const std::string &hash)
{
    const auto it = byHash_.find(hash);
    if (it != byHash_.end()) {
        // Touch: move to the front of the LRU.
        lru_.splice(lru_.begin(), lru_, it->second);
        ++reused_;
        return *it->second;
    }
    lru_.emplace_front(hash, network, config);
    byHash_[hash] = lru_.begin();
    ++built_;
    while (lru_.size() > capacity_) {
        byHash_.erase(lru_.back().contextHash);
        lru_.pop_back();
    }
    return lru_.front();
}

} // namespace hypar::serve
