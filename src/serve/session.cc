#include "serve/session.hh"

#include "serve/canonical.hh"
#include "util/logging.hh"

namespace hypar::serve {

Session::Session(std::string hash, dnn::Network net, sim::SimConfig cfg,
                 std::atomic<std::size_t> *built_counter)
    : contextHash(std::move(hash)), network(std::move(net)),
      config(std::move(cfg)), builtCounter_(built_counter)
{}

void
Session::ensure()
{
    if (evaluator)
        return;
    evaluator = std::make_unique<sim::Evaluator>(network, config);
    if (builtCounter_ != nullptr)
        builtCounter_->fetch_add(1);
}

std::size_t
Session::approxBytes() const
{
    std::size_t bytes = sizeof(Session) + contextHash.capacity() +
                        network.approxBytes();
    if (evaluator)
        bytes += evaluator->approxBytes();
    return bytes;
}

SessionRegistry::SessionRegistry(std::size_t capacity, std::size_t maxBytes)
    : capacity_(capacity), maxBytes_(maxBytes)
{
    if (capacity_ == 0)
        util::fatal("session registry capacity must be positive");
}

Session &
SessionRegistry::acquire(const dnn::Network &network,
                         const sim::SimConfig &config)
{
    return acquire(network, config, contextHash(network, config));
}

Session &
SessionRegistry::acquire(const dnn::Network &network,
                         const sim::SimConfig &config,
                         const std::string &hash)
{
    const std::shared_ptr<Session> session =
        reserve(network, config, hash);
    session->ensure();
    return *session;
}

std::shared_ptr<Session>
SessionRegistry::reserve(const dnn::Network &network,
                         const sim::SimConfig &config,
                         const std::string &hash)
{
    const auto it = byHash_.find(hash);
    if (it != byHash_.end()) {
        // Touch: move to the front of the LRU.
        lru_.splice(lru_.begin(), lru_, it->second);
        ++reused_;
        return *it->second;
    }
    lru_.emplace_front(
        std::make_shared<Session>(hash, network, config, &built_));
    byHash_[hash] = lru_.begin();
    while (lru_.size() > capacity_) {
        byHash_.erase(lru_.back()->contextHash);
        lru_.pop_back();
    }
    return lru_.front();
}

void
SessionRegistry::enforceBudget()
{
    if (maxBytes_ == 0)
        return;
    while (lru_.size() > 1 && totalBytes() > maxBytes_) {
        byHash_.erase(lru_.back()->contextHash);
        lru_.pop_back();
    }
}

std::size_t
SessionRegistry::totalBytes() const
{
    std::size_t total = 0;
    for (const std::shared_ptr<Session> &session : lru_)
        total += session->approxBytes();
    return total;
}

} // namespace hypar::serve
