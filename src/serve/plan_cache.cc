#include "serve/plan_cache.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/plan.hh"
#include "serve/canonical.hh"
#include "serve/json.hh"
#include "util/logging.hh"

namespace fs = std::filesystem;

namespace hypar::serve {

namespace {

/** Hex plan-hash sanity check: entries are files named by the hash. */
bool
validHash(const std::string &hash)
{
    if (hash.size() != 64)
        return false;
    for (const char c : hash) {
        const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
        if (!ok)
            return false;
    }
    return true;
}

/** Read a whole file; nullopt when it does not exist / can't be read. */
std::optional<std::string>
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad())
        return std::nullopt;
    return std::move(ss).str();
}

/** Non-negative integral JSON field -> uint64 (fatal on mismatch). */
std::uint64_t
asCount(const JsonValue &v, const char *what)
{
    const double d = v.asNumber();
    if (d < 0 || d != static_cast<double>(static_cast<std::uint64_t>(d)))
        util::fatal(std::string("plan cache: ") + what +
                    " is not a non-negative integer");
    return static_cast<std::uint64_t>(d);
}

/**
 * Decode the entry body into a result. Fatal (util::FatalError) on any
 * structural problem — the caller turns that into quarantine-and-miss.
 */
core::HierarchicalResult
decodeEntry(const std::string &text, const std::string &planHash)
{
    const JsonValue root = JsonValue::parse(text);
    const JsonValue *format = root.find("format");
    if (format == nullptr || format->asString() != kPlanCacheFormat)
        util::fatal("plan cache: missing or wrong format tag");
    const JsonValue *version = root.find("version");
    if (version == nullptr ||
        asCount(*version, "version") !=
            static_cast<std::uint64_t>(kPlanCacheVersion))
        util::fatal("plan cache: unsupported version");
    const JsonValue *hash = root.find("plan_hash");
    if (hash == nullptr || hash->asString() != planHash)
        util::fatal("plan cache: entry hash does not match its key");

    core::HierarchicalResult result;
    const JsonValue *levels = root.find("levels");
    if (levels == nullptr)
        util::fatal("plan cache: missing levels");
    for (const JsonValue &level : levels->asArray()) {
        const std::string &bits = level.asString();
        core::LevelPlan lp;
        lp.reserve(bits.size());
        for (const char c : bits) {
            if (c != '0' && c != '1')
                util::fatal("plan cache: bad plan bit string");
            lp.push_back(c == '1' ? core::Parallelism::kModel
                                  : core::Parallelism::kData);
        }
        result.plan.levels.push_back(std::move(lp));
    }
    for (const core::LevelPlan &lp : result.plan.levels) {
        if (lp.size() != result.plan.levels.front().size())
            util::fatal("plan cache: ragged plan levels");
    }

    const JsonValue *comm = root.find("comm_bytes");
    if (comm == nullptr)
        util::fatal("plan cache: missing comm_bytes");
    result.commBytes = comm->asNumber();

    const JsonValue *trans = root.find("transitions_evaluated");
    if (trans == nullptr)
        util::fatal("plan cache: missing transitions_evaluated");
    result.transitionsEvaluated = asCount(*trans, "transitions_evaluated");

    const JsonValue *stats = root.find("stats");
    if (stats == nullptr || !stats->isObject())
        util::fatal("plan cache: missing stats");
    const JsonValue *expanded = stats->find("expanded");
    const JsonValue *pruned = stats->find("pruned");
    const JsonValue *certified = stats->find("certified_exact");
    const JsonValue *width = stats->find("width_used");
    if (expanded == nullptr || pruned == nullptr || certified == nullptr ||
        width == nullptr)
        util::fatal("plan cache: incomplete stats");
    result.stats.expanded = asCount(*expanded, "expanded");
    result.stats.pruned = asCount(*pruned, "pruned");
    result.stats.certifiedExact = certified->asBool();
    result.stats.widthUsed =
        static_cast<std::size_t>(asCount(*width, "width_used"));
    return result;
}

/** Required numeric field of a JSON object (fatal when absent). */
double
requireNumber(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr)
        util::fatal(std::string("sweep cache: missing metrics field '") +
                    key + "'");
    return v->asNumber();
}

/**
 * Decode a sweep entry body. Fatal (util::FatalError) on any
 * structural problem — the caller turns that into quarantine-and-miss.
 */
SweepResult
decodeSweepEntry(const std::string &text, const std::string &sweepHash)
{
    const JsonValue root = JsonValue::parse(text);
    const JsonValue *format = root.find("format");
    if (format == nullptr || format->asString() != kSweepCacheFormat)
        util::fatal("sweep cache: missing or wrong format tag");
    const JsonValue *version = root.find("version");
    if (version == nullptr ||
        asCount(*version, "version") !=
            static_cast<std::uint64_t>(kPlanCacheVersion))
        util::fatal("sweep cache: unsupported version");
    const JsonValue *hash = root.find("sweep_hash");
    if (hash == nullptr || hash->asString() != sweepHash)
        util::fatal("sweep cache: entry hash does not match its key");

    SweepResult r;
    const JsonValue *level = root.find("level");
    if (level == nullptr)
        util::fatal("sweep cache: missing level");
    r.level = static_cast<std::size_t>(asCount(*level, "level"));
    const JsonValue *evaluated = root.find("evaluated");
    if (evaluated == nullptr)
        util::fatal("sweep cache: missing evaluated");
    r.evaluated = asCount(*evaluated, "evaluated");
    const JsonValue *mask = root.find("best_mask");
    if (mask == nullptr)
        util::fatal("sweep cache: missing best_mask");
    r.bestMask = asCount(*mask, "best_mask");
    const JsonValue *bits = root.find("best_bits");
    if (bits == nullptr)
        util::fatal("sweep cache: missing best_bits");
    r.bestBits = bits->asString();
    for (const char c : r.bestBits)
        if (c != '0' && c != '1')
            util::fatal("sweep cache: bad best_bits string");

    const JsonValue *metrics = root.find("metrics");
    if (metrics == nullptr || !metrics->isObject())
        util::fatal("sweep cache: missing metrics");
    r.best.stepSeconds = requireNumber(*metrics, "step_seconds");
    r.best.computeBusySeconds =
        requireNumber(*metrics, "compute_busy_seconds");
    r.best.networkBusySeconds =
        requireNumber(*metrics, "network_busy_seconds");
    r.best.commBytes = requireNumber(*metrics, "comm_bytes");
    r.best.phases.forward = requireNumber(*metrics, "forward");
    r.best.phases.backward = requireNumber(*metrics, "backward");
    r.best.phases.gradient = requireNumber(*metrics, "gradient");
    r.best.energy.computeJ = requireNumber(*metrics, "compute_j");
    r.best.energy.sramJ = requireNumber(*metrics, "sram_j");
    r.best.energy.dramJ = requireNumber(*metrics, "dram_j");
    r.best.energy.commJ = requireNumber(*metrics, "comm_j");
    return r;
}

} // namespace

PlanCache::PlanCache(fs::path dir, bool enabled)
    : dir_(std::move(dir)), enabled_(enabled)
{}

fs::path
PlanCache::defaultDir()
{
    if (const char *env = std::getenv("HYPARC_CACHE_DIR"); env != nullptr &&
                                                           *env != '\0')
        return fs::path(env);
    if (const char *xdg = std::getenv("XDG_CACHE_HOME");
        xdg != nullptr && *xdg != '\0')
        return fs::path(xdg) / "hyparc" / "plans";
    if (const char *home = std::getenv("HOME"); home != nullptr &&
                                                *home != '\0')
        return fs::path(home) / ".cache" / "hyparc" / "plans";
    return fs::path(".hyparc-cache") / "plans";
}

fs::path
PlanCache::entryPath(const std::string &planHash) const
{
    return dir_ / (planHash + ".json");
}

fs::path
PlanCache::sweepPath(const std::string &sweepHash) const
{
    // Ends in ".json" so evict()'s suffix filter covers both kinds.
    return dir_ / (sweepHash + ".sweep.json");
}

void
PlanCache::quarantine(const fs::path &path)
{
    ++stats_.quarantined;
    std::error_code ec;
    fs::rename(path, fs::path(path) += ".quarantine", ec);
    if (ec) {
        // Best effort: fall back to deleting so the next store wins.
        fs::remove(path, ec);
    }
}

std::optional<core::HierarchicalResult>
PlanCache::lookup(const std::string &planHash)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_) {
        ++stats_.misses;
        return std::nullopt;
    }
    if (!validHash(planHash))
        util::fatal("plan cache: malformed plan hash '" + planHash + "'");
    const fs::path path = entryPath(planHash);
    const std::optional<std::string> text = readFile(path);
    if (!text) {
        ++stats_.misses;
        return std::nullopt;
    }
    try {
        core::HierarchicalResult result = decodeEntry(*text, planHash);
        ++stats_.hits;
        return result;
    } catch (const util::FatalError &) {
        quarantine(path);
        ++stats_.misses;
        return std::nullopt;
    }
}

std::optional<SweepResult>
PlanCache::lookupSweep(const std::string &sweepHash)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_) {
        ++stats_.misses;
        return std::nullopt;
    }
    if (!validHash(sweepHash))
        util::fatal("sweep cache: malformed sweep hash '" + sweepHash +
                    "'");
    const fs::path path = sweepPath(sweepHash);
    const std::optional<std::string> text = readFile(path);
    if (!text) {
        ++stats_.misses;
        return std::nullopt;
    }
    try {
        SweepResult r = decodeSweepEntry(*text, sweepHash);
        ++stats_.hits;
        return r;
    } catch (const util::FatalError &) {
        quarantine(path);
        ++stats_.misses;
        return std::nullopt;
    }
}

std::string
PlanCache::entryJson(const std::string &planHash,
                     const core::HierarchicalResult &result)
{
    std::string out = "{\n";
    out += "  \"format\": \"";
    out += kPlanCacheFormat;
    out += "\",\n";
    out += "  \"version\": " + std::to_string(kPlanCacheVersion) + ",\n";
    out += "  \"plan_hash\": \"" + planHash + "\",\n";
    out += "  \"levels\": [";
    for (std::size_t h = 0; h < result.plan.levels.size(); ++h) {
        if (h > 0)
            out += ", ";
        out += '"' + core::toBitString(result.plan.levels[h]) + '"';
    }
    out += "],\n";
    out += "  \"comm_bytes\": " + canonicalDouble(result.commBytes) + ",\n";
    out += "  \"transitions_evaluated\": " +
           std::to_string(result.transitionsEvaluated) + ",\n";
    out += "  \"stats\": {\"expanded\": " +
           std::to_string(result.stats.expanded) +
           ", \"pruned\": " + std::to_string(result.stats.pruned) +
           ", \"certified_exact\": " +
           (result.stats.certifiedExact ? "true" : "false") +
           ", \"width_used\": " + std::to_string(result.stats.widthUsed) +
           "}\n";
    out += "}\n";
    return out;
}

void
PlanCache::storeFile(const fs::path &tmp, const fs::path &final,
                     const std::string &payload)
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        util::fatal("plan cache: cannot create '" + dir_.string() +
                    "': " + ec.message());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            util::fatal("plan cache: cannot write '" + tmp.string() + "'");
        out << payload;
        out.flush();
        if (!out)
            util::fatal("plan cache: short write to '" + tmp.string() +
                        "'");
    }
    fs::rename(tmp, final, ec);
    if (ec)
        util::fatal("plan cache: cannot publish '" + tmp.string() +
                    "': " + ec.message());
    ++stats_.stores;
}

void
PlanCache::store(const std::string &planHash,
                 const core::HierarchicalResult &result)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_)
        return;
    if (!validHash(planHash))
        util::fatal("plan cache: malformed plan hash '" + planHash + "'");
    storeFile(dir_ / (planHash + ".tmp"), entryPath(planHash),
              entryJson(planHash, result));
}

void
PlanCache::storeSweep(const std::string &sweepHash, const SweepResult &r)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_)
        return;
    if (!validHash(sweepHash))
        util::fatal("sweep cache: malformed sweep hash '" + sweepHash +
                    "'");
    storeFile(dir_ / (sweepHash + ".sweep.tmp"), sweepPath(sweepHash),
              sweepEntryJson(sweepHash, r));
}

std::string
PlanCache::sweepEntryJson(const std::string &sweepHash,
                          const SweepResult &r)
{
    const sim::StepMetrics &m = r.best;
    std::string out = "{\n";
    out += "  \"format\": \"";
    out += kSweepCacheFormat;
    out += "\",\n";
    out += "  \"version\": " + std::to_string(kPlanCacheVersion) + ",\n";
    out += "  \"sweep_hash\": \"" + sweepHash + "\",\n";
    out += "  \"level\": " + std::to_string(r.level) + ",\n";
    out += "  \"evaluated\": " + std::to_string(r.evaluated) + ",\n";
    out += "  \"best_mask\": " + std::to_string(r.bestMask) + ",\n";
    out += "  \"best_bits\": \"" + r.bestBits + "\",\n";
    // Every double as %.17g: a hit must re-render the response the
    // miss produced, byte for byte.
    out += "  \"metrics\": {";
    out += "\"step_seconds\": " + canonicalDouble(m.stepSeconds);
    out += ", \"compute_busy_seconds\": " +
           canonicalDouble(m.computeBusySeconds);
    out += ", \"network_busy_seconds\": " +
           canonicalDouble(m.networkBusySeconds);
    out += ", \"comm_bytes\": " + canonicalDouble(m.commBytes);
    out += ", \"forward\": " + canonicalDouble(m.phases.forward);
    out += ", \"backward\": " + canonicalDouble(m.phases.backward);
    out += ", \"gradient\": " + canonicalDouble(m.phases.gradient);
    out += ", \"compute_j\": " + canonicalDouble(m.energy.computeJ);
    out += ", \"sram_j\": " + canonicalDouble(m.energy.sramJ);
    out += ", \"dram_j\": " + canonicalDouble(m.energy.dramJ);
    out += ", \"comm_j\": " + canonicalDouble(m.energy.commJ);
    out += "}\n";
    out += "}\n";
    return out;
}

std::size_t
PlanCache::evict()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::error_code ec;
    if (!fs::exists(dir_, ec) || ec)
        return 0;
    std::size_t removed = 0;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(dir_, ec)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        const bool ours = name.ends_with(".json") ||
                          name.ends_with(".tmp") ||
                          name.ends_with(".quarantine");
        if (!ours)
            continue;
        std::error_code rm;
        if (fs::remove(entry.path(), rm) && !rm)
            ++removed;
    }
    return removed;
}

} // namespace hypar::serve
