/**
 * @file
 * Warm-instance registry for the serving tier.
 *
 * A Session owns everything the Evaluator's build-once / evaluate-many
 * contract says to build exactly once per (network, SimConfig):
 * the parsed network, the config, and the sim::Evaluator (which in
 * turn owns the degraded topology, the CommModel byte tables, and the
 * simulator with its prefix-count table). Sessions are keyed by
 * serve::contextHash — the SHA-256 of the canonical context text — so
 * any request that re-states the same problem reuses the warm state
 * no matter how it spelled its spec.
 *
 * The registry is a small LRU: serving workloads touch a handful of
 * models repeatedly, and an unbounded map would let a spec-fuzzing
 * client grow memory without bound. Eviction order is
 * least-recently-*acquired*. Capacity 0 is rejected.
 */

#ifndef HYPAR_SERVE_SESSION_HH
#define HYPAR_SERVE_SESSION_HH

#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "dnn/network.hh"
#include "sim/evaluator.hh"

namespace hypar::serve {

/** One warm (network, SimConfig, Evaluator) bundle. */
struct Session
{
    std::string contextHash;
    dnn::Network network;
    sim::SimConfig config;
    std::unique_ptr<sim::Evaluator> evaluator;

    Session(std::string hash, dnn::Network net, sim::SimConfig cfg);
};

/** LRU registry of warm sessions keyed by context hash. */
class SessionRegistry
{
  public:
    /** Default capacity: plenty for a serving mix, bounded memory. */
    static constexpr std::size_t kDefaultCapacity = 8;

    explicit SessionRegistry(std::size_t capacity = kDefaultCapacity);

    /**
     * The warm session for (network, config), building it (and
     * computing its context hash) on first use. Touches the LRU; may
     * evict the least-recently-acquired session when over capacity.
     * The returned reference stays valid until `capacity` further
     * distinct contexts are acquired.
     */
    Session &acquire(const dnn::Network &network,
                     const sim::SimConfig &config);

    /** Same, with a precomputed context hash (skips re-hashing). */
    Session &acquire(const dnn::Network &network,
                     const sim::SimConfig &config,
                     const std::string &hash);

    std::size_t size() const { return lru_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Total sessions built (cold constructions), for the stats op. */
    std::size_t built() const { return built_; }

    /** Total acquire() calls answered from a warm session. */
    std::size_t reused() const { return reused_; }

  private:
    std::size_t capacity_;
    std::size_t built_ = 0;
    std::size_t reused_ = 0;
    /** Most recently acquired at the front. */
    std::list<Session> lru_;
    std::map<std::string, std::list<Session>::iterator> byHash_;
};

} // namespace hypar::serve

#endif // HYPAR_SERVE_SESSION_HH
