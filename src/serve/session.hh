/**
 * @file
 * Warm-instance registry for the serving tier.
 *
 * A Session owns everything the Evaluator's build-once / evaluate-many
 * contract says to build exactly once per (network, SimConfig):
 * the parsed network, the config, and the sim::Evaluator (which in
 * turn owns the degraded topology, the CommModel byte tables, and the
 * simulator with its prefix-count table). Sessions are keyed by
 * serve::contextHash — the SHA-256 of the canonical context text — so
 * any request that re-states the same problem reuses the warm state
 * no matter how it spelled its spec.
 *
 * The registry is a small LRU bounded two ways: by entry count
 * (`capacity`, the historical knob) and, when `maxBytes` is nonzero,
 * by the approximate resident bytes of the built Evaluators
 * (`--max-session-bytes`) — serving workloads touch a handful of
 * models repeatedly, and an unbounded map would let a spec-fuzzing
 * client grow memory without bound. Eviction order is
 * least-recently-*acquired*; the budget never evicts the most
 * recently touched entry. Capacity 0 is rejected.
 *
 * Concurrency contract (used by the parallel batch executor in
 * server.cc): LRU motion — reserve()/acquire(), eviction,
 * enforceBudget() — must happen on one thread at a time (the server
 * does it at serial points, in request order, which also keeps the
 * counters deterministic). Session::ensure() may run from pool
 * threads: distinct sessions build concurrently, requests sharing a
 * session serialize on Session::mu. Entries are held by shared_ptr so
 * an eviction never invalidates a session a running batch still uses.
 */

#ifndef HYPAR_SERVE_SESSION_HH
#define HYPAR_SERVE_SESSION_HH

#include <atomic>
#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "dnn/network.hh"
#include "sim/evaluator.hh"

namespace hypar::serve {

/** One warm (network, SimConfig, Evaluator) bundle. */
struct Session
{
    std::string contextHash;
    dnn::Network network;
    sim::SimConfig config;

    /** Requests sharing this session serialize on this (server.cc's
     *  per-session locking rule); the registry itself never takes it. */
    std::mutex mu;

    /** Built lazily by ensure(): a request that is answered without
     *  evaluating (e.g. a plan-cache hit) never pays the build. */
    std::unique_ptr<sim::Evaluator> evaluator;

    Session(std::string hash, dnn::Network net, sim::SimConfig cfg,
            std::atomic<std::size_t> *built_counter = nullptr);

    /**
     * Build the Evaluator if this session is still cold (and bump the
     * owning registry's built counter). Callers off the serial path
     * must hold `mu`. Fatal errors propagate and leave the session
     * cold.
     */
    void ensure();

    /**
     * Approximate resident bytes: the network/config copies plus, once
     * built, the Evaluator's tables (sim::Evaluator::approxBytes).
     */
    std::size_t approxBytes() const;

  private:
    std::atomic<std::size_t> *builtCounter_;
};

/** LRU registry of warm sessions keyed by context hash. */
class SessionRegistry
{
  public:
    /** Default capacity: plenty for a serving mix, bounded memory. */
    static constexpr std::size_t kDefaultCapacity = 8;

    /**
     * `capacity` bounds the entry count; `maxBytes` (0 = unlimited)
     * additionally bounds the summed Session::approxBytes.
     */
    explicit SessionRegistry(std::size_t capacity = kDefaultCapacity,
                             std::size_t maxBytes = 0);

    /**
     * The warm session for (network, config), building it (and
     * computing its context hash) on first use. Touches the LRU; may
     * evict the least-recently-acquired session when over capacity.
     * The returned reference stays valid until `capacity` further
     * distinct contexts are acquired.
     */
    Session &acquire(const dnn::Network &network,
                     const sim::SimConfig &config);

    /** Same, with a precomputed context hash (skips re-hashing). */
    Session &acquire(const dnn::Network &network,
                     const sim::SimConfig &config,
                     const std::string &hash);

    /**
     * Touch-or-create without building: the LRU entry (and the
     * reused/evicted bookkeeping) moves now, on the admission thread,
     * while the expensive Evaluator build happens later via
     * Session::ensure() — possibly on a pool thread. The shared_ptr
     * keeps the session alive across a concurrent eviction.
     */
    std::shared_ptr<Session> reserve(const dnn::Network &network,
                                     const sim::SimConfig &config,
                                     const std::string &hash);

    /**
     * Evict least-recently-acquired entries until the byte budget is
     * met (never below one entry). Call at serial points only; the
     * server runs it after each parallel segment, once builds have
     * materialized their sizes.
     */
    void enforceBudget();

    std::size_t size() const { return lru_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Byte budget (0 = unlimited) and current approximate usage. */
    std::size_t maxBytes() const { return maxBytes_; }
    std::size_t totalBytes() const;

    /** Total sessions built (cold constructions), for the stats op. */
    std::size_t built() const { return built_.load(); }

    /** Total acquire()/reserve() calls answered from a warm session. */
    std::size_t reused() const { return reused_; }

  private:
    std::size_t capacity_;
    std::size_t maxBytes_;
    std::atomic<std::size_t> built_{0};
    std::size_t reused_ = 0;
    /** Most recently acquired at the front. */
    std::list<std::shared_ptr<Session>> lru_;
    std::map<std::string, std::list<std::shared_ptr<Session>>::iterator>
        byHash_;
};

} // namespace hypar::serve

#endif // HYPAR_SERVE_SESSION_HH
