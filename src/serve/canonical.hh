/**
 * @file
 * Canonical serialization + content hashing of serving-tier inputs.
 *
 * The plan cache and the warm-session registry are both keyed by
 * SHA-256 over a canonical *text* rendering of their inputs, so that
 * two requests describing the same problem — regardless of request
 * field order, spec whitespace, or which client produced them — land
 * on the same key. Canonicalization rules (documented for clients in
 * docs/SERVING.md; changing any of them requires bumping
 * kCanonicalVersion, which invalidates every existing cache entry):
 *
 *  - The network is rendered with dnn::toSpec(), i.e. parsed and
 *    re-serialized — spec comments, blank lines, and attribute
 *    spelling variants do not affect the key.
 *  - Every double is printed with printf "%.17g", which round-trips
 *    IEEE 754 binary64 exactly; integers print in decimal.
 *  - Fault entries are sorted by id (per kind) before rendering.
 *  - SimOptions::recordTrace is *excluded*: it changes what is
 *    recorded, never what is computed, so tracing must not fork the
 *    cache key space.
 *  - Fields appear in one fixed order with one `key=value` per line;
 *    a format-version line leads.
 *
 * Two keys exist on purpose (see docs/SERVING.md "Cache keys"):
 *
 *  - contextHash(network, config): identifies everything a warm
 *    sim::Evaluator depends on. The session registry keys on it.
 *  - planHash(network, config, strategy, search): contextHash's
 *    payload plus the strategy and core::SearchOptions. The on-disk
 *    plan cache keys on it, because the searched plan (and its
 *    SearchStats certificate) depends on the engine knobs too.
 *    SearchOptions::beamWidthStart (the protocol's width_hint) is
 *    excluded: it is a pure warm start — results are bit-identical
 *    with or without it — so it must not fork cache entries.
 *
 * sweepHash(network, config, strategy, search, level) extends the plan
 * payload with the swept hierarchy level; the on-disk sweep-result
 * cache keys on it.
 */

#ifndef HYPAR_SERVE_CANONICAL_HH
#define HYPAR_SERVE_CANONICAL_HH

#include <string>

#include "core/optimal_partitioner.hh"
#include "core/strategies.hh"
#include "dnn/network.hh"
#include "sim/evaluator.hh"

namespace hypar::serve {

/** Bump when any canonicalization rule changes (invalidates keys). */
inline constexpr int kCanonicalVersion = 1;

/** Canonical text of one (network, SimConfig) evaluation context. */
std::string canonicalContext(const dnn::Network &network,
                             const sim::SimConfig &config);

/**
 * Canonical text of one plan request (context + strategy + search).
 * `strategy` is the canonical name: "hypar", "dp", "mp", "owt", or
 * "optimal" (the joint search — the one case where SearchOptions
 * actually steer the result; they are keyed for every strategy so
 * equal keys always mean equal requests).
 */
std::string canonicalPlanRequest(const dnn::Network &network,
                                 const sim::SimConfig &config,
                                 const std::string &strategy,
                                 const core::SearchOptions &search);

/** SHA-256 hex of canonicalContext. */
std::string contextHash(const dnn::Network &network,
                        const sim::SimConfig &config);

/** SHA-256 hex of canonicalPlanRequest. */
std::string planHash(const dnn::Network &network,
                     const sim::SimConfig &config,
                     const std::string &strategy,
                     const core::SearchOptions &search);

/** Canonical text of one sweep request (plan payload + level). */
std::string canonicalSweepRequest(const dnn::Network &network,
                                  const sim::SimConfig &config,
                                  const std::string &strategy,
                                  const core::SearchOptions &search,
                                  std::size_t level);

/** SHA-256 hex of canonicalSweepRequest. */
std::string sweepHash(const dnn::Network &network,
                      const sim::SimConfig &config,
                      const std::string &strategy,
                      const core::SearchOptions &search,
                      std::size_t level);

/** Canonical short name of a topology kind ("htree"/"torus"/"mesh"). */
const char *topologyKindName(sim::TopologyKind kind);

/** Canonical short name of a search engine ("auto"/"dense"/...). */
const char *searchEngineName(core::SearchEngine engine);

/** Canonical short name of a strategy ("dp"/"mp"/"owt"/"hypar"). */
const char *strategyName(core::Strategy strategy);

/** printf "%.17g" of a double (round-trips binary64 exactly). */
std::string canonicalDouble(double value);

} // namespace hypar::serve

#endif // HYPAR_SERVE_CANONICAL_HH
