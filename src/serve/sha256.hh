/**
 * @file
 * SHA-256 (FIPS 180-4) for the serving tier's content-addressed keys.
 *
 * Self-contained: the repo carries no crypto dependency, and the cache
 * only needs a stable, collision-resistant content hash — not a
 * hardware-accelerated one. The implementation is the straightforward
 * 64-round compression over 512-bit blocks; `tests/test_serve.cc`
 * pins it against the FIPS 180-4 example digests ("abc", empty
 * string, the two-block message), so the on-disk cache key format can
 * never silently drift.
 */

#ifndef HYPAR_SERVE_SHA256_HH
#define HYPAR_SERVE_SHA256_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace hypar::serve {

/** Incremental SHA-256 context (update as many times as you like). */
class Sha256
{
  public:
    Sha256();

    /** Absorb `data`; callable any number of times before digest(). */
    void update(std::string_view data);

    /** Finalize and return the 64-char lowercase hex digest. */
    std::string hexDigest();

  private:
    void processBlock(const std::uint8_t *block);

    std::uint32_t state_[8];
    std::uint64_t totalBytes_ = 0;
    std::uint8_t buffer_[64];
    std::size_t bufferLen_ = 0;
};

/** One-shot convenience: lowercase hex SHA-256 of `data`. */
std::string sha256Hex(std::string_view data);

} // namespace hypar::serve

#endif // HYPAR_SERVE_SHA256_HH
