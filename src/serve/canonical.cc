#include "serve/canonical.hh"

#include <algorithm>
#include <cstdio>

#include "dnn/spec_parser.hh"
#include "serve/sha256.hh"
#include "util/logging.hh"

namespace hypar::serve {

namespace {

void
appendKV(std::string &out, const char *key, const std::string &value)
{
    out += key;
    out += '=';
    out += value;
    out += '\n';
}

void
appendKV(std::string &out, const char *key, double value)
{
    appendKV(out, key, canonicalDouble(value));
}

void
appendKV(std::string &out, const char *key, std::size_t value)
{
    appendKV(out, key, std::to_string(value));
}

void
appendFaults(std::string &out, const char *key,
             std::vector<arch::FaultEntry> entries)
{
    // Sorted by id so listing order never forks the key. Duplicate ids
    // are rejected downstream (arch::nodeScales/linkScales), so id
    // order is total here.
    std::sort(entries.begin(), entries.end(),
              [](const arch::FaultEntry &a, const arch::FaultEntry &b) {
                  return a.id < b.id;
              });
    out += key;
    out += '=';
    for (const arch::FaultEntry &e : entries) {
        out += std::to_string(e.id);
        out += ':';
        out += canonicalDouble(e.scale);
        out += ';';
    }
    out += '\n';
}

} // namespace

std::string
canonicalDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

const char *
topologyKindName(sim::TopologyKind kind)
{
    switch (kind) {
      case sim::TopologyKind::kHTree: return "htree";
      case sim::TopologyKind::kTorus: return "torus";
      case sim::TopologyKind::kMesh: return "mesh";
    }
    util::fatal("unknown topology kind");
}

const char *
searchEngineName(core::SearchEngine engine)
{
    switch (engine) {
      case core::SearchEngine::kAuto: return "auto";
      case core::SearchEngine::kDense: return "dense";
      case core::SearchEngine::kSparse: return "sparse";
      case core::SearchEngine::kBeam: return "beam";
      case core::SearchEngine::kAStar: return "astar";
    }
    util::fatal("unknown search engine");
}

const char *
strategyName(core::Strategy strategy)
{
    switch (strategy) {
      case core::Strategy::kDataParallel: return "dp";
      case core::Strategy::kModelParallel: return "mp";
      case core::Strategy::kOneWeirdTrick: return "owt";
      case core::Strategy::kHypar: return "hypar";
    }
    util::fatal("unknown strategy");
}

std::string
canonicalContext(const dnn::Network &network, const sim::SimConfig &config)
{
    std::string out;
    out.reserve(1024);
    appendKV(out, "hyparc-canonical-version",
             std::to_string(kCanonicalVersion));

    // The network, normalized through parse -> toSpec round-trip.
    out += "[network]\n";
    out += dnn::toSpec(network);

    out += "[comm]\n";
    appendKV(out, "batch", config.comm.batch);
    appendKV(out, "word_bytes", config.comm.wordBytes);
    appendKV(out, "exchange_factor", config.comm.exchangeFactor);
    appendKV(out, "scaling",
             config.comm.scaling == core::CommConfig::Scaling::kPartitioned
                 ? std::string("partitioned")
                 : std::string("none"));
    // CommConfig::levelPenalties is derived state (the Evaluator
    // rebuilds it from topology + faults), so it is deliberately NOT
    // part of the key: the faults section below is the source of truth.

    out += "[accelerator]\n";
    appendKV(out, "pe_rows", config.acc.peRows);
    appendKV(out, "pe_cols", config.acc.peCols);
    appendKV(out, "clock_hz", config.acc.clockHz);
    appendKV(out, "buffer_bytes", config.acc.bufferBytes);
    appendKV(out, "dram_bandwidth", config.acc.dramBandwidth);
    appendKV(out, "dram_capacity", config.acc.dramCapacity);

    out += "[energy]\n";
    appendKV(out, "add_j", config.energy.addJ);
    appendKV(out, "mult_j", config.energy.multJ);
    appendKV(out, "sram_word_j", config.energy.sramWordJ);
    appendKV(out, "dram_word_j", config.energy.dramWordJ);
    appendKV(out, "link_word_per_hop_j", config.energy.linkWordPerHopJ);

    out += "[noc]\n";
    appendKV(out, "link_bandwidth", config.noc.linkBandwidth);
    appendKV(out, "root_bisection", config.noc.rootBisection);
    appendKV(out, "per_hop_latency", config.noc.perHopLatency);

    out += "[topology]\n";
    appendKV(out, "kind", std::string(topologyKindName(config.topology)));
    appendKV(out, "levels", config.levels);

    out += "[options]\n";
    appendKV(out, "overlap_grad_comm",
             std::string(config.options.overlapGradComm ? "1" : "0"));
    appendKV(out, "compute_scale", config.options.computeScale);
    // SimOptions::recordTrace is excluded by design (observability
    // only; never changes computed metrics or plans).

    out += "[faults]\n";
    appendFaults(out, "nodes", config.faults.nodes);
    appendFaults(out, "links", config.faults.links);

    return out;
}

std::string
canonicalPlanRequest(const dnn::Network &network,
                     const sim::SimConfig &config,
                     const std::string &strategy,
                     const core::SearchOptions &search)
{
    std::string out = canonicalContext(network, config);
    out += "[plan]\n";
    appendKV(out, "strategy", strategy);
    appendKV(out, "engine", std::string(searchEngineName(search.engine)));
    appendKV(out, "beam_width", search.beamWidth);
    appendKV(out, "adaptive_beam",
             std::string(search.adaptiveBeam ? "1" : "0"));
    // SearchOptions::beamWidthStart (the request's width_hint) is
    // deliberately NOT keyed: the warm start only skips the adaptive
    // beam's ramp, the plan and cost are bit-identical with or without
    // it — keying it forked duplicate cache entries per hint value.
    return out;
}

std::string
canonicalSweepRequest(const dnn::Network &network,
                      const sim::SimConfig &config,
                      const std::string &strategy,
                      const core::SearchOptions &search, std::size_t level)
{
    std::string out = canonicalPlanRequest(network, config, strategy,
                                           search);
    out += "[sweep]\n";
    appendKV(out, "level", level);
    return out;
}

std::string
contextHash(const dnn::Network &network, const sim::SimConfig &config)
{
    return sha256Hex(canonicalContext(network, config));
}

std::string
planHash(const dnn::Network &network, const sim::SimConfig &config,
         const std::string &strategy, const core::SearchOptions &search)
{
    return sha256Hex(
        canonicalPlanRequest(network, config, strategy, search));
}

std::string
sweepHash(const dnn::Network &network, const sim::SimConfig &config,
          const std::string &strategy, const core::SearchOptions &search,
          std::size_t level)
{
    return sha256Hex(
        canonicalSweepRequest(network, config, strategy, search, level));
}

} // namespace hypar::serve
