/**
 * @file
 * On-disk content-addressed plan cache for the serving tier.
 *
 * Entries live at `<dir>/<planHash>.json` — one JSON object with a
 * versioned header (`format`/`version`), the request's plan hash
 * echoed back (self-describing; detects a file renamed onto the wrong
 * key), and the full core::HierarchicalResult: the plan (one bit
 * string per level, layer 0 leftmost, '1' = mp — core::toBitString's
 * convention), commBytes as %.17g (round-trips binary64 exactly, so a
 * cache hit is bit-identical to the search that produced it), and the
 * SearchStats certificate.
 *
 * Robustness contract (pinned by tests/test_serve.cc):
 *
 *  - Writes are atomic: the entry is written to `<hash>.tmp` in the
 *    same directory and std::filesystem::rename'd into place, so a
 *    reader never observes a torn entry and a crashed writer leaves at
 *    worst a stale .tmp (ignored by lookups, removed by evict()).
 *  - A corrupt entry — truncated JSON, trailing garbage, wrong format
 *    string, wrong version, wrong hash, malformed plan — is
 *    *quarantined*: renamed to `<hash>.quarantine` (best effort) and
 *    reported as a miss, so the server re-plans and overwrites rather
 *    than crashing or looping on the bad file.
 *  - A disabled cache (--no-cache) never reads or writes the
 *    directory; lookups miss and stores are dropped.
 *
 * Sweep results are cached alongside plans with the same discipline:
 * entries live at `<dir>/<sweepHash>.sweep.json` (format tag
 * kSweepCacheFormat), store the argmin of the level sweep plus its
 * full StepMetrics with %.17g doubles, and share the quarantine /
 * atomic-rename / evict machinery. The hit/miss/store/quarantine
 * counters are shared across both entry kinds.
 *
 * Thread safety: every operation takes an internal mutex, so the
 * server's parallel request groups may look up and store
 * concurrently; counter totals still only make sense at the server's
 * serial points. Cross-*process* safety comes from the atomic rename
 * (concurrent servers may redundantly re-plan, never corrupt).
 */

#ifndef HYPAR_SERVE_PLAN_CACHE_HH
#define HYPAR_SERVE_PLAN_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>

#include "core/hierarchical_partitioner.hh"
#include "sim/metrics.hh"

namespace hypar::serve {

/** On-disk format version; bump on any layout change. Version 2:
 *  width_hint left the canonical plan-key text (ISSUE 10), so version-1
 *  entries — keyed under the old text — quarantine instead of lingering
 *  as unreachable stale files. */
inline constexpr int kPlanCacheVersion = 2;

/** Format tag every plan entry must carry. */
inline constexpr const char *kPlanCacheFormat = "hyparc-plan-cache";

/** Format tag every sweep entry must carry. */
inline constexpr const char *kSweepCacheFormat = "hyparc-sweep-cache";

/** Lookup/store counters (reported by the server's `stats` op). */
struct PlanCacheStats
{
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t stores = 0;
    std::size_t quarantined = 0;
};

/** Cached outcome of a `sweep` op: the argmin over one level's masks.
 *  bestBits is stored (not recomputed) so a hit renders byte-identical
 *  responses without rebuilding the base plan. */
struct SweepResult
{
    std::size_t level = 0;
    std::uint64_t evaluated = 0;
    std::uint64_t bestMask = 0;
    std::string bestBits;
    sim::StepMetrics best;
};

class PlanCache
{
  public:
    /**
     * A cache over `dir` (created lazily on first store). `enabled`
     * false (--no-cache) turns every operation into a no-op miss.
     */
    PlanCache(std::filesystem::path dir, bool enabled);

    /**
     * Default cache directory: $HYPARC_CACHE_DIR if set, else
     * $XDG_CACHE_HOME/hyparc/plans, else $HOME/.cache/hyparc/plans,
     * else ./.hyparc-cache/plans.
     */
    static std::filesystem::path defaultDir();

    /**
     * Fetch the entry for `planHash`. Returns the cached result on a
     * clean hit; nullopt on miss, disabled cache, or a quarantined
     * corrupt entry.
     */
    std::optional<core::HierarchicalResult>
    lookup(const std::string &planHash);

    /** Atomically persist `result` under `planHash` (no-op when
     *  disabled). Fatal when the directory cannot be created or the
     *  entry cannot be written. */
    void store(const std::string &planHash,
               const core::HierarchicalResult &result);

    /**
     * Fetch the sweep entry for `sweepHash` (same hit/miss/quarantine
     * semantics as lookup()).
     */
    std::optional<SweepResult> lookupSweep(const std::string &sweepHash);

    /** Atomically persist a sweep result under `sweepHash`. */
    void storeSweep(const std::string &sweepHash, const SweepResult &r);

    /** Delete every entry (including .tmp/.quarantine debris); returns
     *  the number of files removed. Works even when disabled — eviction
     *  is an explicit administrative request. */
    std::size_t evict();

    /** Serialize a result to the entry JSON (exposed for tests). */
    static std::string entryJson(const std::string &planHash,
                                 const core::HierarchicalResult &result);

    /** Same for a sweep entry. */
    static std::string sweepEntryJson(const std::string &sweepHash,
                                      const SweepResult &r);

    /** Counters; read at serial points only (no lock is taken). */
    const PlanCacheStats &stats() const { return stats_; }
    const std::filesystem::path &dir() const { return dir_; }
    bool enabled() const { return enabled_; }

  private:
    std::filesystem::path entryPath(const std::string &planHash) const;
    std::filesystem::path sweepPath(const std::string &sweepHash) const;
    void quarantine(const std::filesystem::path &path);
    void storeFile(const std::filesystem::path &tmp,
                   const std::filesystem::path &final,
                   const std::string &payload);

    std::filesystem::path dir_;
    bool enabled_;
    std::mutex mu_; //!< guards stats_ and the entry files
    PlanCacheStats stats_;
};

} // namespace hypar::serve

#endif // HYPAR_SERVE_PLAN_CACHE_HH
