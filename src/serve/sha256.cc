#include "serve/sha256.hh"

#include <bit>
#include <cstring>

namespace hypar::serve {

namespace {

constexpr std::uint32_t kInit[8] = {
    0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
    0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u,
};

constexpr std::uint32_t kRoundK[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u,
};

} // namespace

Sha256::Sha256()
{
    std::memcpy(state_, kInit, sizeof(state_));
}

void
Sha256::processBlock(const std::uint8_t *block)
{
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
        w[i] = (std::uint32_t{block[4 * i]} << 24) |
               (std::uint32_t{block[4 * i + 1]} << 16) |
               (std::uint32_t{block[4 * i + 2]} << 8) |
               std::uint32_t{block[4 * i + 3]};
    }
    for (int i = 16; i < 64; ++i) {
        const std::uint32_t s0 = std::rotr(w[i - 15], 7) ^
                                 std::rotr(w[i - 15], 18) ^
                                 (w[i - 15] >> 3);
        const std::uint32_t s1 = std::rotr(w[i - 2], 17) ^
                                 std::rotr(w[i - 2], 19) ^
                                 (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state_[0], b = state_[1], c = state_[2],
                  d = state_[3], e = state_[4], f = state_[5],
                  g = state_[6], h = state_[7];
    for (int i = 0; i < 64; ++i) {
        const std::uint32_t s1 =
            std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
        const std::uint32_t ch = (e & f) ^ (~e & g);
        const std::uint32_t t1 = h + s1 + ch + kRoundK[i] + w[i];
        const std::uint32_t s0 =
            std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
        const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        const std::uint32_t t2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }
    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    state_[4] += e;
    state_[5] += f;
    state_[6] += g;
    state_[7] += h;
}

void
Sha256::update(std::string_view data)
{
    totalBytes_ += data.size();
    std::size_t pos = 0;
    if (bufferLen_ > 0) {
        const std::size_t take =
            std::min(data.size(), sizeof(buffer_) - bufferLen_);
        std::memcpy(buffer_ + bufferLen_, data.data(), take);
        bufferLen_ += take;
        pos = take;
        if (bufferLen_ == sizeof(buffer_)) {
            processBlock(buffer_);
            bufferLen_ = 0;
        }
    }
    while (pos + 64 <= data.size()) {
        processBlock(
            reinterpret_cast<const std::uint8_t *>(data.data() + pos));
        pos += 64;
    }
    if (pos < data.size()) {
        std::memcpy(buffer_, data.data() + pos, data.size() - pos);
        bufferLen_ = data.size() - pos;
    }
}

std::string
Sha256::hexDigest()
{
    // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
    const std::uint64_t bits = totalBytes_ * 8;
    std::uint8_t pad[72];
    std::size_t pad_len = 0;
    pad[pad_len++] = 0x80;
    while ((bufferLen_ + pad_len) % 64 != 56)
        pad[pad_len++] = 0;
    for (int i = 7; i >= 0; --i)
        pad[pad_len++] = static_cast<std::uint8_t>(bits >> (8 * i));
    update(std::string_view(reinterpret_cast<const char *>(pad), pad_len));

    static constexpr char kHex[] = "0123456789abcdef";
    std::string out;
    out.reserve(64);
    for (const std::uint32_t word : state_) {
        for (int shift = 28; shift >= 0; shift -= 4)
            out.push_back(kHex[(word >> shift) & 0xf]);
    }
    return out;
}

std::string
sha256Hex(std::string_view data)
{
    Sha256 ctx;
    ctx.update(data);
    return ctx.hexDigest();
}

} // namespace hypar::serve
