/**
 * @file
 * The hyparc serving loop: newline-delimited JSON requests in, one
 * JSON response line per request, in request order.
 *
 * Protocol (the full client-facing contract lives in docs/SERVING.md;
 * tools/check_docs.py cross-checks that document against
 * kRequestFields below, so schema drift fails the hygiene gate):
 *
 *  - One request object per input line. A *blank line or EOF* closes
 *    the current admission batch: every buffered request is executed
 *    and its response line emitted, responses in the exact order the
 *    requests arrived.
 *  - Batched admission: all `evaluate` requests of a batch that share
 *    a context hash are coalesced into one Evaluator::evaluateBatch
 *    call fanned over the process thread pool — the serving-tier
 *    counterpart of the sweep fast path. Results are written back by
 *    request index, so coalescing is invisible except for latency
 *    (and the `batched` count in the response, exposed for tests).
 *  - Parallel execution: the independent requests of a batch fan out
 *    over a util::ThreadPool, grouped by context hash (requests
 *    sharing a warm session serialize on its mutex; LRU motion and
 *    counter folds stay on the admission thread, in request order).
 *    Responses are still written strictly by request index, and every
 *    response byte is identical to serial execution — pinned by
 *    tests/test_serve_concurrent.cc. `stats`/`evict`/`shutdown` are
 *    serial barriers within a batch. See docs/SERVING.md
 *    "Concurrency & memory budget".
 *  - Warm state: sessions (network + SimConfig + Evaluator) are
 *    content-addressed by serve::contextHash and kept in an LRU
 *    (serve::SessionRegistry); `plan` results are additionally
 *    persisted in the on-disk serve::PlanCache keyed by
 *    serve::planHash, and a cache hit short-circuits the search with
 *    a bit-identical result.
 *  - A malformed request (bad JSON, unknown field, bad value) yields
 *    an `"ok": false` response *line* in its slot; the server never
 *    dies on client input. Fatal errors only escape for server-side
 *    setup problems (unwritable cache directory).
 *
 * Ops: "plan", "evaluate", "sweep", "stats", "evict", "shutdown".
 */

#ifndef HYPAR_SERVE_SERVER_HH
#define HYPAR_SERVE_SERVER_HH

#include <array>
#include <cstddef>
#include <filesystem>
#include <iosfwd>
#include <string>

#include "serve/plan_cache.hh"
#include "serve/session.hh"
#include "util/latency_histogram.hh"

namespace hypar::util {
class ThreadPool;
}

namespace hypar::serve {

/**
 * Every key a request object may carry. Unknown keys are rejected
 * (strict schema — a typoed "stratgy" must not silently plan with the
 * default). tools/check_docs.py parses this initializer and checks it
 * 1:1 against the schema table in docs/SERVING.md.
 */
inline constexpr const char *kRequestFields[] = {
    "op",        // required: plan | evaluate | sweep | stats | evict |
                 //           shutdown
    "id",        // optional string, echoed back verbatim
    "model",     // zoo model name (exactly one of model/spec)
    "spec",      // inline network spec text
    "levels",    // hierarchy levels H (default 4)
    "batch",     // mini-batch size (default 256)
    "topology",  // htree | torus | mesh (default htree)
    "strategy",  // hypar | dp | mp | owt | optimal (default hypar)
    "engine",    // optimal: auto | dense | sparse | beam | astar
    "beam_width", // optimal: beam width (0 = adaptive)
    "width_hint", // optimal: warm-start width for the adaptive beam
                  //          (thread a prior result's width_used back)
    "overlap",   // overlap gradient reductions (default false)
    "faults",    // {"nodes": [[id, scale]...], "links": [[id, scale]...]}
    "plan",      // evaluate: explicit plan, one bit string per level
    "level",     // sweep: hierarchy level whose layer masks to sweep
    "steps",     // evaluate: steady-state cadence over N steps
};

/** Server-wide knobs (from `hyparc serve` flags). */
struct ServeOptions
{
    std::filesystem::path cacheDir; //!< empty = PlanCache::defaultDir()
    bool noCache = false;           //!< bypass reads AND writes
    /** Warm-session LRU capacity (`--max-sessions`, >= 1): size this
     *  to the serving mix so distinct contexts don't thrash warm
     *  Evaluators. */
    std::size_t maxSessions = SessionRegistry::kDefaultCapacity;
    /** Warm-session byte budget (`--max-session-bytes`, 0 =
     *  unlimited): evicts least-recently-acquired sessions by
     *  approximate resident size (Session::approxBytes) at the end of
     *  each batch, never below one session. */
    std::size_t maxSessionBytes = 0;
    /** Pool the batch executor fans request groups over; nullptr =
     *  util::ThreadPool::global(). Tests and benches inject fixed-size
     *  pools to pin the serial/concurrent differential. */
    util::ThreadPool *pool = nullptr;
};

/** Serving counters reported by the `stats` op. */
struct ServeStats
{
    std::size_t requests = 0;  //!< responses emitted (including errors)
    std::size_t errors = 0;    //!< "ok": false responses
    std::size_t batches = 0;   //!< admission batches flushed
    std::size_t coalesced = 0; //!< evaluate requests served via a
                               //!< shared evaluateBatch call
};

/** One long-lived serving loop over an input/output stream pair. */
class Server
{
  public:
    explicit Server(const ServeOptions &options);

    /**
     * Read requests from `in` until EOF or a `shutdown` op, writing
     * one response line per request to `out` (flushed per batch).
     * Returns 0 (the protocol reports per-request errors in-band).
     */
    int run(std::istream &in, std::ostream &out);

    /** Process one already-framed admission batch (exposed for
     *  tests); `lines` holds one request line per element. Emits one
     *  response line per request. Returns false after `shutdown`. */
    bool processBatch(const std::vector<std::string> &lines,
                      std::ostream &out);

    PlanCache &cache() { return cache_; }
    SessionRegistry &sessions() { return sessions_; }
    const ServeStats &stats() const { return stats_; }

    /** Ops with a latency histogram, in kOps/stats-response order. */
    static constexpr std::array<const char *, 6> kOps = {
        "plan", "evaluate", "sweep", "stats", "evict", "shutdown"};

    /** Per-op latency histogram (folded at batch serial points; the
     *  `stats` op reports p50/p95/p99 from these). */
    const util::LatencyHistogram &latency(std::size_t op) const
    {
        return latency_[op];
    }

  private:
    PlanCache cache_;
    SessionRegistry sessions_;
    ServeStats stats_;
    util::ThreadPool *pool_;
    std::array<util::LatencyHistogram, kOps.size()> latency_;
};

/** Fields allowed per op, validated before execution. */
bool requestFieldKnown(const std::string &key);

} // namespace hypar::serve

#endif // HYPAR_SERVE_SERVER_HH
