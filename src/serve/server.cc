#include "serve/server.hh"

#include <algorithm>
#include <chrono>
#include <istream>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <vector>

#include "core/optimal_partitioner.hh"
#include "core/plan.hh"
#include "core/strategies.hh"
#include "dnn/model_zoo.hh"
#include "dnn/spec_parser.hh"
#include "serve/canonical.hh"
#include "serve/json.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace hypar::serve {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(const Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** One parsed request, CLI-default-aligned where fields overlap. */
struct Request
{
    std::string op;
    std::string id;
    bool hasId = false;
    std::string model;
    std::string spec;
    std::size_t levels = 4;
    std::size_t batch = 256;
    std::string topology = "htree";
    std::string strategy = "hypar";
    std::string engine = "auto";
    std::size_t beamWidth = 0;
    std::size_t widthHint = 0;
    bool overlap = false;
    arch::FaultMap faults;
    std::vector<std::string> planBits;
    bool hasPlan = false;
    std::size_t level = 0;
    bool hasLevel = false;
    std::size_t steps = 1;
};

/** Per-request working state inside one admission batch. */
struct Pending
{
    Request req;
    std::optional<dnn::Network> network; //!< Network has no default ctor
    sim::SimConfig config;
    std::string ctxHash;
    core::HierarchicalPlan evalPlan; //!< evaluate: the plan to score
    bool coalesce = false;           //!< joins a shared evaluateBatch
    bool done = false;               //!< response already written
    bool errored = false;     //!< folded into ServeStats::errors at a
                              //!< serial point (never touched in a
                              //!< pool body — counters must not race)
    bool sharedBatch = false; //!< folded into ServeStats::coalesced
    std::shared_ptr<Session> session; //!< reserved at admission
    double seconds = 0.0;             //!< measured execution latency
    bool timed = false;
};

std::size_t
asSize(const JsonValue &v, const char *what)
{
    const double d = v.asNumber();
    if (d < 0 || d != static_cast<double>(static_cast<std::size_t>(d)))
        util::fatal(std::string("request field '") + what +
                    "' must be a non-negative integer");
    return static_cast<std::size_t>(d);
}

std::vector<arch::FaultEntry>
parseFaultEntries(const JsonValue &list, const char *what)
{
    std::vector<arch::FaultEntry> out;
    for (const JsonValue &pair : list.asArray()) {
        const JsonValue::Array &p = pair.asArray();
        if (p.size() != 2)
            util::fatal(std::string("request field 'faults." ) + what +
                        "' entries must be [id, scale] pairs");
        out.push_back({asSize(p[0], what), p[1].asNumber()});
    }
    return out;
}

/**
 * Parse into `req` in place (rather than returning one) so that when
 * parsing fails mid-way, whatever already parsed — in particular `op`
 * and `id`, which are pulled out first — still reaches the error
 * response. Clients correlating a mixed batch get the op echoed even
 * on failures.
 */
void
parseRequest(const std::string &line, Request &req)
{
    const JsonValue root = JsonValue::parse(line);
    if (!root.isObject())
        util::fatal("request must be a JSON object");
    if (const JsonValue *id = root.find("id")) {
        req.id = id->asString();
        req.hasId = true;
    }
    if (const JsonValue *op = root.find("op"))
        req.op = op->asString();
    for (const auto &[key, value] : root.asObject()) {
        if (!requestFieldKnown(key))
            util::fatal("unknown request field '" + key + "'");
        (void)value;
    }
    if (root.find("op") == nullptr)
        util::fatal("request needs an \"op\" field");
    if (const JsonValue *v = root.find("model"))
        req.model = v->asString();
    if (const JsonValue *v = root.find("spec"))
        req.spec = v->asString();
    if (const JsonValue *v = root.find("levels"))
        req.levels = asSize(*v, "levels");
    if (const JsonValue *v = root.find("batch"))
        req.batch = asSize(*v, "batch");
    if (const JsonValue *v = root.find("topology"))
        req.topology = v->asString();
    if (const JsonValue *v = root.find("strategy"))
        req.strategy = v->asString();
    if (const JsonValue *v = root.find("engine"))
        req.engine = v->asString();
    if (const JsonValue *v = root.find("beam_width"))
        req.beamWidth = asSize(*v, "beam_width");
    if (const JsonValue *v = root.find("width_hint"))
        req.widthHint = asSize(*v, "width_hint");
    if (const JsonValue *v = root.find("overlap"))
        req.overlap = v->asBool();
    if (const JsonValue *v = root.find("faults")) {
        if (!v->isObject())
            util::fatal("request field 'faults' must be an object");
        for (const auto &[key, list] : v->asObject()) {
            if (key == "nodes")
                req.faults.nodes = parseFaultEntries(list, "nodes");
            else if (key == "links")
                req.faults.links = parseFaultEntries(list, "links");
            else
                util::fatal("unknown faults member '" + key + "'");
        }
    }
    if (const JsonValue *v = root.find("plan")) {
        for (const JsonValue &level : v->asArray())
            req.planBits.push_back(level.asString());
        req.hasPlan = true;
    }
    if (const JsonValue *v = root.find("level")) {
        req.level = asSize(*v, "level");
        req.hasLevel = true;
    }
    if (const JsonValue *v = root.find("steps")) {
        req.steps = asSize(*v, "steps");
        if (req.steps == 0)
            util::fatal("request field 'steps' must be at least 1");
    }
}

dnn::Network
buildNetwork(const Request &req)
{
    if (!req.model.empty() && !req.spec.empty())
        util::fatal("use either \"model\" or \"spec\", not both");
    if (!req.model.empty())
        return dnn::modelByName(req.model);
    if (!req.spec.empty())
        return dnn::parseNetworkSpec(req.spec);
    util::fatal("a network is required: \"model\" or \"spec\"");
}

sim::SimConfig
buildConfig(const Request &req)
{
    sim::SimConfig cfg;
    cfg.levels = req.levels;
    cfg.comm.batch = req.batch;
    if (req.topology == "htree")
        cfg.topology = sim::TopologyKind::kHTree;
    else if (req.topology == "torus")
        cfg.topology = sim::TopologyKind::kTorus;
    else if (req.topology == "mesh")
        cfg.topology = sim::TopologyKind::kMesh;
    else
        util::fatal("unknown topology '" + req.topology +
                    "' (htree|torus|mesh)");
    cfg.options.overlapGradComm = req.overlap;
    cfg.faults = req.faults;
    return cfg;
}

core::SearchOptions
buildSearch(const Request &req)
{
    core::SearchOptions search;
    search.engine = core::searchEngineFromName(req.engine);
    search.beamWidth = req.beamWidth;
    // Warm start: a client that threads a prior response's
    // `width_used` back skips the adaptive beam's width-doubling ramp
    // straight to the measured plateau. Exactness is unaffected — the
    // adaptive loop still certifies (and keeps growing) from
    // whatever width it starts at — so the plan and cost stay
    // bit-identical with or without the hint (which is also why the
    // hint is excluded from the plan-cache key).
    search.beamWidthStart = req.widthHint;
    return search;
}

void
validateStrategyName(const std::string &strategy)
{
    if (strategy != "hypar" && strategy != "dp" && strategy != "mp" &&
        strategy != "owt" && strategy != "optimal")
        util::fatal("unknown strategy '" + strategy +
                    "' (hypar|dp|mp|owt|optimal)");
}

/** Build the plan a request names (mirrors the CLI's strategy set). */
core::HierarchicalPlan
buildStrategyPlan(const Request &req, const core::CommModel &model,
                  core::HierarchicalResult *search_out = nullptr)
{
    if (req.strategy == "hypar")
        return core::makeHyparPlan(model, req.levels);
    if (req.strategy == "dp")
        return core::makeDataParallelPlan(model.network(), req.levels);
    if (req.strategy == "mp")
        return core::makeModelParallelPlan(model.network(), req.levels);
    if (req.strategy == "owt")
        return core::makeOneWeirdTrickPlan(model.network(), req.levels);
    if (req.strategy == "optimal") {
        auto result = core::OptimalPartitioner(model).partition(
            req.levels, buildSearch(req));
        if (search_out != nullptr)
            *search_out = result;
        return result.plan;
    }
    util::fatal("unknown strategy '" + req.strategy +
                "' (hypar|dp|mp|owt|optimal)");
}

core::HierarchicalPlan
decodePlanBits(const std::vector<std::string> &bits)
{
    core::HierarchicalPlan plan;
    for (const std::string &level : bits) {
        core::LevelPlan lp;
        lp.reserve(level.size());
        for (const char c : level) {
            if (c != '0' && c != '1')
                util::fatal("request field 'plan' must hold bit "
                            "strings of '0' (dp) and '1' (mp)");
            lp.push_back(c == '1' ? core::Parallelism::kModel
                                  : core::Parallelism::kData);
        }
        plan.levels.push_back(std::move(lp));
    }
    return plan;
}

std::string
responseHead(const Request &req, bool ok)
{
    std::string out = "{";
    if (req.hasId)
        out += "\"id\":\"" + jsonEscape(req.id) + "\",";
    out += ok ? "\"ok\":true" : "\"ok\":false";
    // Echo the op whenever one parsed — including on failures, so a
    // client correlating a mixed batch never has to rely on id alone.
    if (!req.op.empty())
        out += ",\"op\":\"" + jsonEscape(req.op) + "\"";
    return out;
}

std::string
errorResponse(const Request &req, const std::string &message)
{
    return responseHead(req, false) +
           ",\"error\":\"" + jsonEscape(message) + "\"}";
}

std::string
metricsJson(const sim::StepMetrics &m)
{
    std::string out = "{";
    out += "\"step_seconds\":" + canonicalDouble(m.stepSeconds);
    out += ",\"compute_busy_seconds\":" +
           canonicalDouble(m.computeBusySeconds);
    out += ",\"network_busy_seconds\":" +
           canonicalDouble(m.networkBusySeconds);
    out += ",\"comm_bytes\":" + canonicalDouble(m.commBytes);
    out += ",\"phases\":{\"forward\":" + canonicalDouble(m.phases.forward) +
           ",\"backward\":" + canonicalDouble(m.phases.backward) +
           ",\"gradient\":" + canonicalDouble(m.phases.gradient) + "}";
    out += ",\"energy\":{\"compute_j\":" +
           canonicalDouble(m.energy.computeJ) +
           ",\"sram_j\":" + canonicalDouble(m.energy.sramJ) +
           ",\"dram_j\":" + canonicalDouble(m.energy.dramJ) +
           ",\"comm_j\":" + canonicalDouble(m.energy.commJ) +
           ",\"total_j\":" + canonicalDouble(m.energy.totalJ()) + "}";
    out += "}";
    return out;
}

std::string
searchJson(const core::HierarchicalResult &result)
{
    return "{\"transitions_evaluated\":" +
           std::to_string(result.transitionsEvaluated) +
           ",\"expanded\":" + std::to_string(result.stats.expanded) +
           ",\"pruned\":" + std::to_string(result.stats.pruned) +
           ",\"certified_exact\":" +
           (result.stats.certifiedExact ? std::string("true")
                                        : std::string("false")) +
           ",\"width_used\":" + std::to_string(result.stats.widthUsed) +
           "}";
}

std::string
planLevelsJson(const core::HierarchicalPlan &plan)
{
    std::string out = "[";
    for (std::size_t h = 0; h < plan.levels.size(); ++h) {
        if (h > 0)
            out += ",";
        out += '"' + core::toBitString(plan.levels[h]) + '"';
    }
    out += "]";
    return out;
}

bool
needsSession(const std::string &op)
{
    return op == "plan" || op == "evaluate" || op == "sweep";
}

std::size_t
opIndex(const std::string &op)
{
    for (std::size_t k = 0; k < Server::kOps.size(); ++k)
        if (op == Server::kOps[k])
            return k;
    return 0; // unreachable for requests that execute
}

} // namespace

bool
requestFieldKnown(const std::string &key)
{
    for (const char *field : kRequestFields)
        if (key == field)
            return true;
    return false;
}

Server::Server(const ServeOptions &options)
    : cache_(options.cacheDir.empty() ? PlanCache::defaultDir()
                                      : options.cacheDir,
             !options.noCache),
      sessions_(options.maxSessions, options.maxSessionBytes),
      pool_(options.pool != nullptr ? options.pool
                                    : &util::ThreadPool::global())
{}

bool
Server::processBatch(const std::vector<std::string> &lines,
                     std::ostream &out)
{
    ++stats_.batches;
    const std::size_t n = lines.size();
    std::vector<Pending> pending(n);
    std::vector<std::string> responses(n);
    bool shutdown = false;

    // Pass 1 — parse and validate the *whole* request up front, before
    // the session registry is touched: a request that will answer with
    // an in-band error must never build — or evict — a warm session.
    for (std::size_t i = 0; i < n; ++i) {
        Pending &p = pending[i];
        try {
            parseRequest(lines[i], p.req);
            if (!needsSession(p.req.op)) {
                if (p.req.op != "stats" && p.req.op != "evict" &&
                    p.req.op != "shutdown")
                    util::fatal("unknown op '" + p.req.op + "'");
                continue;
            }
            p.network = buildNetwork(p.req);
            p.config = buildConfig(p.req);
            validateStrategyName(p.req.strategy);
            buildSearch(p.req); // rejects unknown engines
            sim::validateFaults(p.config);
            p.ctxHash = contextHash(*p.network, p.config);
            if (p.req.op == "evaluate") {
                if (p.req.hasPlan) {
                    p.evalPlan = decodePlanBits(p.req.planBits);
                    if (p.evalPlan.numLevels() != p.req.levels)
                        util::fatal("request plan has " +
                                    std::to_string(p.evalPlan.numLevels()) +
                                    " levels but \"levels\" is " +
                                    std::to_string(p.req.levels));
                    core::validatePlan(p.evalPlan, *p.network);
                }
                p.coalesce = p.req.steps == 1;
            }
            if (p.req.op == "sweep" && !p.req.hasLevel)
                util::fatal("sweep needs a \"level\" field "
                            "(0-based hierarchy level)");
        } catch (const std::exception &e) {
            responses[i] = errorResponse(p.req, e.what());
            ++stats_.errors;
            p.done = true;
        }
    }

    // Pass 2 — admission: reserve every session on this thread, in
    // request order, so LRU motion (touch, create, evict) is identical
    // whether execution below runs serial or parallel. Builds happen
    // lazily in the execution pass, under the per-session mutex.
    for (std::size_t i = 0; i < n; ++i) {
        Pending &p = pending[i];
        if (!p.done && needsSession(p.req.op))
            p.session = sessions_.reserve(*p.network, p.config, p.ctxHash);
    }

    // One context-hash group of session ops, executed in request order
    // under the session's mutex. Runs as a pool body: no server-wide
    // counter may be touched here — per-request flags are folded at
    // the serial points below instead.
    auto runGroup = [&](const std::vector<std::size_t> &members) {
        Session &session = *pending[members.front()].session;
        std::lock_guard<std::mutex> lock(session.mu);

        // Single-step evaluates first, coalesced through one
        // evaluateBatch fan-out (the order is observable only through
        // per-op metrics, which are order-independent).
        std::vector<std::size_t> co;
        for (const std::size_t i : members)
            if (pending[i].coalesce)
                co.push_back(i);
        if (!co.empty()) {
            const auto t0 = Clock::now();
            try {
                session.ensure();
                std::vector<core::HierarchicalPlan> plans;
                plans.reserve(co.size());
                for (const std::size_t i : co) {
                    Pending &p = pending[i];
                    if (!p.req.hasPlan)
                        p.evalPlan = buildStrategyPlan(
                            p.req, session.evaluator->model());
                    plans.push_back(p.evalPlan);
                }
                const std::vector<sim::StepMetrics> metrics =
                    session.evaluator->evaluateBatch(plans);
                for (std::size_t k = 0; k < co.size(); ++k) {
                    const std::size_t i = co[k];
                    responses[i] =
                        responseHead(pending[i].req, true) +
                        ",\"context_hash\":\"" + session.contextHash +
                        "\"" +
                        ",\"batched\":" + std::to_string(co.size()) +
                        ",\"steps\":1,\"metrics\":" +
                        metricsJson(metrics[k]) + "}";
                    pending[i].done = true;
                    pending[i].sharedBatch = co.size() > 1;
                }
            } catch (const std::exception &e) {
                for (const std::size_t i : co) {
                    if (pending[i].done)
                        continue;
                    responses[i] = errorResponse(pending[i].req, e.what());
                    pending[i].errored = true;
                    pending[i].done = true;
                }
            }
            // The shared call's duration is attributed to every member
            // (that is each request's observed service time).
            const double secs = secondsSince(t0);
            for (const std::size_t i : co) {
                pending[i].seconds = secs;
                pending[i].timed = true;
            }
        }

        for (const std::size_t i : members) {
            Pending &p = pending[i];
            if (p.done)
                continue;
            const auto t0 = Clock::now();
            try {
                if (p.req.op == "plan") {
                    const std::string hash =
                        planHash(*p.network, p.config, p.req.strategy,
                                 buildSearch(p.req));
                    std::optional<core::HierarchicalResult> cached =
                        cache_.lookup(hash);
                    const char *outcome =
                        cached ? "hit"
                               : (cache_.enabled() ? "miss" : "bypass");
                    core::HierarchicalResult result;
                    if (cached) {
                        result = std::move(*cached);
                    } else {
                        session.ensure();
                        result.plan = buildStrategyPlan(
                            p.req, session.evaluator->model(), &result);
                        if (result.commBytes == 0.0 &&
                            p.req.strategy != "optimal")
                            result.commBytes =
                                session.evaluator->model().planBytes(
                                    result.plan);
                        cache_.store(hash, result);
                    }
                    responses[i] =
                        responseHead(p.req, true) +
                        ",\"context_hash\":\"" + p.ctxHash + "\"" +
                        ",\"plan_hash\":\"" + hash + "\"" +
                        ",\"cache\":\"" + outcome + "\"" +
                        ",\"plan\":" + planLevelsJson(result.plan) +
                        ",\"comm_bytes\":" +
                        canonicalDouble(result.commBytes) +
                        ",\"search\":" + searchJson(result) + "}";
                } else if (p.req.op == "evaluate") {
                    // Steady-state evaluations are served inline (the
                    // cadence loop is not a batch entry point).
                    session.ensure();
                    if (!p.req.hasPlan)
                        p.evalPlan = buildStrategyPlan(
                            p.req, session.evaluator->model());
                    const sim::StepMetrics m =
                        session.evaluator->evaluateSteadyState(
                            p.evalPlan, p.req.steps);
                    responses[i] =
                        responseHead(p.req, true) +
                        ",\"context_hash\":\"" + p.ctxHash + "\"" +
                        ",\"batched\":1,\"steps\":" +
                        std::to_string(p.req.steps) +
                        ",\"metrics\":" + metricsJson(m) + "}";
                } else if (p.req.op == "sweep") {
                    const std::string hash =
                        sweepHash(*p.network, p.config, p.req.strategy,
                                  buildSearch(p.req), p.req.level);
                    std::optional<SweepResult> cached =
                        cache_.lookupSweep(hash);
                    const char *outcome =
                        cached ? "hit"
                               : (cache_.enabled() ? "miss" : "bypass");
                    SweepResult r;
                    if (cached) {
                        r = std::move(*cached);
                    } else {
                        session.ensure();
                        const core::HierarchicalPlan base =
                            buildStrategyPlan(p.req,
                                              session.evaluator->model());
                        r.level = p.req.level;
                        session.evaluator->sweepNeighborhood(
                            base, p.req.level,
                            [&](std::uint64_t mask,
                                const sim::StepMetrics &m) {
                                if (r.evaluated == 0 ||
                                    m.stepSeconds < r.best.stepSeconds) {
                                    r.bestMask = mask;
                                    r.best = m;
                                }
                                ++r.evaluated;
                            });
                        r.bestBits = core::toBitString(
                            core::levelPlanFromMask(r.bestMask,
                                                    base.numLayers()));
                        cache_.storeSweep(hash, r);
                    }
                    responses[i] =
                        responseHead(p.req, true) +
                        ",\"context_hash\":\"" + p.ctxHash + "\"" +
                        ",\"cache\":\"" + outcome + "\"" +
                        ",\"level\":" + std::to_string(r.level) +
                        ",\"evaluated\":" + std::to_string(r.evaluated) +
                        ",\"best_mask\":" + std::to_string(r.bestMask) +
                        ",\"best_bits\":\"" + r.bestBits +
                        "\",\"metrics\":" + metricsJson(r.best) + "}";
                }
            } catch (const std::exception &e) {
                responses[i] = errorResponse(p.req, e.what());
                p.errored = true;
            }
            p.seconds = secondsSince(t0);
            p.timed = true;
            p.done = true;
        }
    };

    // Pass 3 — execute in segments. Consecutive session ops form a
    // segment whose context-hash groups fan out over the pool (groups
    // are independent: disjoint sessions, disjoint cache keys).
    // Control ops (stats/evict/shutdown) are serial barriers, so the
    // counters they observe — and the totals folded below — are
    // deterministic for any thread count.
    std::vector<std::size_t> segment;
    auto flushSegment = [&]() {
        if (segment.empty())
            return;
        std::map<std::string, std::vector<std::size_t>> groups;
        for (const std::size_t i : segment)
            groups[pending[i].ctxHash].push_back(i);
        std::vector<const std::vector<std::size_t> *> order;
        order.reserve(groups.size());
        for (const auto &[hash, members] : groups)
            order.push_back(&members);
        pool_->parallelFor(0, order.size(), 1,
                           [&](std::size_t b, std::size_t e) {
                               for (std::size_t g = b; g < e; ++g)
                                   runGroup(*order[g]);
                           });
        // Serial fold, in request order: counter and histogram totals
        // are identical whether the groups above ran serial or fanned
        // out.
        for (const std::size_t i : segment) {
            Pending &p = pending[i];
            if (p.errored)
                ++stats_.errors;
            if (p.sharedBatch)
                ++stats_.coalesced;
            if (p.timed)
                latency_[opIndex(p.req.op)].record(p.seconds);
        }
        segment.clear();
    };

    for (std::size_t i = 0; i < n; ++i) {
        Pending &p = pending[i];
        if (p.done)
            continue;
        if (needsSession(p.req.op)) {
            segment.push_back(i);
            continue;
        }
        flushSegment();
        const auto t0 = Clock::now();
        try {
            if (p.req.op == "stats") {
                const PlanCacheStats &c = cache_.stats();
                std::string latency = "{";
                for (std::size_t k = 0; k < kOps.size(); ++k) {
                    const util::LatencyHistogram &h = latency_[k];
                    if (k > 0)
                        latency += ",";
                    latency += std::string("\"") + kOps[k] +
                               "\":{\"count\":" +
                               std::to_string(h.count()) + ",\"p50_us\":" +
                               canonicalDouble(h.quantile(0.50) * 1e6) +
                               ",\"p95_us\":" +
                               canonicalDouble(h.quantile(0.95) * 1e6) +
                               ",\"p99_us\":" +
                               canonicalDouble(h.quantile(0.99) * 1e6) +
                               "}";
                }
                latency += "}";
                responses[i] =
                    responseHead(p.req, true) + ",\"cache\":{\"enabled\":" +
                    (cache_.enabled() ? "true" : "false") + ",\"dir\":\"" +
                    jsonEscape(cache_.dir().string()) +
                    "\",\"hits\":" + std::to_string(c.hits) +
                    ",\"misses\":" + std::to_string(c.misses) +
                    ",\"stores\":" + std::to_string(c.stores) +
                    ",\"quarantined\":" + std::to_string(c.quarantined) +
                    "},\"sessions\":{\"size\":" +
                    std::to_string(sessions_.size()) +
                    ",\"capacity\":" + std::to_string(sessions_.capacity()) +
                    ",\"bytes\":" + std::to_string(sessions_.totalBytes()) +
                    ",\"max_bytes\":" +
                    std::to_string(sessions_.maxBytes()) +
                    ",\"built\":" + std::to_string(sessions_.built()) +
                    ",\"reused\":" + std::to_string(sessions_.reused()) +
                    "},\"server\":{\"requests\":" +
                    std::to_string(stats_.requests) +
                    ",\"errors\":" + std::to_string(stats_.errors) +
                    ",\"batches\":" + std::to_string(stats_.batches) +
                    ",\"coalesced\":" + std::to_string(stats_.coalesced) +
                    // Latency last: the concurrent-serving differential
                    // masks this one (inherently timing-dependent)
                    // object when comparing serial vs parallel output.
                    "},\"latency\":" + latency + "}";
            } else if (p.req.op == "evict") {
                responses[i] = responseHead(p.req, true) +
                               ",\"removed\":" +
                               std::to_string(cache_.evict()) + "}";
            } else if (p.req.op == "shutdown") {
                shutdown = true;
                responses[i] = responseHead(p.req, true) + "}";
            }
            latency_[opIndex(p.req.op)].record(secondsSince(t0));
        } catch (const std::exception &e) {
            responses[i] = errorResponse(p.req, e.what());
            ++stats_.errors;
        }
    }
    flushSegment();

    // End-of-batch serial point: built Evaluators have materialized
    // their sizes, so the byte budget can act (never mid-batch — a
    // pool body may still hold a session reference until here).
    sessions_.enforceBudget();

    for (const std::string &response : responses) {
        out << response << "\n";
        ++stats_.requests;
    }
    out.flush();
    return !shutdown;
}

int
Server::run(std::istream &in, std::ostream &out)
{
    std::vector<std::string> batch;
    std::string line;
    bool keepGoing = true;
    while (keepGoing && std::getline(in, line)) {
        // Blank line = admission barrier: flush the buffered batch.
        const bool blank =
            line.find_first_not_of(" \t\r") == std::string::npos;
        if (blank) {
            if (!batch.empty()) {
                keepGoing = processBatch(batch, out);
                batch.clear();
            }
            continue;
        }
        batch.push_back(line);
    }
    if (keepGoing && !batch.empty())
        processBatch(batch, out);
    return 0;
}

} // namespace hypar::serve
