#include "serve/server.hh"

#include <algorithm>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <vector>

#include "core/optimal_partitioner.hh"
#include "core/plan.hh"
#include "core/strategies.hh"
#include "dnn/model_zoo.hh"
#include "dnn/spec_parser.hh"
#include "serve/canonical.hh"
#include "serve/json.hh"
#include "util/logging.hh"

namespace hypar::serve {

namespace {

/** One parsed request, CLI-default-aligned where fields overlap. */
struct Request
{
    std::string op;
    std::string id;
    bool hasId = false;
    std::string model;
    std::string spec;
    std::size_t levels = 4;
    std::size_t batch = 256;
    std::string topology = "htree";
    std::string strategy = "hypar";
    std::string engine = "auto";
    std::size_t beamWidth = 0;
    std::size_t widthHint = 0;
    bool overlap = false;
    arch::FaultMap faults;
    std::vector<std::string> planBits;
    bool hasPlan = false;
    std::size_t level = 0;
    bool hasLevel = false;
    std::size_t steps = 1;
};

/** Per-request working state inside one admission batch. */
struct Pending
{
    Request req;
    std::optional<dnn::Network> network; //!< Network has no default ctor
    sim::SimConfig config;
    std::string ctxHash;
    core::HierarchicalPlan evalPlan; //!< evaluate: the plan to score
    bool coalesce = false;           //!< joins a shared evaluateBatch
    bool done = false;               //!< response already written
};

std::size_t
asSize(const JsonValue &v, const char *what)
{
    const double d = v.asNumber();
    if (d < 0 || d != static_cast<double>(static_cast<std::size_t>(d)))
        util::fatal(std::string("request field '") + what +
                    "' must be a non-negative integer");
    return static_cast<std::size_t>(d);
}

std::vector<arch::FaultEntry>
parseFaultEntries(const JsonValue &list, const char *what)
{
    std::vector<arch::FaultEntry> out;
    for (const JsonValue &pair : list.asArray()) {
        const JsonValue::Array &p = pair.asArray();
        if (p.size() != 2)
            util::fatal(std::string("request field 'faults." ) + what +
                        "' entries must be [id, scale] pairs");
        out.push_back({asSize(p[0], what), p[1].asNumber()});
    }
    return out;
}

Request
parseRequest(const std::string &line)
{
    const JsonValue root = JsonValue::parse(line);
    if (!root.isObject())
        util::fatal("request must be a JSON object");
    for (const auto &[key, value] : root.asObject()) {
        if (!requestFieldKnown(key))
            util::fatal("unknown request field '" + key + "'");
        (void)value;
    }

    Request req;
    const JsonValue *op = root.find("op");
    if (op == nullptr)
        util::fatal("request needs an \"op\" field");
    req.op = op->asString();
    if (const JsonValue *id = root.find("id")) {
        req.id = id->asString();
        req.hasId = true;
    }
    if (const JsonValue *v = root.find("model"))
        req.model = v->asString();
    if (const JsonValue *v = root.find("spec"))
        req.spec = v->asString();
    if (const JsonValue *v = root.find("levels"))
        req.levels = asSize(*v, "levels");
    if (const JsonValue *v = root.find("batch"))
        req.batch = asSize(*v, "batch");
    if (const JsonValue *v = root.find("topology"))
        req.topology = v->asString();
    if (const JsonValue *v = root.find("strategy"))
        req.strategy = v->asString();
    if (const JsonValue *v = root.find("engine"))
        req.engine = v->asString();
    if (const JsonValue *v = root.find("beam_width"))
        req.beamWidth = asSize(*v, "beam_width");
    if (const JsonValue *v = root.find("width_hint"))
        req.widthHint = asSize(*v, "width_hint");
    if (const JsonValue *v = root.find("overlap"))
        req.overlap = v->asBool();
    if (const JsonValue *v = root.find("faults")) {
        if (!v->isObject())
            util::fatal("request field 'faults' must be an object");
        for (const auto &[key, list] : v->asObject()) {
            if (key == "nodes")
                req.faults.nodes = parseFaultEntries(list, "nodes");
            else if (key == "links")
                req.faults.links = parseFaultEntries(list, "links");
            else
                util::fatal("unknown faults member '" + key + "'");
        }
    }
    if (const JsonValue *v = root.find("plan")) {
        for (const JsonValue &level : v->asArray())
            req.planBits.push_back(level.asString());
        req.hasPlan = true;
    }
    if (const JsonValue *v = root.find("level")) {
        req.level = asSize(*v, "level");
        req.hasLevel = true;
    }
    if (const JsonValue *v = root.find("steps")) {
        req.steps = asSize(*v, "steps");
        if (req.steps == 0)
            util::fatal("request field 'steps' must be at least 1");
    }
    return req;
}

dnn::Network
buildNetwork(const Request &req)
{
    if (!req.model.empty() && !req.spec.empty())
        util::fatal("use either \"model\" or \"spec\", not both");
    if (!req.model.empty())
        return dnn::modelByName(req.model);
    if (!req.spec.empty())
        return dnn::parseNetworkSpec(req.spec);
    util::fatal("a network is required: \"model\" or \"spec\"");
}

sim::SimConfig
buildConfig(const Request &req)
{
    sim::SimConfig cfg;
    cfg.levels = req.levels;
    cfg.comm.batch = req.batch;
    if (req.topology == "htree")
        cfg.topology = sim::TopologyKind::kHTree;
    else if (req.topology == "torus")
        cfg.topology = sim::TopologyKind::kTorus;
    else if (req.topology == "mesh")
        cfg.topology = sim::TopologyKind::kMesh;
    else
        util::fatal("unknown topology '" + req.topology +
                    "' (htree|torus|mesh)");
    cfg.options.overlapGradComm = req.overlap;
    cfg.faults = req.faults;
    return cfg;
}

core::SearchOptions
buildSearch(const Request &req)
{
    core::SearchOptions search;
    search.engine = core::searchEngineFromName(req.engine);
    search.beamWidth = req.beamWidth;
    // Warm start: a client that threads a prior response's
    // `width_used` back skips the adaptive beam's width-doubling ramp
    // straight to the measured plateau. Exactness is unaffected — the
    // adaptive loop still certifies (and keeps growing) from
    // whatever width it starts at — so the plan and cost stay
    // bit-identical with or without the hint.
    search.beamWidthStart = req.widthHint;
    return search;
}

/** Build the plan a request names (mirrors the CLI's strategy set). */
core::HierarchicalPlan
buildStrategyPlan(const Request &req, const core::CommModel &model,
                  core::HierarchicalResult *search_out = nullptr)
{
    if (req.strategy == "hypar")
        return core::makeHyparPlan(model, req.levels);
    if (req.strategy == "dp")
        return core::makeDataParallelPlan(model.network(), req.levels);
    if (req.strategy == "mp")
        return core::makeModelParallelPlan(model.network(), req.levels);
    if (req.strategy == "owt")
        return core::makeOneWeirdTrickPlan(model.network(), req.levels);
    if (req.strategy == "optimal") {
        auto result = core::OptimalPartitioner(model).partition(
            req.levels, buildSearch(req));
        if (search_out != nullptr)
            *search_out = result;
        return result.plan;
    }
    util::fatal("unknown strategy '" + req.strategy +
                "' (hypar|dp|mp|owt|optimal)");
}

core::HierarchicalPlan
decodePlanBits(const std::vector<std::string> &bits)
{
    core::HierarchicalPlan plan;
    for (const std::string &level : bits) {
        core::LevelPlan lp;
        lp.reserve(level.size());
        for (const char c : level) {
            if (c != '0' && c != '1')
                util::fatal("request field 'plan' must hold bit "
                            "strings of '0' (dp) and '1' (mp)");
            lp.push_back(c == '1' ? core::Parallelism::kModel
                                  : core::Parallelism::kData);
        }
        plan.levels.push_back(std::move(lp));
    }
    return plan;
}

std::string
responseHead(const Request &req, bool ok)
{
    std::string out = "{";
    if (req.hasId)
        out += "\"id\":\"" + jsonEscape(req.id) + "\",";
    out += ok ? "\"ok\":true" : "\"ok\":false";
    if (ok && !req.op.empty())
        out += ",\"op\":\"" + jsonEscape(req.op) + "\"";
    return out;
}

std::string
errorResponse(const Request &req, const std::string &message)
{
    return responseHead(req, false) +
           ",\"error\":\"" + jsonEscape(message) + "\"}";
}

std::string
metricsJson(const sim::StepMetrics &m)
{
    std::string out = "{";
    out += "\"step_seconds\":" + canonicalDouble(m.stepSeconds);
    out += ",\"compute_busy_seconds\":" +
           canonicalDouble(m.computeBusySeconds);
    out += ",\"network_busy_seconds\":" +
           canonicalDouble(m.networkBusySeconds);
    out += ",\"comm_bytes\":" + canonicalDouble(m.commBytes);
    out += ",\"phases\":{\"forward\":" + canonicalDouble(m.phases.forward) +
           ",\"backward\":" + canonicalDouble(m.phases.backward) +
           ",\"gradient\":" + canonicalDouble(m.phases.gradient) + "}";
    out += ",\"energy\":{\"compute_j\":" +
           canonicalDouble(m.energy.computeJ) +
           ",\"sram_j\":" + canonicalDouble(m.energy.sramJ) +
           ",\"dram_j\":" + canonicalDouble(m.energy.dramJ) +
           ",\"comm_j\":" + canonicalDouble(m.energy.commJ) +
           ",\"total_j\":" + canonicalDouble(m.energy.totalJ()) + "}";
    out += "}";
    return out;
}

std::string
searchJson(const core::HierarchicalResult &result)
{
    return "{\"transitions_evaluated\":" +
           std::to_string(result.transitionsEvaluated) +
           ",\"expanded\":" + std::to_string(result.stats.expanded) +
           ",\"pruned\":" + std::to_string(result.stats.pruned) +
           ",\"certified_exact\":" +
           (result.stats.certifiedExact ? std::string("true")
                                        : std::string("false")) +
           ",\"width_used\":" + std::to_string(result.stats.widthUsed) +
           "}";
}

std::string
planLevelsJson(const core::HierarchicalPlan &plan)
{
    std::string out = "[";
    for (std::size_t h = 0; h < plan.levels.size(); ++h) {
        if (h > 0)
            out += ",";
        out += '"' + core::toBitString(plan.levels[h]) + '"';
    }
    out += "]";
    return out;
}

} // namespace

bool
requestFieldKnown(const std::string &key)
{
    for (const char *field : kRequestFields)
        if (key == field)
            return true;
    return false;
}

Server::Server(const ServeOptions &options)
    : cache_(options.cacheDir.empty() ? PlanCache::defaultDir()
                                      : options.cacheDir,
             !options.noCache),
      sessions_(options.maxSessions)
{}

bool
Server::processBatch(const std::vector<std::string> &lines,
                     std::ostream &out)
{
    ++stats_.batches;
    const std::size_t n = lines.size();
    std::vector<Pending> pending(n);
    std::vector<std::string> responses(n);
    bool shutdown = false;

    // Pass 1 — parse and prepare. Network, config, context hash, and
    // (for evaluate) the concrete plan are resolved up front so the
    // coalescing pass below only has to group by context hash.
    for (std::size_t i = 0; i < n; ++i) {
        Pending &p = pending[i];
        try {
            p.req = parseRequest(lines[i]);
            const bool needsSession = p.req.op == "plan" ||
                                      p.req.op == "evaluate" ||
                                      p.req.op == "sweep";
            if (!needsSession) {
                if (p.req.op != "stats" && p.req.op != "evict" &&
                    p.req.op != "shutdown")
                    util::fatal("unknown op '" + p.req.op + "'");
                continue;
            }
            p.network = buildNetwork(p.req);
            p.config = buildConfig(p.req);
            p.ctxHash = contextHash(*p.network, p.config);
            if (p.req.op == "evaluate") {
                Session &session =
                    sessions_.acquire(*p.network, p.config, p.ctxHash);
                if (p.req.hasPlan) {
                    p.evalPlan = decodePlanBits(p.req.planBits);
                    if (p.evalPlan.numLevels() != p.req.levels)
                        util::fatal("request plan has " +
                                    std::to_string(p.evalPlan.numLevels()) +
                                    " levels but \"levels\" is " +
                                    std::to_string(p.req.levels));
                    core::validatePlan(p.evalPlan, session.network);
                } else {
                    p.evalPlan = buildStrategyPlan(
                        p.req, session.evaluator->model());
                }
                p.coalesce = p.req.steps == 1;
            }
        } catch (const std::exception &e) {
            responses[i] = errorResponse(p.req, e.what());
            ++stats_.errors;
            p.done = true;
        }
    }

    // Pass 2 — batched admission: evaluate requests sharing a context
    // run through one Evaluator::evaluateBatch fan-out, results
    // written back by request index (deterministic response order).
    std::map<std::string, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < n; ++i)
        if (!pending[i].done && pending[i].coalesce)
            groups[pending[i].ctxHash].push_back(i);
    for (const auto &[hash, members] : groups) {
        const Pending &first = pending[members.front()];
        try {
            Session &session =
                sessions_.acquire(*first.network, first.config, hash);
            std::vector<core::HierarchicalPlan> plans;
            plans.reserve(members.size());
            for (const std::size_t i : members)
                plans.push_back(pending[i].evalPlan);
            const std::vector<sim::StepMetrics> metrics =
                session.evaluator->evaluateBatch(plans);
            for (std::size_t k = 0; k < members.size(); ++k) {
                const std::size_t i = members[k];
                responses[i] =
                    responseHead(pending[i].req, true) +
                    ",\"context_hash\":\"" + hash + "\"" +
                    ",\"batched\":" + std::to_string(members.size()) +
                    ",\"steps\":1,\"metrics\":" + metricsJson(metrics[k]) +
                    "}";
                pending[i].done = true;
            }
            if (members.size() > 1)
                stats_.coalesced += members.size();
        } catch (const std::exception &e) {
            for (const std::size_t i : members) {
                if (pending[i].done)
                    continue;
                responses[i] = errorResponse(pending[i].req, e.what());
                ++stats_.errors;
                pending[i].done = true;
            }
        }
    }

    // Pass 3 — everything else, in request order.
    for (std::size_t i = 0; i < n; ++i) {
        Pending &p = pending[i];
        if (p.done)
            continue;
        try {
            if (p.req.op == "plan") {
                const std::string hash =
                    planHash(*p.network, p.config, p.req.strategy,
                             buildSearch(p.req));
                std::optional<core::HierarchicalResult> cached =
                    cache_.lookup(hash);
                const char *outcome =
                    cached ? "hit" : (cache_.enabled() ? "miss" : "bypass");
                core::HierarchicalResult result;
                if (cached) {
                    result = std::move(*cached);
                } else {
                    Session &session =
                        sessions_.acquire(*p.network, p.config, p.ctxHash);
                    result.plan = buildStrategyPlan(
                        p.req, session.evaluator->model(), &result);
                    if (result.commBytes == 0.0 &&
                        p.req.strategy != "optimal")
                        result.commBytes =
                            session.evaluator->model().planBytes(
                                result.plan);
                    cache_.store(hash, result);
                }
                responses[i] = responseHead(p.req, true) +
                               ",\"context_hash\":\"" + p.ctxHash + "\"" +
                               ",\"plan_hash\":\"" + hash + "\"" +
                               ",\"cache\":\"" + outcome + "\"" +
                               ",\"plan\":" + planLevelsJson(result.plan) +
                               ",\"comm_bytes\":" +
                               canonicalDouble(result.commBytes) +
                               ",\"search\":" + searchJson(result) + "}";
            } else if (p.req.op == "evaluate") {
                // Steady-state evaluations are served inline (the
                // cadence loop is not a batch entry point).
                Session &session =
                    sessions_.acquire(*p.network, p.config, p.ctxHash);
                const sim::StepMetrics m =
                    session.evaluator->evaluateSteadyState(p.evalPlan,
                                                           p.req.steps);
                responses[i] = responseHead(p.req, true) +
                               ",\"context_hash\":\"" + p.ctxHash + "\"" +
                               ",\"batched\":1,\"steps\":" +
                               std::to_string(p.req.steps) +
                               ",\"metrics\":" + metricsJson(m) + "}";
            } else if (p.req.op == "sweep") {
                if (!p.req.hasLevel)
                    util::fatal("sweep needs a \"level\" field "
                                "(0-based hierarchy level)");
                Session &session =
                    sessions_.acquire(*p.network, p.config, p.ctxHash);
                const core::HierarchicalPlan base = buildStrategyPlan(
                    p.req, session.evaluator->model());
                std::uint64_t bestMask = 0;
                sim::StepMetrics best;
                std::size_t evaluated = 0;
                session.evaluator->sweepNeighborhood(
                    base, p.req.level,
                    [&](std::uint64_t mask, const sim::StepMetrics &m) {
                        if (evaluated == 0 ||
                            m.stepSeconds < best.stepSeconds) {
                            bestMask = mask;
                            best = m;
                        }
                        ++evaluated;
                    });
                responses[i] =
                    responseHead(p.req, true) +
                    ",\"context_hash\":\"" + p.ctxHash + "\"" +
                    ",\"level\":" + std::to_string(p.req.level) +
                    ",\"evaluated\":" + std::to_string(evaluated) +
                    ",\"best_mask\":" + std::to_string(bestMask) +
                    ",\"best_bits\":\"" +
                    core::toBitString(core::levelPlanFromMask(
                        bestMask, base.numLayers())) +
                    "\",\"metrics\":" + metricsJson(best) + "}";
            } else if (p.req.op == "stats") {
                const PlanCacheStats &c = cache_.stats();
                responses[i] =
                    responseHead(p.req, true) + ",\"cache\":{\"enabled\":" +
                    (cache_.enabled() ? "true" : "false") + ",\"dir\":\"" +
                    jsonEscape(cache_.dir().string()) +
                    "\",\"hits\":" + std::to_string(c.hits) +
                    ",\"misses\":" + std::to_string(c.misses) +
                    ",\"stores\":" + std::to_string(c.stores) +
                    ",\"quarantined\":" + std::to_string(c.quarantined) +
                    "},\"sessions\":{\"size\":" +
                    std::to_string(sessions_.size()) +
                    ",\"capacity\":" + std::to_string(sessions_.capacity()) +
                    ",\"built\":" + std::to_string(sessions_.built()) +
                    ",\"reused\":" + std::to_string(sessions_.reused()) +
                    "},\"server\":{\"requests\":" +
                    std::to_string(stats_.requests) +
                    ",\"errors\":" + std::to_string(stats_.errors) +
                    ",\"batches\":" + std::to_string(stats_.batches) +
                    ",\"coalesced\":" + std::to_string(stats_.coalesced) +
                    "}}";
            } else if (p.req.op == "evict") {
                responses[i] = responseHead(p.req, true) +
                               ",\"removed\":" +
                               std::to_string(cache_.evict()) + "}";
            } else if (p.req.op == "shutdown") {
                shutdown = true;
                responses[i] = responseHead(p.req, true) + "}";
            }
        } catch (const std::exception &e) {
            responses[i] = errorResponse(p.req, e.what());
            ++stats_.errors;
        }
    }

    for (const std::string &response : responses) {
        out << response << "\n";
        ++stats_.requests;
    }
    out.flush();
    return !shutdown;
}

int
Server::run(std::istream &in, std::ostream &out)
{
    std::vector<std::string> batch;
    std::string line;
    bool keepGoing = true;
    while (keepGoing && std::getline(in, line)) {
        // Blank line = admission barrier: flush the buffered batch.
        const bool blank =
            line.find_first_not_of(" \t\r") == std::string::npos;
        if (blank) {
            if (!batch.empty()) {
                keepGoing = processBatch(batch, out);
                batch.clear();
            }
            continue;
        }
        batch.push_back(line);
    }
    if (keepGoing && !batch.empty())
        processBatch(batch, out);
    return 0;
}

} // namespace hypar::serve
