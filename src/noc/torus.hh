/**
 * @file
 * 2-D torus interconnect (paper Fig. 4(d), Section 6.5.1).
 *
 * Accelerators are laid out on a near-square 2-D torus (4 x 4 for the
 * paper's sixteen) with uniform 1600 Mb/s links and XY routing taking
 * the shorter wrap direction per axis. Nodes are placed with the
 * H-layout: hierarchy level 0 splits the grid along x, level 1 along y,
 * and so on, matching Fig. 4(d)'s assignment of A0-7 / A8-15 to the two
 * halves.
 *
 * A level-h exchange is decomposed into one flow per leaf pair (leaf i
 * with the leaf whose level-h bit differs), each carrying an equal share
 * of the group-pair bytes. Flows are routed, per-link loads accumulated,
 * and the exchange time is the *maximum* link load over the link
 * bandwidth — tree-shaped traffic concentrates on a few torus links,
 * which is exactly why the paper measures the torus slower than the
 * H-tree.
 */

#ifndef HYPAR_NOC_TORUS_HH
#define HYPAR_NOC_TORUS_HH

#include <cstdint>
#include <vector>

#include "noc/topology.hh"

namespace hypar::noc {

/** Near-square 2-D torus with XY shortest-wrap routing. */
class TorusTopology : public Topology
{
  public:
    /**
     * @param wraparound with false, the wrap links are removed and the
     *        grid degrades to a 2-D mesh (ablation topology; not in
     *        the paper's comparison but a natural design point).
     */
    TorusTopology(std::size_t levels, const TopologyConfig &config,
                  bool wraparound = true);

    std::string
    name() const override
    {
        return wraparound_ ? "Torus" : "Mesh";
    }

    double exchangeSeconds(std::size_t level,
                           double bytes_per_pair) const override;

    double exchangeHops(std::size_t level) const override;

    /**
     * The faultable links are the torus links, horizontal first:
     * id y * W + x is the link from (x, y) to (x+1 mod W, y), and
     * id W * H + y * W + x the link from (x, y) to (x, y+1 mod H) —
     * 2 * W * H ids in total. On the mesh the wrap links (x = W-1 /
     * y = H-1) exist in the id space but carry no traffic, so scaling
     * them is a no-op. A level's penalty is the degraded bottleneck
     * (max over used links of load / scale) relative to the pristine
     * bottleneck; a dead link on a loaded route makes the level
     * unusable (penalty +inf).
     */
    std::size_t numLinks() const override;

    // --- introspection (tests, reports) --------------------------------

    std::size_t gridWidth() const { return width_; }
    std::size_t gridHeight() const { return height_; }

    /** Grid coordinate of an accelerator index. */
    std::pair<std::size_t, std::size_t> coord(std::size_t node) const;

    /**
     * Largest per-link byte load in a level exchange when each group
     * pair moves exactly one byte (scale by bytes_per_pair for time).
     */
    double maxLinkLoadPerPairByte(std::size_t level) const;

  protected:
    void rebuildFaultState() override;

  private:
    struct LevelProfile
    {
        double maxLinkLoadPerByte = 0.0; //!< per byte of group-pair load
        double avgHops = 0.0;
        double maxHops = 0.0;
        double penalty = 1.0; //!< degraded / pristine bottleneck ratio
    };

    void placeNodes();
    LevelProfile profileLevel(std::size_t level) const;

    /** Route one flow, adding `bytes` to every traversed link. */
    void routeFlow(std::size_t from, std::size_t to, double bytes,
                   std::vector<double> &h_load,
                   std::vector<double> &v_load, double &hops) const;

    std::size_t width_ = 1;
    std::size_t height_ = 1;
    bool wraparound_ = true;
    std::vector<std::size_t> xOf_;
    std::vector<std::size_t> yOf_;
    std::vector<LevelProfile> profiles_;
};

/** 2-D mesh: the torus with its wraparound links removed. */
class MeshTopology : public TorusTopology
{
  public:
    MeshTopology(std::size_t levels, const TopologyConfig &config)
        : TorusTopology(levels, config, /*wraparound=*/false)
    {}

    /**
     * The mesh inherits the torus link id space, in which the wrap
     * links (x = W-1 / y = H-1) exist but carry no mesh traffic, so a
     * per-link fault map is partially meaningless — an entry naming a
     * wrap link would be accepted and silently change nothing. Reject
     * link entries up front instead of planning around them.
     */
    bool supportsLinkFaults() const override { return false; }
};

} // namespace hypar::noc

#endif // HYPAR_NOC_TORUS_HH
