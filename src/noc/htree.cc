#include "noc/htree.hh"

#include <cmath>

namespace hypar::noc {

HTreeTopology::HTreeTopology(std::size_t levels,
                             const TopologyConfig &config)
    : Topology(levels, config)
{}

double
HTreeTopology::pairBandwidth(std::size_t level) const
{
    checkLevel(level);
    return config_.rootBisection /
           std::ldexp(1.0, static_cast<int>(level));
}

double
HTreeTopology::exchangeSeconds(std::size_t level,
                               double bytes_per_pair) const
{
    checkLevel(level);
    if (bytes_per_pair <= 0.0)
        return 0.0;
    const double serialization = bytes_per_pair / pairBandwidth(level);
    return serialization + exchangeHops(level) * config_.perHopLatency;
}

double
HTreeTopology::exchangeHops(std::size_t level) const
{
    checkLevel(level);
    // Leaf up to the level-h junction and back down into the sibling
    // subtree: 2 * (H - h) tree hops.
    return 2.0 * static_cast<double>(levels_ - level);
}

} // namespace hypar::noc
