#include "noc/htree.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hypar::noc {

HTreeTopology::HTreeTopology(std::size_t levels,
                             const TopologyConfig &config)
    : Topology(levels, config)
{}

std::size_t
HTreeTopology::numLinks() const
{
    return (std::size_t{1} << levels_) - 1;
}

void
HTreeTopology::rebuildFaultState()
{
    // Level h's trunks are ids 2^h - 1 .. 2^(h+1) - 2; the exchange
    // waits for its slowest pair, i.e. the smallest trunk scale.
    for (std::size_t h = 0; h < levels_; ++h) {
        const std::size_t first = (std::size_t{1} << h) - 1;
        const std::size_t count = std::size_t{1} << h;
        double min_scale = 1.0;
        for (std::size_t i = 0; i < count; ++i)
            min_scale = std::min(min_scale, linkScale(first + i));
        penalties_[h] =
            min_scale > 0.0 ? 1.0 / min_scale
                            : std::numeric_limits<double>::infinity();
    }
}

double
HTreeTopology::pairBandwidth(std::size_t level) const
{
    checkLevel(level);
    return config_.rootBisection /
           std::ldexp(1.0, static_cast<int>(level));
}

double
HTreeTopology::exchangeSeconds(std::size_t level,
                               double bytes_per_pair) const
{
    checkLevel(level);
    if (bytes_per_pair <= 0.0)
        return 0.0;
    // The fault penalty multiplies the serialization term only: a
    // derated trunk stretches the transfer, not the hop latency.
    // Pristine penalty is exactly 1.0, keeping this bit-identical to
    // the un-faulted formula.
    const double serialization =
        bytes_per_pair / pairBandwidth(level) * penalties_[level];
    return serialization + exchangeHops(level) * config_.perHopLatency;
}

double
HTreeTopology::exchangeHops(std::size_t level) const
{
    checkLevel(level);
    // Leaf up to the level-h junction and back down into the sibling
    // subtree: 2 * (H - h) tree hops.
    return 2.0 * static_cast<double>(levels_ - level);
}

} // namespace hypar::noc
