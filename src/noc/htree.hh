/**
 * @file
 * H-tree interconnect (paper Fig. 4(c), Section 6.5.1).
 *
 * Physically a fat tree: the trunk between the two level-0 subarrays has
 * the full root bisection (12.8 Gb/s by default); each level down halves
 * the trunk bandwidth while doubling the number of trunks, so for H = 4
 * the leaf links are the paper's 1600 Mb/s. The tree structure matches
 * HyPar's binary partition exactly, which is why the paper finds it
 * superior to the torus.
 */

#ifndef HYPAR_NOC_HTREE_HH
#define HYPAR_NOC_HTREE_HH

#include "noc/topology.hh"

namespace hypar::noc {

/** Binary fat tree over 2^H accelerators. */
class HTreeTopology : public Topology
{
  public:
    HTreeTopology(std::size_t levels, const TopologyConfig &config);

    std::string name() const override { return "H-tree"; }

    double exchangeSeconds(std::size_t level,
                           double bytes_per_pair) const override;

    double exchangeHops(std::size_t level) const override;

    /**
     * The faultable links are the trunks, numbered level-major: level h
     * contributes the 2^h trunks with ids 2^h - 1 .. 2^(h+1) - 2 (one
     * per group pair, in pair order), 2^H - 1 links in total. A level-h
     * exchange runs all its pairs concurrently, so its penalty is the
     * reciprocal of the *worst* surviving level-h trunk scale
     * (slowest-member semantics); a dead trunk makes the level
     * unusable (penalty +inf).
     */
    std::size_t numLinks() const override;

    /** Trunk bandwidth between the halves of a level-h group pair
     *  (pristine; exchangeSeconds applies the fault penalty on top). */
    double pairBandwidth(std::size_t level) const;

  protected:
    void rebuildFaultState() override;
};

} // namespace hypar::noc

#endif // HYPAR_NOC_HTREE_HH
