#include "noc/torus.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace hypar::noc {

TorusTopology::TorusTopology(std::size_t levels,
                             const TopologyConfig &config,
                             bool wraparound)
    : Topology(levels, config), wraparound_(wraparound)
{
    placeNodes();
    profiles_.reserve(levels_);
    for (std::size_t h = 0; h < levels_; ++h)
        profiles_.push_back(profileLevel(h));
}

void
TorusTopology::placeNodes()
{
    // Near-square grid: width gets the extra factor of two when H is
    // odd (e.g. H=3 -> 4x2).
    const std::size_t x_bits = (levels_ + 1) / 2;
    const std::size_t y_bits = levels_ / 2;
    width_ = std::size_t{1} << x_bits;
    height_ = std::size_t{1} << y_bits;

    const std::size_t n = numNodes();
    xOf_.assign(n, 0);
    yOf_.assign(n, 0);
    for (std::size_t node = 0; node < n; ++node) {
        // H-layout: hierarchy bit 0 (MSB of the node index) splits x,
        // bit 1 splits y, bit 2 splits x again, ...
        std::size_t x = 0, y = 0, xb = 0, yb = 0;
        for (std::size_t h = 0; h < levels_; ++h) {
            const std::size_t bit =
                (node >> (levels_ - 1 - h)) & std::size_t{1};
            const bool split_x = (xb < x_bits) && (h % 2 == 0 || yb >= y_bits);
            if (split_x) {
                x = (x << 1) | bit;
                ++xb;
            } else {
                y = (y << 1) | bit;
                ++yb;
            }
        }
        xOf_[node] = x;
        yOf_[node] = y;
    }
}

std::size_t
TorusTopology::numLinks() const
{
    return 2 * width_ * height_;
}

void
TorusTopology::rebuildFaultState()
{
    // Re-route every level so the bottleneck accounts for the per-link
    // scales; the stored profiles keep the pristine maxLinkLoadPerByte,
    // the penalty carries the degradation.
    for (std::size_t h = 0; h < levels_; ++h) {
        profiles_[h] = profileLevel(h);
        penalties_[h] = profiles_[h].penalty;
    }
}

std::pair<std::size_t, std::size_t>
TorusTopology::coord(std::size_t node) const
{
    if (node >= numNodes())
        util::fatal("TorusTopology: node out of range");
    return {xOf_[node], yOf_[node]};
}

void
TorusTopology::routeFlow(std::size_t from, std::size_t to, double bytes,
                         std::vector<double> &h_load,
                         std::vector<double> &v_load, double &hops) const
{
    std::size_t x = xOf_[from];
    std::size_t y = yOf_[from];
    const std::size_t tx = xOf_[to];
    const std::size_t ty = yOf_[to];

    auto step_dir = [this](std::size_t cur, std::size_t dst,
                           std::size_t extent) -> std::ptrdiff_t {
        if (cur == dst)
            return 0;
        if (!wraparound_)
            return dst > cur ? 1 : -1; // mesh: straight line only
        const std::size_t fwd = (dst + extent - cur) % extent;
        const std::size_t bwd = (cur + extent - dst) % extent;
        if (fwd != bwd)
            return fwd < bwd ? 1 : -1;
        // Distance tie (exactly half the ring): take the direction that
        // does not cross the wraparound link, the usual deterministic
        // convention in dimension-ordered torus routers.
        return dst > cur ? 1 : -1;
    };

    // X first, then Y (dimension-ordered routing).
    while (x != tx) {
        const std::ptrdiff_t d = step_dir(x, tx, width_);
        // Horizontal link between x and x+1 (mod W) is indexed by its
        // left endpoint.
        const std::size_t left =
            d > 0 ? x : (x + width_ - 1) % width_;
        h_load[y * width_ + left] += bytes;
        x = (x + static_cast<std::size_t>(
                static_cast<std::ptrdiff_t>(width_) + d)) % width_;
        hops += 1.0;
    }
    while (y != ty) {
        const std::ptrdiff_t d = step_dir(y, ty, height_);
        const std::size_t below =
            d > 0 ? y : (y + height_ - 1) % height_;
        v_load[below * width_ + x] += bytes;
        y = (y + static_cast<std::size_t>(
                static_cast<std::ptrdiff_t>(height_) + d)) % height_;
        hops += 1.0;
    }
}

TorusTopology::LevelProfile
TorusTopology::profileLevel(std::size_t level) const
{
    const std::size_t n = numNodes();
    const std::size_t flip = std::size_t{1} << (levels_ - 1 - level);
    // Each group at this level has 2^(H-1-level) leaves; the group
    // pair's bytes are spread evenly across its leaf pairs.
    const double flows_per_pair = static_cast<double>(flip);
    const double bytes_per_flow = 1.0 / flows_per_pair;

    std::vector<double> h_load(width_ * height_, 0.0);
    std::vector<double> v_load(width_ * height_, 0.0);
    double total_hops = 0.0;
    double max_flow_hops = 0.0;
    std::size_t flows = 0;

    for (std::size_t node = 0; node < n; ++node) {
        const std::size_t peer = node ^ flip;
        // Count each unordered pair once per direction: both directions
        // carry traffic (the exchange factor is already in the bytes),
        // but with symmetric shortest-path routing it is equivalent to
        // route each ordered flow with half the bytes. We route ordered
        // flows at full per-flow share and halve at the end.
        double hops = 0.0;
        routeFlow(node, peer, bytes_per_flow / 2.0, h_load, v_load, hops);
        total_hops += hops;
        max_flow_hops = std::max(max_flow_hops, hops);
        ++flows;
    }

    LevelProfile p;
    p.maxLinkLoadPerByte = std::max(
        *std::max_element(h_load.begin(), h_load.end()),
        *std::max_element(v_load.begin(), v_load.end()));
    p.avgHops = flows ? total_hops / static_cast<double>(flows) : 0.0;
    p.maxHops = max_flow_hops;

    if (!linkScales_.empty() && p.maxLinkLoadPerByte > 0.0) {
        // Degraded bottleneck: each loaded link serializes its load at
        // scale * bandwidth, so the slowest link is max(load / scale)
        // over *used* links (unused dead links cost nothing). With all
        // scales 1.0 this reproduces the pristine max exactly, making
        // the penalty an exact 1.0.
        const std::size_t v_base = width_ * height_;
        double scaled_max = 0.0;
        for (std::size_t i = 0; i < h_load.size(); ++i) {
            if (h_load[i] <= 0.0)
                continue;
            const double s = linkScale(i);
            scaled_max =
                s > 0.0 ? std::max(scaled_max, h_load[i] / s)
                        : std::numeric_limits<double>::infinity();
        }
        for (std::size_t i = 0; i < v_load.size(); ++i) {
            if (v_load[i] <= 0.0)
                continue;
            const double s = linkScale(v_base + i);
            scaled_max =
                s > 0.0 ? std::max(scaled_max, v_load[i] / s)
                        : std::numeric_limits<double>::infinity();
        }
        p.penalty = scaled_max / p.maxLinkLoadPerByte;
    }
    return p;
}

double
TorusTopology::maxLinkLoadPerPairByte(std::size_t level) const
{
    checkLevel(level);
    return profiles_[level].maxLinkLoadPerByte;
}

double
TorusTopology::exchangeSeconds(std::size_t level,
                               double bytes_per_pair) const
{
    checkLevel(level);
    if (bytes_per_pair <= 0.0)
        return 0.0;
    const LevelProfile &p = profiles_[level];
    // The fault penalty multiplies the serialization term only
    // (pristine penalty is exactly 1.0, so the un-faulted result is
    // bit-identical to the original formula).
    const double bottleneck = bytes_per_pair * p.maxLinkLoadPerByte /
                              config_.linkBandwidth * penalties_[level];
    return bottleneck + p.maxHops * config_.perHopLatency;
}

double
TorusTopology::exchangeHops(std::size_t level) const
{
    checkLevel(level);
    return std::max(profiles_[level].avgHops, 1.0);
}

} // namespace hypar::noc
