/**
 * @file
 * Interconnect abstraction for the accelerator array (paper Section 5).
 *
 * HyPar's hierarchical partition produces a fixed communication pattern:
 * at hierarchy level h the array's 2^h group pairs exchange tensors
 * between their two halves. A Topology maps one such *level exchange*
 * (a given number of bytes per group pair, all pairs concurrent) to a
 * completion time and an average hop count (for link energy).
 */

#ifndef HYPAR_NOC_TOPOLOGY_HH
#define HYPAR_NOC_TOPOLOGY_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "util/units.hh"

namespace hypar::noc {

/** Shared link parameters. */
struct TopologyConfig
{
    /**
     * Point-to-point link bandwidth: the paper's 1600 Mb/s links
     * (25.6 Gb/s aggregate for the 16-accelerator array).
     */
    double linkBandwidth = util::mbitsPerSec(1600.0);

    /**
     * H-tree root bisection: fixed at 12.8 Gb/s so that for H = 4 the
     * leaf links come out at exactly 1600 Mb/s ("the bandwidth between
     * groups in a higher hierarchy are doubled ... but the number of
     * links is halved").
     */
    double rootBisection = util::gbitsPerSec(12.8);

    /** Fixed per-hop router/SerDes latency. */
    double perHopLatency = 100e-9;
};

/** Abstract interconnect for an array of 2^H accelerators. */
class Topology
{
  public:
    Topology(std::size_t levels, const TopologyConfig &config);
    virtual ~Topology() = default;

    Topology(const Topology &) = delete;
    Topology &operator=(const Topology &) = delete;

    virtual std::string name() const = 0;

    /**
     * Seconds to complete one hierarchical exchange at `level`, where
     * every one of the 2^level group pairs moves `bytes_per_pair`
     * between its halves (all pairs run concurrently).
     */
    virtual double exchangeSeconds(std::size_t level,
                                   double bytes_per_pair) const = 0;

    /** Average hops travelled by a word in that exchange (energy). */
    virtual double exchangeHops(std::size_t level) const = 0;

    /** Number of individually faultable links (topology-specific ids;
     *  see the concrete classes for the numbering). */
    virtual std::size_t numLinks() const = 0;

    /**
     * Whether per-link fault entries are meaningful on this topology.
     * When false, callers must reject FaultMap link entries up front
     * (sim::Evaluator does) rather than planning around entries the
     * model silently ignores; samplers draw node faults only.
     */
    virtual bool supportsLinkFaults() const { return true; }

    /**
     * Derate/disable links: scales[id] in [0, 1] is link id's surviving
     * bandwidth fraction (0 = dead). Must cover every link
     * (scales.size() == numLinks()); fatal otherwise. Recomputes the
     * per-level penalties below. An all-1.0 vector restores pristine
     * behavior bit-identically.
     */
    void applyLinkScales(const std::vector<double> &scales);

    /**
     * Slowdown of a level-`level` exchange relative to the pristine
     * topology, >= 1 (slowest-member semantics: all 2^level group pairs
     * run concurrently, so the exchange finishes with the pair crossing
     * the worst surviving links). Exactly 1.0 when no faults are
     * applied; +inf when a dead link makes the level unusable.
     * exchangeSeconds() already includes this factor.
     */
    double levelPenalty(std::size_t level) const;

    /** All levels' penalties (levelPenalty for h = 0..H-1). */
    std::vector<double> levelPenalties() const;

    /** True once applyLinkScales has installed a non-empty scale set. */
    bool degraded() const { return !linkScales_.empty(); }

    std::size_t levels() const { return levels_; }
    std::size_t numNodes() const { return std::size_t{1} << levels_; }
    const TopologyConfig &config() const { return config_; }

  protected:
    void checkLevel(std::size_t level) const;

    /** Recompute penalties_ from linkScales_ (topology-specific). */
    virtual void rebuildFaultState() = 0;

    /** Scale of one link: 1.0 while pristine. */
    double
    linkScale(std::size_t id) const
    {
        return linkScales_.empty() ? 1.0 : linkScales_[id];
    }

    std::size_t levels_;
    TopologyConfig config_;
    std::vector<double> linkScales_; //!< empty = pristine
    std::vector<double> penalties_;  //!< per level, 1.0 pristine
};

} // namespace hypar::noc

#endif // HYPAR_NOC_TOPOLOGY_HH
