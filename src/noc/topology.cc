#include "noc/topology.hh"

#include "util/logging.hh"

namespace hypar::noc {

Topology::Topology(std::size_t levels, const TopologyConfig &config)
    : levels_(levels), config_(config)
{
    if (levels_ > 20)
        util::fatal("Topology: unreasonable hierarchy depth");
    if (config_.linkBandwidth <= 0.0 || config_.rootBisection <= 0.0)
        util::fatal("Topology: bandwidths must be positive");
}

void
Topology::checkLevel(std::size_t level) const
{
    if (level >= levels_)
        util::fatal("Topology: level out of range");
}

} // namespace hypar::noc
