#include "noc/topology.hh"

#include <cmath>

#include "util/logging.hh"

namespace hypar::noc {

Topology::Topology(std::size_t levels, const TopologyConfig &config)
    : levels_(levels), config_(config), penalties_(levels, 1.0)
{
    if (levels_ > 20)
        util::fatal("Topology: unreasonable hierarchy depth");
    // Negated comparisons so NaN configs are rejected too (a NaN
    // bandwidth used to sail through and turn every cost into NaN).
    if (!(config_.linkBandwidth > 0.0) ||
        !std::isfinite(config_.linkBandwidth))
        util::fatal("Topology: link bandwidth must be positive and "
                    "finite");
    if (!(config_.rootBisection > 0.0) ||
        !std::isfinite(config_.rootBisection))
        util::fatal("Topology: root bisection bandwidth must be "
                    "positive and finite");
    if (!(config_.perHopLatency >= 0.0) ||
        !std::isfinite(config_.perHopLatency))
        util::fatal("Topology: per-hop latency must be non-negative "
                    "and finite");
}

void
Topology::checkLevel(std::size_t level) const
{
    if (level >= levels_)
        util::fatal("Topology: level out of range");
}

void
Topology::applyLinkScales(const std::vector<double> &scales)
{
    if (scales.size() != numLinks())
        util::fatal("Topology: link scale vector covers " +
                    std::to_string(scales.size()) + " links, " +
                    name() + " has " + std::to_string(numLinks()));
    for (std::size_t i = 0; i < scales.size(); ++i) {
        if (!(scales[i] >= 0.0 && scales[i] <= 1.0))
            util::fatal("Topology: link " + std::to_string(i) +
                        " scale must be in [0, 1]");
    }
    linkScales_ = scales;
    rebuildFaultState();
}

double
Topology::levelPenalty(std::size_t level) const
{
    checkLevel(level);
    return penalties_[level];
}

std::vector<double>
Topology::levelPenalties() const
{
    return penalties_;
}

} // namespace hypar::noc
