/**
 * @file
 * Regenerates Figure 11: scalability of HyPar vs default Data
 * Parallelism on VGG-A as the array grows from 1 to 64 accelerators.
 * Left axis: performance gain normalized to one accelerator; right
 * axis: total communication per step.
 *
 * Paper observations: HyPar always wins; DP's gain curve flattens and
 * declines for large arrays while HyPar's keeps rising much longer;
 * HyPar's total communication stays far below DP's.
 */

#include "bench_common.hh"

#include <chrono>

#include "core/optimal_partitioner.hh"
#include "dnn/model_zoo.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace hypar;

int
main()
{
    bench::banner("Scalability on VGG-A, 1..64 accelerators",
                  "Figure 11");

    dnn::Network vgg_a = dnn::makeVggA();

    sim::SimConfig solo = bench::paperConfig();
    solo.levels = 0;
    const double t1 = sim::Evaluator(vgg_a, solo)
                          .evaluate(core::Strategy::kDataParallel)
                          .stepSeconds;

    util::Table t({"accelerators", "DP gain", "HyPar gain", "DP comm",
                   "HyPar comm"});
    t.addRow({"1", "1.00", "1.00", "0 B", "0 B"});
    for (std::size_t levels = 1; levels <= 6; ++levels) {
        sim::SimConfig cfg = bench::paperConfig();
        cfg.levels = levels;
        sim::Evaluator ev(vgg_a, cfg);
        const auto dp = ev.evaluate(core::Strategy::kDataParallel);
        const auto hp = ev.evaluate(core::Strategy::kHypar);
        t.addRow({std::to_string(1u << levels),
                  bench::ratio(t1 / dp.stepSeconds),
                  bench::ratio(t1 / hp.stepSeconds),
                  util::formatBytes(dp.commBytes),
                  util::formatBytes(hp.commBytes)});
    }
    t.print(std::cout);

    std::cout << "\nPaper: DP's gains start declining past 8 "
                 "accelerators; HyPar's keep growing until past 32, "
                 "and\nHyPar's communication stays roughly an order of "
                 "magnitude below DP's.\n";

    // Beyond the paper: search scalability past the old joint-DP
    // ceiling. The greedy Algorithm 2 always scales, but only the
    // wide engines can check it against the joint optimum at
    // H = 12-16 (4,096-65,536 accelerators) — exact at every depth
    // now that kAuto routes to A* above the dense wall.
    bench::banner("Joint search past the H = 10 ceiling on VGG-A",
                  "extension");
    core::CommModel model(vgg_a, bench::paperConfig().comm);
    core::HierarchicalPartitioner greedy(model);
    core::OptimalPartitioner optimal(model);
    util::Table joint({"levels", "accelerators", "greedy comm",
                       "joint-optimal comm", "engine", "exact",
                       "search time"});
    for (std::size_t levels : {10u, 12u, 14u, 16u}) {
        const auto g = greedy.partition(levels);
        const auto start = std::chrono::steady_clock::now();
        const auto opt = optimal.partition(levels); // auto: dense/A*
        const auto ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        joint.addRow({std::to_string(levels),
                      std::to_string(std::size_t{1} << levels),
                      util::formatBytes(g.commBytes),
                      util::formatBytes(opt.commBytes),
                      levels <= core::OptimalPartitioner::kDenseMaxLevels
                          ? "dense"
                          : "astar",
                      opt.stats.certifiedExact ? "certified" : "no",
                      std::to_string(ms) + " ms"});
    }
    joint.print(std::cout);
    std::cout << "\nThe joint optimum stays at or below the greedy "
                 "total at every depth, and the A*\nengine keeps the "
                 "search exact — certificate included — far past the "
                 "dense 4^H wall.\n";
    return 0;
}
