/**
 * @file
 * google-benchmark micro-benchmarks of the partition search itself,
 * validating the paper's practicality claim: "the time complexity for
 * the partition search in HyPar is linear" (Section 4). BM_Pairwise
 * reports O(N) complexity over synthetic networks of 8..4096 weighted
 * layers; BM_Hierarchical shows the O(H*L) scaling of Algorithm 2; the
 * brute-force baseline shows the O(2^N) wall the paper avoids.
 */

#include <benchmark/benchmark.h>

#include "core/brute_force.hh"
#include "core/comm_model.hh"
#include "core/hierarchical_partitioner.hh"
#include "core/pairwise_partitioner.hh"
#include "core/strategies.hh"
#include "dnn/builder.hh"
#include "dnn/model_zoo.hh"

using namespace hypar;

namespace {

/** Deep synthetic fc chain with alternating widths. */
dnn::Network
deepNet(std::size_t layers)
{
    dnn::NetworkBuilder b("deep", {256, 1, 1});
    for (std::size_t l = 0; l < layers; ++l)
        b.fc("fc" + std::to_string(l), l % 2 ? 512 : 128);
    return b.build();
}

void
BM_PairwisePartition(benchmark::State &state)
{
    const auto layers = static_cast<std::size_t>(state.range(0));
    dnn::Network net = deepNet(layers);
    core::CommModel model(net, core::CommConfig{});
    core::PairwisePartitioner partitioner(model);
    core::History hist(net.size());
    for (auto _ : state) {
        auto result = partitioner.partition(hist);
        benchmark::DoNotOptimize(result.commBytes);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_HierarchicalPartition(benchmark::State &state)
{
    const auto levels = static_cast<std::size_t>(state.range(0));
    dnn::Network net = deepNet(64);
    core::CommModel model(net, core::CommConfig{});
    core::HierarchicalPartitioner partitioner(model);
    for (auto _ : state) {
        auto result = partitioner.partition(levels);
        benchmark::DoNotOptimize(result.commBytes);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_BruteForcePairwise(benchmark::State &state)
{
    const auto layers = static_cast<std::size_t>(state.range(0));
    dnn::Network net = deepNet(layers);
    core::CommModel model(net, core::CommConfig{});
    core::History hist(net.size());
    for (auto _ : state) {
        auto result = core::bruteForcePairwise(model, hist);
        benchmark::DoNotOptimize(result.commBytes);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_HyparFullSearchZoo(benchmark::State &state)
{
    // End-to-end Algorithm 2 on the paper's largest network.
    dnn::Network net = dnn::makeVggE();
    core::CommModel model(net, core::CommConfig{});
    core::HierarchicalPartitioner partitioner(model);
    for (auto _ : state) {
        auto result = partitioner.partition(4);
        benchmark::DoNotOptimize(result.commBytes);
    }
}

void
BM_CommModelPlanBytes(benchmark::State &state)
{
    dnn::Network net = dnn::makeVggE();
    core::CommModel model(net, core::CommConfig{});
    const auto plan = core::makeDataParallelPlan(net, 4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.planBytes(plan));
    }
}

} // namespace

BENCHMARK(BM_PairwisePartition)
    ->RangeMultiplier(4)
    ->Range(8, 4096)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_HierarchicalPartition)->DenseRange(1, 6);
BENCHMARK(BM_BruteForcePairwise)
    ->DenseRange(8, 20, 4)
    ->Complexity(benchmark::o1); // reported complexity is meaningless
                                 // here; the point is the 2^N blow-up
                                 // visible in the raw times
BENCHMARK(BM_HyparFullSearchZoo);
BENCHMARK(BM_CommModelPlanBytes);
