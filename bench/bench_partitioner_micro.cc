/**
 * @file
 * google-benchmark micro-benchmarks of the partition search itself,
 * validating the paper's practicality claim: "the time complexity for
 * the partition search in HyPar is linear" (Section 4). BM_Pairwise
 * reports O(N) complexity over synthetic networks of 8..4096 weighted
 * layers; BM_Hierarchical shows the O(H*L) scaling of Algorithm 2; the
 * brute-force baseline shows the O(2^N) wall the paper avoids.
 *
 * Every optimized engine is benchmarked next to its *_Reference
 * counterpart — the pre-optimization implementation kept in-tree as a
 * test oracle — so one binary quotes the before/after speedups. Run
 * the `bench_partitioner_json` CMake target (or pass
 * --benchmark_format=json) to get machine-readable numbers, and
 * tools/bench_report.py to summarize the reference-vs-optimized pairs.
 */

#include <benchmark/benchmark.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "core/brute_force.hh"
#include "core/comm_model.hh"
#include "core/hierarchical_partitioner.hh"
#include "core/optimal_partitioner.hh"
#include "core/pairwise_partitioner.hh"
#include "core/simd_kernels.hh"
#include "core/strategies.hh"
#include "dnn/builder.hh"
#include "dnn/model_zoo.hh"

using namespace hypar;

namespace {

/** Deep synthetic fc chain with alternating widths. */
dnn::Network
deepNet(std::size_t layers)
{
    dnn::NetworkBuilder b("deep", {256, 1, 1});
    for (std::size_t l = 0; l < layers; ++l)
        b.fc("fc" + std::to_string(l), l % 2 ? 512 : 128);
    return b.build();
}

/** Algorithm 2 driven by the reference (pre-optimization) Algorithm 1:
 *  the before-side of the full-search benches. */
double
referenceHierarchicalSearch(const core::CommModel &model,
                            std::size_t levels)
{
    core::PairwisePartitioner pairwise(model);
    core::History hist(model.numLayers());
    double total = 0.0;
    double pairs = 1.0;
    for (std::size_t h = 0; h < levels; ++h) {
        const auto result = pairwise.partitionReference(hist);
        total += pairs * result.commBytes;
        hist.push(result.plan);
        pairs *= 2.0;
    }
    return total;
}

void
BM_PairwisePartition(benchmark::State &state)
{
    const auto layers = static_cast<std::size_t>(state.range(0));
    dnn::Network net = deepNet(layers);
    core::CommModel model(net, core::CommConfig{});
    core::PairwisePartitioner partitioner(model);
    core::History hist(net.size());
    for (auto _ : state) {
        auto result = partitioner.partition(hist);
        benchmark::DoNotOptimize(result.commBytes);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_PairwisePartitionReference(benchmark::State &state)
{
    const auto layers = static_cast<std::size_t>(state.range(0));
    dnn::Network net = deepNet(layers);
    core::CommModel model(net, core::CommConfig{});
    core::PairwisePartitioner partitioner(model);
    core::History hist(net.size());
    for (auto _ : state) {
        auto result = partitioner.partitionReference(hist);
        benchmark::DoNotOptimize(result.commBytes);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_HierarchicalPartition(benchmark::State &state)
{
    const auto levels = static_cast<std::size_t>(state.range(0));
    dnn::Network net = deepNet(64);
    core::CommModel model(net, core::CommConfig{});
    core::HierarchicalPartitioner partitioner(model);
    for (auto _ : state) {
        auto result = partitioner.partition(levels);
        benchmark::DoNotOptimize(result.commBytes);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_BruteForcePairwise(benchmark::State &state)
{
    const auto layers = static_cast<std::size_t>(state.range(0));
    dnn::Network net = deepNet(layers);
    core::CommModel model(net, core::CommConfig{});
    core::History hist(net.size());
    for (auto _ : state) {
        auto result = core::bruteForcePairwise(model, hist);
        benchmark::DoNotOptimize(result.commBytes);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_BruteForcePairwiseReference(benchmark::State &state)
{
    const auto layers = static_cast<std::size_t>(state.range(0));
    dnn::Network net = deepNet(layers);
    core::CommModel model(net, core::CommConfig{});
    core::History hist(net.size());
    for (auto _ : state) {
        auto result = core::bruteForcePairwiseReference(model, hist);
        benchmark::DoNotOptimize(result.commBytes);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_HyparFullSearchZoo(benchmark::State &state)
{
    // End-to-end Algorithm 2 on the paper's largest network.
    dnn::Network net = dnn::makeVggE();
    core::CommModel model(net, core::CommConfig{});
    core::HierarchicalPartitioner partitioner(model);
    for (auto _ : state) {
        auto result = partitioner.partition(4);
        benchmark::DoNotOptimize(result.commBytes);
    }
}

void
BM_HyparFullSearchZooReference(benchmark::State &state)
{
    dnn::Network net = dnn::makeVggE();
    core::CommModel model(net, core::CommConfig{});
    for (auto _ : state) {
        benchmark::DoNotOptimize(referenceHierarchicalSearch(model, 4));
    }
}

void
BM_OptimalPartition(benchmark::State &state)
{
    const auto levels = static_cast<std::size_t>(state.range(0));
    dnn::Network net = deepNet(12);
    core::CommModel model(net, core::CommConfig{});
    core::OptimalPartitioner partitioner(model);
    for (auto _ : state) {
        auto result = partitioner.partition(levels);
        benchmark::DoNotOptimize(result.commBytes);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_OptimalPartitionReference(benchmark::State &state)
{
    const auto levels = static_cast<std::size_t>(state.range(0));
    dnn::Network net = deepNet(12);
    core::CommModel model(net, core::CommConfig{});
    core::OptimalPartitioner partitioner(model);
    for (auto _ : state) {
        auto result = partitioner.partitionReference(levels);
        benchmark::DoNotOptimize(result.commBytes);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_OptimalPartitionSparse(benchmark::State &state)
{
    const auto levels = static_cast<std::size_t>(state.range(0));
    dnn::Network net = deepNet(12);
    core::CommModel model(net, core::CommConfig{});
    core::OptimalPartitioner partitioner(model);
    core::SearchOptions opts;
    opts.engine = core::SearchEngine::kSparse;
    for (auto _ : state) {
        auto result = partitioner.partition(levels, opts);
        benchmark::DoNotOptimize(result.commBytes);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_OptimalPartitionBeam(benchmark::State &state)
{
    // Past the dense H = 10 ceiling: the frontier-pruned beam engine at
    // the legacy fixed default width (adaptive growth disabled, so one
    // pass at max(1024, 2^H/16) like the pre-A* engine — note the
    // pass itself now also builds the suffix-bound table and ranks
    // frontiers by f = g + h, so numbers are not directly comparable
    // across the PR that introduced the bound). H = 12 and 14 were
    // unreachable before this engine existed; the dense DP's 4^H loop
    // is 16x / 256x the H = 10 work.
    const auto levels = static_cast<std::size_t>(state.range(0));
    dnn::Network net = deepNet(12);
    core::CommModel model(net, core::CommConfig{});
    core::OptimalPartitioner partitioner(model);
    core::SearchOptions opts;
    opts.engine = core::SearchEngine::kBeam;
    opts.adaptiveBeam = false;
    for (auto _ : state) {
        auto result = partitioner.partition(levels, opts);
        benchmark::DoNotOptimize(result.commBytes);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_OptimalPartitionAStar(benchmark::State &state)
{
    // The exact best-first engine under the admissible suffix bound:
    // the depths the sparse engine crawls through and the dense DP
    // cannot touch at all. Bit-identical results to both.
    const auto levels = static_cast<std::size_t>(state.range(0));
    dnn::Network net = deepNet(12);
    core::CommModel model(net, core::CommConfig{});
    core::OptimalPartitioner partitioner(model);
    core::SearchOptions opts;
    opts.engine = core::SearchEngine::kAStar;
    for (auto _ : state) {
        auto result = partitioner.partition(levels, opts);
        benchmark::DoNotOptimize(result.commBytes);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_OptimalPartitionBeamAdaptive(benchmark::State &state)
{
    // The self-certifying beam: width grows geometrically until the
    // dropped-state bound clears the result, so the returned plan
    // carries certifiedExact == true.
    const auto levels = static_cast<std::size_t>(state.range(0));
    dnn::Network net = deepNet(12);
    core::CommModel model(net, core::CommConfig{});
    core::OptimalPartitioner partitioner(model);
    core::SearchOptions opts;
    opts.engine = core::SearchEngine::kBeam; // width 0 -> adaptive
    for (auto _ : state) {
        auto result = partitioner.partition(levels, opts);
        benchmark::DoNotOptimize(result.commBytes);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_OptimalPartitionBeamWarmStart(benchmark::State &state)
{
    // The serve tier's width_hint path: a prior adaptive solve's
    // certified width seeds the first pass, skipping the geometric
    // ramp entirely when the hint still certifies. Pair by eye with
    // BM_OptimalPartitionBeamAdaptive at the same depth — that is the
    // cold ramp this warm start replaces.
    const auto levels = static_cast<std::size_t>(state.range(0));
    dnn::Network net = deepNet(12);
    core::CommModel model(net, core::CommConfig{});
    core::OptimalPartitioner partitioner(model);
    core::SearchOptions opts;
    opts.engine = core::SearchEngine::kBeam; // width 0 -> adaptive
    const auto cold = partitioner.partition(levels, opts);
    opts.beamWidthStart = cold.stats.widthUsed;
    for (auto _ : state) {
        auto result = partitioner.partition(levels, opts);
        benchmark::DoNotOptimize(result.commBytes);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_OptimalPartitionAStarVggE(benchmark::State &state)
{
    // The headline row of the "H = 16 interactive" work: the paper's
    // largest network at the full 2^16-node depth, exact. CI gates
    // this row against tools/bench_baseline.json (check_bench.py), so
    // a regression toward the old ~22 s behavior fails the Release
    // job instead of just dimming the report.
    const auto levels = static_cast<std::size_t>(state.range(0));
    dnn::Network net = dnn::makeVggE();
    core::CommModel model(net, core::CommConfig{});
    core::OptimalPartitioner partitioner(model);
    core::SearchOptions opts;
    opts.engine = core::SearchEngine::kAStar;
    for (auto _ : state) {
        auto result = partitioner.partition(levels, opts);
        benchmark::DoNotOptimize(result.commBytes);
    }
}

void
BM_OptimalPartitionResNetBlock(benchmark::State &state)
{
    // The series-parallel DAG path: a residual block routed through
    // decompose() + the per-component DP instead of the chain DP. The
    // per-level cost tables dominate; the SP solve itself is a handful
    // of S x S table merges.
    const auto levels = static_cast<std::size_t>(state.range(0));
    dnn::Network net = dnn::makeResNetBlock();
    core::CommModel model(net, core::CommConfig{});
    core::OptimalPartitioner partitioner(model);
    for (auto _ : state) {
        auto result = partitioner.partition(levels);
        benchmark::DoNotOptimize(result.commBytes);
    }
    state.SetComplexityN(state.range(0));
}

/** Shared state for the kernel-level SIMD rows: the H-deep factored
 *  expansion cascade plus the dense/beam scan inputs, filled with
 *  deterministic values. */
struct SimdBenchData {
    explicit SimdBenchData(unsigned levels)
        : h(levels), n(std::size_t{1} << levels), trans(n), cost(n),
          best(n), prev(n), pcnt(n), rows0(levels), rows1(levels)
    {
        for (std::size_t i = 0; i < n; ++i) {
            cost[i] = static_cast<double>((i * 37) % 1013) * 0.25;
            best[i] = 1e30;
            pcnt[i] = static_cast<std::uint8_t>(std::popcount(i));
        }
        for (unsigned l = 0; l < h; ++l) {
            rows0[l].resize(l + 1);
            rows1[l].resize(l + 1);
            for (unsigned a = 0; a <= l; ++a) {
                rows0[l][a] = static_cast<double>(l * 7 + a) * 0.125;
                rows1[l][a] = static_cast<double>(l * 11 + a) * 0.0625;
            }
        }
    }

    /** One full expansion: all 2^h transition sums from the factored
     *  rows — exactly the per-(layer, predecessor) work of the dense
     *  and beam engines. */
    void expand(const core::simd::Kernels &k)
    {
        trans[0] = 0.0;
        for (unsigned l = 0; l < h; ++l)
            k.expandLevel(trans.data(), std::size_t{1} << l,
                          rows0[l].data(), rows1[l].data(), pcnt.data(),
                          l);
    }

    unsigned h;
    std::size_t n;
    std::vector<double> trans, cost, best;
    std::vector<std::uint32_t> prev;
    std::vector<std::uint8_t> pcnt;
    std::vector<std::vector<double>> rows0, rows1;
};

void
simdExpandLevelRun(benchmark::State &state, const core::simd::Kernels &k)
{
    SimdBenchData d(static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        d.expand(k);
        benchmark::DoNotOptimize(d.trans[d.n - 1]);
    }
}

void
simdArgminAddRun(benchmark::State &state, const core::simd::Kernels &k)
{
    SimdBenchData d(static_cast<unsigned>(state.range(0)));
    d.expand(core::simd::scalarKernels());
    for (auto _ : state) {
        double min = 0.0;
        std::uint32_t p =
            k.argminAdd(d.cost.data(), d.trans.data(), d.n, &min);
        benchmark::DoNotOptimize(p);
        benchmark::DoNotOptimize(min);
    }
}

void
simdRelaxRowRun(benchmark::State &state, const core::simd::Kernels &k)
{
    SimdBenchData d(static_cast<unsigned>(state.range(0)));
    d.expand(core::simd::scalarKernels());
    // A beam-pass-shaped workload: 16 predecessors relaxed in
    // ascending order into one (best, prev) row. After the first
    // iteration the row is saturated and the scan is compare-dominated
    // — the steady-state shape of a wide frontier.
    for (auto _ : state) {
        for (std::uint32_t p = 0; p < 16; ++p)
            k.relaxRow(d.best.data(), d.prev.data(), d.trans.data(),
                       d.cost[p], p, d.n);
        benchmark::DoNotOptimize(d.best[d.n - 1]);
    }
}

// The SIMD lever's before/after rows. The optimized side is the AVX2
// set, the *Reference twin the scalar set — both called directly
// because activeKernels() caches its HYPAR_SIMD choice in a static, so
// the two sides cannot be A/B'd through the dispatcher in one process.
// Bit-equivalence of the pair is pinned by test_simd_kernels.

void
BM_SimdExpandLevel(benchmark::State &state)
{
    if (!core::simd::avx2Available()) {
        state.SkipWithError("AVX2 unavailable on this host");
        return;
    }
    simdExpandLevelRun(state, core::simd::avx2Kernels());
}

void
BM_SimdExpandLevelReference(benchmark::State &state)
{
    simdExpandLevelRun(state, core::simd::scalarKernels());
}

void
BM_SimdArgminAdd(benchmark::State &state)
{
    if (!core::simd::avx2Available()) {
        state.SkipWithError("AVX2 unavailable on this host");
        return;
    }
    simdArgminAddRun(state, core::simd::avx2Kernels());
}

void
BM_SimdArgminAddReference(benchmark::State &state)
{
    simdArgminAddRun(state, core::simd::scalarKernels());
}

void
BM_SimdRelaxRow(benchmark::State &state)
{
    if (!core::simd::avx2Available()) {
        state.SkipWithError("AVX2 unavailable on this host");
        return;
    }
    simdRelaxRowRun(state, core::simd::avx2Kernels());
}

void
BM_SimdRelaxRowReference(benchmark::State &state)
{
    simdRelaxRowRun(state, core::simd::scalarKernels());
}

void
BM_BruteForceHierarchical(benchmark::State &state)
{
    // The Gray-code joint enumerator: (2^L)^H plans, one flip apart.
    dnn::Network net = deepNet(6);
    core::CommModel model(net, core::CommConfig{});
    for (auto _ : state) {
        auto result = core::bruteForceHierarchical(model, 3);
        benchmark::DoNotOptimize(result.commBytes);
    }
}

void
BM_BruteForceHierarchicalReference(benchmark::State &state)
{
    dnn::Network net = deepNet(6);
    core::CommModel model(net, core::CommConfig{});
    for (auto _ : state) {
        auto result = core::bruteForceHierarchicalReference(model, 3);
        benchmark::DoNotOptimize(result.commBytes);
    }
}

void
BM_SweepLevelBytes(benchmark::State &state)
{
    // The Fig. 9/10 building block: score all 2^L substitutions of one
    // hierarchy level by total plan communication.
    dnn::Network net = dnn::makeVggA();
    core::CommModel model(net, core::CommConfig{});
    const auto base = core::makeHyparPlan(model, 4);
    for (auto _ : state) {
        double sum = 0.0;
        core::sweepLevelBytes(model, base, 0,
                              [&](std::uint64_t, double bytes) {
                                  sum += bytes;
                              });
        benchmark::DoNotOptimize(sum);
    }
}

void
BM_SweepLevelBytesReference(benchmark::State &state)
{
    dnn::Network net = dnn::makeVggA();
    core::CommModel model(net, core::CommConfig{});
    const auto base = core::makeHyparPlan(model, 4);
    for (auto _ : state) {
        double sum = 0.0;
        core::sweepLevelMasks(
            base, 0,
            [&](std::uint64_t, const core::HierarchicalPlan &plan) {
                sum += model.planBytes(plan);
            });
        benchmark::DoNotOptimize(sum);
    }
}

void
BM_CommModelPlanBytes(benchmark::State &state)
{
    dnn::Network net = dnn::makeVggE();
    core::CommModel model(net, core::CommConfig{});
    const auto plan = core::makeDataParallelPlan(net, 4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.planBytes(plan));
    }
}

} // namespace

BENCHMARK(BM_PairwisePartition)
    ->RangeMultiplier(4)
    ->Range(8, 4096)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_PairwisePartitionReference)
    ->RangeMultiplier(4)
    ->Range(8, 4096)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_HierarchicalPartition)->DenseRange(1, 6);
BENCHMARK(BM_BruteForcePairwise)
    ->DenseRange(8, 20, 4)
    ->Complexity(benchmark::o1); // reported complexity is meaningless
                                 // here; the point is the 2^N blow-up
                                 // visible in the raw times
BENCHMARK(BM_BruteForcePairwiseReference)
    ->DenseRange(8, 20, 4)
    ->Complexity(benchmark::o1);
BENCHMARK(BM_HyparFullSearchZoo);
BENCHMARK(BM_HyparFullSearchZooReference);
// H starts at 4: below H = 3 partition() delegates to the reference
// path, and timing identical code would pin the report's minimum
// speedup at 1x.
BENCHMARK(BM_OptimalPartition)->DenseRange(4, 6, 2);
BENCHMARK(BM_OptimalPartitionReference)->DenseRange(4, 6, 2);
// The sparse engine is paired with the dense DP at matching depths by
// eye (no *Reference twin): its win is the skipped transitions.
BENCHMARK(BM_OptimalPartitionSparse)->DenseRange(6, 10, 2);
// Depths the dense DP cannot reach at all.
BENCHMARK(BM_OptimalPartitionBeam)->DenseRange(10, 14, 2);
// The exact engines past the ceiling: A* to the full H = 14 micro
// range, the adaptive (self-certifying) beam to H = 12 — its
// certificate can force near-exhaustive widths beyond that, which
// belongs in fig11, not a micro bench.
BENCHMARK(BM_OptimalPartitionAStar)->DenseRange(10, 14, 2);
BENCHMARK(BM_OptimalPartitionBeamAdaptive)->DenseRange(10, 12, 2);
// The warm-start lever next to the cold adaptive ramp above.
BENCHMARK(BM_OptimalPartitionBeamWarmStart)->DenseRange(10, 12, 2);
// The DAG path next to its chain siblings (same H sweep as the dense
// rows).
BENCHMARK(BM_OptimalPartitionResNetBlock)->DenseRange(4, 6, 2);
// The gated headline row: one exact solve per run keeps the JSON
// target's wall clock bounded (a solve is seconds, not micros), and
// the row is a baseline check, not a statistics exercise.
BENCHMARK(BM_OptimalPartitionAStarVggE)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
// The SIMD lever at the headline table width (2^16 doubles).
BENCHMARK(BM_SimdExpandLevel)->Arg(16);
BENCHMARK(BM_SimdExpandLevelReference)->Arg(16);
BENCHMARK(BM_SimdArgminAdd)->Arg(16);
BENCHMARK(BM_SimdArgminAddReference)->Arg(16);
BENCHMARK(BM_SimdRelaxRow)->Arg(16);
BENCHMARK(BM_SimdRelaxRowReference)->Arg(16);
BENCHMARK(BM_BruteForceHierarchical);
BENCHMARK(BM_BruteForceHierarchicalReference);
BENCHMARK(BM_SweepLevelBytes);
BENCHMARK(BM_SweepLevelBytesReference);
BENCHMARK(BM_CommModelPlanBytes);
