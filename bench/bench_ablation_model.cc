/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out (not a
 * paper figure; supports the fidelity notes of DESIGN.md Section 4):
 *
 *  1. Hierarchical scaling policy: Partitioned (physical) vs None
 *     (every level sees full tensors) — effect on HyPar's plan and
 *     total communication.
 *  2. Exchange factor 2 (both peers fetch) vs 1 (one-directional).
 *  3. Gradient-communication overlap on/off in the simulator.
 *  4. Link-bandwidth sensitivity of the HyPar speedup.
 */

#include "bench_common.hh"

#include "core/comm_model.hh"
#include "core/hierarchical_partitioner.hh"
#include "core/optimal_partitioner.hh"
#include "core/strategies.hh"
#include "dnn/model_zoo.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace hypar;
using core::CommConfig;
using core::CommModel;

namespace {

void
scalingAblation()
{
    bench::banner("Ablation 1: hierarchical scaling policy",
                  "DESIGN.md Section 2");
    util::Table t({"network", "HyPar comm (Partitioned)",
                   "HyPar comm (None)", "plans differ?"});
    for (const auto &name : {"SFC", "AlexNet", "VGG-A"}) {
        dnn::Network net = dnn::modelByName(name);

        CommConfig part_cfg;
        CommModel part(net, part_cfg);
        const auto rp = core::HierarchicalPartitioner(part).partition(4);

        CommConfig none_cfg;
        none_cfg.scaling = CommConfig::Scaling::kNone;
        CommModel none(net, none_cfg);
        const auto rn = core::HierarchicalPartitioner(none).partition(4);

        t.addRow({name, util::formatBytes(rp.commBytes),
                  util::formatBytes(rn.commBytes),
                  rp.plan == rn.plan ? "no" : "yes"});
    }
    t.print(std::cout);
    std::cout << "\nUnder 'None' every level repeats the top-level "
                 "choice; SFC's fc1@H3 dp flip\n(Fig. 5(a)) only "
                 "appears under the Partitioned policy.\n";
}

void
exchangeFactorAblation()
{
    bench::banner("Ablation 2: exchange factor (2 = both peers fetch)",
                  "Section 3.4's 56 KB example");
    util::Table t({"network", "DP comm (factor 2)", "DP comm (factor 1)"});
    for (const auto &name : {"Lenet-c", "VGG-A"}) {
        dnn::Network net = dnn::modelByName(name);
        CommConfig two;
        CommConfig one;
        one.exchangeFactor = 1.0;
        const auto plan = core::makeDataParallelPlan(net, 4);
        t.addRow({name,
                  util::formatBytes(CommModel(net, two).planBytes(plan)),
                  util::formatBytes(CommModel(net, one).planBytes(plan))});
    }
    t.print(std::cout);
    std::cout << "\nFactor 2 is what matches the paper's Fig. 8 DP "
                 "column (e.g. VGG-A 15.9 GB).\n";
}

void
overlapAblation()
{
    bench::banner("Ablation 3: gradient-communication overlap",
                  "simulator option (off in the paper)");
    util::Table t({"network", "DP step (sync)", "DP step (overlap)",
                   "speedup"});
    for (const auto &name : {"AlexNet", "VGG-A", "SFC"}) {
        dnn::Network net = dnn::modelByName(name);
        sim::SimConfig sync_cfg = bench::paperConfig();
        sim::SimConfig overlap_cfg = bench::paperConfig();
        overlap_cfg.options.overlapGradComm = true;

        const double t_sync =
            sim::Evaluator(net, sync_cfg)
                .evaluate(core::Strategy::kDataParallel)
                .stepSeconds;
        const double t_over =
            sim::Evaluator(net, overlap_cfg)
                .evaluate(core::Strategy::kDataParallel)
                .stepSeconds;
        t.addRow({name, util::formatSeconds(t_sync),
                  util::formatSeconds(t_over),
                  bench::ratio(t_sync / t_over)});
    }
    t.print(std::cout);
}

void
bandwidthSensitivity()
{
    bench::banner("Ablation 4: link-bandwidth sensitivity (VGG-A)",
                  "HyPar speedup vs root bisection");
    util::Table t({"root bisection", "leaf link", "HyPar speedup vs DP"});
    for (const double gbits : {3.2, 6.4, 12.8, 25.6, 51.2}) {
        sim::SimConfig cfg = bench::paperConfig();
        cfg.noc.rootBisection = util::gbitsPerSec(gbits);
        cfg.noc.linkBandwidth = util::gbitsPerSec(gbits / 8.0);
        const auto report =
            sim::compareStrategies(dnn::makeVggA(), cfg);
        t.addRow({bench::sig3(gbits) + " Gb/s",
                  bench::sig3(gbits / 8.0 * 1000.0) + " Mb/s",
                  bench::ratio(report.hyparSpeedup())});
    }
    t.print(std::cout);
    std::cout << "\nThe slower the interconnect, the more HyPar's "
                 "communication savings matter.\n";
}

void
greedyVsOptimal()
{
    bench::banner("Ablation 5: greedy Algorithm 2 vs exact joint optimum",
                  "extension beyond the paper");
    util::Table t({"network", "greedy comm", "optimal comm",
                   "greedy overhead"});
    for (const auto &net : dnn::allModels()) {
        CommModel model(net, CommConfig{});
        const auto greedy =
            core::HierarchicalPartitioner(model).partition(4);
        const auto exact = core::OptimalPartitioner(model).partition(4);
        t.addRow({net.name(), util::formatBytes(greedy.commBytes),
                  util::formatBytes(exact.commBytes),
                  bench::ratio(100.0 * (greedy.commBytes -
                                        exact.commBytes) /
                               exact.commBytes) + "%"});
    }
    t.print(std::cout);
    std::cout << "\nThe exact joint DP over all (2^H)^L assignments "
                 "(O(L*4^H)) confirms the paper's greedy\nlevel-by-level "
                 "search is near-optimal on real networks.\n";
}

void
topologyTriple()
{
    bench::banner("Ablation 6: H-tree vs torus vs mesh (VGG-A, HyPar)",
                  "mesh is our added design point");
    util::Table t({"topology", "step time", "speedup vs DP on H-tree"});
    sim::SimConfig tree_cfg = bench::paperConfig();
    const double dp_time =
        sim::Evaluator(dnn::makeVggA(), tree_cfg)
            .evaluate(core::Strategy::kDataParallel)
            .stepSeconds;
    for (auto kind : {sim::TopologyKind::kHTree, sim::TopologyKind::kTorus,
                      sim::TopologyKind::kMesh}) {
        sim::SimConfig cfg = bench::paperConfig();
        cfg.topology = kind;
        sim::Evaluator ev(dnn::makeVggA(), cfg);
        const auto m = ev.evaluate(core::Strategy::kHypar);
        t.addRow({ev.topology().name(),
                  util::formatSeconds(m.stepSeconds),
                  bench::ratio(dp_time / m.stepSeconds)});
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    scalingAblation();
    exchangeFactorAblation();
    overlapAblation();
    bandwidthSensitivity();
    greedyVsOptimal();
    topologyTriple();
    return 0;
}
