/**
 * @file
 * Regenerates Figure 13: HyPar vs Krizhevsky's "one weird trick" on
 * the isolated VGG-E layers conv5 and fc3, under batch sizes 32 and
 * 4096 and hierarchy levels 2, 3 and 4 (the paper's conv5-b32-h{2,3,4}
 * and fc3-b4096-h{2,3,4} bars), reporting performance and energy
 * efficiency of HyPar normalized to the Trick.
 *
 * Paper: HyPar 1.62x faster and 1.22x more energy efficient on
 * average, up to 2.40x faster.
 */

#include "bench_common.hh"

#include "dnn/builder.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace hypar;

int
main()
{
    bench::banner("HyPar vs the Trick (one weird trick)", "Figure 13");

    // The VGG-E layers the paper isolates: conv5 (512 -> 512, 3x3 on
    // 14x14) and fc3 (4096 -> 1000).
    dnn::Network conv5 = dnn::NetworkBuilder("conv5", {512, 14, 14})
                             .conv("conv5", 512, 3).pad(1)
                             .build();
    dnn::Network fc3 = dnn::NetworkBuilder("fc3", {4096, 1, 1})
                           .fc("fc3", 1000)
                           .build();

    struct Case
    {
        const dnn::Network *net;
        std::size_t batch;
    };
    const Case cases[] = {{&conv5, 32}, {&fc3, 4096}};

    util::Table t({"case", "perf vs Trick", "energy eff vs Trick"});
    std::vector<double> perf, eff;
    for (const auto &c : cases) {
        for (std::size_t levels : {2u, 3u, 4u}) {
            sim::SimConfig cfg = bench::paperConfig();
            cfg.levels = levels;
            cfg.comm.batch = c.batch;
            sim::Evaluator ev(*c.net, cfg);

            const auto trick =
                ev.evaluate(core::Strategy::kOneWeirdTrick);
            const auto hypar = ev.evaluate(core::Strategy::kHypar);
            const double p = trick.stepSeconds / hypar.stepSeconds;
            const double e =
                trick.energy.totalJ() / hypar.energy.totalJ();
            perf.push_back(p);
            eff.push_back(e);
            t.addRow({c.net->name() + "-b" + std::to_string(c.batch) +
                          "-h" + std::to_string(levels),
                      bench::ratio(p), bench::ratio(e)});
        }
    }
    t.addRow({"Gmean", bench::ratio(util::geomean(perf)),
              bench::ratio(util::geomean(eff))});
    t.print(std::cout);

    std::cout << "\nPaper: gmean 1.62x perf / 1.22x energy; up to "
                 "2.40x. The Trick misconfigures fc3 (mp) where dp's "
                 "free dp-dp\ntransitions win, and misses per-level "
                 "hybrid choices for conv5 at small batch.\n";
    return 0;
}
