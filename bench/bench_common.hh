/**
 * @file
 * Shared helpers for the figure/table reproduction harness: the paper's
 * evaluation configuration (Section 6.1) and small printing utilities.
 * Each bench binary regenerates one table or figure of the paper and
 * prints paper-value annotations where the paper states them.
 */

#ifndef HYPAR_BENCH_BENCH_COMMON_HH
#define HYPAR_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "sim/evaluator.hh"

namespace hypar::bench {

/**
 * The paper's evaluation setup: sixteen HMC-based accelerators (H = 4),
 * batch 256, fp32, Eyeriss-like row-stationary PUs, H-tree interconnect
 * with 1600 Mb/s leaf links.
 */
inline sim::SimConfig
paperConfig()
{
    sim::SimConfig cfg; // defaults are the paper's values
    return cfg;
}

/** Print a figure/table banner. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::cout << "\n=== " << title << " ===\n"
              << "(reproduces " << paper_ref << ")\n\n";
}

/** printf-style convenience with 3 significant digits. */
inline std::string
sig3(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3g", v);
    return buf;
}

/** Fixed 2-decimal ratio formatting ("3.39"). */
inline std::string
ratio(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
}

/**
 * The Fig. 10 grid: HyPar's VGG-A plan with all 2^H x 2^H (conv5_2,
 * fc1) level-vector combinations substituted
 * (core::assignLayerFromState), conv5_2 mask in the outer position
 * (grid[2^H * mc + mf]; 16 x 16 at the paper's H = 4). Shared by the
 * figure bench and the sweep micro bench so both score the identical
 * plan batch.
 */
inline std::vector<core::HierarchicalPlan>
fig10Grid(const sim::Evaluator &ev)
{
    const std::size_t conv5_2 = ev.network().layerIndex("conv5_2");
    const std::size_t fc1 = ev.network().layerIndex("fc1");
    core::HierarchicalPlan scaffold = ev.plan(core::Strategy::kHypar);

    const std::uint64_t masks = std::uint64_t{1}
                                << ev.config().levels;
    std::vector<core::HierarchicalPlan> grid;
    grid.reserve(masks * masks);
    for (std::uint64_t mc = 0; mc < masks; ++mc) {
        core::assignLayerFromState(scaffold, conv5_2, mc);
        for (std::uint64_t mf = 0; mf < masks; ++mf) {
            core::assignLayerFromState(scaffold, fc1, mf);
            grid.push_back(scaffold);
        }
    }
    return grid;
}

} // namespace hypar::bench

#endif // HYPAR_BENCH_BENCH_COMMON_HH
