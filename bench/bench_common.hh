/**
 * @file
 * Shared helpers for the figure/table reproduction harness: the paper's
 * evaluation configuration (Section 6.1) and small printing utilities.
 * Each bench binary regenerates one table or figure of the paper and
 * prints paper-value annotations where the paper states them.
 */

#ifndef HYPAR_BENCH_BENCH_COMMON_HH
#define HYPAR_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <string>

#include "sim/evaluator.hh"

namespace hypar::bench {

/**
 * The paper's evaluation setup: sixteen HMC-based accelerators (H = 4),
 * batch 256, fp32, Eyeriss-like row-stationary PUs, H-tree interconnect
 * with 1600 Mb/s leaf links.
 */
inline sim::SimConfig
paperConfig()
{
    sim::SimConfig cfg; // defaults are the paper's values
    return cfg;
}

/** Print a figure/table banner. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::cout << "\n=== " << title << " ===\n"
              << "(reproduces " << paper_ref << ")\n\n";
}

/** printf-style convenience with 3 significant digits. */
inline std::string
sig3(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3g", v);
    return buf;
}

/** Fixed 2-decimal ratio formatting ("3.39"). */
inline std::string
ratio(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
}

} // namespace hypar::bench

#endif // HYPAR_BENCH_BENCH_COMMON_HH
