/**
 * @file
 * Regenerates Table 3 (the SFC / SCONV hyper-parameters) and the model
 * inventory the evaluation section relies on: weighted layer counts
 * (four to nineteen), parameter and MAC totals for all ten networks.
 */

#include "bench_common.hh"

#include "dnn/model_zoo.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace hypar;

int
main()
{
    bench::banner("SFC and SCONV hyper-parameters", "Table 3");
    util::Table t3({"network", "hyper parameters"});
    t3.addRow({"SFC", "784-8192-8192-8192-10"});
    t3.addRow({"SCONV", "20@5x5, 50@5x5 (2x2 max pool), 50@5x5, "
                        "10@5x5 (2x2 max pool)"});
    t3.print(std::cout);

    bench::banner("Model inventory (ten networks, Section 6.1)",
                  "Section 6.1 / Fig. 5 layer lists");
    util::Table t({"network", "input", "weighted layers", "conv", "fc",
                   "params", "fwd GMACs/sample"});
    for (const auto &net : dnn::allModels()) {
        std::size_t convs = 0, fcs = 0;
        for (const auto &layer : net.layers())
            (layer.isConv() ? convs : fcs) += 1;
        const auto &in = net.inputShape();
        t.addRow({net.name(),
                  std::to_string(in.c) + "x" + std::to_string(in.h) + "x" +
                      std::to_string(in.w),
                  std::to_string(net.size()), std::to_string(convs),
                  std::to_string(fcs),
                  bench::sig3(static_cast<double>(net.totalParamElems())),
                  bench::ratio(net.totalFwdMacsPerSample() / 1e9)});
    }
    t.print(std::cout);

    std::cout << "\nPer-layer shapes:\n\n";
    for (const auto &net : dnn::allModels())
        std::cout << net.describe() << "\n";
    return 0;
}
