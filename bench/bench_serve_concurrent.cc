/**
 * @file
 * Concurrent serving throughput: N simulated clients issue mixed
 * plan / evaluate / sweep traffic against one server, one request per
 * client per admission batch. The reference run executes the same
 * byte stream through a 0-worker pool (strictly serial); the measured
 * run fans the batch's context groups over the process pool. Since
 * the parallel executor is byte-identical to serial execution (the
 * tentpole invariant, pinned by tests/test_serve_concurrent.cc), the
 * only thing allowed to change is the clock — this bench records it.
 *
 * With an output path argument, writes a google-benchmark-compatible
 * BENCH_serve_concurrent.json: BM_ServeConcurrent/<clients> pairs
 * with BM_ServeConcurrentReference/<clients> (so bench_report.py
 * prints the scaling), plus unpaired per-op p50/p99 latency rows from
 * the server's own histograms.
 *
 * Exit status gates CI: on a multi-core box (pool parallelism >= 4)
 * concurrent throughput must beat single-stream by >= 2x; at
 * parallelism 2-3 the floor relaxes to 1.15x; on a single core the
 * run is record-only (fan-out degenerates to the serial path).
 */

#include "bench_common.hh"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "serve/server.hh"
#include "util/latency_histogram.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace hypar;
namespace fs = std::filesystem;

namespace {

constexpr std::size_t kClients = 8;
constexpr std::size_t kWarmupBatches = 3;
constexpr std::size_t kTimedBatches = 24;

/**
 * One client's request for one admission round. Every client owns a
 * distinct context (model x mini-batch), so the admission batch fans
 * out into kClients independent groups; the op rotates through the
 * three session ops so the mix exercises search, simulation, and the
 * sweep fast path.
 */
std::string
request(std::size_t client, std::size_t round)
{
    static const char *models[] = {"Lenet-c", "SFC"};
    const std::string model = models[client % 2];
    const std::string context =
        "\"model\":\"" + model +
        "\",\"batch\":" + std::to_string(256 >> (client / 2));
    // H = 8 keeps each request around a millisecond of real work —
    // heavy enough that group fan-out, not protocol overhead, decides
    // the clock.
    switch (round % 3) {
      case 0:
        return "{\"op\":\"evaluate\"," + context +
               ",\"levels\":8,\"steps\":32}";
      case 1:
        return "{\"op\":\"plan\"," + context +
               ",\"strategy\":\"optimal\",\"levels\":8}";
      default:
        return "{\"op\":\"sweep\"," + context + ",\"levels\":8,\"level\":1}";
    }
}

/** Drive kWarmupBatches + kTimedBatches admission rounds; returns the
 *  wall-clock seconds of the timed rounds. */
double
drive(serve::Server &server)
{
    std::ostringstream sink;
    for (std::size_t round = 0; round < kWarmupBatches; ++round) {
        std::vector<std::string> batch;
        for (std::size_t c = 0; c < kClients; ++c)
            batch.push_back(request(c, round));
        server.processBatch(batch, sink);
    }
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t round = 0; round < kTimedBatches; ++round) {
        std::vector<std::string> batch;
        for (std::size_t c = 0; c < kClients; ++c)
            batch.push_back(request(c, round));
        server.processBatch(batch, sink);
    }
    const auto end = std::chrono::steady_clock::now();
    if (sink.str().find("\"ok\":false") != std::string::npos) {
        std::cerr << "bench_serve_concurrent: a request failed\n";
        std::exit(1);
    }
    return std::chrono::duration<double>(end - start).count();
}

void
writeJson(double serialSec, double concurrentSec,
          const serve::Server &concurrent, std::size_t parallelism,
          std::ostream &os)
{
    const double requests =
        static_cast<double>(kTimedBatches * kClients);
    char buf[256];
    os << "{\"context\":{\"bench\":\"serve_concurrent\",\"clients\":"
       << kClients << ",\"batches\":" << kTimedBatches
       << ",\"pool_parallelism\":" << parallelism
       << "},\"benchmarks\":[";
    // Reference = single-stream (serial pool); optimized = concurrent,
    // so bench_report.py's ratio is the throughput scaling.
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"BM_ServeConcurrentReference/%zu\","
                  "\"run_type\":\"iteration\",\"real_time\":%.17g,"
                  "\"cpu_time\":%.17g,\"time_unit\":\"ns\"}",
                  kClients, serialSec / requests * 1e9,
                  serialSec / requests * 1e9);
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  ",{\"name\":\"BM_ServeConcurrent/%zu\","
                  "\"run_type\":\"iteration\",\"real_time\":%.17g,"
                  "\"cpu_time\":%.17g,\"time_unit\":\"ns\"}",
                  kClients, concurrentSec / requests * 1e9,
                  concurrentSec / requests * 1e9);
    os << buf;
    // Unpaired observability rows: the concurrent server's own per-op
    // latency quantiles (bench_report.py ignores rows without a
    // Reference partner).
    for (std::size_t k = 0; k < serve::Server::kOps.size(); ++k) {
        const util::LatencyHistogram &h = concurrent.latency(k);
        if (h.count() == 0)
            continue;
        for (const auto &[tag, q] :
             {std::pair<const char *, double>{"p50", 0.50},
              std::pair<const char *, double>{"p99", 0.99}}) {
            std::snprintf(buf, sizeof(buf),
                          ",{\"name\":\"BM_ServeLatency_%s_%s\","
                          "\"run_type\":\"iteration\","
                          "\"real_time\":%.17g,\"cpu_time\":%.17g,"
                          "\"time_unit\":\"ns\"}",
                          serve::Server::kOps[k], tag,
                          h.quantile(q) * 1e9, h.quantile(q) * 1e9);
            os << buf;
        }
    }
    os << "]}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Concurrent serving: parallel batches vs single stream",
                  "the hyparc serve throughput scaling");

    util::ThreadPool &pool = util::ThreadPool::global();
    util::ThreadPool serialPool(0);
    const std::size_t parallelism = pool.parallelism();

    const fs::path cacheDir =
        fs::temp_directory_path() /
        ("hyparc_bench_conc_" +
         std::to_string(static_cast<unsigned>(::getpid())));
    fs::remove_all(cacheDir);

    // --no-cache: every plan/sweep does its real work on every round,
    // so the bench measures execution scaling, not cache hits.
    serve::ServeOptions serialOpts;
    serialOpts.cacheDir = cacheDir;
    serialOpts.noCache = true;
    serialOpts.maxSessions = kClients;
    serialOpts.pool = &serialPool;
    serve::ServeOptions concOpts = serialOpts;
    concOpts.pool = &pool;

    serve::Server serial(serialOpts);
    serve::Server concurrent(concOpts);
    const double serialSec = drive(serial);
    const double concurrentSec = drive(concurrent);
    fs::remove_all(cacheDir);

    const double requests =
        static_cast<double>(kTimedBatches * kClients);
    const double scaling = serialSec / concurrentSec;
    util::Table t({"mode", "total (s)", "req/s"});
    t.addRow({"single-stream", bench::sig3(serialSec),
              bench::sig3(requests / serialSec)});
    t.addRow({"concurrent", bench::sig3(concurrentSec),
              bench::sig3(requests / concurrentSec)});
    t.print(std::cout);

    const double floor =
        parallelism >= 4 ? 2.0 : (parallelism >= 2 ? 1.15 : 0.0);
    std::cout << "\n" << kClients << " clients x " << kTimedBatches
              << " admission batches, pool parallelism " << parallelism
              << "\nthroughput scaling: " << bench::ratio(scaling)
              << " (floor: "
              << (floor > 0.0 ? bench::ratio(floor) + "x"
                              : std::string("record-only"))
              << ")\n";

    if (argc > 1) {
        std::ofstream out(argv[1]);
        writeJson(serialSec, concurrentSec, concurrent, parallelism,
                  out);
        std::cout << "\nwrote " << argv[1] << "\n";
    }
    return scaling >= floor ? 0 : 1;
}
