/**
 * @file
 * Analysis companion to Fig. 8: itemized communication of the HyPar
 * plan for the large networks — which layers and hierarchy levels the
 * remaining traffic comes from, and what fraction each of the paper's
 * two sources (intra / inter) contributes. Not a paper figure; backs
 * the Section 6.2.4 discussion with per-source detail.
 */

#include "bench_common.hh"

#include "core/comm_report.hh"
#include "core/strategies.hh"
#include "dnn/model_zoo.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace hypar;

int
main()
{
    const auto cfg = bench::paperConfig();
    bench::banner("Itemized HyPar communication", "Section 6.2.4 detail");

    for (const auto &name : {"AlexNet", "VGG-A"}) {
        dnn::Network net = dnn::modelByName(name);
        core::CommModel model(net, cfg.comm);
        const auto plan = core::makeHyparPlan(model, cfg.levels);
        const auto report = core::buildCommReport(model, plan);

        std::cout << name << " (HyPar plan, "
                  << util::formatBytes(report.totalBytes)
                  << " per step):\n\n"
                  << report.toString() << "\n";

        double intra = 0.0, inter = 0.0;
        for (const auto &lv : report.levels) {
            intra += lv.intraBytes;
            inter += lv.interBytes;
        }
        std::cout << "intra (reductions): "
                  << bench::ratio(100.0 * intra / report.totalBytes)
                  << "%, inter (boundary conversions): "
                  << bench::ratio(100.0 * inter / report.totalBytes)
                  << "%\n\n";
    }
    return 0;
}
