/**
 * @file
 * Regenerates Figure 10: parallelism space exploration for VGG-A.
 * All layers are fixed at HyPar's optimized plan except conv5_2 and
 * fc1, whose four-level parallelism vectors are swept over all
 * 2^4 x 2^4 = 256 combinations.
 *
 * The 256 plans are built once (patched copies of a single hoisted
 * scaffold — nothing is reconstructed inside the loop; see the
 * build-once/evaluate-many contract in sim/evaluator.hh) and scored in
 * one Evaluator::evaluateBatch call, which fans them over the global
 * thread pool and returns results bit-identical to the sequential
 * evaluate() loop this bench used to run.
 *
 * Paper: peak 5.05x at conv5_2 = 1000, fc1 = 1111 while HyPar picks
 * conv5_2 = 0001, fc1 = 1111 reaching 4.97x — close to but not exactly
 * the peak, because HyPar minimizes communication, not simulated time.
 */

#include "bench_common.hh"

#include <vector>

#include "core/plan.hh"
#include "core/tie_break.hh"
#include "dnn/model_zoo.hh"
#include "util/table.hh"

using namespace hypar;

namespace {

/** Render one layer's per-level choices as an H1..H4 bitstring. */
std::string
layerBits(const core::HierarchicalPlan &plan, std::size_t layer)
{
    std::string s;
    for (std::size_t h = 0; h < plan.numLevels(); ++h)
        s.push_back(core::toBit(plan.levels[h][layer]));
    return s;
}

} // namespace

int
main()
{
    const auto cfg = bench::paperConfig();
    bench::banner(
        "Parallelism space exploration, VGG-A (conv5_2 x fc1 levels)",
        "Figure 10");

    dnn::Network vgg_a = dnn::makeVggA();
    sim::Evaluator ev(vgg_a, cfg);
    const std::size_t conv5_2 = vgg_a.layerIndex("conv5_2");
    const std::size_t fc1 = vgg_a.layerIndex("fc1");

    const auto hypar_plan = ev.plan(core::Strategy::kHypar);
    const double dp_time =
        ev.evaluate(core::Strategy::kDataParallel).stepSeconds;
    const double hypar_gain =
        dp_time / ev.evaluate(hypar_plan).stepSeconds;

    // Build the whole grid up front (one scaffold plan patched per
    // point, copied into the batch — bench::fig10Grid) and score it in
    // a single batch call.
    const auto metrics = ev.evaluateBatch(bench::fig10Grid(ev));

    // Peak under the shared tie-break rule: lower step time wins, exact
    // ties go to the smaller (conv5_2, fc1) mask pair — independent of
    // visit order.
    std::size_t peak = 0;
    for (std::size_t i = 1; i < metrics.size(); ++i) {
        if (core::better(metrics[i].stepSeconds, i,
                         metrics[peak].stepSeconds, peak))
            peak = i;
    }
    // Decode the flat index with the same stride fig10Grid builds with.
    const std::uint64_t masks = std::uint64_t{1} << ev.config().levels;
    const std::uint64_t peak_c = peak / masks;
    const std::uint64_t peak_f = peak % masks;
    const double peak_gain = dp_time / metrics[peak].stepSeconds;

    util::Table t({"point", "conv5_2 (H1..H4)", "fc1 (H1..H4)",
                   "normalized perf"});
    auto bits4 = [](std::uint64_t m) {
        std::string s;
        for (int h = 0; h < 4; ++h)
            s.push_back((m >> h) & 1 ? '1' : '0');
        return s;
    };
    t.addRow({"peak", bits4(peak_c), bits4(peak_f),
              bench::ratio(peak_gain)});
    t.addRow({"HyPar", layerBits(hypar_plan, conv5_2),
              layerBits(hypar_plan, fc1), bench::ratio(hypar_gain)});
    t.print(std::cout);

    std::cout << "\nPaper: peak 5.05x at (1000, 1111); HyPar 4.97x at "
                 "(0001, 1111).\nHyPar-to-peak gap here: "
              << bench::ratio(100.0 * (peak_gain - hypar_gain) /
                              peak_gain)
              << "%.\n";
    return 0;
}
