/**
 * @file
 * Regenerates Figure 5: the optimized parallelism for every weighted
 * layer at all four hierarchy levels of the ten networks. Output is one
 * block per network with a dp/mp token per (layer, level), matching the
 * paper's color-coded chart.
 *
 * Paper observations to verify in the output:
 *  - conv layers mostly dp, fc layers mostly mp;
 *  - SFC: everything mp except fc1@H3 (dp);
 *  - SCONV: everything dp.
 */

#include "bench_common.hh"

#include "core/comm_model.hh"
#include "core/hierarchical_partitioner.hh"
#include "util/table.hh"

#include "dnn/model_zoo.hh"

using namespace hypar;

int
main()
{
    const auto cfg = bench::paperConfig();
    bench::banner("Optimized parallelism per layer per hierarchy level",
                  "Figure 5");

    for (const auto &net : dnn::allModels()) {
        core::CommModel model(net, cfg.comm);
        const auto result =
            core::HierarchicalPartitioner(model).partition(cfg.levels);

        std::cout << net.name() << " (total communication "
                  << bench::sig3(result.commBytes / 1e9) << " GB):\n";
        util::Table t({"layer", "H1", "H2", "H3", "H4"});
        for (std::size_t l = 0; l < net.size(); ++l) {
            std::vector<std::string> row{net.layer(l).name};
            for (std::size_t h = 0; h < cfg.levels; ++h)
                row.push_back(core::toString(result.plan.levels[h][l]));
            t.addRow(row);
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
