/**
 * @file
 * Regenerates Figure 9: parallelism space exploration for Lenet-c.
 * H2 and H3 are fixed at HyPar's optimized choice; all 2^4 x 2^4 = 256
 * combinations of the four layers' parallelism at H1 and H4 are
 * simulated. Output: the peak point, HyPar's point, and the histogram
 * of normalized performance.
 *
 * The inner H4 axis is scored with Evaluator::sweepNeighborhood — the
 * incremental single-level sweep that precomputes every task variant
 * once and never rebuilds per-plan simulator state — and the outer H1
 * axis substitutes level masks into one hoisted scaffold plan. Results
 * are bit-identical to the evaluate()-per-point loop this bench used to
 * run (tests/test_evaluator_batch.cc enforces the equivalence).
 *
 * Paper: peak 3.05x at H1 = 0011, H4 = 0011 — exactly HyPar's own
 * configuration (0 = dp, 1 = mp, layer order conv1 conv2 fc1 fc2).
 */

#include "bench_common.hh"

#include <algorithm>

#include "core/plan.hh"
#include "core/tie_break.hh"
#include "dnn/model_zoo.hh"
#include "util/table.hh"

using namespace hypar;

int
main()
{
    const auto cfg = bench::paperConfig();
    bench::banner("Parallelism space exploration, Lenet-c (H1 x H4)",
                  "Figure 9");

    dnn::Network lenet = dnn::makeLenetC();
    sim::Evaluator ev(lenet, cfg);
    const std::size_t num_layers = lenet.size();

    const auto hypar_plan = ev.plan(core::Strategy::kHypar);
    const double dp_time =
        ev.evaluate(core::Strategy::kDataParallel).stepSeconds;
    const double hypar_gain =
        dp_time / ev.evaluate(hypar_plan).stepSeconds;

    std::cout << "HyPar plan:\n" << core::toString(hypar_plan) << "\n";

    struct Point
    {
        std::uint64_t h1 = 0, h4 = 0;
        double gain = 0.0;
    };
    std::vector<Point> points;
    points.reserve(256);

    // Peak under the shared tie-break rule on (step time, combined
    // mask key) — independent of visit order.
    double peak_seconds = 0.0;
    std::uint64_t peak_key = 0;
    bool have_peak = false;

    core::HierarchicalPlan scaffold = hypar_plan;
    const std::uint64_t h1_masks = std::uint64_t{1} << num_layers;
    for (std::uint64_t h1 = 0; h1 < h1_masks; ++h1) {
        scaffold.levels[0] = core::levelPlanFromMask(h1, num_layers);
        ev.sweepNeighborhood(
            scaffold, 3, [&](std::uint64_t h4, const auto &metrics) {
                points.push_back(
                    {h1, h4, dp_time / metrics.stepSeconds});
                const std::uint64_t key = (h1 << num_layers) | h4;
                if (!have_peak ||
                    core::better(metrics.stepSeconds, key, peak_seconds,
                                 peak_key)) {
                    peak_seconds = metrics.stepSeconds;
                    peak_key = key;
                    have_peak = true;
                }
            });
    }

    const Point peak{peak_key >> num_layers,
                     peak_key & (h1_masks - 1), dp_time / peak_seconds};

    util::Table t({"point", "H1", "H4", "normalized perf"});
    t.addRow({"peak", core::toBitString(core::levelPlanFromMask(peak.h1, 4)),
              core::toBitString(core::levelPlanFromMask(peak.h4, 4)),
              bench::ratio(peak.gain)});
    t.addRow({"HyPar", core::toBitString(hypar_plan.levels[0]),
              core::toBitString(hypar_plan.levels[3]),
              bench::ratio(hypar_gain)});
    t.print(std::cout);

    // Distribution of the 256 points (paper's 3-D surface, flattened).
    std::cout << "\nGain distribution over the 256 explored points:\n";
    std::vector<double> gains;
    for (const auto &p : points)
        gains.push_back(p.gain);
    std::sort(gains.begin(), gains.end());
    util::Table d({"percentile", "normalized perf"});
    for (const double pct : {0.0, 25.0, 50.0, 75.0, 100.0}) {
        const auto idx = static_cast<std::size_t>(
            pct / 100.0 * static_cast<double>(gains.size() - 1));
        d.addRow({bench::ratio(pct) + "%", bench::ratio(gains[idx])});
    }
    d.print(std::cout);

    std::cout << "\nPaper: peak 3.05x at (0011, 0011) == HyPar's "
                 "configuration.\nHyPar-to-peak gap here: "
              << bench::ratio(100.0 * (peak.gain - hypar_gain) /
                              peak.gain)
              << "% (HyPar optimizes communication as a performance "
                 "proxy).\n";

    // Beyond the paper: the same 256-point grid with gradient
    // reductions overlapped (the async all-reduce schedule), swept by
    // the two-tape incremental replay — bit-identical to per-mask
    // simulation, so this output never depends on which path ran.
    auto ocfg = cfg;
    ocfg.options.overlapGradComm = true;
    sim::Evaluator oev(lenet, ocfg);
    const double odp_time =
        oev.evaluate(core::Strategy::kDataParallel).stepSeconds;
    double opeak_seconds = 0.0;
    std::uint64_t opeak_key = 0;
    bool have_opeak = false;
    double ohypar_seconds = 0.0;
    scaffold = hypar_plan;
    for (std::uint64_t h1 = 0; h1 < h1_masks; ++h1) {
        scaffold.levels[0] = core::levelPlanFromMask(h1, num_layers);
        oev.sweepNeighborhood(
            scaffold, 3, [&](std::uint64_t h4, const auto &metrics) {
                const std::uint64_t key = (h1 << num_layers) | h4;
                if (!have_opeak ||
                    core::better(metrics.stepSeconds, key,
                                 opeak_seconds, opeak_key)) {
                    opeak_seconds = metrics.stepSeconds;
                    opeak_key = key;
                    have_opeak = true;
                }
                if (scaffold.levels[0] == hypar_plan.levels[0] &&
                    core::levelPlanFromMask(h4, num_layers) ==
                        hypar_plan.levels[3])
                    ohypar_seconds = metrics.stepSeconds;
            });
    }
    std::cout << "\nWith overlapped gradient reductions "
                 "(--overlap; two-tape incremental sweep):\n";
    util::Table o({"point", "H1", "H4", "normalized perf"});
    o.addRow({"peak",
              core::toBitString(core::levelPlanFromMask(
                  opeak_key >> num_layers, num_layers)),
              core::toBitString(core::levelPlanFromMask(
                  opeak_key & (h1_masks - 1), num_layers)),
              bench::ratio(odp_time / opeak_seconds)});
    o.addRow({"HyPar", core::toBitString(hypar_plan.levels[0]),
              core::toBitString(hypar_plan.levels[3]),
              bench::ratio(odp_time / ohypar_seconds)});
    o.print(std::cout);
    return 0;
}
