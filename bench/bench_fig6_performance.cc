/**
 * @file
 * Regenerates Figure 6: training-step performance of default Model
 * Parallelism, default Data Parallelism and HyPar on the sixteen-
 * accelerator H-tree array, normalized to Data Parallelism, for all
 * ten networks plus the geometric mean.
 *
 * Paper values for reference: HyPar gmean 3.39x over DP; MP almost
 * always worst; SFC the one network where MP > DP.
 */

#include "bench_common.hh"

#include "dnn/model_zoo.hh"
#include "util/stats.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace hypar;

int
main()
{
    const auto cfg = bench::paperConfig();
    bench::banner("Normalized performance (to Data Parallelism)",
                  "Figure 6");

    util::Table t({"network", "Model Par.", "Data Par.", "HyPar",
                   "step time DP", "step time HyPar"});
    std::vector<double> mp_gains, hp_gains;
    for (const auto &net : dnn::allModels()) {
        const auto report = sim::compareStrategies(net, cfg);
        mp_gains.push_back(report.mpSpeedup());
        hp_gains.push_back(report.hyparSpeedup());
        t.addRow({net.name(), bench::ratio(report.mpSpeedup()), "1.00",
                  bench::ratio(report.hyparSpeedup()),
                  util::formatSeconds(report.dataParallel.stepSeconds),
                  util::formatSeconds(report.hypar.stepSeconds)});
    }
    t.addRow({"Gmean", bench::ratio(util::geomean(mp_gains)), "1.00",
              bench::ratio(util::geomean(hp_gains)), "-", "-"});
    t.print(std::cout);

    std::cout << "\nPaper: HyPar gmean 3.39x; MP worst everywhere except "
                 "SFC (23.48x vs 22.19x there);\nSCONV: HyPar == DP "
                 "(1.00x).\n";
    return 0;
}
