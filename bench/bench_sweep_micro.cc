/**
 * @file
 * Micro benchmarks for the batched / incremental design-space sweep
 * paths of sim::Evaluator (the Fig. 9/10 simulation grids), in
 * google-benchmark harness form so `bench_sweep_json` can emit
 * BENCH_sweep.json for tools/bench_report.py.
 *
 * Naming follows the partitioner micro benches: BM_Foo is the
 * optimized path (evaluateBatch on the thread pool, sweepNeighborhood),
 * BM_FooReference is the sequential evaluate()-per-point loop the
 * fig9/fig10 benches used to run. Both sides score the identical grid
 * and fold the step times into a checksum, so the report's speedup
 * pairs compare equal work — and the differential tests
 * (tests/test_evaluator_batch.cc) guarantee equal *results*.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hh"
#include "core/plan.hh"
#include "dnn/model_zoo.hh"

using namespace hypar;

namespace {

void
BM_Fig10VggaGridReference(benchmark::State &state)
{
    const dnn::Network vgg_a = dnn::makeVggA();
    const sim::Evaluator ev(vgg_a, sim::SimConfig{});
    const auto grid = bench::fig10Grid(ev);

    for (auto _ : state) {
        double checksum = 0.0;
        for (const auto &plan : grid)
            checksum += ev.evaluate(plan).stepSeconds;
        benchmark::DoNotOptimize(checksum);
    }
}
BENCHMARK(BM_Fig10VggaGridReference)->Unit(benchmark::kMillisecond);

void
BM_Fig10VggaGrid(benchmark::State &state)
{
    const dnn::Network vgg_a = dnn::makeVggA();
    const sim::Evaluator ev(vgg_a, sim::SimConfig{});
    const auto grid = bench::fig10Grid(ev);

    for (auto _ : state) {
        const auto metrics = ev.evaluateBatch(grid);
        double checksum = 0.0;
        for (const auto &m : metrics)
            checksum += m.stepSeconds;
        benchmark::DoNotOptimize(checksum);
    }
}
BENCHMARK(BM_Fig10VggaGrid)->Unit(benchmark::kMillisecond);

void
BM_Fig9LenetSweepReference(benchmark::State &state)
{
    const dnn::Network lenet = dnn::makeLenetC();
    const sim::Evaluator ev(lenet, sim::SimConfig{});
    const std::size_t layers = lenet.size();
    core::HierarchicalPlan scaffold =
        ev.plan(core::Strategy::kHypar);

    for (auto _ : state) {
        double checksum = 0.0;
        for (std::uint64_t h1 = 0; h1 < (1u << layers); ++h1) {
            scaffold.levels[0] = core::levelPlanFromMask(h1, layers);
            for (std::uint64_t h4 = 0; h4 < (1u << layers); ++h4) {
                scaffold.levels[3] =
                    core::levelPlanFromMask(h4, layers);
                checksum += ev.evaluate(scaffold).stepSeconds;
            }
        }
        benchmark::DoNotOptimize(checksum);
    }
}
BENCHMARK(BM_Fig9LenetSweepReference)->Unit(benchmark::kMillisecond);

void
BM_Fig9LenetSweep(benchmark::State &state)
{
    const dnn::Network lenet = dnn::makeLenetC();
    const sim::Evaluator ev(lenet, sim::SimConfig{});
    const std::size_t layers = lenet.size();
    core::HierarchicalPlan scaffold =
        ev.plan(core::Strategy::kHypar);

    for (auto _ : state) {
        double checksum = 0.0;
        for (std::uint64_t h1 = 0; h1 < (1u << layers); ++h1) {
            scaffold.levels[0] = core::levelPlanFromMask(h1, layers);
            ev.sweepNeighborhood(
                scaffold, 3,
                [&](std::uint64_t, const sim::StepMetrics &m) {
                    checksum += m.stepSeconds;
                });
        }
        benchmark::DoNotOptimize(checksum);
    }
}
BENCHMARK(BM_Fig9LenetSweep)->Unit(benchmark::kMillisecond);

/** Overlap-mode Fig. 9 pair: the same 256-point H1 x H4 LeNet grid
 *  under SimOptions::overlapGradComm. The reference is the per-mask
 *  simulate() loop the overlap sweep used to fall back to; the
 *  optimized side is the two-tape incremental replay, which should
 *  land within ~2x of the non-overlap incremental path. */
void
BM_Fig9LenetSweepOverlapReference(benchmark::State &state)
{
    const dnn::Network lenet = dnn::makeLenetC();
    sim::SimConfig cfg;
    cfg.options.overlapGradComm = true;
    const sim::Evaluator ev(lenet, cfg);
    const std::size_t layers = lenet.size();
    core::HierarchicalPlan scaffold = ev.plan(core::Strategy::kHypar);

    for (auto _ : state) {
        double checksum = 0.0;
        for (std::uint64_t h1 = 0; h1 < (1u << layers); ++h1) {
            scaffold.levels[0] = core::levelPlanFromMask(h1, layers);
            for (std::uint64_t h4 = 0; h4 < (1u << layers); ++h4) {
                scaffold.levels[3] =
                    core::levelPlanFromMask(h4, layers);
                checksum += ev.evaluate(scaffold).stepSeconds;
            }
        }
        benchmark::DoNotOptimize(checksum);
    }
}
BENCHMARK(BM_Fig9LenetSweepOverlapReference)
    ->Unit(benchmark::kMillisecond);

void
BM_Fig9LenetSweepOverlap(benchmark::State &state)
{
    const dnn::Network lenet = dnn::makeLenetC();
    sim::SimConfig cfg;
    cfg.options.overlapGradComm = true;
    const sim::Evaluator ev(lenet, cfg);
    const std::size_t layers = lenet.size();
    core::HierarchicalPlan scaffold = ev.plan(core::Strategy::kHypar);

    for (auto _ : state) {
        double checksum = 0.0;
        for (std::uint64_t h1 = 0; h1 < (1u << layers); ++h1) {
            scaffold.levels[0] = core::levelPlanFromMask(h1, layers);
            ev.sweepNeighborhood(
                scaffold, 3,
                [&](std::uint64_t, const sim::StepMetrics &m) {
                    checksum += m.stepSeconds;
                });
        }
        benchmark::DoNotOptimize(checksum);
    }
}
BENCHMARK(BM_Fig9LenetSweepOverlap)->Unit(benchmark::kMillisecond);

/** Strategy-sweep path: the four named strategies on one Evaluator. */
void
BM_StrategyBatchAlexNetReference(benchmark::State &state)
{
    const dnn::Network alexnet = dnn::modelByName("AlexNet");
    const sim::Evaluator ev(alexnet, sim::SimConfig{});
    const std::vector<core::Strategy> strategies = {
        core::Strategy::kDataParallel, core::Strategy::kModelParallel,
        core::Strategy::kOneWeirdTrick, core::Strategy::kHypar};

    for (auto _ : state) {
        double checksum = 0.0;
        for (const auto s : strategies)
            checksum += ev.evaluate(s).stepSeconds;
        benchmark::DoNotOptimize(checksum);
    }
}
BENCHMARK(BM_StrategyBatchAlexNetReference)
    ->Unit(benchmark::kMicrosecond);

void
BM_StrategyBatchAlexNet(benchmark::State &state)
{
    const dnn::Network alexnet = dnn::modelByName("AlexNet");
    const sim::Evaluator ev(alexnet, sim::SimConfig{});
    const std::vector<core::Strategy> strategies = {
        core::Strategy::kDataParallel, core::Strategy::kModelParallel,
        core::Strategy::kOneWeirdTrick, core::Strategy::kHypar};

    for (auto _ : state) {
        const auto metrics = ev.evaluateBatch(strategies);
        double checksum = 0.0;
        for (const auto &m : metrics)
            checksum += m.stepSeconds;
        benchmark::DoNotOptimize(checksum);
    }
}
BENCHMARK(BM_StrategyBatchAlexNet)->Unit(benchmark::kMicrosecond);

} // namespace
