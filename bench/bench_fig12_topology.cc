/**
 * @file
 * Regenerates Figure 12: normalized performance (to Data Parallelism on
 * the H-tree) of HyPar's plan executed on the torus vs the H-tree for
 * all ten networks plus the geometric mean.
 *
 * Paper: H-tree 3.39x vs torus 2.23x gmean — the binary partition
 * pattern matches the tree, and concentrates on a few torus links.
 */

#include "bench_common.hh"

#include "dnn/model_zoo.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace hypar;

int
main()
{
    bench::banner("H-tree vs torus, HyPar plans", "Figure 12");

    util::Table t({"network", "Torus", "H tree"});
    std::vector<double> torus_gains, tree_gains;
    for (const auto &net : dnn::allModels()) {
        sim::SimConfig tree_cfg = bench::paperConfig();
        sim::SimConfig torus_cfg = bench::paperConfig();
        torus_cfg.topology = sim::TopologyKind::kTorus;

        sim::Evaluator tree(net, tree_cfg);
        sim::Evaluator torus(net, torus_cfg);

        // Normalization baseline: Data Parallelism on the H-tree.
        const double dp_time =
            tree.evaluate(core::Strategy::kDataParallel).stepSeconds;
        const auto plan = tree.plan(core::Strategy::kHypar);

        const double tree_gain = dp_time / tree.evaluate(plan).stepSeconds;
        const double torus_gain =
            dp_time / torus.evaluate(plan).stepSeconds;
        tree_gains.push_back(tree_gain);
        torus_gains.push_back(torus_gain);
        t.addRow({net.name(), bench::ratio(torus_gain),
                  bench::ratio(tree_gain)});
    }
    t.addRow({"Gmean", bench::ratio(util::geomean(torus_gains)),
              bench::ratio(util::geomean(tree_gains))});
    t.print(std::cout);

    std::cout << "\nPaper gmeans: torus 2.23x, H-tree 3.39x.\n";
    return 0;
}
