/**
 * @file
 * Regenerates Figure 8: total communication per training step (GB) of
 * default Model Parallelism, default Data Parallelism and HyPar, per
 * network and geometric mean.
 *
 * The Data Parallelism column matches the paper exactly (the all-dp
 * closed form, see DESIGN.md Section 2): SFC 16.9, Lenet-c 0.0517,
 * VGG-A 15.9, VGG-B 16.0 GB. Paper gmeans: MP 8.88, DP 1.83, HyPar
 * 0.318 GB.
 */

#include "bench_common.hh"

#include "core/comm_model.hh"
#include "core/strategies.hh"
#include "dnn/model_zoo.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace hypar;

int
main()
{
    const auto cfg = bench::paperConfig();
    bench::banner("Total communication per step (GB)", "Figure 8");

    util::Table t({"network", "Model Par.", "Data Par.", "HyPar",
                   "paper DP"});
    const std::vector<std::string> paper_dp = {
        "16.9", "0.0121", "0.0517", "0.0174", "2.00",
        "15.9", "16.0",   "16.6",   "17.2",   "(VGG-E n/a)"};

    std::vector<double> mp_gb, dp_gb, hp_gb;
    std::size_t i = 0;
    for (const auto &net : dnn::allModels()) {
        core::CommModel model(net, cfg.comm);
        const double mp = model.planBytes(
            core::makeModelParallelPlan(net, cfg.levels)) / 1e9;
        const double dp = model.planBytes(
            core::makeDataParallelPlan(net, cfg.levels)) / 1e9;
        const double hp = model.planBytes(
            core::makeHyparPlan(model, cfg.levels)) / 1e9;
        mp_gb.push_back(mp);
        dp_gb.push_back(dp);
        hp_gb.push_back(hp);
        t.addRow({net.name(), bench::sig3(mp), bench::sig3(dp),
                  bench::sig3(hp), paper_dp[i++]});
    }
    t.addRow({"Gmean", bench::sig3(util::geomean(mp_gb)),
              bench::sig3(util::geomean(dp_gb)),
              bench::sig3(util::geomean(hp_gb)), "1.83"});
    t.print(std::cout);

    std::cout << "\nPaper gmeans: MP 8.88 GB, DP 1.83 GB, HyPar 0.318 GB. "
                 "Our MP column runs higher\n(the paper does not specify "
                 "MP's cross-level feature scaling; see DESIGN.md "
                 "Section 4)\nbut preserves the ordering MP >> DP >> "
                 "HyPar for conv networks and MP < DP for SFC.\n";
    return 0;
}
