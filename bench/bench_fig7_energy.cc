/**
 * @file
 * Regenerates Figure 7: energy efficiency (energy saving normalized to
 * default Data Parallelism) of MP, DP and HyPar for the ten networks
 * plus the geometric mean, with the per-component energy breakdown.
 *
 * Paper values for reference: HyPar gmean 1.51x; SFC is the one
 * network where MP beats DP (9.96x) and HyPar edges it out (10.27x).
 */

#include "bench_common.hh"

#include "dnn/model_zoo.hh"
#include "util/stats.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace hypar;

int
main()
{
    const auto cfg = bench::paperConfig();
    bench::banner("Normalized energy efficiency (to Data Parallelism)",
                  "Figure 7");

    util::Table t({"network", "Model Par.", "Data Par.", "HyPar",
                   "DP energy", "HyPar energy", "HyPar comm share"});
    std::vector<double> mp_effs, hp_effs;
    for (const auto &net : dnn::allModels()) {
        const auto report = sim::compareStrategies(net, cfg);
        mp_effs.push_back(report.mpEnergyEff());
        hp_effs.push_back(report.hyparEnergyEff());
        const auto &he = report.hypar.energy;
        t.addRow({net.name(), bench::ratio(report.mpEnergyEff()), "1.00",
                  bench::ratio(report.hyparEnergyEff()),
                  util::formatJoules(report.dataParallel.energy.totalJ()),
                  util::formatJoules(he.totalJ()),
                  bench::ratio(100.0 * he.commJ / he.totalJ()) + "%"});
    }
    t.addRow({"Gmean", bench::ratio(util::geomean(mp_effs)), "1.00",
              bench::ratio(util::geomean(hp_effs)), "-", "-", "-"});
    t.print(std::cout);

    std::cout << "\nPaper: HyPar gmean 1.51x; MP less efficient than DP "
                 "everywhere except SFC.\n";
    return 0;
}
