/**
 * @file
 * Extension study: batch-size sensitivity of the optimal parallelism.
 * Section 6.5.2 motivates evaluating both "large-throughput" (4096)
 * and "good-generalization" (32) batch sizes; this sweep maps the
 * whole regime for representative networks: communication of DP / OWT
 * / HyPar and the plan HyPar picks, as B goes from 8 to 4096.
 *
 * The expected physics: gradient traffic (dp) is batch-invariant while
 * activation traffic (mp) scales with B, so HyPar drifts from
 * mp-heavy plans at small batch toward all-dp at large batch — with
 * the crossover exactly where A(dW) ~ A(F).
 */

#include "bench_common.hh"

#include "core/comm_model.hh"
#include "core/strategies.hh"
#include "dnn/model_zoo.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace hypar;

int
main()
{
    bench::banner("Batch-size sweep (extension)",
                  "Section 3.4 / 6.5.2 motivation");

    for (const auto &name : {"AlexNet", "SFC", "VGG-A"}) {
        dnn::Network net = dnn::modelByName(name);
        std::cout << name << ":\n";
        util::Table t({"batch", "DP comm", "OWT comm", "HyPar comm",
                       "HyPar H1 plan", "mp layers (all levels)"});
        for (std::size_t batch = 8; batch <= 4096; batch *= 4) {
            core::CommConfig cfg;
            cfg.batch = batch;
            core::CommModel model(net, cfg);
            const auto plan = core::makeHyparPlan(model, 4);

            std::size_t mp_count = 0;
            for (const auto &level : plan.levels)
                for (auto p : level)
                    if (p == core::Parallelism::kModel)
                        ++mp_count;

            t.addRow({std::to_string(batch),
                      util::formatBytes(model.planBytes(
                          core::makeDataParallelPlan(net, 4))),
                      util::formatBytes(model.planBytes(
                          core::makeOneWeirdTrickPlan(net, 4))),
                      util::formatBytes(model.planBytes(plan)),
                      core::toBitString(plan.levels[0]),
                      std::to_string(mp_count) + "/" +
                          std::to_string(4 * net.size())});
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "DP communication is batch-invariant (pure gradients); "
                 "mp traffic grows linearly with B,\nso HyPar sheds mp "
                 "choices as the batch grows.\n";
    return 0;
}
