/**
 * @file
 * Serving-tier latency: cold plan request (content-hash the context,
 * build the warm session's CommModel tables, run the joint search)
 * versus a warm cache hit (the same request answered bit-identically
 * from the on-disk plan cache). The headline acceptance number for
 * `hyparc serve` is the warm/cold ratio: a cache hit must be at least
 * an order of magnitude faster than the table construction + search it
 * short-circuits.
 *
 * With an output path argument, writes a google-benchmark-compatible
 * BENCH_serve.json (BM_ServePlan/<model> pairs with
 * BM_ServePlanReference/<model>), so tools/bench_report.py prints the
 * warm-vs-cold speedups for the CI artifact trail.
 */

#include "bench_common.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include <unistd.h>

#include "dnn/model_zoo.hh"
#include "serve/server.hh"
#include "util/table.hh"

using namespace hypar;
namespace fs = std::filesystem;

namespace {

constexpr std::size_t kLevels = 8;
constexpr std::size_t kColdIters = 5;
constexpr std::size_t kWarmIters = 41;

struct Pair
{
    std::string model;
    double coldNs = 0.0; //!< p50 fresh-server miss (build + search)
    double warmNs = 0.0; //!< p50 same-request cache hit
};

double
median(std::vector<double> &samples)
{
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

/** One processBatch round-trip, timed. */
double
timedRequest(serve::Server &server, const std::string &line)
{
    std::ostringstream sink;
    const auto start = std::chrono::steady_clock::now();
    server.processBatch({line}, sink);
    const auto end = std::chrono::steady_clock::now();
    if (sink.str().find("\"ok\":true") == std::string::npos) {
        std::cerr << "bench_serve: request failed: " << sink.str();
        std::exit(1);
    }
    return std::chrono::duration<double, std::nano>(end - start).count();
}

Pair
benchModel(const std::string &model, const fs::path &cacheDir)
{
    // H = 8 (256 accelerators): a serving-scale hierarchy where the
    // joint-search tables the cache short-circuits actually dominate
    // the request (at the paper's H = 4 the search is only a few
    // times the protocol overhead).
    const std::string request =
        "{\"op\":\"plan\",\"model\":\"" + model +
        "\",\"strategy\":\"optimal\",\"levels\":" +
        std::to_string(kLevels) + "}";
    serve::ServeOptions opts;
    opts.cacheDir = cacheDir;

    Pair pair;
    pair.model = model;

    // Cold: a fresh server (no warm sessions) over an empty cache —
    // the full context hash + session build + joint search path.
    std::vector<double> cold;
    for (std::size_t i = 0; i < kColdIters; ++i) {
        serve::Server scratch(opts);
        scratch.cache().evict();
        cold.push_back(timedRequest(scratch, request));
    }
    pair.coldNs = median(cold);

    // Warm: one more cold store, then the same request repeatedly
    // against fresh servers — every hit exercises the on-disk lookup,
    // not an in-memory short-circuit.
    {
        serve::Server seed(opts);
        seed.cache().evict();
        timedRequest(seed, request);
    }
    std::vector<double> warm;
    for (std::size_t i = 0; i < kWarmIters; ++i) {
        serve::Server scratch(opts);
        warm.push_back(timedRequest(scratch, request));
    }
    pair.warmNs = median(warm);
    return pair;
}

void
writeJson(const std::vector<Pair> &pairs, std::ostream &os)
{
    char buf[192];
    os << "{\"context\":{\"bench\":\"serve\",\"cold_iters\":"
       << kColdIters << ",\"warm_iters\":" << kWarmIters
       << "},\"benchmarks\":[";
    bool first = true;
    for (const Pair &p : pairs) {
        // Reference = cold search; optimized = warm cache hit, so
        // bench_report.py's reference/optimized ratio is the speedup.
        std::snprintf(buf, sizeof(buf),
                      "%s{\"name\":\"BM_ServePlanReference/%s\","
                      "\"run_type\":\"iteration\",\"real_time\":%.17g,"
                      "\"cpu_time\":%.17g,\"time_unit\":\"ns\"}",
                      first ? "" : ",", p.model.c_str(), p.coldNs,
                      p.coldNs);
        os << buf;
        std::snprintf(buf, sizeof(buf),
                      ",{\"name\":\"BM_ServePlan/%s\","
                      "\"run_type\":\"iteration\",\"real_time\":%.17g,"
                      "\"cpu_time\":%.17g,\"time_unit\":\"ns\"}",
                      p.model.c_str(), p.warmNs, p.warmNs);
        os << buf;
        first = false;
    }
    os << "]}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Serving tier: warm plan cache vs cold search",
                  "the hyparc serve acceptance ratio");

    const fs::path cacheDir =
        fs::temp_directory_path() /
        ("hyparc_bench_serve_" +
         std::to_string(static_cast<unsigned>(::getpid())));
    fs::remove_all(cacheDir);

    std::vector<Pair> pairs;
    for (const dnn::Network &net : dnn::allModels())
        pairs.push_back(benchModel(net.name(), cacheDir));
    fs::remove_all(cacheDir);

    util::Table t({"model", "cold (us)", "warm hit (us)", "speedup"});
    double worst = 0.0;
    for (const Pair &p : pairs) {
        const double speedup = p.coldNs / p.warmNs;
        worst = worst == 0.0 ? speedup : std::min(worst, speedup);
        t.addRow({p.model, bench::sig3(1e-3 * p.coldNs),
                  bench::sig3(1e-3 * p.warmNs), bench::ratio(speedup)});
    }
    t.print(std::cout);
    std::cout << "\ncold = fresh server, empty cache (session build + "
                 "joint search); warm = on-disk cache hit, p50 over "
              << kWarmIters << " requests.\n"
              << "minimum warm speedup: " << bench::ratio(worst)
              << " (acceptance floor: 10x)\n";

    if (argc > 1) {
        std::ofstream out(argv[1]);
        writeJson(pairs, out);
        std::cout << "\nwrote " << argv[1] << "\n";
    }
    return worst >= 10.0 ? 0 : 1;
}
