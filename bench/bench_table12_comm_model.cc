/**
 * @file
 * Regenerates Tables 1 & 2 and the worked communication examples of
 * Sections 3.1 / 3.4 / 6.5.2: intra-layer amounts for dp/mp, the
 * 56 KB vs 25.6 KB fc example, the 200 KB vs 819 KB conv example, and
 * the conv5/fc3 element counts behind the "what is wrong with the
 * Trick" discussion.
 */

#include "bench_common.hh"

#include "core/comm_model.hh"
#include "dnn/builder.hh"
#include "dnn/model_zoo.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace hypar;
using core::CommConfig;
using core::CommModel;
using core::History;
using core::Parallelism;

namespace {

void
tableOneAndTwo()
{
    bench::banner("Intra/inter-layer communication model",
                  "Table 1 and Table 2");
    util::Table t1({"parallelism", "intra-layer communication"});
    t1.addRow({"dp", "A(dW_l)"});
    t1.addRow({"mp", "A(F_{l+1})"});
    t1.print(std::cout);

    std::cout << "\n";
    util::Table t2({"transition", "inter-layer communication"});
    t2.addRow({"dp-dp", "0"});
    t2.addRow({"dp-mp", "0.25 A(F_{l+1}) + 0.25 A(E_{l+1})"});
    t2.addRow({"mp-mp", "0.5 A(E_{l+1})"});
    t2.addRow({"mp-dp", "0.5 A(E_{l+1})"});
    t2.print(std::cout);
}

void
workedExamples()
{
    bench::banner("Worked examples, batch 32, two accelerators",
                  "Section 3.1 / 3.4");

    CommConfig cfg;
    cfg.batch = 32;

    dnn::Network fc = dnn::NetworkBuilder("fc 70->100", {70, 1, 1})
                          .fc("fc", 100)
                          .build();
    dnn::Network conv =
        dnn::NetworkBuilder("conv 12x12x20 -> 8x8x50", {20, 12, 12})
            .conv("conv", 50, 5)
            .build();

    util::Table t({"layer", "dp intra", "mp intra", "paper"});
    for (const auto *net : {&fc, &conv}) {
        CommModel model(*net, cfg);
        History hist(1);
        t.addRow({net->name(),
                  util::formatBytes(
                      model.intraBytes(0, Parallelism::kData, hist)),
                  util::formatBytes(
                      model.intraBytes(0, Parallelism::kModel, hist)),
                  net == &fc ? "56 KB / 25.6 KB" : "200 KB / 819 KB"});
    }
    t.print(std::cout);
}

void
trickAmounts()
{
    bench::banner("Element counts behind the Trick analysis",
                  "Section 6.5.2");

    dnn::Network vgg_e = dnn::makeVggE();
    util::Table t({"layer", "batch", "A(dW) elems", "A(F_l+1) elems",
                   "paper"});

    {
        CommConfig cfg;
        cfg.batch = 32;
        CommModel model(vgg_e, cfg);
        const auto conv5 = vgg_e.layerIndex("conv5_4");
        t.addRow({"conv5 (b32)", "32",
                  bench::sig3(model.weightBytes(conv5) / 4),
                  bench::sig3(model.outRawBytes(conv5) / 4),
                  "2,359,296 / 3,211,264"});
    }
    {
        CommConfig cfg;
        cfg.batch = 4096;
        CommModel model(vgg_e, cfg);
        const auto fc3 = vgg_e.layerIndex("fc3");
        t.addRow({"fc3 (b4096)", "4096",
                  bench::sig3(model.weightBytes(fc3) / 4),
                  bench::sig3(model.outRawBytes(fc3) / 4),
                  "4,096,000 / 4,096,000"});
    }
    t.print(std::cout);

    std::cout << "\nconv5@b32: A(dW) < A(F): dp is the cheaper intra "
                 "choice at the top level;\nfc3: tie on intra, broken "
                 "by dp-dp's free inter-layer transition -- the Trick\n"
                 "hard-codes mp and loses (Section 6.5.2).\n";
}

} // namespace

int
main()
{
    tableOneAndTwo();
    workedExamples();
    trickAmounts();
    return 0;
}
