/**
 * @file
 * Fault-tolerance curves: mean step time of Lenet-c on degraded
 * H-tree and torus arrays as the component failure rate grows from 0
 * to 30%, comparing the pristine-optimal plan executed as-is
 * ("static") against a per-fault-map re-planned layout ("replanned").
 *
 * Not a paper figure — HyPar assumes a healthy array — but the
 * natural robustness companion to Figure 12: the same slowest-member
 * semantics that price the hierarchy also price its failures.
 *
 * With an output path argument, also writes the table as
 * BENCH_faults.json for the CI artifact trail.
 */

#include "bench_common.hh"

#include <fstream>

#include "arch/fault_map.hh"
#include "core/optimal_partitioner.hh"
#include "dnn/model_zoo.hh"
#include "util/table.hh"

using namespace hypar;

namespace {

core::HierarchicalPlan
optimalPlan(const sim::Evaluator &ev)
{
    return core::OptimalPartitioner(ev.model())
        .partition(ev.config().levels)
        .plan;
}

constexpr std::size_t kRatePoints = 7;
constexpr double kMaxRate = 0.3;
constexpr std::size_t kSamples = 4;
constexpr std::uint64_t kSeed = 0;

struct Curve
{
    std::string topology;
    std::vector<double> rates;
    std::vector<double> staticSeconds;
    std::vector<double> replannedSeconds;
};

Curve
sweepTopology(const dnn::Network &net, sim::TopologyKind kind,
              const std::string &name)
{
    sim::SimConfig cfg = bench::paperConfig();
    cfg.topology = kind;

    sim::Evaluator pristine(net, cfg);
    const std::size_t nodes = pristine.topology().numNodes();
    const std::size_t links = pristine.topology().numLinks();
    const auto base_plan = optimalPlan(pristine);

    Curve curve;
    curve.topology = name;
    for (std::size_t ri = 0; ri < kRatePoints; ++ri) {
        const double rate = kMaxRate * static_cast<double>(ri) /
                            static_cast<double>(kRatePoints - 1);
        double static_sum = 0.0;
        double replanned_sum = 0.0;
        for (std::size_t k = 0; k < kSamples; ++k) {
            sim::SimConfig sample = cfg;
            sample.faults = arch::sampleFaultMap(
                rate, nodes, links,
                arch::mixSeed(kSeed, ri * kSamples + k));
            sim::Evaluator ev(net, sample);
            static_sum += ev.evaluate(base_plan).stepSeconds;
            replanned_sum += ev.evaluate(optimalPlan(ev)).stepSeconds;
        }
        curve.rates.push_back(rate);
        curve.staticSeconds.push_back(
            static_sum / static_cast<double>(kSamples));
        curve.replannedSeconds.push_back(
            replanned_sum / static_cast<double>(kSamples));
    }
    return curve;
}

void
writeJson(const std::vector<Curve> &curves, std::ostream &os)
{
    char buf[160];
    os << "{\"bench\":\"faults\",\"model\":\"Lenet-c\",\"samples\":"
       << kSamples << ",\"seed\":" << kSeed << ",\"curves\":[";
    for (std::size_t c = 0; c < curves.size(); ++c) {
        os << (c == 0 ? "" : ",") << "{\"topology\":\""
           << curves[c].topology << "\",\"points\":[";
        for (std::size_t i = 0; i < curves[c].rates.size(); ++i) {
            std::snprintf(
                buf, sizeof(buf),
                "{\"rate\":%.6g,\"static_step_seconds\":%.17g,"
                "\"replanned_step_seconds\":%.17g}",
                curves[c].rates[i], curves[c].staticSeconds[i],
                curves[c].replannedSeconds[i]);
            os << (i == 0 ? "" : ",") << buf;
        }
        os << "]}";
    }
    os << "]}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Fault-tolerant planning, Lenet-c",
                  "robustness companion to Figure 12");

    const dnn::Network net = dnn::makeLenetC();
    const std::vector<Curve> curves = {
        sweepTopology(net, sim::TopologyKind::kHTree, "htree"),
        sweepTopology(net, sim::TopologyKind::kTorus, "torus"),
    };

    for (const auto &curve : curves) {
        util::Table t({"rate", "static (ms)", "replanned (ms)",
                       "recovery"});
        for (std::size_t i = 0; i < curve.rates.size(); ++i)
            t.addRow({bench::ratio(curve.rates[i]),
                      bench::sig3(1e3 * curve.staticSeconds[i]),
                      bench::sig3(1e3 * curve.replannedSeconds[i]),
                      bench::ratio(curve.staticSeconds[i] /
                                   curve.replannedSeconds[i])});
        std::cout << curve.topology << " x16:\n";
        t.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "recovery = static / replanned mean step time over "
              << kSamples << " fault maps per rate point.\n";

    if (argc > 1) {
        std::ofstream out(argv[1]);
        if (!out) {
            std::cerr << "cannot write '" << argv[1] << "'\n";
            return 1;
        }
        writeJson(curves, out);
        std::cout << "Wrote " << argv[1] << "\n";
    }
    return 0;
}
