/**
 * @file
 * Seed-deterministic series-parallel DAG generator for the randomized
 * differential suites (tests/test_dag_differential.cc).
 *
 * Same philosophy as arch::sampleFaultMap: a splitmix64 stream keyed
 * only by the caller's seed, so a failing trial reproduces from its
 * seed alone on any platform — no std::mt19937 distribution quirks.
 *
 * The generator builds a two-terminal series-parallel network by
 * recursing over the composition grammar (path | series | parallel)
 * and emitting fc layers through NetworkBuilder in topological order:
 *
 *   - every emitted layer lists its predecessors explicitly via
 *     edge(), so the builder's implicit chain wiring never applies;
 *   - a parallel composition forces all branch tails to one width
 *     (join inputs must be elementwise-summable) and may use at most
 *     one direct source->join edge (a second would be a duplicate);
 *   - the top-level composition is always parallel, so the result is
 *     never a chain;
 *   - widths stay <= 64 and layer counts <= 9, keeping every byte
 *     amount a small integer times a power-of-two word size (sums
 *     stay exact in double) and keeping H*L inside the flat
 *     enumeration oracle's 24-bit cap at H = 2..3.
 */

#ifndef HYPAR_TESTS_SUPPORT_SP_DAG_GEN_HH
#define HYPAR_TESTS_SUPPORT_SP_DAG_GEN_HH

#include <cstdint>
#include <string>

#include "core/comm_model.hh"
#include "dnn/builder.hh"
#include "dnn/network.hh"

namespace hypar::tests {

/** splitmix64: the same finalizer arch::mixSeed uses. */
struct SplitMix64
{
    std::uint64_t state;

    std::uint64_t next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, n). */
    std::uint64_t below(std::uint64_t n) { return next() % n; }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    bool coin() { return (next() & 1) != 0; }
};

namespace detail {

inline std::size_t
randWidth(SplitMix64 &rng)
{
    return static_cast<std::size_t>(rng.range(1, 64));
}

/**
 * Emit a series-parallel component whose source is the already-emitted
 * layer `src` (fc, output width `src_width`) and whose sink is a new
 * fc layer of width `out_width`. Returns the sink's name.
 *
 * `budget` counts layers still allowed. Invariant: every call is made
 * with budget >= 1 and spends between 1 and budget layers; composite
 * cases reserve the later obligations (join layer, second component)
 * before recursing so no sibling can drain the budget below a
 * pending mandatory layer.
 */
inline std::string
emitComponent(dnn::NetworkBuilder &b, SplitMix64 &rng,
              const std::string &src, std::size_t src_width,
              std::size_t out_width, std::size_t depth,
              std::size_t &budget, std::size_t &counter)
{
    const auto fresh = [&counter] {
        return "L" + std::to_string(counter++);
    };

    // Parallel composition: two branches src -> join, one of which may
    // be the direct edge (width permitting). Needs >= 4 spare layers
    // (branch tail x2 + join, with one to spare) to be worth it.
    if (depth > 0 && budget >= 4 && rng.coin()) {
        const bool direct = rng.coin();
        const std::size_t branch_width =
            direct ? src_width : randWidth(rng);
        --budget; // reserve the join layer
        std::string tail_a = src;
        if (!direct) {
            --budget; // reserve tail_b's minimum path
            tail_a = emitComponent(b, rng, src, src_width, branch_width,
                                   depth - 1, budget, counter);
            ++budget; // release the reservation
        }
        const std::string tail_b =
            emitComponent(b, rng, src, src_width, branch_width,
                          depth - 1, budget, counter);
        const std::string join = fresh();
        b.fc(join, out_width).edge(tail_a, join).edge(tail_b, join);
        return join;
    }

    // Series composition of two components, resources permitting.
    if (depth > 0 && budget >= 3 && rng.coin()) {
        const std::size_t mid_width = randWidth(rng);
        --budget; // reserve the second component's minimum path
        const std::string mid =
            emitComponent(b, rng, src, src_width, mid_width, depth - 1,
                          budget, counter);
        ++budget; // release the reservation
        return emitComponent(b, rng, mid, mid_width, out_width,
                             depth - 1, budget, counter);
    }

    // Base case: a path of 1..2 fc layers.
    const std::size_t hops =
        budget >= 2 && rng.coin() ? std::size_t{2} : std::size_t{1};
    std::string prev = src;
    for (std::size_t i = 0; i < hops; ++i) {
        const std::size_t width =
            i + 1 == hops ? out_width : randWidth(rng);
        const std::string name = fresh();
        --budget;
        b.fc(name, width).edge(prev, name);
        prev = name;
    }
    return prev;
}

} // namespace detail

/**
 * Seed-deterministic series-parallel DAG of 3..9 fc layers. Never a
 * chain (the top-level composition is parallel). The same seed always
 * produces the same network, layer for layer and edge for edge.
 */
inline dnn::Network
makeRandomSpDag(std::uint64_t seed)
{
    SplitMix64 rng{seed ^ 0x5bd1e995u};
    // Warm the stream so nearby seeds diverge immediately.
    rng.next();

    const std::size_t in_width = detail::randWidth(rng);
    const std::size_t src_width = detail::randWidth(rng);
    const std::size_t out_width = detail::randWidth(rng);

    dnn::NetworkBuilder b("sp-dag-" + std::to_string(seed),
                          dnn::SampleShape{in_width, 1, 1});
    b.fc("L0", src_width);
    std::size_t budget = rng.range(4, 8); // layers beyond L0, join incl.
    std::size_t counter = 1;

    // Force a parallel top-level composition so the network is a real
    // DAG: two branches from L0 into a join of width out_width. Same
    // reservation discipline as emitComponent's parallel case.
    const bool direct = rng.coin();
    const std::size_t branch_width =
        direct ? src_width : detail::randWidth(rng);
    --budget; // reserve the join layer
    std::string tail_a = "L0";
    if (!direct) {
        --budget; // reserve tail_b's minimum path
        tail_a = detail::emitComponent(b, rng, "L0", src_width,
                                       branch_width, 2, budget, counter);
        ++budget;
    }
    const std::string tail_b = detail::emitComponent(
        b, rng, "L0", src_width, branch_width, 2, budget, counter);
    const std::string join = "L" + std::to_string(counter++);
    b.fc(join, out_width).edge(tail_a, join).edge(tail_b, join);
    return b.build();
}

/**
 * Seed-deterministic CommConfig drawn from exactly-representable
 * values: integer batch, power-of-two word sizes and exchange factors,
 * power-of-two level penalties. Keeping every coefficient dyadic keeps
 * the cost sums order-independent in double, which is what lets the
 * differential suite demand bit-equality (not closeness) between the
 * per-component DP and the flat enumeration oracle.
 */
inline core::CommConfig
makeRandomSpConfig(std::uint64_t seed, std::size_t levels)
{
    SplitMix64 rng{seed ^ 0xc2b2ae35u};
    rng.next();

    core::CommConfig cfg;
    cfg.batch = static_cast<std::size_t>(rng.range(1, 64));
    const double words[3] = {1.0, 2.0, 4.0};
    cfg.wordBytes = words[rng.below(3)];
    cfg.exchangeFactor = rng.coin() ? 2.0 : 1.0;
    cfg.scaling = rng.coin() ? core::CommConfig::Scaling::kPartitioned
                             : core::CommConfig::Scaling::kNone;
    if (rng.coin()) {
        const double penalties[4] = {1.0, 2.0, 4.0, 0.5};
        cfg.levelPenalties.resize(levels);
        for (auto &p : cfg.levelPenalties)
            p = penalties[rng.below(4)];
    }
    return cfg;
}

} // namespace hypar::tests

#endif // HYPAR_TESTS_SUPPORT_SP_DAG_GEN_HH
