/**
 * @file
 * End-to-end integration tests: the full pipeline (model zoo ->
 * communication model -> Algorithm 2 -> event-driven simulation ->
 * figures' aggregate claims) exercised exactly the way the benchmark
 * harness drives it.
 */

#include <gtest/gtest.h>

#include "core/brute_force.hh"
#include "core/hierarchical_partitioner.hh"
#include "dnn/builder.hh"
#include "dnn/model_zoo.hh"
#include "sim/evaluator.hh"
#include "util/stats.hh"

using namespace hypar;

TEST(Integration, Figure6ShapeAcrossTheZoo)
{
    // Fig. 6's qualitative content: HyPar >= DP for every network;
    // MP < DP for all conv networks but > DP for SFC; the geometric
    // mean HyPar speedup is well above 1.
    std::vector<double> hypar_gains;
    for (const auto &net : dnn::allModels()) {
        const auto report = sim::compareStrategies(net, sim::SimConfig{});
        EXPECT_GE(report.hyparSpeedup(), 1.0 - 1e-9) << net.name();
        hypar_gains.push_back(report.hyparSpeedup());

        if (net.name() == "SFC") {
            EXPECT_GT(report.mpSpeedup(), 1.0);
        } else if (net.hasConv()) {
            EXPECT_LT(report.mpSpeedup(), 1.0) << net.name();
        }
    }
    EXPECT_GT(util::geomean(hypar_gains), 1.5);
}

TEST(Integration, Figure7EnergyShape)
{
    // Fig. 7: HyPar's energy efficiency >= 1 vs DP everywhere, and the
    // mean improvement is materially above 1.
    std::vector<double> effs;
    for (const auto &net : dnn::allModels()) {
        const auto report = sim::compareStrategies(net, sim::SimConfig{});
        EXPECT_GE(report.hyparEnergyEff(), 1.0 - 1e-9) << net.name();
        effs.push_back(report.hyparEnergyEff());
    }
    EXPECT_GT(util::geomean(effs), 1.1);
}

TEST(Integration, Figure11ScalabilityShape)
{
    // Fig. 11: HyPar beats DP at every array size, and DP's gain curve
    // flattens or declines at large arrays while HyPar keeps growing
    // far longer.
    dnn::Network vgg_a = dnn::makeVggA();

    sim::SimConfig solo;
    solo.levels = 0;
    const double t1 =
        sim::Evaluator(vgg_a, solo)
            .evaluate(core::Strategy::kDataParallel)
            .stepSeconds;

    std::vector<double> dp_gain, hp_gain;
    for (std::size_t levels = 1; levels <= 6; ++levels) {
        sim::SimConfig cfg;
        cfg.levels = levels;
        sim::Evaluator ev(vgg_a, cfg);
        dp_gain.push_back(
            t1 / ev.evaluate(core::Strategy::kDataParallel).stepSeconds);
        hp_gain.push_back(
            t1 / ev.evaluate(core::Strategy::kHypar).stepSeconds);
    }

    for (std::size_t i = 0; i < dp_gain.size(); ++i)
        EXPECT_GT(hp_gain[i], dp_gain[i]) << "levels " << (i + 1);

    // DP saturates: the 64-accelerator gain is no better than ~1.15x
    // its 16-accelerator gain, while HyPar still improves markedly.
    EXPECT_LT(dp_gain[5], dp_gain[3] * 1.15);
    EXPECT_GT(hp_gain[5], hp_gain[3] * 1.3);
}

TEST(Integration, Figure13HyparVsTrickOnIsolatedLayers)
{
    // Section 6.5.2's setup: single layers conv5 / fc3 of VGG-E under
    // batch 32 and 4096, hierarchy levels 2..4. HyPar must never lose
    // to the Trick, and must strictly beat it for fc3@b4096 (the case
    // the paper dissects: A(dW) == A(F), so dp's free dp-dp transition
    // should win, but the Trick hard-codes mp).
    dnn::Network conv5 = dnn::NetworkBuilder("conv5", {512, 14, 14})
                             .conv("conv5", 512, 3).pad(1)
                             .build();
    dnn::Network fc3 = dnn::NetworkBuilder("fc3", {4096, 1, 1})
                           .fc("fc3", 1000)
                           .build();

    for (std::size_t levels : {2u, 3u, 4u}) {
        for (std::size_t batch : {32u, 4096u}) {
            for (const auto *net : {&conv5, &fc3}) {
                sim::SimConfig cfg;
                cfg.levels = levels;
                cfg.comm.batch = batch;
                sim::Evaluator ev(*net, cfg);
                const auto trick =
                    ev.evaluate(core::Strategy::kOneWeirdTrick);
                const auto hypar = ev.evaluate(core::Strategy::kHypar);
                EXPECT_LE(hypar.stepSeconds,
                          trick.stepSeconds * (1 + 1e-9))
                    << net->name() << " b" << batch << " h" << levels;
            }
        }
    }

    sim::SimConfig cfg;
    cfg.levels = 4;
    cfg.comm.batch = 4096;
    sim::Evaluator ev(fc3, cfg);
    EXPECT_LT(ev.evaluate(core::Strategy::kHypar).stepSeconds,
              ev.evaluate(core::Strategy::kOneWeirdTrick).stepSeconds);
}

TEST(Integration, Fig9SweepPeakNearHyparForLenet)
{
    // Fig. 9/10: sweeping H1 and H4 of Lenet-c (H2/H3 fixed at HyPar's
    // choice), HyPar lands essentially at the performance peak. As in
    // the paper's own Fig. 10 (5.05x peak vs 4.97x HyPar), HyPar
    // optimizes total communication as a *proxy* for performance, so a
    // small gap to the swept optimum is expected; we bound it at 5%.
    dnn::Network lenet = dnn::makeLenetC();
    sim::SimConfig cfg;
    sim::Evaluator ev(lenet, cfg);
    const auto hypar_plan = ev.plan(core::Strategy::kHypar);
    const double hypar_time = ev.evaluate(hypar_plan).stepSeconds;

    double best_time = 1e100;
    core::sweepLevelMasks(
        hypar_plan, 0, [&](std::uint64_t, const auto &outer) {
            core::sweepLevelMasks(
                outer, 3, [&](std::uint64_t, const auto &plan) {
                    best_time =
                        std::min(best_time, ev.evaluate(plan).stepSeconds);
                });
        });

    EXPECT_LE(best_time, hypar_time * (1 + 1e-9)); // peak can't be worse
    EXPECT_LE(hypar_time, best_time * 1.05);       // ...but HyPar is close

    // And HyPar still clearly beats the default Data Parallelism.
    const double dp_time =
        ev.evaluate(core::Strategy::kDataParallel).stepSeconds;
    EXPECT_LT(hypar_time, dp_time);
}

TEST(Integration, BruteForceGlobalOptimumWithinReachOfGreedy)
{
    // On a small network where the full (2^L)^H space is enumerable,
    // the greedy hierarchical search lands within 5% of the global
    // optimum's communication (it is exactly optimal per level).
    dnn::Network lenet = dnn::makeLenetC();
    core::CommModel model(lenet, core::CommConfig{});
    const auto greedy =
        core::HierarchicalPartitioner(model).partition(3);
    const auto global = core::bruteForceHierarchical(model, 3);
    EXPECT_LE(global.commBytes, greedy.commBytes * (1 + 1e-12));
    EXPECT_LE(greedy.commBytes, global.commBytes * 1.05);
}
