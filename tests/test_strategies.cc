/**
 * @file
 * Tests for the baseline strategies and plan utilities.
 */

#include <gtest/gtest.h>

#include "core/brute_force.hh"
#include "core/comm_model.hh"
#include "core/strategies.hh"
#include "dnn/model_zoo.hh"
#include "util/logging.hh"

using namespace hypar;
using core::Parallelism;
using core::Strategy;

TEST(Strategies, UniformPlansHaveRightShape)
{
    dnn::Network net = dnn::makeAlexNet();
    const auto dp = core::makeDataParallelPlan(net, 4);
    EXPECT_EQ(dp.numLevels(), 4u);
    EXPECT_EQ(dp.numLayers(), net.size());
    EXPECT_EQ(dp.numAccelerators(), 16u);
    for (const auto &level : dp.levels)
        for (auto p : level)
            EXPECT_EQ(p, Parallelism::kData);

    const auto mp = core::makeModelParallelPlan(net, 3);
    EXPECT_EQ(mp.numAccelerators(), 8u);
    for (const auto &level : mp.levels)
        for (auto p : level)
            EXPECT_EQ(p, Parallelism::kModel);
}

TEST(Strategies, OneWeirdTrickSplitsByLayerKind)
{
    dnn::Network net = dnn::makeAlexNet();
    const auto owt = core::makeOneWeirdTrickPlan(net, 4);
    for (const auto &level : owt.levels) {
        for (std::size_t l = 0; l < net.size(); ++l) {
            const Parallelism expect = net.layer(l).isConv()
                                           ? Parallelism::kData
                                           : Parallelism::kModel;
            EXPECT_EQ(level[l], expect) << net.layer(l).name;
        }
    }
}

TEST(Strategies, MakePlanDispatch)
{
    dnn::Network net = dnn::makeLenetC();
    core::CommModel model(net, core::CommConfig{});
    EXPECT_EQ(core::makePlan(Strategy::kDataParallel, model, 2),
              core::makeDataParallelPlan(net, 2));
    EXPECT_EQ(core::makePlan(Strategy::kModelParallel, model, 2),
              core::makeModelParallelPlan(net, 2));
    EXPECT_EQ(core::makePlan(Strategy::kOneWeirdTrick, model, 2),
              core::makeOneWeirdTrickPlan(net, 2));
    // HyPar's plan must differ from all-dp for Lenet-c (Fig. 5(c)).
    EXPECT_NE(core::makePlan(Strategy::kHypar, model, 4),
              core::makeDataParallelPlan(net, 4));
}

TEST(Strategies, Names)
{
    EXPECT_STREQ(core::toString(Strategy::kDataParallel),
                 "Data Parallelism");
    EXPECT_STREQ(core::toString(Strategy::kModelParallel),
                 "Model Parallelism");
    EXPECT_STREQ(core::toString(Strategy::kOneWeirdTrick),
                 "One Weird Trick");
    EXPECT_STREQ(core::toString(Strategy::kHypar), "HyPar");
}

TEST(PlanUtils, MaskRoundTrip)
{
    const auto plan = core::levelPlanFromMask(0b0110, 4);
    EXPECT_EQ(plan[0], Parallelism::kData);
    EXPECT_EQ(plan[1], Parallelism::kModel);
    EXPECT_EQ(plan[2], Parallelism::kModel);
    EXPECT_EQ(plan[3], Parallelism::kData);
    // Bit 0 is layer 0 and prints leftmost.
    EXPECT_EQ(core::toBitString(plan), "0110");
    EXPECT_THROW((void)core::levelPlanFromMask(0, 64), util::FatalError);
}

TEST(PlanUtils, ToStringListsLevels)
{
    const auto plan = core::uniformPlan(2, 2, Parallelism::kModel);
    const std::string s = core::toString(plan);
    EXPECT_NE(s.find("H1: mp mp"), std::string::npos);
    EXPECT_NE(s.find("H2: mp mp"), std::string::npos);
}

TEST(PlanUtils, ValidatePlanChecksArity)
{
    dnn::Network net = dnn::makeLenetC();
    auto plan = core::makeDataParallelPlan(net, 2);
    EXPECT_NO_THROW(core::validatePlan(plan, net));
    plan.levels[1].pop_back();
    EXPECT_THROW(core::validatePlan(plan, net), util::FatalError);
}

TEST(PlanUtils, SweepLevelMasksVisitsAllMasks)
{
    dnn::Network net = dnn::makeLenetC();
    const auto base = core::makeDataParallelPlan(net, 2);
    std::size_t count = 0;
    std::uint64_t last_mask = 0;
    core::sweepLevelMasks(
        base, 1, [&](std::uint64_t mask, const core::HierarchicalPlan &p) {
            ++count;
            last_mask = mask;
            // Level 0 untouched.
            for (auto par : p.levels[0])
                EXPECT_EQ(par, Parallelism::kData);
            EXPECT_EQ(core::levelPlanFromMask(mask, net.size()),
                      p.levels[1]);
        });
    EXPECT_EQ(count, 16u); // 2^4 masks
    EXPECT_EQ(last_mask, 15u);
    EXPECT_THROW(core::sweepLevelMasks(base, 5, [](auto, const auto &) {}),
                 util::FatalError);
}

TEST(History, CountsPerLayer)
{
    core::History hist(2);
    EXPECT_EQ(hist.depth(), 0u);
    hist.push({Parallelism::kData, Parallelism::kModel});
    hist.push({Parallelism::kData, Parallelism::kData});
    EXPECT_EQ(hist.depth(), 2u);
    EXPECT_EQ(hist.dpCount(0), 2u);
    EXPECT_EQ(hist.mpCount(0), 0u);
    EXPECT_EQ(hist.dpCount(1), 1u);
    EXPECT_EQ(hist.mpCount(1), 1u);
    EXPECT_THROW(hist.dpCount(2), util::PanicError);
}
