/**
 * @file
 * Unit tests for the dnn module: shape inference, layer amounts, the
 * builder, and validation errors.
 */

#include <gtest/gtest.h>

#include "dnn/builder.hh"
#include "dnn/network.hh"
#include "util/logging.hh"

using namespace hypar;
using dnn::Activation;
using dnn::Network;
using dnn::NetworkBuilder;

TEST(ShapeInference, ConvBasic)
{
    Network net = NetworkBuilder("n", {1, 28, 28})
                      .conv("c", 20, 5)
                      .build();
    const auto &layer = net.layer(0);
    EXPECT_EQ(layer.in.c, 1u);
    EXPECT_EQ(layer.outRaw.c, 20u);
    EXPECT_EQ(layer.outRaw.h, 24u);
    EXPECT_EQ(layer.outRaw.w, 24u);
    EXPECT_EQ(layer.outPooled, layer.outRaw); // no pool
}

TEST(ShapeInference, ConvStridePad)
{
    // AlexNet conv1: 227x227, 11x11 kernel, stride 4 -> 55x55.
    Network net = NetworkBuilder("n", {3, 227, 227})
                      .conv("c", 96, 11).stride(4)
                      .build();
    EXPECT_EQ(net.layer(0).outRaw.h, 55u);

    // Same-padding 3x3: 224 -> 224.
    Network vggish = NetworkBuilder("n", {3, 224, 224})
                         .conv("c", 64, 3).pad(1)
                         .build();
    EXPECT_EQ(vggish.layer(0).outRaw.h, 224u);
}

TEST(ShapeInference, PoolWindowAndStride)
{
    // 3x3 pool with stride 2 on 55x55 -> 27x27 (AlexNet style).
    Network net = NetworkBuilder("n", {3, 227, 227})
                      .conv("c", 96, 11).stride(4).maxPool(3, 2)
                      .build();
    EXPECT_EQ(net.layer(0).outPooled.h, 27u);
    EXPECT_EQ(net.layer(0).outPooled.c, 96u);
}

TEST(ShapeInference, FcFlattensInput)
{
    Network net = NetworkBuilder("n", {1, 28, 28})
                      .conv("c", 20, 5).maxPool(2)
                      .fc("f", 500)
                      .build();
    // conv: 24x24x20 pooled to 12x12x20 = 2880 flattened inputs.
    EXPECT_EQ(net.layer(1).fcInputs(), 2880u);
    EXPECT_EQ(net.layer(1).outRaw.c, 500u);
    EXPECT_EQ(net.layer(1).outRaw.h, 1u);
}

TEST(LayerAmounts, WeightAndMacCounts)
{
    Network net = NetworkBuilder("n", {20, 12, 12})
                      .conv("c", 50, 5)
                      .fc("f", 10)
                      .build();
    const auto &conv = net.layer(0);
    EXPECT_EQ(conv.weightElems(), 5u * 5 * 20 * 50);
    // MACs = Hout*Wout*Cout*K*K*Cin = 8*8*50*5*5*20.
    EXPECT_DOUBLE_EQ(conv.fwdMacsPerSample(), 8.0 * 8 * 50 * 25 * 20);

    const auto &fc = net.layer(1);
    EXPECT_EQ(fc.weightElems(), 8u * 8 * 50 * 10);
    EXPECT_DOUBLE_EQ(fc.fwdMacsPerSample(), 8.0 * 8 * 50 * 10);
}

TEST(Network, TotalsAndLookup)
{
    Network net = NetworkBuilder("n", {1, 28, 28})
                      .conv("c1", 20, 5).maxPool(2)
                      .fc("f1", 10)
                      .build();
    EXPECT_EQ(net.size(), 2u);
    EXPECT_EQ(net.layerIndex("f1"), 1u);
    EXPECT_THROW(net.layerIndex("nope"), util::FatalError);
    EXPECT_EQ(net.totalParamElems(),
              net.layer(0).weightElems() + net.layer(1).weightElems());
    EXPECT_TRUE(net.hasConv());
    EXPECT_TRUE(net.hasFc());
    EXPECT_THROW(net.layer(2), util::FatalError);
}

TEST(Network, DescribeMentionsEveryLayer)
{
    Network net = NetworkBuilder("net", {1, 28, 28})
                      .conv("alpha", 4, 3)
                      .fc("omega", 10)
                      .build();
    const std::string d = net.describe();
    EXPECT_NE(d.find("alpha"), std::string::npos);
    EXPECT_NE(d.find("omega"), std::string::npos);
}

TEST(Validation, RejectsBadGeometry)
{
    // Kernel larger than input.
    EXPECT_THROW(NetworkBuilder("n", {1, 4, 4}).conv("c", 8, 7).build(),
                 util::FatalError);
    // Pool window larger than the feature map.
    EXPECT_THROW(NetworkBuilder("n", {1, 8, 8})
                     .conv("c", 8, 5).maxPool(9)
                     .build(),
                 util::FatalError);
    // Empty network.
    EXPECT_THROW(Network("n", {1, 4, 4}, {}), util::FatalError);
    // Zero channels.
    EXPECT_THROW(NetworkBuilder("n", {1, 8, 8}).conv("c", 0, 3).build(),
                 util::FatalError);
}

TEST(Validation, BuilderAttributeRules)
{
    // Attribute before any layer.
    EXPECT_THROW(NetworkBuilder("n", {1, 8, 8}).maxPool(2),
                 util::FatalError);
    // stride/pad only apply to conv layers.
    EXPECT_THROW(NetworkBuilder("n", {8, 1, 1}).fc("f", 4).stride(2),
                 util::FatalError);
    EXPECT_THROW(NetworkBuilder("n", {8, 1, 1}).fc("f", 4).pad(1),
                 util::FatalError);
}

TEST(Validation, ActivationAttribute)
{
    Network net = NetworkBuilder("n", {8, 1, 1})
                      .fc("f", 4).activation(Activation::kNone)
                      .build();
    EXPECT_EQ(net.layer(0).act, Activation::kNone);
}

TEST(Tokens, KindAndActivationNames)
{
    EXPECT_STREQ(dnn::toString(dnn::LayerKind::kConv), "conv");
    EXPECT_STREQ(dnn::toString(dnn::LayerKind::kFullyConnected), "fc");
    EXPECT_STREQ(dnn::toString(Activation::kReLU), "relu");
    EXPECT_STREQ(dnn::toString(Activation::kNone), "none");
}
