/**
 * @file
 * Tests for the accelerator model: paper configuration constants, the
 * energy model arithmetic, and the row-stationary mapper.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "arch/accelerator.hh"
#include "arch/energy_model.hh"
#include "arch/row_stationary.hh"
#include "dnn/builder.hh"
#include "util/logging.hh"

using namespace hypar;
using arch::AcceleratorConfig;
using arch::EnergyModel;
using arch::RowStationaryMapper;

TEST(AcceleratorConfig, PaperDefaults)
{
    AcceleratorConfig cfg;
    EXPECT_EQ(cfg.numPes(), 168u);                      // 12 x 14
    EXPECT_DOUBLE_EQ(cfg.clockHz, 250e6);               // 250 MHz
    EXPECT_DOUBLE_EQ(cfg.peakOpsPerSec(), 84e9);        // 84 GOPS
    EXPECT_DOUBLE_EQ(cfg.dramBandwidth, 320e9);         // 320 GB/s
    EXPECT_DOUBLE_EQ(cfg.bufferBytes, 108.0 * 1024.0);  // 108 KB
}

TEST(AcceleratorConfig, ValidationRejectsDegenerateParameters)
{
    arch::validateAcceleratorConfig(AcceleratorConfig{}); // defaults ok

    AcceleratorConfig cfg;
    cfg.peRows = 0;
    EXPECT_THROW(arch::validateAcceleratorConfig(cfg), util::FatalError);
    cfg = AcceleratorConfig{};
    cfg.peCols = 0;
    EXPECT_THROW(arch::validateAcceleratorConfig(cfg), util::FatalError);
    cfg = AcceleratorConfig{};
    cfg.clockHz = 0.0;
    EXPECT_THROW(arch::validateAcceleratorConfig(cfg), util::FatalError);
    cfg.clockHz = std::nan(""); // NaN sails through '<= 0' checks
    EXPECT_THROW(arch::validateAcceleratorConfig(cfg), util::FatalError);
    cfg = AcceleratorConfig{};
    cfg.bufferBytes = -1.0;
    EXPECT_THROW(arch::validateAcceleratorConfig(cfg), util::FatalError);
    cfg = AcceleratorConfig{};
    cfg.dramBandwidth = std::numeric_limits<double>::infinity();
    EXPECT_THROW(arch::validateAcceleratorConfig(cfg), util::FatalError);
    cfg = AcceleratorConfig{};
    cfg.dramCapacity = 0.0;
    EXPECT_THROW(arch::validateAcceleratorConfig(cfg), util::FatalError);
}

TEST(EnergyModel, PaperConstants)
{
    EnergyModel e;
    EXPECT_DOUBLE_EQ(e.macJ(), 4.6e-12); // 0.9 + 3.7 pJ
    EXPECT_DOUBLE_EQ(e.computeEnergy(1e12), 4.6);
    EXPECT_DOUBLE_EQ(e.sramEnergy(2.0), 10.0e-12);
    EXPECT_DOUBLE_EQ(e.dramEnergy(1.0), 640.0e-12);
    EXPECT_DOUBLE_EQ(e.linkEnergy(10.0, 2.0), 10.0 * 2.0 * 64.0e-12);
}

namespace {

dnn::Network
convNet()
{
    // 3x3 conv over 16x16: K=3 fits the 12 rows, H_out=14 fits cols.
    return dnn::NetworkBuilder("c", {8, 16, 16})
        .conv("conv", 32, 3)
        .build();
}

dnn::Network
fcNet()
{
    return dnn::NetworkBuilder("f", {256, 1, 1}).fc("fc", 128).build();
}

} // namespace

TEST(RowStationary, ConvMappingFillsSets)
{
    RowStationaryMapper mapper{AcceleratorConfig{}};
    const auto net = convNet();
    const auto m = mapper.map(net.layer(0), 16);
    // K=3 -> 4 vertical sets of 3x14 PEs = 168 used: full array.
    EXPECT_DOUBLE_EQ(m.usedPes, 168.0);
    EXPECT_DOUBLE_EQ(m.utilization, 1.0);
    EXPECT_GT(m.sramWordsPerMac, 0.0);
    // Row-stationary reuse beats the naive 3 words/MAC.
    EXPECT_LT(m.sramWordsPerMac, 3.0);
}

TEST(RowStationary, TallKernelFolds)
{
    // 13x13 kernel exceeds the 12 PE rows: one folded set, capped use.
    dnn::Network net = dnn::NetworkBuilder("k", {4, 20, 20})
                           .conv("conv", 8, 13)
                           .build();
    RowStationaryMapper mapper{AcceleratorConfig{}};
    const auto m = mapper.map(net.layer(0), 4);
    EXPECT_LE(m.usedPes, 168.0);
    EXPECT_GT(m.usedPes, 0.0);
}

TEST(RowStationary, FcUsesBatchAsColumns)
{
    RowStationaryMapper mapper{AcceleratorConfig{}};
    const auto net = fcNet();
    // Large batch: all 14 columns busy, full array.
    EXPECT_DOUBLE_EQ(mapper.map(net.layer(0), 64).utilization, 1.0);

    // Batch of one and few output neurons: replication is capped by
    // the neuron count, leaving most of the array idle.
    dnn::Network tiny = dnn::NetworkBuilder("t", {256, 1, 1})
                            .fc("fc", 8)
                            .build();
    const auto m1 = mapper.map(tiny.layer(0), 1);
    EXPECT_NEAR(m1.utilization, 8.0 / 168.0, 1e-12);
}

TEST(RowStationary, PhaseSecondsScalesWithMacs)
{
    RowStationaryMapper mapper{AcceleratorConfig{}};
    const auto net = convNet();
    const double t1 = mapper.phaseSeconds(net.layer(0), 16, 1e9);
    const double t2 = mapper.phaseSeconds(net.layer(0), 16, 2e9);
    EXPECT_NEAR(t2, 2.0 * t1, 1e-15);
    EXPECT_DOUBLE_EQ(mapper.phaseSeconds(net.layer(0), 16, 0.0), 0.0);
    // Full utilization: 168 MACs per cycle at 250 MHz.
    EXPECT_NEAR(t1, 1e9 / (168.0 * 250e6), 1e-15);
}

TEST(RowStationary, Validation)
{
    AcceleratorConfig bad;
    bad.peRows = 0;
    EXPECT_THROW(RowStationaryMapper{bad}, util::FatalError);

    RowStationaryMapper mapper{AcceleratorConfig{}};
    EXPECT_THROW((void)mapper.map(convNet().layer(0), 0),
                 util::FatalError);
}
