/**
 * @file
 * Performance smoke test for the table-driven joint DP: the documented
 * H = 10 ceiling (1024 states, ~1M transitions per layer pair) must
 * complete on a 16-layer network in single-digit seconds. The naive
 * engine needed O(L * 4^H * H) CommModel calls and was two orders of
 * magnitude off that budget; a regression back to per-transition model
 * calls trips this test long before users notice.
 */

#include <gtest/gtest.h>

#include <chrono>

#include "core/comm_model.hh"
#include "core/optimal_partitioner.hh"
#include "core/strategies.hh"
#include "dnn/builder.hh"
#include "dnn/model_zoo.hh"

using namespace hypar;

TEST(PerfSmoke, JointDpAtLevelCeilingFinishesInSingleDigitSeconds)
{
    dnn::NetworkBuilder b("deep16", {256, 1, 1});
    for (int l = 0; l < 16; ++l)
        b.fc("fc" + std::to_string(l), l % 2 ? 512 : 128);
    const dnn::Network net = b.build();
    const core::CommModel model(net, core::CommConfig{});
    const core::OptimalPartitioner partitioner(model);

    const auto start = std::chrono::steady_clock::now();
    const auto result = partitioner.partition(10);
    const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
        std::chrono::steady_clock::now() - start);

    EXPECT_LT(elapsed.count(), 10) << "H=10 joint DP took "
                                   << elapsed.count() << "s";

    // Sanity on the result itself: full shape, and at least as cheap as
    // the all-dp default it would fall back to.
    ASSERT_EQ(result.plan.numLevels(), 10u);
    ASSERT_EQ(result.plan.numLayers(), net.size());
    const auto dp = core::makeDataParallelPlan(net, 10);
    EXPECT_LE(result.commBytes, model.planBytes(dp));
    EXPECT_GT(result.commBytes, 0.0);
}

TEST(PerfSmoke, JointDpReachesH12OnTheZooInSingleDigitSeconds)
{
    // Past the dense ceiling kAuto switches to the A* engine; H = 12
    // (4096 accelerators) on VGG-E must stay interactive. The dense
    // DP's 4^H transition loop would be 16x the H = 10 budget here;
    // A* expands only the nodes its suffix bound cannot kill.
    const dnn::Network net = dnn::makeVggE();
    const core::CommModel model(net, core::CommConfig{});
    const core::OptimalPartitioner partitioner(model);

    const auto start = std::chrono::steady_clock::now();
    const auto result = partitioner.partition(12);
    const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
        std::chrono::steady_clock::now() - start);

    EXPECT_LT(elapsed.count(), 10) << "H=12 A* search took "
                                   << elapsed.count() << "s";

    ASSERT_EQ(result.plan.numLevels(), 12u);
    ASSERT_EQ(result.plan.numLayers(), net.size());
    EXPECT_TRUE(result.stats.certifiedExact);
    const auto dp = core::makeDataParallelPlan(net, 12);
    EXPECT_LE(result.commBytes, model.planBytes(dp));
    EXPECT_GT(result.commBytes, 0.0);
}

TEST(PerfSmoke, AStarSolvesH16OnVggEExactly)
{
    // The full H = 16 reach (65,536 accelerators) of the A* engine:
    // exact — certified — on the biggest zoo network, in single-digit
    // seconds on the 1-core reference container (~3.6 s with the
    // pair-conditioned bound and SIMD scans; the sparse engine needs
    // ~106 s for the same answer, the adaptive beam ~119 s).
    // Skipped outside optimized builds: under -O0 or sanitizers the
    // same search runs an order of magnitude slower and would only
    // measure the build mode.
#if !defined(NDEBUG) || defined(__SANITIZE_ADDRESS__)
    GTEST_SKIP() << "perf budget only meaningful in optimized builds";
#else
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
    GTEST_SKIP() << "perf budget only meaningful in optimized builds";
#endif
#endif
    const dnn::Network net = dnn::makeVggE();
    const core::CommModel model(net, core::CommConfig{});
    const core::OptimalPartitioner partitioner(model);

    const auto start = std::chrono::steady_clock::now();
    const auto result = partitioner.partition(16); // kAuto -> A*
    const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
        std::chrono::steady_clock::now() - start);

    // ~3.6 s measured; 30 s leaves slack for slow CI runners while
    // still catching a slide back toward the old ~22 s behavior.
    EXPECT_LT(elapsed.count(), 30) << "H=16 A* search took "
                                   << elapsed.count() << "s";

    ASSERT_EQ(result.plan.numLevels(), 16u);
    ASSERT_EQ(result.plan.numLayers(), net.size());
    EXPECT_TRUE(result.stats.certifiedExact);
    EXPECT_GT(result.stats.pruned, result.stats.expanded);
    const auto dp = core::makeDataParallelPlan(net, 16);
    EXPECT_LE(result.commBytes, model.planBytes(dp));
    EXPECT_GT(result.commBytes, 0.0);
#endif
}
