/**
 * @file
 * Performance smoke test for the table-driven joint DP: the documented
 * H = 10 ceiling (1024 states, ~1M transitions per layer pair) must
 * complete on a 16-layer network in single-digit seconds. The naive
 * engine needed O(L * 4^H * H) CommModel calls and was two orders of
 * magnitude off that budget; a regression back to per-transition model
 * calls trips this test long before users notice.
 */

#include <gtest/gtest.h>

#include <chrono>

#include "core/comm_model.hh"
#include "core/optimal_partitioner.hh"
#include "core/strategies.hh"
#include "dnn/builder.hh"
#include "dnn/model_zoo.hh"

using namespace hypar;

TEST(PerfSmoke, JointDpAtLevelCeilingFinishesInSingleDigitSeconds)
{
    dnn::NetworkBuilder b("deep16", {256, 1, 1});
    for (int l = 0; l < 16; ++l)
        b.fc("fc" + std::to_string(l), l % 2 ? 512 : 128);
    const dnn::Network net = b.build();
    const core::CommModel model(net, core::CommConfig{});
    const core::OptimalPartitioner partitioner(model);

    const auto start = std::chrono::steady_clock::now();
    const auto result = partitioner.partition(10);
    const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
        std::chrono::steady_clock::now() - start);

    EXPECT_LT(elapsed.count(), 10) << "H=10 joint DP took "
                                   << elapsed.count() << "s";

    // Sanity on the result itself: full shape, and at least as cheap as
    // the all-dp default it would fall back to.
    ASSERT_EQ(result.plan.numLevels(), 10u);
    ASSERT_EQ(result.plan.numLayers(), net.size());
    const auto dp = core::makeDataParallelPlan(net, 10);
    EXPECT_LE(result.commBytes, model.planBytes(dp));
    EXPECT_GT(result.commBytes, 0.0);
}

TEST(PerfSmoke, JointDpReachesH12OnTheZooInSingleDigitSeconds)
{
    // Past the dense ceiling kAuto switches to the beam engine; H = 12
    // (4096 accelerators) on the 16-layer VGG-E must stay interactive.
    // The dense DP's 4^H transition loop would be 16x the H = 10
    // budget here; the beam does O(width * 2^H) per layer instead.
    const dnn::Network net = dnn::makeVggE();
    const core::CommModel model(net, core::CommConfig{});
    const core::OptimalPartitioner partitioner(model);

    const auto start = std::chrono::steady_clock::now();
    const auto result = partitioner.partition(12);
    const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
        std::chrono::steady_clock::now() - start);

    EXPECT_LT(elapsed.count(), 10) << "H=12 beam search took "
                                   << elapsed.count() << "s";

    ASSERT_EQ(result.plan.numLevels(), 12u);
    ASSERT_EQ(result.plan.numLayers(), net.size());
    const auto dp = core::makeDataParallelPlan(net, 12);
    EXPECT_LE(result.commBytes, model.planBytes(dp));
    EXPECT_GT(result.commBytes, 0.0);
}
