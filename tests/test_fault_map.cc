/**
 * @file
 * Tests for arch::FaultMap: text parsing (including every malformed
 * shape the format can produce), validation against a concrete array,
 * the dense scale vectors, the lockstep compute-slowdown factor, and
 * the deterministic fault-map sampler.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "arch/fault_map.hh"
#include "util/logging.hh"

using namespace hypar;
using arch::FaultMap;

namespace {

FaultMap
parse(const std::string &text)
{
    std::istringstream in(text);
    return arch::parseFaultMap(in);
}

} // namespace

TEST(FaultMapParse, EmptyAndComments)
{
    EXPECT_TRUE(parse("").empty());
    EXPECT_TRUE(parse("# just a comment\n\n  \n# another\n").empty());
}

TEST(FaultMapParse, NodesAndLinks)
{
    const FaultMap map = parse("node 3 0.5\n"
                               "# dead link\n"
                               "link 7 0\n"
                               "  node 0 1.0  # trailing comment\n");
    ASSERT_EQ(map.nodes.size(), 2u);
    ASSERT_EQ(map.links.size(), 1u);
    EXPECT_EQ(map.nodes[0].id, 3u);
    EXPECT_DOUBLE_EQ(map.nodes[0].scale, 0.5);
    EXPECT_EQ(map.nodes[1].id, 0u);
    EXPECT_DOUBLE_EQ(map.nodes[1].scale, 1.0);
    EXPECT_EQ(map.links[0].id, 7u);
    EXPECT_DOUBLE_EQ(map.links[0].scale, 0.0);
    EXPECT_FALSE(map.empty());
}

TEST(FaultMapParse, MalformedEntriesAreFatal)
{
    EXPECT_THROW(parse("vault 3 0.5\n"), util::FatalError);  // bad kind
    EXPECT_THROW(parse("node 3\n"), util::FatalError);       // no scale
    EXPECT_THROW(parse("node\n"), util::FatalError);         // no id
    EXPECT_THROW(parse("node x 0.5\n"), util::FatalError);   // bad id
    EXPECT_THROW(parse("node 3 full\n"), util::FatalError);  // bad scale
    EXPECT_THROW(parse("node 3 0.5 9\n"), util::FatalError); // junk
    EXPECT_THROW(parse("node -1 0.5\n"), util::FatalError);  // negative
}

TEST(FaultMapParse, ScaleRangeIsEnforced)
{
    EXPECT_THROW(parse("node 1 1.5\n"), util::FatalError);
    EXPECT_THROW(parse("node 1 -0.1\n"), util::FatalError);
    EXPECT_THROW(parse("link 1 nan\n"), util::FatalError);
    // The boundary values are fine.
    EXPECT_EQ(parse("node 1 0\nlink 2 1\n").nodes.size(), 1u);
}

TEST(FaultMapParse, DuplicateIdsAreFatal)
{
    EXPECT_THROW(parse("node 3 0.5\nnode 3 0.7\n"), util::FatalError);
    EXPECT_THROW(parse("link 1 0.5\nlink 1 0.5\n"), util::FatalError);
    // The same id as node and link is two different components.
    EXPECT_FALSE(parse("node 1 0.5\nlink 1 0.5\n").empty());
}

TEST(FaultMapParse, ErrorsNameTheLine)
{
    try {
        parse("node 0 1.0\nlink bad 0.5\n");
        FAIL() << "expected util::FatalError";
    } catch (const util::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos)
            << e.what();
    }
}

TEST(FaultMapParse, MissingFileIsFatal)
{
    EXPECT_THROW(arch::parseFaultMapFile("/nonexistent/faults.txt"),
                 util::FatalError);
}

TEST(FaultMapValidate, IdRangesAndSurvivors)
{
    FaultMap map = parse("node 15 0.5\nlink 29 0.5\n");
    arch::validateFaultMap(map, 16, 30); // in range: fine
    EXPECT_THROW(arch::validateFaultMap(map, 15, 30), util::FatalError);
    EXPECT_THROW(arch::validateFaultMap(map, 16, 29), util::FatalError);
    arch::validateFaultMap(FaultMap{}, 1, 0); // empty is always valid
}

TEST(FaultMapValidate, FullyDeadArrayIsFatal)
{
    const FaultMap map = parse("node 0 0\nnode 1 0\n");
    EXPECT_THROW(arch::validateFaultMap(map, 2, 4), util::FatalError);
    // One survivor is enough.
    arch::validateFaultMap(parse("node 0 0\n"), 2, 4);
}

TEST(FaultMapScales, DenseVectorsDefaultToHealthy)
{
    const FaultMap map = parse("node 1 0.25\nlink 3 0.5\n");
    const auto nodes = arch::nodeScales(map, 4);
    ASSERT_EQ(nodes.size(), 4u);
    EXPECT_DOUBLE_EQ(nodes[0], 1.0);
    EXPECT_DOUBLE_EQ(nodes[1], 0.25);
    const auto links = arch::linkScales(map, 6);
    ASSERT_EQ(links.size(), 6u);
    EXPECT_DOUBLE_EQ(links[3], 0.5);
    EXPECT_DOUBLE_EQ(links[5], 1.0);
    EXPECT_THROW(arch::nodeScales(map, 1), util::FatalError);
}

TEST(FaultMapCompute, SlowestSurvivorSemantics)
{
    // Empty map: exactly 1 (no derating).
    EXPECT_DOUBLE_EQ(arch::computeScaleFactor(FaultMap{}, 16), 1.0);

    // One node at half speed: the lockstep step takes 2x.
    EXPECT_DOUBLE_EQ(
        arch::computeScaleFactor(parse("node 5 0.5\n"), 16), 2.0);

    // Four of sixteen nodes dead: survivors carry 16/12 of a shard.
    EXPECT_DOUBLE_EQ(
        arch::computeScaleFactor(
            parse("node 0 0\nnode 1 0\nnode 2 0\nnode 3 0\n"), 16),
        16.0 / 12.0);

    // Dead nodes *and* a slow survivor: factors compose.
    EXPECT_DOUBLE_EQ(
        arch::computeScaleFactor(parse("node 0 0\nnode 1 0.5\n"), 4),
        (4.0 / 3.0) / 0.5);

    // Killing every node is fatal, not a degenerate number.
    EXPECT_THROW(
        arch::computeScaleFactor(parse("node 0 0\nnode 1 0\n"), 2),
        util::FatalError);
}

TEST(FaultMapSample, DeterministicAndValid)
{
    const FaultMap a = arch::sampleFaultMap(0.3, 16, 30, 42);
    const FaultMap b = arch::sampleFaultMap(0.3, 16, 30, 42);
    EXPECT_EQ(a, b); // same seed, same map
    EXPECT_FALSE(a == arch::sampleFaultMap(0.3, 16, 30, 43));

    // Every sampled map validates against its own array, at any rate —
    // the revive guard keeps at least one node alive even at rate 1.
    for (const double rate : {0.0, 0.1, 0.5, 1.0}) {
        for (std::uint64_t seed = 0; seed < 20; ++seed) {
            const FaultMap m = arch::sampleFaultMap(rate, 8, 12, seed);
            arch::validateFaultMap(m, 8, 12);
            // Links are throttled, never killed: finite planning cost.
            for (const auto &l : m.links)
                EXPECT_GT(l.scale, 0.0);
        }
    }
    EXPECT_TRUE(arch::sampleFaultMap(0.0, 8, 12, 7).empty());
    EXPECT_THROW(arch::sampleFaultMap(1.5, 8, 12, 0), util::FatalError);
}

TEST(FaultMapSample, MixSeedSeparatesStreams)
{
    EXPECT_NE(arch::mixSeed(0, 0), arch::mixSeed(0, 1));
    EXPECT_NE(arch::mixSeed(0, 0), arch::mixSeed(1, 0));
    EXPECT_EQ(arch::mixSeed(9, 3), arch::mixSeed(9, 3));
}
