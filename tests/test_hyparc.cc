/**
 * @file
 * Tests for the hyparc command-line application: argument parsing,
 * command execution against a string stream, and error handling.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "hyparc_app.hh"
#include "util/logging.hh"

using namespace hypar;
using tools::Options;
using tools::parseArgs;
using tools::runCommand;

namespace {

std::string
run(const std::vector<std::string> &args)
{
    std::ostringstream os;
    const int rc = runCommand(parseArgs(args), os);
    EXPECT_EQ(rc, 0);
    return os.str();
}

} // namespace

TEST(HyparcArgs, ParsesFlags)
{
    const auto opts = parseArgs({"simulate", "--model", "VGG-A",
                                 "--levels", "3", "--batch", "64",
                                 "--topology", "torus", "--strategy",
                                 "owt"});
    EXPECT_EQ(opts.command, "simulate");
    EXPECT_EQ(opts.model, "VGG-A");
    EXPECT_EQ(opts.levels, 3u);
    EXPECT_EQ(opts.batch, 64u);
    EXPECT_EQ(opts.topology, "torus");
    EXPECT_EQ(opts.strategy, "owt");
}

TEST(HyparcArgs, ParsesSearchEngineFlags)
{
    const auto opts = parseArgs({"plan", "--model", "Lenet-c",
                                 "--strategy", "optimal", "--engine",
                                 "beam", "--beam-width", "64"});
    EXPECT_EQ(opts.strategy, "optimal");
    EXPECT_EQ(opts.engine, "beam");
    EXPECT_EQ(opts.beamWidth, 64u);
    // Defaults: auto engine, engine-chosen width.
    const auto defaults = parseArgs({"plan", "--model", "Lenet-c"});
    EXPECT_EQ(defaults.engine, "auto");
    EXPECT_EQ(defaults.beamWidth, 0u);
}

TEST(HyparcCommands, OptimalStrategyHonorsEngines)
{
    // All engines agree on the optimal plan's total communication line.
    const std::string dense = run({"plan", "--model", "Lenet-c",
                                   "--strategy", "optimal", "--engine",
                                   "dense"});
    const std::string sparse = run({"plan", "--model", "Lenet-c",
                                    "--strategy", "optimal", "--engine",
                                    "sparse"});
    const std::string beam = run({"plan", "--model", "Lenet-c",
                                  "--strategy", "optimal", "--engine",
                                  "beam"});
    const std::string astar = run({"plan", "--model", "Lenet-c",
                                   "--strategy", "optimal", "--engine",
                                   "astar"});
    EXPECT_EQ(dense, sparse);
    EXPECT_EQ(dense, beam);
    EXPECT_EQ(dense, astar);
    EXPECT_NE(dense.find("total communication"), std::string::npos);

    // Past the dense ceiling only through sparse/beam (or auto).
    std::ostringstream os;
    EXPECT_THROW(runCommand(parseArgs({"plan", "--model", "Lenet-c",
                                       "--levels", "12", "--strategy",
                                       "optimal", "--engine", "dense"}),
                            os),
                 util::FatalError);
    const std::string wide = run({"plan", "--model", "Lenet-c",
                                  "--levels", "12", "--strategy",
                                  "optimal"});
    EXPECT_NE(wide.find("H12:"), std::string::npos);

    EXPECT_THROW(runCommand(parseArgs({"plan", "--model", "Lenet-c",
                                       "--strategy", "optimal",
                                       "--engine", "bogus"}),
                            os),
                 util::FatalError);
}

TEST(HyparcArgs, Rejections)
{
    EXPECT_THROW(parseArgs({}), util::FatalError);
    EXPECT_THROW(parseArgs({"plan", "--model"}), util::FatalError);
    EXPECT_THROW(parseArgs({"plan", "--bogus", "1"}), util::FatalError);
    EXPECT_THROW(runCommand(parseArgs({"explode"}), std::cout),
                 util::FatalError);
    // plan without any network source.
    std::ostringstream os;
    EXPECT_THROW(runCommand(parseArgs({"plan"}), os), util::FatalError);
    // both sources at once.
    EXPECT_THROW(runCommand(parseArgs({"plan", "--model", "SFC", "--spec",
                                       "x.hp"}),
                            os),
                 util::FatalError);
}

TEST(HyparcCommands, ModelsListsTheZoo)
{
    const std::string out = run({"models"});
    EXPECT_NE(out.find("SFC"), std::string::npos);
    EXPECT_NE(out.find("VGG-E"), std::string::npos);
    EXPECT_NE(out.find("430500"), std::string::npos); // Lenet-c params
}

TEST(HyparcCommands, PlanPrintsLevels)
{
    const std::string out = run({"plan", "--model", "Lenet-c"});
    EXPECT_NE(out.find("H1:"), std::string::npos);
    EXPECT_NE(out.find("H4:"), std::string::npos);
    EXPECT_NE(out.find("total communication"), std::string::npos);
}

TEST(HyparcCommands, StrategySelection)
{
    const std::string dp =
        run({"plan", "--model", "Lenet-c", "--strategy", "dp"});
    EXPECT_EQ(dp.find("mp"), std::string::npos);
    const std::string optimal =
        run({"plan", "--model", "Lenet-c", "--strategy", "optimal"});
    EXPECT_NE(optimal.find("H1:"), std::string::npos);
    EXPECT_THROW(run({"plan", "--model", "SFC", "--strategy", "zen"}),
                 util::FatalError);
}

TEST(HyparcCommands, VerboseOptimalPrintsTransitions)
{
    // ROADMAP PR 2 follow-up: HierarchicalResult::transitionsEvaluated
    // surfaces in verbose plan output for the joint-DP engines only.
    const std::string verbose = run({"plan", "--model", "Lenet-c",
                                     "--strategy", "optimal",
                                     "--verbose"});
    const auto pos = verbose.find("transitions evaluated: ");
    ASSERT_NE(pos, std::string::npos);
    // The dense DP relaxes 2^H * 2^H * (L-1) = 16 * 16 * 3 transitions
    // for Lenet-c at H = 4 — a deterministic count.
    EXPECT_NE(verbose.find("transitions evaluated: 768"),
              std::string::npos)
        << verbose;
    // SearchStats ride along: node accounting and the certificate.
    EXPECT_NE(verbose.find("nodes expanded: 64, pruned: 0"),
              std::string::npos)
        << verbose;
    EXPECT_NE(verbose.find("optimality: certified exact"),
              std::string::npos)
        << verbose;

    // The A* engine reports its own (pruned) accounting and always
    // certifies.
    const std::string astar = run({"plan", "--model", "Lenet-c",
                                   "--strategy", "optimal", "--engine",
                                   "astar", "--levels", "6",
                                   "--verbose"});
    EXPECT_NE(astar.find("optimality: certified exact"),
              std::string::npos)
        << astar;
    EXPECT_NE(astar.find("(engine astar)"), std::string::npos) << astar;

    const std::string quiet = run({"plan", "--model", "Lenet-c",
                                   "--strategy", "optimal"});
    EXPECT_EQ(quiet.find("transitions evaluated"), std::string::npos);
    EXPECT_EQ(quiet.find("optimality:"), std::string::npos);
    // Not an optimal search: nothing to report even when verbose.
    const std::string hypar =
        run({"plan", "--model", "Lenet-c", "--verbose"});
    EXPECT_EQ(hypar.find("transitions evaluated"), std::string::npos);
}

TEST(HyparcCommands, SweepLevelsGrid)
{
    // Fig. 9 shape: 2^4 x 2^4 masks of Lenet-c at H1 x H4.
    const std::string csv =
        run({"sweep", "--model", "Lenet-c", "--axes", "H1,H4"});
    EXPECT_NE(csv.find("H1,H4,step_seconds,speedup_vs_dp"),
              std::string::npos);
    // Header comment + column header + 256 grid rows.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2 + 256);
    // Masks render as layer-order bitstrings, ascending from all-dp.
    EXPECT_NE(csv.find("0000,0000,"), std::string::npos);

    const std::string json = run({"sweep", "--model", "Lenet-c",
                                  "--axes", "H1,H4", "--format",
                                  "json"});
    EXPECT_NE(json.find("\"mode\":\"levels\""), std::string::npos);
    EXPECT_NE(json.find("\"step_seconds\":"), std::string::npos);
}

TEST(HyparcCommands, SweepLayersGrid)
{
    // Fig. 10 shape: two layers' level vectors over 2^H x 2^H.
    const std::string csv = run({"sweep", "--model", "Lenet-c",
                                 "--axes", "conv1,fc1"});
    EXPECT_NE(csv.find("conv1,fc1,step_seconds,speedup_vs_dp"),
              std::string::npos);
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2 + 256);

    // File output reports the point count instead of the rows.
    const std::string path = "/tmp/hyparc_test_sweep.csv";
    const std::string msg = run({"sweep", "--model", "Lenet-c",
                                 "--axes", "conv1,fc1", "-o", path});
    EXPECT_NE(msg.find("wrote 256 grid points"), std::string::npos);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_NE(content.str().find("step_seconds"), std::string::npos);
    std::remove(path.c_str());
}

TEST(HyparcArgs, ParsesSweepSamplingFlags)
{
    const auto opts = parseArgs({"sweep", "--model", "VGG-A", "--axes",
                                 "H1,H4", "--limit", "32", "--seed",
                                 "7", "--overlap"});
    EXPECT_EQ(opts.limit, 32u);
    EXPECT_EQ(opts.seed, 7u);
    EXPECT_TRUE(opts.overlap);
    // Defaults: full grid, seed 0, synchronous gradients.
    const auto defaults =
        parseArgs({"sweep", "--model", "VGG-A", "--axes", "H1,H4"});
    EXPECT_EQ(defaults.limit, 0u);
    EXPECT_EQ(defaults.seed, 0u);
    EXPECT_FALSE(defaults.overlap);
}

TEST(HyparcCommands, SweepOverlapMode)
{
    // --overlap runs the async gradient schedule through the two-tape
    // incremental sweep; the header records the mode and the grid
    // shape is unchanged.
    const std::string csv = run({"sweep", "--model", "Lenet-c",
                                 "--axes", "H1,H4", "--overlap"});
    EXPECT_NE(csv.find(" overlap=true"), std::string::npos);
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2 + 256);

    const std::string json = run({"sweep", "--model", "Lenet-c",
                                  "--axes", "H1,H4", "--overlap",
                                  "--format", "json"});
    EXPECT_NE(json.find("\"overlap\":true"), std::string::npos);

    // Deterministic, and different from the synchronous schedule.
    EXPECT_EQ(csv, run({"sweep", "--model", "Lenet-c", "--axes",
                        "H1,H4", "--overlap"}));
    const std::string sync =
        run({"sweep", "--model", "Lenet-c", "--axes", "H1,H4"});
    EXPECT_NE(csv, sync);
    EXPECT_EQ(sync.find("overlap=true"), std::string::npos);
}

TEST(HyparcCommands, SweepLimitSamplesBigGrids)
{
    // VGG-A has 11 weighted layers: the full 4^11 level-mask grid is
    // refused, but --limit opens it with a deterministic sample.
    std::ostringstream os;
    EXPECT_THROW(runCommand(parseArgs({"sweep", "--model", "VGG-A",
                                       "--axes", "H1,H4"}),
                            os),
                 util::FatalError);

    const std::vector<std::string> args = {
        "sweep", "--model", "VGG-A", "--axes", "H1,H4",
        "--limit", "12",    "--seed", "3"};
    const std::string csv = run(args);
    EXPECT_NE(csv.find(" limit=12 seed=3"), std::string::npos);
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2 + 12);
    // Same seed -> byte-identical sample; another seed -> another one.
    EXPECT_EQ(csv, run(args));
    const std::string other = run({"sweep", "--model", "VGG-A",
                                   "--axes", "H1,H4", "--limit", "12",
                                   "--seed", "4"});
    EXPECT_NE(csv, other);

    // Layer-vector grids past H = 8 open the same way, in json too.
    const std::string json = run({"sweep", "--model", "Lenet-c",
                                  "--levels", "9", "--axes",
                                  "conv1,fc1", "--limit", "6",
                                  "--format", "json"});
    EXPECT_NE(json.find("\"limit\":6,\"seed\":0"), std::string::npos);
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(json.begin(), json.end(), '{')),
              1u + 6u);
    EXPECT_THROW(runCommand(parseArgs({"sweep", "--model", "Lenet-c",
                                       "--levels", "9", "--axes",
                                       "conv1,fc1"}),
                            os),
                 util::FatalError);

    // A limit covering the whole grid degrades to the full
    // enumeration: identical to not passing --limit at all.
    EXPECT_EQ(run({"sweep", "--model", "Lenet-c", "--axes", "H1,H4",
                   "--limit", "256"}),
              run({"sweep", "--model", "Lenet-c", "--axes", "H1,H4"}));

    // ... unless the full grid is too big to enumerate: then a limit
    // that covers it is rejected with its own message (not the
    // confusing 'use --limit' one).
    try {
        runCommand(parseArgs({"sweep", "--model", "VGG-A", "--axes",
                              "H1,H4", "--limit", "5000000"}),
                   os);
        FAIL() << "oversized --limit should be fatal";
    } catch (const util::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("covers the whole grid"),
                  std::string::npos)
            << e.what();
    }
}

TEST(HyparcCommands, SweepRejections)
{
    std::ostringstream os;
    // Missing/odd axes.
    EXPECT_THROW(runCommand(parseArgs({"sweep", "--model", "Lenet-c"}),
                            os),
                 util::FatalError);
    EXPECT_THROW(runCommand(parseArgs({"sweep", "--model", "Lenet-c",
                                       "--axes", "H1"}),
                            os),
                 util::FatalError);
    // Mixed kinds, duplicate axes, out-of-range level, unknown layer.
    EXPECT_THROW(runCommand(parseArgs({"sweep", "--model", "Lenet-c",
                                       "--axes", "H1,fc1"}),
                            os),
                 util::FatalError);
    EXPECT_THROW(runCommand(parseArgs({"sweep", "--model", "Lenet-c",
                                       "--axes", "H2,H2"}),
                            os),
                 util::FatalError);
    EXPECT_THROW(runCommand(parseArgs({"sweep", "--model", "Lenet-c",
                                       "--axes", "H1,H9"}),
                            os),
                 util::FatalError);
    EXPECT_THROW(runCommand(parseArgs({"sweep", "--model", "Lenet-c",
                                       "--axes", "conv1,bogus"}),
                            os),
                 util::FatalError);
    // Unknown format.
    EXPECT_THROW(runCommand(parseArgs({"sweep", "--model", "Lenet-c",
                                       "--axes", "H1,H4", "--format",
                                       "xml"}),
                            os),
                 util::FatalError);
}

TEST(HyparcCommands, SimulateReportsSpeedup)
{
    const std::string out =
        run({"simulate", "--model", "AlexNet", "--levels", "2"});
    EXPECT_NE(out.find("speedup vs Data Parallelism"), std::string::npos);
    EXPECT_NE(out.find("H-tree x4"), std::string::npos);
}

TEST(HyparcCommands, MeshTopology)
{
    const std::string out = run({"simulate", "--model", "Lenet-c",
                                 "--topology", "mesh", "--levels", "2"});
    EXPECT_NE(out.find("Mesh"), std::string::npos);
    EXPECT_THROW(run({"simulate", "--model", "SFC", "--topology",
                      "donut"}),
                 util::FatalError);
}

TEST(HyparcCommands, ReportItemizes)
{
    const std::string out = run({"report", "--model", "AlexNet"});
    EXPECT_NE(out.find("conv5"), std::string::npos);
    EXPECT_NE(out.find("grad (dp)"), std::string::npos);
}

TEST(HyparcCommands, SpecFileEndToEnd)
{
    const std::string path = "/tmp/hyparc_test_net.hp";
    {
        std::ofstream f(path);
        f << "network spec-net\ninput 1 28 28\nconv c1 8 5 pool 2\n"
             "fc f1 10\n";
    }
    const std::string out = run({"plan", "--spec", path});
    EXPECT_NE(out.find("spec-net"), std::string::npos);
    std::remove(path.c_str());
}

TEST(HyparcCommands, TraceToStreamAndFile)
{
    const std::string json =
        run({"trace", "--model", "Lenet-c", "--levels", "2"});
    EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);

    const std::string path = "/tmp/hyparc_test_trace.json";
    const std::string msg = run(
        {"trace", "--model", "Lenet-c", "--levels", "2", "-o", path});
    EXPECT_NE(msg.find("wrote"), std::string::npos);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_NE(content.str().find("hypar"), std::string::npos);
    std::remove(path.c_str());
}

TEST(HyparcArgs, ParsesFaultFlags)
{
    const auto opts = parseArgs({"faults", "--model", "Lenet-c",
                                 "--map", "f.txt", "--rate", "0:0.3:7",
                                 "--samples", "4", "--sweep"});
    EXPECT_EQ(opts.map, "f.txt");
    EXPECT_EQ(opts.rate, "0:0.3:7");
    EXPECT_EQ(opts.samples, 4u);
    EXPECT_TRUE(opts.faultSweep);

    // Defaults: no map, a single 10% rate, 8 samples, uniform sweeps.
    const auto defaults = parseArgs({"faults", "--model", "Lenet-c"});
    EXPECT_TRUE(defaults.map.empty());
    EXPECT_EQ(defaults.rate, "0.1");
    EXPECT_EQ(defaults.samples, 8u);
    EXPECT_FALSE(defaults.faultSweep);
    EXPECT_EQ(defaults.sample, "uniform");
}

TEST(HyparcCommands, FaultsMapModeReplansAroundTheMap)
{
    // Default htree x16: node ids 0..15, link ids 0..14 (level-major).
    const std::string path = "/tmp/hyparc_test_faults.map";
    {
        std::ofstream f(path);
        f << "# one dead node, one throttled level-1 trunk\n"
             "node 3 0\nlink 2 0.5\n";
    }
    const std::string out = run({"faults", "--model", "Lenet-c",
                                 "--strategy", "optimal", "--map",
                                 path});
    EXPECT_NE(out.find("compute slowdown: 1.07x"), std::string::npos)
        << out;
    EXPECT_NE(out.find("level penalties: 1.00x 2.00x 1.00x 1.00x"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("healthy array"), std::string::npos);
    EXPECT_NE(out.find("degraded array, re-planned:"),
              std::string::npos);
    EXPECT_NE(out.find("recovers"), std::string::npos);

    // A map that kills every node is rejected, not planned around.
    {
        std::ofstream f(path);
        for (int i = 0; i < 16; ++i)
            f << "node " << i << " 0\n";
    }
    EXPECT_THROW(run({"faults", "--model", "Lenet-c", "--map", path}),
                 util::FatalError);
    std::remove(path.c_str());
}

TEST(HyparcCommands, FaultsSweepIsDeterministic)
{
    const std::vector<std::string> args = {
        "faults", "--model", "Lenet-c", "--sweep",
        "--rate",  "0:0.3:3", "--samples", "2",
        "--seed",  "5"};
    const std::string csv = run(args);
    EXPECT_NE(csv.find("mode=faults"), std::string::npos);
    EXPECT_NE(csv.find("samples=2 seed=5"), std::string::npos);
    EXPECT_NE(csv.find(
                  "rate,static_step_seconds,replanned_step_seconds,"
                  "recovery"),
              std::string::npos);
    // Header comment + column header + 3 rate points.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2 + 3);
    // Acceptance: byte-identical for a fixed seed; seeds separate.
    EXPECT_EQ(csv, run(args));
    EXPECT_NE(csv, run({"faults", "--model", "Lenet-c", "--sweep",
                        "--rate", "0:0.3:3", "--samples", "2",
                        "--seed", "6"}));

    // Rate 0 draws the empty map: static == replanned, recovery 1.
    EXPECT_NE(csv.find(",1\n"), std::string::npos) << csv;

    const std::string json = run({"faults", "--model", "Lenet-c",
                                  "--sweep", "--rate", "0:0.3:3",
                                  "--samples", "2", "--format",
                                  "json"});
    EXPECT_NE(json.find("\"mode\":\"faults\""), std::string::npos);
    EXPECT_NE(json.find("\"replanned_step_seconds\":"),
              std::string::npos);

    const std::string path = "/tmp/hyparc_test_faults.csv";
    const std::string msg = run({"faults", "--model", "Lenet-c",
                                 "--sweep", "--rate", "0:0.3:3",
                                 "--samples", "2", "-o", path});
    EXPECT_NE(msg.find("wrote 3 rate points"), std::string::npos);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::remove(path.c_str());
}

TEST(HyparcCommands, FaultsRobustModeReportsExpectedCost)
{
    const std::string out = run({"faults", "--model", "Lenet-c",
                                 "--rate", "0.25", "--samples", "3",
                                 "--seed", "2"});
    EXPECT_NE(out.find("robust plan over 3 fault maps at rate 0.25"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("H1:"), std::string::npos);
    EXPECT_NE(out.find("expected step time:"), std::string::npos);
    EXPECT_NE(out.find("pristine-optimal plan would average"),
              std::string::npos);
    // Deterministic for a fixed seed.
    EXPECT_EQ(out, run({"faults", "--model", "Lenet-c", "--rate",
                        "0.25", "--samples", "3", "--seed", "2"}));
}

TEST(HyparcCommands, FaultsRejections)
{
    std::ostringstream os;
    // --map and --sweep are mutually exclusive modes.
    EXPECT_THROW(runCommand(parseArgs({"faults", "--model", "Lenet-c",
                                       "--map", "f.txt", "--sweep"}),
                            os),
                 util::FatalError);
    // --sweep needs a R0:R1:N rate range...
    EXPECT_THROW(runCommand(parseArgs({"faults", "--model", "Lenet-c",
                                       "--sweep", "--rate", "0.1"}),
                            os),
                 util::FatalError);
    EXPECT_THROW(runCommand(parseArgs({"faults", "--model", "Lenet-c",
                                       "--sweep", "--rate",
                                       "0:0.3:0"}),
                            os),
                 util::FatalError);
    // ... while robust planning takes a single rate.
    EXPECT_THROW(runCommand(parseArgs({"faults", "--model", "Lenet-c",
                                       "--rate", "0:0.3:7"}),
                            os),
                 util::FatalError);
    // Rates live in [0, 1] and must parse completely.
    EXPECT_THROW(runCommand(parseArgs({"faults", "--model", "Lenet-c",
                                       "--rate", "1.5"}),
                            os),
                 util::FatalError);
    EXPECT_THROW(runCommand(parseArgs({"faults", "--model", "Lenet-c",
                                       "--rate", "0.1x"}),
                            os),
                 util::FatalError);
    // At least one sample everywhere.
    EXPECT_THROW(runCommand(parseArgs({"faults", "--model", "Lenet-c",
                                       "--samples", "0"}),
                            os),
                 util::FatalError);
    EXPECT_THROW(runCommand(parseArgs({"faults", "--model", "Lenet-c",
                                       "--sweep", "--rate", "0:0.3:3",
                                       "--samples", "0"}),
                            os),
                 util::FatalError);
}

TEST(HyparcCommands, SweepBiasedSamplerConcentratesNearHypar)
{
    // The biased sampler perturbs the HyPar plan's masks instead of
    // drawing uniformly; both are seed-deterministic and recorded in
    // the header.
    const std::vector<std::string> args = {
        "sweep",   "--model", "VGG-A", "--axes", "H1,H4",
        "--limit", "12",      "--seed", "3",     "--sample", "biased"};
    const std::string biased = run(args);
    EXPECT_NE(biased.find(" sample=biased"), std::string::npos);
    EXPECT_EQ(std::count(biased.begin(), biased.end(), '\n'), 2 + 12);
    EXPECT_EQ(biased, run(args));

    const std::string uniform =
        run({"sweep", "--model", "VGG-A", "--axes", "H1,H4", "--limit",
             "12", "--seed", "3"});
    EXPECT_NE(uniform.find(" sample=uniform"), std::string::npos);
    EXPECT_NE(biased, uniform);

    const std::string json = run({"sweep", "--model", "VGG-A",
                                  "--axes", "H1,H4", "--limit", "6",
                                  "--sample", "biased", "--format",
                                  "json"});
    EXPECT_NE(json.find("\"sample\":\"biased\""), std::string::npos);

    std::ostringstream os;
    EXPECT_THROW(runCommand(parseArgs({"sweep", "--model", "VGG-A",
                                       "--axes", "H1,H4", "--limit",
                                       "12", "--sample", "bogus"}),
                            os),
                 util::FatalError);
}

TEST(HyparcArgs, ParsesServeFlags)
{
    const auto opts = parseArgs({"serve", "--cache-dir", "/tmp/plans",
                                 "--no-cache"});
    EXPECT_EQ(opts.command, "serve");
    EXPECT_EQ(opts.cacheDir, "/tmp/plans");
    EXPECT_TRUE(opts.noCache);
    EXPECT_FALSE(opts.evict);

    const auto evict = parseArgs({"serve", "--evict"});
    EXPECT_TRUE(evict.evict);
    // Defaults: cache on, default directory, registry-default capacity.
    const auto defaults = parseArgs({"serve"});
    EXPECT_FALSE(defaults.noCache);
    EXPECT_TRUE(defaults.cacheDir.empty());
    EXPECT_EQ(defaults.maxSessions, 0u);

    const auto sized = parseArgs({"serve", "--max-sessions", "3"});
    EXPECT_EQ(sized.maxSessions, 3u);
    // Validated >= 1: a zero capacity would make every request
    // rebuild its Evaluator (and the registry rejects it anyway).
    try {
        parseArgs({"serve", "--max-sessions", "0"});
        FAIL() << "--max-sessions 0 should be fatal";
    } catch (const util::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("--max-sessions"),
                  std::string::npos)
            << e.what();
    }

    // The byte budget is a plain size; 0 (the default) = unlimited.
    EXPECT_EQ(defaults.maxSessionBytes, 0u);
    const auto budgeted =
        parseArgs({"serve", "--max-session-bytes", "1048576"});
    EXPECT_EQ(budgeted.maxSessionBytes, 1048576u);
    EXPECT_NE(tools::usage().find("--max-session-bytes"),
              std::string::npos);
}

TEST(HyparcCommands, ServeAnswersRequestsFromAStream)
{
    const std::string dir =
        "/tmp/hyparc_test_cli_serve_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir);

    std::istringstream in(
        "{\"op\":\"plan\",\"model\":\"Lenet-c\"}\n"
        "{\"op\":\"shutdown\"}\n");
    std::ostringstream os;
    const int rc = runCommand(
        parseArgs({"serve", "--cache-dir", dir}), os, in);
    EXPECT_EQ(rc, 0);

    // Two response lines: the plan (a miss on a fresh cache, stored on
    // disk) and the shutdown acknowledgement.
    const std::string out = os.str();
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
    EXPECT_NE(out.find("\"ok\":true"), std::string::npos);
    EXPECT_NE(out.find("\"cache\":\"miss\""), std::string::npos);
    EXPECT_FALSE(std::filesystem::is_empty(dir));

    // A second serve process over the same directory answers warm.
    std::istringstream warm_in(
        "{\"op\":\"plan\",\"model\":\"Lenet-c\"}\n");
    std::ostringstream warm_os;
    EXPECT_EQ(runCommand(parseArgs({"serve", "--cache-dir", dir}),
                         warm_os, warm_in),
              0);
    EXPECT_NE(warm_os.str().find("\"cache\":\"hit\""), std::string::npos);

    // --evict clears it and reports the count.
    std::istringstream none("");
    std::ostringstream evict_os;
    EXPECT_EQ(runCommand(parseArgs({"serve", "--cache-dir", dir,
                                    "--evict"}),
                         evict_os, none),
              0);
    EXPECT_NE(evict_os.str().find("evicted 1 plan cache entr"),
              std::string::npos);
    EXPECT_TRUE(std::filesystem::is_empty(dir));
    std::filesystem::remove_all(dir);
}

TEST(HyparcCommands, UsageMentionsServe)
{
    const std::string u = tools::usage();
    EXPECT_NE(u.find("serve"), std::string::npos);
    EXPECT_NE(u.find("--cache-dir"), std::string::npos);
    EXPECT_NE(u.find("--no-cache"), std::string::npos);
    EXPECT_NE(u.find("--evict"), std::string::npos);
}
