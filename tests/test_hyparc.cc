/**
 * @file
 * Tests for the hyparc command-line application: argument parsing,
 * command execution against a string stream, and error handling.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "hyparc_app.hh"
#include "util/logging.hh"

using namespace hypar;
using tools::Options;
using tools::parseArgs;
using tools::runCommand;

namespace {

std::string
run(const std::vector<std::string> &args)
{
    std::ostringstream os;
    const int rc = runCommand(parseArgs(args), os);
    EXPECT_EQ(rc, 0);
    return os.str();
}

} // namespace

TEST(HyparcArgs, ParsesFlags)
{
    const auto opts = parseArgs({"simulate", "--model", "VGG-A",
                                 "--levels", "3", "--batch", "64",
                                 "--topology", "torus", "--strategy",
                                 "owt"});
    EXPECT_EQ(opts.command, "simulate");
    EXPECT_EQ(opts.model, "VGG-A");
    EXPECT_EQ(opts.levels, 3u);
    EXPECT_EQ(opts.batch, 64u);
    EXPECT_EQ(opts.topology, "torus");
    EXPECT_EQ(opts.strategy, "owt");
}

TEST(HyparcArgs, ParsesSearchEngineFlags)
{
    const auto opts = parseArgs({"plan", "--model", "Lenet-c",
                                 "--strategy", "optimal", "--engine",
                                 "beam", "--beam-width", "64"});
    EXPECT_EQ(opts.strategy, "optimal");
    EXPECT_EQ(opts.engine, "beam");
    EXPECT_EQ(opts.beamWidth, 64u);
    // Defaults: auto engine, engine-chosen width.
    const auto defaults = parseArgs({"plan", "--model", "Lenet-c"});
    EXPECT_EQ(defaults.engine, "auto");
    EXPECT_EQ(defaults.beamWidth, 0u);
}

TEST(HyparcCommands, OptimalStrategyHonorsEngines)
{
    // All engines agree on the optimal plan's total communication line.
    const std::string dense = run({"plan", "--model", "Lenet-c",
                                   "--strategy", "optimal", "--engine",
                                   "dense"});
    const std::string sparse = run({"plan", "--model", "Lenet-c",
                                    "--strategy", "optimal", "--engine",
                                    "sparse"});
    const std::string beam = run({"plan", "--model", "Lenet-c",
                                  "--strategy", "optimal", "--engine",
                                  "beam"});
    EXPECT_EQ(dense, sparse);
    EXPECT_EQ(dense, beam);
    EXPECT_NE(dense.find("total communication"), std::string::npos);

    // Past the dense ceiling only through sparse/beam (or auto).
    std::ostringstream os;
    EXPECT_THROW(runCommand(parseArgs({"plan", "--model", "Lenet-c",
                                       "--levels", "12", "--strategy",
                                       "optimal", "--engine", "dense"}),
                            os),
                 util::FatalError);
    const std::string wide = run({"plan", "--model", "Lenet-c",
                                  "--levels", "12", "--strategy",
                                  "optimal"});
    EXPECT_NE(wide.find("H12:"), std::string::npos);

    EXPECT_THROW(runCommand(parseArgs({"plan", "--model", "Lenet-c",
                                       "--strategy", "optimal",
                                       "--engine", "bogus"}),
                            os),
                 util::FatalError);
}

TEST(HyparcArgs, Rejections)
{
    EXPECT_THROW(parseArgs({}), util::FatalError);
    EXPECT_THROW(parseArgs({"plan", "--model"}), util::FatalError);
    EXPECT_THROW(parseArgs({"plan", "--bogus", "1"}), util::FatalError);
    EXPECT_THROW(runCommand(parseArgs({"explode"}), std::cout),
                 util::FatalError);
    // plan without any network source.
    std::ostringstream os;
    EXPECT_THROW(runCommand(parseArgs({"plan"}), os), util::FatalError);
    // both sources at once.
    EXPECT_THROW(runCommand(parseArgs({"plan", "--model", "SFC", "--spec",
                                       "x.hp"}),
                            os),
                 util::FatalError);
}

TEST(HyparcCommands, ModelsListsTheZoo)
{
    const std::string out = run({"models"});
    EXPECT_NE(out.find("SFC"), std::string::npos);
    EXPECT_NE(out.find("VGG-E"), std::string::npos);
    EXPECT_NE(out.find("430500"), std::string::npos); // Lenet-c params
}

TEST(HyparcCommands, PlanPrintsLevels)
{
    const std::string out = run({"plan", "--model", "Lenet-c"});
    EXPECT_NE(out.find("H1:"), std::string::npos);
    EXPECT_NE(out.find("H4:"), std::string::npos);
    EXPECT_NE(out.find("total communication"), std::string::npos);
}

TEST(HyparcCommands, StrategySelection)
{
    const std::string dp =
        run({"plan", "--model", "Lenet-c", "--strategy", "dp"});
    EXPECT_EQ(dp.find("mp"), std::string::npos);
    const std::string optimal =
        run({"plan", "--model", "Lenet-c", "--strategy", "optimal"});
    EXPECT_NE(optimal.find("H1:"), std::string::npos);
    EXPECT_THROW(run({"plan", "--model", "SFC", "--strategy", "zen"}),
                 util::FatalError);
}

TEST(HyparcCommands, SimulateReportsSpeedup)
{
    const std::string out =
        run({"simulate", "--model", "AlexNet", "--levels", "2"});
    EXPECT_NE(out.find("speedup vs Data Parallelism"), std::string::npos);
    EXPECT_NE(out.find("H-tree x4"), std::string::npos);
}

TEST(HyparcCommands, MeshTopology)
{
    const std::string out = run({"simulate", "--model", "Lenet-c",
                                 "--topology", "mesh", "--levels", "2"});
    EXPECT_NE(out.find("Mesh"), std::string::npos);
    EXPECT_THROW(run({"simulate", "--model", "SFC", "--topology",
                      "donut"}),
                 util::FatalError);
}

TEST(HyparcCommands, ReportItemizes)
{
    const std::string out = run({"report", "--model", "AlexNet"});
    EXPECT_NE(out.find("conv5"), std::string::npos);
    EXPECT_NE(out.find("grad (dp)"), std::string::npos);
}

TEST(HyparcCommands, SpecFileEndToEnd)
{
    const std::string path = "/tmp/hyparc_test_net.hp";
    {
        std::ofstream f(path);
        f << "network spec-net\ninput 1 28 28\nconv c1 8 5 pool 2\n"
             "fc f1 10\n";
    }
    const std::string out = run({"plan", "--spec", path});
    EXPECT_NE(out.find("spec-net"), std::string::npos);
    std::remove(path.c_str());
}

TEST(HyparcCommands, TraceToStreamAndFile)
{
    const std::string json =
        run({"trace", "--model", "Lenet-c", "--levels", "2"});
    EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);

    const std::string path = "/tmp/hyparc_test_trace.json";
    const std::string msg = run(
        {"trace", "--model", "Lenet-c", "--levels", "2", "-o", path});
    EXPECT_NE(msg.find("wrote"), std::string::npos);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_NE(content.str().find("hypar"), std::string::npos);
    std::remove(path.c_str());
}
