/**
 * @file
 * Tests for the training-step simulator: conservation laws (simulated
 * communication equals the analytic model), monotonicity, phase
 * accounting, trace recording and the gradient-overlap option.
 */

#include <gtest/gtest.h>

#include "core/strategies.hh"
#include "dnn/model_zoo.hh"
#include "noc/htree.hh"
#include "sim/training_sim.hh"
#include "util/logging.hh"

using namespace hypar;
using core::CommConfig;
using core::CommModel;
using core::Parallelism;
using sim::SimOptions;
using sim::TrainingSimulator;

namespace {

struct Rig
{
    explicit Rig(const dnn::Network &n, std::size_t levels = 4,
                 SimOptions opts = {})
        : net(n), model(net, CommConfig{}),
          topo(levels, noc::TopologyConfig{}),
          simulator(model, arch::AcceleratorConfig{},
                    arch::EnergyModel{}, topo, opts)
    {}

    dnn::Network net;
    CommModel model;
    noc::HTreeTopology topo;
    TrainingSimulator simulator;
};

} // namespace

TEST(TrainingSim, SimulatedCommEqualsAnalyticModel)
{
    // Conservation: the simulator's communicated bytes must equal
    // CommModel::planBytes for every strategy and network.
    for (const auto &net : dnn::allModels()) {
        Rig rig(net);
        for (auto strategy :
             {core::Strategy::kDataParallel, core::Strategy::kModelParallel,
              core::Strategy::kOneWeirdTrick, core::Strategy::kHypar}) {
            const auto plan = core::makePlan(strategy, rig.model, 4);
            const auto metrics = rig.simulator.simulate(plan);
            EXPECT_NEAR(metrics.commBytes, rig.model.planBytes(plan),
                        1e-6 * std::max(1.0, metrics.commBytes))
                << net.name() << " " << core::toString(strategy);
        }
    }
}

TEST(TrainingSim, StepCoversComputeAndNetwork)
{
    Rig rig(dnn::makeAlexNet());
    const auto plan =
        core::makeDataParallelPlan(rig.net, 4);
    const auto m = rig.simulator.simulate(plan);
    EXPECT_GT(m.stepSeconds, 0.0);
    EXPECT_GT(m.computeBusySeconds, 0.0);
    EXPECT_GT(m.networkBusySeconds, 0.0);
    // Serialized execution: step = compute + network exactly.
    EXPECT_NEAR(m.stepSeconds, m.computeBusySeconds + m.networkBusySeconds,
                1e-9 * m.stepSeconds);
    // Phase times partition the step.
    EXPECT_NEAR(m.phases.total(), m.stepSeconds, 1e-9 * m.stepSeconds);
}

TEST(TrainingSim, DeterministicAcrossRuns)
{
    Rig rig(dnn::makeVggA());
    const auto plan = core::makeHyparPlan(rig.model, 4);
    const auto a = rig.simulator.simulate(plan);
    const auto b = rig.simulator.simulate(plan);
    EXPECT_DOUBLE_EQ(a.stepSeconds, b.stepSeconds);
    EXPECT_DOUBLE_EQ(a.energy.totalJ(), b.energy.totalJ());
    EXPECT_DOUBLE_EQ(a.commBytes, b.commBytes);
}

TEST(TrainingSim, HyparNeverSlowerThanDefaults)
{
    // Same compute, strictly less communication over the same levels:
    // HyPar's simulated step must beat or match DP and MP everywhere.
    for (const auto &net : dnn::allModels()) {
        Rig rig(net);
        const auto dp = rig.simulator.simulate(
            core::makeDataParallelPlan(net, 4));
        const auto mp = rig.simulator.simulate(
            core::makeModelParallelPlan(net, 4));
        const auto hp =
            rig.simulator.simulate(core::makeHyparPlan(rig.model, 4));
        EXPECT_LE(hp.stepSeconds, dp.stepSeconds * (1 + 1e-9))
            << net.name();
        EXPECT_LE(hp.stepSeconds, mp.stepSeconds * (1 + 1e-9))
            << net.name();
    }
}

TEST(TrainingSim, EnergyBreakdownAllPositive)
{
    Rig rig(dnn::makeLenetC());
    const auto m = rig.simulator.simulate(
        core::makeDataParallelPlan(rig.net, 4));
    EXPECT_GT(m.energy.computeJ, 0.0);
    EXPECT_GT(m.energy.sramJ, 0.0);
    EXPECT_GT(m.energy.dramJ, 0.0);
    EXPECT_GT(m.energy.commJ, 0.0);
    EXPECT_DOUBLE_EQ(m.energy.totalJ(),
                     m.energy.computeJ + m.energy.sramJ + m.energy.dramJ +
                         m.energy.commJ);
}

TEST(TrainingSim, GradOverlapNeverHurts)
{
    for (const auto &name : {"AlexNet", "VGG-A", "SFC"}) {
        dnn::Network net = dnn::modelByName(name);
        SimOptions overlap;
        overlap.overlapGradComm = true;
        Rig sync(net, 4);
        Rig async(net, 4, overlap);
        const auto plan = core::makeDataParallelPlan(net, 4);
        const auto t_sync = sync.simulator.simulate(plan).stepSeconds;
        const auto t_async = async.simulator.simulate(plan).stepSeconds;
        EXPECT_LE(t_async, t_sync * (1 + 1e-9)) << name;
        EXPECT_GT(t_async, 0.0);
    }
}

TEST(TrainingSim, TraceRecordsTasksInOrder)
{
    SimOptions opts;
    opts.recordTrace = true;
    Rig rig(dnn::makeLenetC(), 2, opts);
    const auto plan = core::makeDataParallelPlan(rig.net, 2);
    const auto m = rig.simulator.simulate(plan);
    const auto &trace = rig.simulator.lastTrace();
    ASSERT_FALSE(trace.empty());

    // First task is layer 0's forward compute; last ends at step end.
    EXPECT_EQ(trace.front().label, "fwd:conv1");
    double max_end = 0.0;
    for (const auto &e : trace) {
        EXPECT_LE(e.start, e.end);
        max_end = std::max(max_end, e.end);
    }
    EXPECT_DOUBLE_EQ(max_end, m.stepSeconds);

    // Backward skips layer 0: no bwd:conv1 entry.
    for (const auto &e : trace)
        EXPECT_NE(e.label, "bwd:conv1");
}

TEST(TrainingSim, SteadyStateEqualsSingleStepWithoutOverlap)
{
    // Without gradient overlap the steps serialize perfectly, so the
    // steady-state cadence equals the single-step latency.
    Rig rig(dnn::makeAlexNet());
    const auto plan = core::makeDataParallelPlan(rig.net, 4);
    const auto one = rig.simulator.simulate(plan);
    const auto steady = rig.simulator.simulateSteadyState(plan, 4);
    EXPECT_NEAR(steady.stepSeconds, one.stepSeconds,
                1e-9 * one.stepSeconds);
    // Totals cover all four steps.
    EXPECT_NEAR(steady.commBytes, 4.0 * one.commBytes,
                1e-6 * steady.commBytes);
    EXPECT_NEAR(steady.energy.totalJ(), 4.0 * one.energy.totalJ(),
                1e-6 * steady.energy.totalJ());
}

TEST(TrainingSim, SteadyStateOverlapPipelinesGradients)
{
    // With overlap, tail gradient reductions drain under the next
    // step's forward: the steady-state cadence is at most the
    // single-step latency and at least the busier of the two
    // resources.
    SimOptions overlap;
    overlap.overlapGradComm = true;
    Rig rig(dnn::makeVggA(), 4, overlap);
    const auto plan = core::makeDataParallelPlan(rig.net, 4);

    const auto one = rig.simulator.simulate(plan);
    const auto steady = rig.simulator.simulateSteadyState(plan, 5);
    EXPECT_LE(steady.stepSeconds, one.stepSeconds * (1 + 1e-9));
    EXPECT_GT(steady.stepSeconds, 0.0);

    // It can never beat the per-step network drain (the interconnect
    // is the bottleneck resource for DP VGG-A).
    const double net_per_step = steady.networkBusySeconds / 5.0;
    EXPECT_GE(steady.stepSeconds, net_per_step * (1 - 1e-9));
}

TEST(TrainingSim, SteadyStateMatchesReplicatedTapeReplay)
{
    // Bit-identity regression for the no-replication rewrite: the
    // steady-state cadence must equal a reference that *materializes*
    // the replicated schedule — the one-step two-tape decomposition
    // (overlapSchedule) replayed `steps` times through the identical
    // resource algebra. Exact comparison, no tolerance: both paths
    // must perform the same float operations in the same order.
    for (const bool overlap : {false, true}) {
        SimOptions opts;
        opts.overlapGradComm = overlap;
        for (const auto &name : {"Lenet-c", "AlexNet", "VGG-A"}) {
            Rig rig(dnn::modelByName(name), 4, opts);
            const auto plan = core::makeDataParallelPlan(rig.net, 4);
            const std::size_t steps = 5;
            const auto steady =
                rig.simulator.simulateSteadyState(plan, steps);

            const sim::TapeSchedule tape =
                rig.simulator.overlapSchedule(plan);
            double serial = 0.0;
            double network = 0.0;
            std::vector<double> finish(steps, 0.0);
            for (std::size_t s = 0; s < steps; ++s) {
                for (const sim::TapeTask &t : tape.tasks) {
                    if (!t.exchange) {
                        serial += t.seconds;
                    } else if (t.async) {
                        network =
                            std::max(network, serial) + t.seconds;
                    } else {
                        serial = std::max(serial, network) + t.seconds;
                        network = serial;
                    }
                }
                finish[s] = std::max(serial, network);
            }
            const double ref =
                (finish[steps - 1] - finish[0]) /
                static_cast<double>(steps - 1);
            EXPECT_DOUBLE_EQ(steady.stepSeconds, ref)
                << name << " overlap=" << overlap;
        }
    }
}

TEST(TrainingSim, SteadyStateTotalsScaleExactly)
{
    // Per-step accounting is built once and scaled, so the multi-step
    // totals are exact multiples of the single-step metrics (the old
    // replicate-the-task-list path re-summed them with different
    // rounding; the contract is now exact).
    Rig rig(dnn::makeAlexNet());
    const auto plan = core::makeDataParallelPlan(rig.net, 4);
    const auto one = rig.simulator.simulate(plan);
    const auto steady = rig.simulator.simulateSteadyState(plan, 7);
    EXPECT_DOUBLE_EQ(steady.commBytes, 7.0 * one.commBytes);
    EXPECT_DOUBLE_EQ(steady.energy.computeJ, 7.0 * one.energy.computeJ);
    EXPECT_DOUBLE_EQ(steady.energy.sramJ, 7.0 * one.energy.sramJ);
    EXPECT_DOUBLE_EQ(steady.energy.dramJ, 7.0 * one.energy.dramJ);
    EXPECT_DOUBLE_EQ(steady.energy.commJ, 7.0 * one.energy.commJ);

    // steps == 1 stays the verbatim event-queue path: field-for-field
    // identical to simulate().
    const auto single = rig.simulator.simulateSteadyState(plan, 1);
    EXPECT_EQ(single, one);
}

TEST(TrainingSim, SteadyStateRejectsZeroSteps)
{
    Rig rig(dnn::makeLenetC());
    const auto plan = core::makeDataParallelPlan(rig.net, 4);
    EXPECT_THROW((void)rig.simulator.simulateSteadyState(plan, 0),
                 util::FatalError);
}

TEST(TrainingSim, RejectsMismatchedPlanDepth)
{
    Rig rig(dnn::makeLenetC(), 4);
    const auto plan = core::makeDataParallelPlan(rig.net, 2);
    EXPECT_THROW((void)rig.simulator.simulate(plan), util::FatalError);
}

TEST(TrainingSim, SamplesPerSecond)
{
    Rig rig(dnn::makeLenetC());
    const auto m = rig.simulator.simulate(
        core::makeDataParallelPlan(rig.net, 4));
    EXPECT_NEAR(m.samplesPerSec(256), 256.0 / m.stepSeconds, 1e-9);
    const std::string s = m.summary();
    EXPECT_NE(s.find("step"), std::string::npos);
    EXPECT_NE(s.find("comm"), std::string::npos);
}
