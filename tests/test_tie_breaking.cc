/**
 * @file
 * The library-wide deterministic tie-breaking rule (core/tie_break.hh):
 * on exact cost ties every search prefers the dp-heavier candidate, and
 * all engines — Algorithm 1, the joint DP, the Gray-code enumerator —
 * agree with each other and with themselves across repeated runs and
 * thread schedules.
 */

#include <gtest/gtest.h>

#include <random>

#include "core/brute_force.hh"
#include "core/comm_model.hh"
#include "core/optimal_partitioner.hh"
#include "core/pairwise_partitioner.hh"
#include "core/tie_break.hh"
#include "dnn/builder.hh"

using namespace hypar;
using core::CommConfig;
using core::CommModel;
using core::History;
using core::Parallelism;

namespace {

/**
 * A network whose dp and mp intra costs tie *exactly*: one fc layer
 * with fan-in I run at batch B = I makes A(dW) = I*O = A(F^out)/B * B.
 */
dnn::Network
tiedNet()
{
    return dnn::NetworkBuilder("tied", {24, 1, 1}).fc("fc", 7).build();
}

CommConfig
tiedConfig()
{
    CommConfig cfg;
    cfg.batch = 24; // == fan-in => weight bytes == raw output bytes
    return cfg;
}

} // namespace

TEST(TieBreaking, BetterPrefersLowerCostThenLowerIndex)
{
    EXPECT_TRUE(core::better(1.0, 9, 2.0, 0));
    EXPECT_FALSE(core::better(2.0, 0, 1.0, 9));
    EXPECT_TRUE(core::better(1.0, 3, 1.0, 4));
    EXPECT_FALSE(core::better(1.0, 4, 1.0, 3));
    EXPECT_FALSE(core::better(1.0, 3, 1.0, 3));
}

TEST(TieBreaking, ExactTieResolvesTowardDataParallel)
{
    const dnn::Network net = tiedNet();
    const CommModel model(net, tiedConfig());

    // The two single-layer choices cost exactly the same...
    const History empty(1);
    ASSERT_EQ(model.intraBytes(0, Parallelism::kData, empty),
              model.intraBytes(0, Parallelism::kModel, empty));

    // ...and every engine must resolve the tie to dp.
    const auto pairwise = core::PairwisePartitioner(model).partition();
    EXPECT_EQ(pairwise.plan,
              core::LevelPlan{Parallelism::kData});

    const auto brute = core::bruteForcePairwise(model, empty);
    EXPECT_EQ(brute.plan, core::LevelPlan{Parallelism::kData});

    const auto h1 = core::OptimalPartitioner(model).partition(1);
    EXPECT_EQ(h1.plan.levels[0], core::LevelPlan{Parallelism::kData});

    // At H = 3 every level vector containing at least one mp split ties
    // exactly (one full-size exchange plus halved lower levels); the
    // rule picks the numerically smallest tied state, 001 = mp only at
    // the top level, dp below.
    const auto h3 = core::OptimalPartitioner(model).partition(3);
    EXPECT_EQ(h3.plan.levels[0], core::LevelPlan{Parallelism::kModel});
    EXPECT_EQ(h3.plan.levels[1], core::LevelPlan{Parallelism::kData});
    EXPECT_EQ(h3.plan.levels[2], core::LevelPlan{Parallelism::kData});
}

TEST(TieBreaking, EnginesAgreeOnSingleLevelPlans)
{
    // Algorithm 1, the H=1 joint DP and the exhaustive enumerators all
    // optimize the same objective under the same tie-break rule, so
    // their plans must be identical bit for bit.
    std::mt19937 rng(42);
    std::uniform_int_distribution<std::size_t> widths(1, 256);
    std::uniform_int_distribution<int> layers(2, 8);
    for (int trial = 0; trial < 50; ++trial) {
        dnn::NetworkBuilder b("net", {widths(rng), 1, 1});
        const int n = layers(rng);
        for (int l = 0; l < n; ++l)
            b.fc("fc" + std::to_string(l), widths(rng));
        const dnn::Network net = b.build();

        CommConfig cfg;
        cfg.batch = widths(rng);
        const CommModel model(net, cfg);
        const History empty(net.size());

        const auto pairwise =
            core::PairwisePartitioner(model).partition();
        const auto optimal = core::OptimalPartitioner(model).partition(1);
        const auto brute = core::bruteForcePairwise(model, empty);

        EXPECT_EQ(pairwise.plan, optimal.plan.levels[0])
            << "trial " << trial;
        EXPECT_EQ(pairwise.plan, brute.plan) << "trial " << trial;
        EXPECT_EQ(pairwise.commBytes, optimal.commBytes)
            << "trial " << trial;
        EXPECT_EQ(pairwise.commBytes, brute.commBytes)
            << "trial " << trial;
    }
}

TEST(TieBreaking, RepeatedRunsAreDeterministic)
{
    // The optimized DP fans out over the global thread pool; its result
    // must not depend on scheduling.
    dnn::NetworkBuilder b("deep", {64, 1, 1});
    for (int l = 0; l < 12; ++l)
        b.fc("fc" + std::to_string(l), l % 2 ? 512 : 64);
    const dnn::Network net = b.build();
    const CommModel model(net, CommConfig{});
    const core::OptimalPartitioner partitioner(model);

    const auto first = partitioner.partition(6);
    for (int run = 0; run < 5; ++run) {
        const auto again = partitioner.partition(6);
        EXPECT_EQ(first.commBytes, again.commBytes) << "run " << run;
        EXPECT_EQ(first.plan, again.plan) << "run " << run;
    }
}
