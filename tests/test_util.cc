/**
 * @file
 * Unit tests for the util module: logging, stats, strings, table, and
 * the serving tier's latency histogram.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/latency_histogram.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/strings.hh"
#include "util/table.hh"
#include "util/units.hh"

using namespace hypar;

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(util::fatal("user error"), util::FatalError);
    try {
        util::fatal("bad config");
    } catch (const util::FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: bad config");
    }
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(util::panic("bug"), util::PanicError);
    // PanicError is a logic_error, FatalError a runtime_error: callers
    // can distinguish library bugs from user errors.
    EXPECT_THROW(util::panic("bug"), std::logic_error);
    EXPECT_THROW(util::fatal("cfg"), std::runtime_error);
}

TEST(Logging, AssertMacroFiresOnlyWhenFalse)
{
    EXPECT_NO_THROW(HYPAR_ASSERT(1 + 1 == 2, "fine"));
    EXPECT_THROW(HYPAR_ASSERT(1 + 1 == 3, "broken"), util::PanicError);
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(util::geomean({4.0}), 4.0);
    EXPECT_DOUBLE_EQ(util::geomean({1.0, 4.0}), 2.0);
    EXPECT_NEAR(util::geomean({2.0, 8.0, 4.0}), 4.0, 1e-12);
    EXPECT_THROW(util::geomean({}), util::FatalError);
    EXPECT_THROW(util::geomean({1.0, 0.0}), util::FatalError);
    EXPECT_THROW(util::geomean({1.0, -2.0}), util::FatalError);
}

TEST(Stats, MeanAndStddev)
{
    EXPECT_DOUBLE_EQ(util::mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(util::stddev({5.0}), 0.0);
    EXPECT_NEAR(util::stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
                2.138089935299395, 1e-12);
    EXPECT_THROW(util::mean({}), util::FatalError);
}

TEST(Stats, LinearFitRecoversLine)
{
    std::vector<double> xs{1, 2, 3, 4, 5};
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(3.0 * x + 7.0);
    const auto fit = util::linearFit(xs, ys);
    EXPECT_NEAR(fit.slope, 3.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 7.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, LinearFitRejectsDegenerateInput)
{
    EXPECT_THROW(util::linearFit({1.0}, {2.0}), util::FatalError);
    EXPECT_THROW(util::linearFit({1.0, 2.0}, {1.0}), util::FatalError);
    EXPECT_THROW(util::linearFit({2.0, 2.0}, {1.0, 5.0}),
                 util::FatalError);
}

TEST(Stats, LinearFitFlatLine)
{
    const auto fit = util::linearFit({1, 2, 3}, {5, 5, 5});
    EXPECT_NEAR(fit.slope, 0.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Strings, FormatBytesUsesDecimalUnits)
{
    EXPECT_EQ(util::formatBytes(0.0), "0 B");
    EXPECT_EQ(util::formatBytes(999.0), "999 B");
    EXPECT_EQ(util::formatBytes(56000.0), "56.0 KB");
    EXPECT_EQ(util::formatBytes(25600.0), "25.6 KB");
    EXPECT_EQ(util::formatBytes(15.9e9), "15.9 GB");
}

TEST(Strings, FormatSecondsAdaptsUnit)
{
    EXPECT_EQ(util::formatSeconds(2.5), "2.5 s");
    EXPECT_EQ(util::formatSeconds(3.2e-3), "3.2 ms");
    EXPECT_EQ(util::formatSeconds(1.5e-6), "1.5 us");
}

TEST(Strings, FormatRatio)
{
    EXPECT_EQ(util::formatRatio(3.39), "3.39x");
    EXPECT_EQ(util::formatRatio(1.0), "1.00x");
}

TEST(Strings, Join)
{
    EXPECT_EQ(util::join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(util::join({}, ","), "");
    EXPECT_EQ(util::join({"only"}, ","), "only");
}

TEST(Table, AlignsColumnsAndCountsRows)
{
    util::Table t({"net", "gain"});
    t.addRow({"VGG-A", "3.27"});
    t.addRow({"SFC", "23.48"});
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.numCols(), 2u);

    const std::string s = t.toString();
    EXPECT_NE(s.find("VGG-A"), std::string::npos);
    EXPECT_NE(s.find("23.48"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, RejectsBadShapes)
{
    EXPECT_THROW(util::Table({}), util::FatalError);
    util::Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), util::FatalError);
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(util::mbitsPerSec(1600.0), 200e6);
    EXPECT_DOUBLE_EQ(util::gbitsPerSec(12.8), 1.6e9);
    EXPECT_DOUBLE_EQ(util::gbytesPerSec(320.0), 320e9);
}

// --- LatencyHistogram -------------------------------------------------------

TEST(LatencyHistogram, EmptyHistogramReportsZeros)
{
    const util::LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0.0);
    EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST(LatencyHistogram, QuantilesBracketTheSamples)
{
    util::LatencyHistogram h;
    for (int i = 1; i <= 100; ++i)
        h.record(i * 1e-4); // 0.1ms .. 10ms
    EXPECT_EQ(h.count(), 100u);
    // Bucket bounds are upper bounds with ~25% resolution, clamped to
    // the observed range: every quantile lies within [min, max] and
    // the ordering p50 <= p95 <= p99 holds.
    const double p50 = h.quantile(0.50);
    const double p95 = h.quantile(0.95);
    const double p99 = h.quantile(0.99);
    EXPECT_GE(p50, h.min());
    EXPECT_LE(p99, h.max());
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    // ...and the p50 estimate is within one bucket ratio of the true
    // median (5.05ms), the histogram's accuracy contract.
    EXPECT_GE(p50, 100e-4 * 0.5 / 1.25);
    EXPECT_LE(p50, 100e-4 * 0.5 * 1.25);
}

TEST(LatencyHistogram, SingleSampleCollapsesEveryQuantile)
{
    util::LatencyHistogram h;
    h.record(3.5e-3);
    EXPECT_EQ(h.quantile(0.0), h.quantile(1.0));
    EXPECT_EQ(h.quantile(0.5), h.min());
    EXPECT_EQ(h.min(), h.max());
}

TEST(LatencyHistogram, OutOfRangeValuesClampToTheEdgeBuckets)
{
    util::LatencyHistogram h;
    h.record(-1.0);    // negative: clamped to zero, lands lowest
    h.record(1e-12);   // below the first bound
    h.record(1e6);     // far beyond the last bound
    EXPECT_EQ(h.count(), 3u);
    EXPECT_GE(h.quantile(0.99), 0.0);
    EXPECT_LE(h.quantile(0.01), h.quantile(0.99));
}
