/**
 * @file
 * Tests for the exact joint partitioner: global optimality (equals
 * exhaustive search on tiny instances), dominance over the greedy
 * Algorithm 2, and cost-accounting consistency with CommModel.
 */

#include <gtest/gtest.h>

#include "core/brute_force.hh"
#include "core/comm_model.hh"
#include "core/hierarchical_partitioner.hh"
#include "core/optimal_partitioner.hh"
#include "core/strategies.hh"
#include "dnn/builder.hh"
#include "dnn/model_zoo.hh"
#include "util/logging.hh"

using namespace hypar;
using core::CommConfig;
using core::CommModel;
using core::HierarchicalPartitioner;
using core::OptimalPartitioner;

TEST(OptimalPartitioner, MatchesExhaustiveSearchOnTinyNets)
{
    const std::vector<dnn::Network> nets = {
        dnn::NetworkBuilder("t1", {128, 1, 1})
            .fc("a", 512)
            .fc("b", 64)
            .build(),
        dnn::NetworkBuilder("t2", {20, 12, 12})
            .conv("a", 50, 5)
            .fc("b", 10)
            .build(),
    };
    for (const auto &net : nets) {
        CommConfig cfg;
        cfg.batch = 32;
        CommModel model(net, cfg);
        for (std::size_t levels : {1u, 2u, 3u}) {
            const auto exact =
                OptimalPartitioner(model).partition(levels);
            const auto brute =
                core::bruteForceHierarchical(model, levels);
            EXPECT_DOUBLE_EQ(exact.commBytes, brute.commBytes)
                << net.name() << " H=" << levels;
        }
    }
}

TEST(OptimalPartitioner, CostEqualsPlanReplay)
{
    for (const auto &net : dnn::allModels()) {
        CommModel model(net, CommConfig{});
        const auto exact = OptimalPartitioner(model).partition(4);
        EXPECT_NEAR(exact.commBytes, model.planBytes(exact.plan),
                    1e-6 * std::max(1.0, exact.commBytes))
            << net.name();
    }
}

TEST(OptimalPartitioner, NeverWorseThanGreedyAlgorithm2)
{
    for (const auto &net : dnn::allModels()) {
        CommModel model(net, CommConfig{});
        for (std::size_t levels : {1u, 2u, 4u, 6u}) {
            const auto exact =
                OptimalPartitioner(model).partition(levels);
            const auto greedy =
                HierarchicalPartitioner(model).partition(levels);
            EXPECT_LE(exact.commBytes,
                      greedy.commBytes * (1 + 1e-12))
                << net.name() << " H=" << levels;
        }
    }
}

TEST(OptimalPartitioner, GreedyGapIsSmallOnTheZoo)
{
    // Empirical claim backing the paper's greedy design: the exact
    // optimum buys at most a few percent over Algorithm 2 on real
    // networks.
    for (const auto &net : dnn::allModels()) {
        CommModel model(net, CommConfig{});
        const auto exact = OptimalPartitioner(model).partition(4);
        const auto greedy = HierarchicalPartitioner(model).partition(4);
        EXPECT_GE(exact.commBytes, 0.90 * greedy.commBytes)
            << net.name();
    }
}

TEST(OptimalPartitioner, SingleLevelEqualsAlgorithm1)
{
    // With one level there is nothing to be greedy about: both
    // partitioners solve the same chain problem exactly.
    for (const auto &net : dnn::allModels()) {
        CommModel model(net, CommConfig{});
        const auto exact = OptimalPartitioner(model).partition(1);
        const auto greedy = HierarchicalPartitioner(model).partition(1);
        EXPECT_DOUBLE_EQ(exact.commBytes, greedy.commBytes)
            << net.name();
    }
}

TEST(OptimalPartitioner, ZeroLevels)
{
    dnn::Network net = dnn::makeLenetC();
    CommModel model(net, CommConfig{});
    const auto result = OptimalPartitioner(model).partition(0);
    EXPECT_DOUBLE_EQ(result.commBytes, 0.0);
    EXPECT_EQ(result.plan.numLevels(), 0u);
}

TEST(OptimalPartitioner, IntraCostMatchesManualExpansion)
{
    // fc 70->100, B=32: level vector "dp then mp" (bit0=0, bit1=1).
    dnn::Network net = dnn::NetworkBuilder("fc", {70, 1, 1})
                           .fc("fc", 100)
                           .build();
    CommConfig cfg;
    cfg.batch = 32;
    CommModel model(net, cfg);
    OptimalPartitioner opt(model);

    // Level 0 dp: 2*70*100*4 = 56000. Level 1 mp beneath one dp:
    // batch halved -> 2*16*100*4 = 12800, weighted by 2 pairs.
    EXPECT_DOUBLE_EQ(opt.intraCost(0, 0b10, 2),
                     56000.0 + 2.0 * 12800.0);
    // All-dp over 2 levels: gradients unscaled at both levels.
    EXPECT_DOUBLE_EQ(opt.intraCost(0, 0b00, 2), 56000.0 * 3.0);
}

TEST(OptimalPartitioner, RejectsAbsurdDepth)
{
    dnn::Network net = dnn::makeLenetC();
    CommModel model(net, CommConfig{});
    EXPECT_THROW((void)OptimalPartitioner(model).partition(11),
                 util::FatalError);
}
