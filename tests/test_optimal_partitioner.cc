/**
 * @file
 * Tests for the exact joint partitioner: global optimality (equals
 * exhaustive search on tiny instances), dominance over the greedy
 * Algorithm 2, and cost-accounting consistency with CommModel.
 */

#include <gtest/gtest.h>

#include "core/brute_force.hh"
#include "core/comm_model.hh"
#include "core/hierarchical_partitioner.hh"
#include "core/optimal_partitioner.hh"
#include "core/strategies.hh"
#include "dnn/builder.hh"
#include "dnn/model_zoo.hh"
#include "util/logging.hh"

using namespace hypar;
using core::CommConfig;
using core::CommModel;
using core::HierarchicalPartitioner;
using core::OptimalPartitioner;

TEST(OptimalPartitioner, MatchesExhaustiveSearchOnTinyNets)
{
    const std::vector<dnn::Network> nets = {
        dnn::NetworkBuilder("t1", {128, 1, 1})
            .fc("a", 512)
            .fc("b", 64)
            .build(),
        dnn::NetworkBuilder("t2", {20, 12, 12})
            .conv("a", 50, 5)
            .fc("b", 10)
            .build(),
    };
    for (const auto &net : nets) {
        CommConfig cfg;
        cfg.batch = 32;
        CommModel model(net, cfg);
        for (std::size_t levels : {1u, 2u, 3u}) {
            const auto brute =
                core::bruteForceHierarchical(model, levels);
            for (auto engine :
                 {core::SearchEngine::kAuto, core::SearchEngine::kDense,
                  core::SearchEngine::kSparse, core::SearchEngine::kBeam,
                  core::SearchEngine::kAStar}) {
                core::SearchOptions opts;
                opts.engine = engine;
                const auto exact =
                    OptimalPartitioner(model).partition(levels, opts);
                EXPECT_DOUBLE_EQ(exact.commBytes, brute.commBytes)
                    << net.name() << " H=" << levels << " engine="
                    << static_cast<int>(engine);
            }
        }
    }
}

TEST(OptimalPartitioner, WideEnginesBitIdenticalToDenseAtTheOldCeiling)
{
    // The sparse engine is exact by construction; the beam engine is
    // exhaustive whenever its width covers all 2^H states. Both must
    // reproduce the dense DP bit for bit at the old H = 10 ceiling.
    dnn::NetworkBuilder b("deep8", {256, 1, 1});
    for (int l = 0; l < 8; ++l)
        b.fc("fc" + std::to_string(l), l % 2 ? 512 : 128);
    const dnn::Network net = b.build();
    CommModel model(net, CommConfig{});
    OptimalPartitioner opt(model);

    const auto dense = opt.partition(10);

    core::SearchOptions sparse;
    sparse.engine = core::SearchEngine::kSparse;
    const auto sp = opt.partition(10, sparse);
    EXPECT_EQ(sp.commBytes, dense.commBytes);
    EXPECT_EQ(sp.plan, dense.plan);
    // The whole point of the sparse engine: it proves most transitions
    // dominated without evaluating them.
    EXPECT_LT(sp.transitionsEvaluated, dense.transitionsEvaluated / 2);

    core::SearchOptions beam;
    beam.engine = core::SearchEngine::kBeam;
    beam.beamWidth = std::size_t{1} << 10; // exhaustive
    const auto bm = opt.partition(10, beam);
    EXPECT_EQ(bm.commBytes, dense.commBytes);
    EXPECT_EQ(bm.plan, dense.plan);
    EXPECT_EQ(bm.transitionsEvaluated, dense.transitionsEvaluated);
    // Nothing dropped at full width -> the certificate is vacuous.
    EXPECT_TRUE(bm.stats.certifiedExact);
    EXPECT_EQ(bm.stats.pruned, 0u);

    core::SearchOptions astar;
    astar.engine = core::SearchEngine::kAStar;
    const auto as = opt.partition(10, astar);
    EXPECT_EQ(as.commBytes, dense.commBytes);
    EXPECT_EQ(as.plan, dense.plan);
    EXPECT_TRUE(as.stats.certifiedExact);
    // The suffix bound must actually prune: every node is either
    // expanded or pruned, and a healthy bound kills most of them.
    EXPECT_EQ(as.stats.expanded + as.stats.pruned,
              std::uint64_t{1 << 10} * model.numLayers());
    EXPECT_GT(as.stats.pruned, 0u);
    EXPECT_LT(as.transitionsEvaluated, dense.transitionsEvaluated);
}

TEST(OptimalPartitioner, WideEnginesStayExactPastTheOldCeiling)
{
    // H = 12 exceeds the dense ceiling. The exhaustive beam (width =
    // 2^12) is exact there; kAuto (now the A* engine) and the sparse
    // engine must reproduce it bit for bit, and kAuto must get there
    // with fewer relaxations than exhaustion.
    dnn::NetworkBuilder b("deep8", {256, 1, 1});
    for (int l = 0; l < 8; ++l)
        b.fc("fc" + std::to_string(l), l % 2 ? 512 : 128);
    const dnn::Network net = b.build();
    CommModel model(net, CommConfig{});
    OptimalPartitioner opt(model);

    core::SearchOptions exhaustive;
    exhaustive.engine = core::SearchEngine::kBeam;
    exhaustive.beamWidth = std::size_t{1} << 12;
    const auto exact = opt.partition(12, exhaustive);

    const auto pruned = opt.partition(12); // kAuto -> A*
    EXPECT_EQ(pruned.commBytes, exact.commBytes);
    EXPECT_EQ(pruned.plan, exact.plan);
    EXPECT_TRUE(pruned.stats.certifiedExact);
    EXPECT_LT(pruned.transitionsEvaluated, exact.transitionsEvaluated);

    core::SearchOptions sparse;
    sparse.engine = core::SearchEngine::kSparse;
    const auto sp = opt.partition(12, sparse);
    EXPECT_EQ(sp.commBytes, exact.commBytes);
    EXPECT_EQ(sp.plan, exact.plan);
}

TEST(OptimalPartitioner, AdaptiveBeamSelfCertifiesAcrossTheZoo)
{
    // The adaptive beam grows from a deliberately tiny start width
    // until its optimality certificate holds; the certified result
    // must equal the A* optimum bit for bit on every zoo model.
    for (const auto &net : dnn::allModels()) {
        CommModel model(net, CommConfig{});
        OptimalPartitioner opt(model);

        core::SearchOptions astar;
        astar.engine = core::SearchEngine::kAStar;
        const auto exact = opt.partition(9, astar);

        core::SearchOptions adaptive;
        adaptive.engine = core::SearchEngine::kBeam;
        adaptive.beamWidthStart = 16;
        const auto bm = opt.partition(9, adaptive);
        EXPECT_TRUE(bm.stats.certifiedExact) << net.name();
        EXPECT_GE(bm.stats.widthUsed, 16u) << net.name();
        EXPECT_LE(bm.stats.widthUsed, std::size_t{1} << 9)
            << net.name();
        EXPECT_EQ(bm.commBytes, exact.commBytes) << net.name();
        EXPECT_EQ(bm.plan, exact.plan) << net.name();
    }
}

TEST(OptimalPartitioner, FixedWidthBeamReportsItsCertificateHonestly)
{
    // A deliberately starved fixed-width beam must never *claim*
    // exactness unless its plan really is the A* optimum; and with
    // adaptive growth disabled, width 0 keeps the legacy default.
    const dnn::Network net = dnn::makeVggA();
    CommModel model(net, CommConfig{});
    OptimalPartitioner opt(model);

    core::SearchOptions astar;
    astar.engine = core::SearchEngine::kAStar;
    const auto exact = opt.partition(11, astar);

    core::SearchOptions starved;
    starved.engine = core::SearchEngine::kBeam;
    starved.beamWidth = 2;
    const auto bm = opt.partition(11, starved);
    EXPECT_EQ(bm.stats.widthUsed, 2u);
    EXPECT_GE(bm.commBytes, exact.commBytes);
    if (bm.stats.certifiedExact) {
        EXPECT_EQ(bm.commBytes, exact.commBytes);
        EXPECT_EQ(bm.plan, exact.plan);
    }

    core::SearchOptions legacy;
    legacy.engine = core::SearchEngine::kBeam;
    legacy.adaptiveBeam = false;
    const auto lg = opt.partition(11, legacy);
    // Default legacy width: max(1024, 2^11 / 16) = 1024.
    EXPECT_EQ(lg.stats.widthUsed, 1024u);
    EXPECT_GE(lg.commBytes, exact.commBytes);
}

TEST(OptimalPartitioner, CostEqualsPlanReplay)
{
    for (const auto &net : dnn::allModels()) {
        CommModel model(net, CommConfig{});
        const auto exact = OptimalPartitioner(model).partition(4);
        EXPECT_NEAR(exact.commBytes, model.planBytes(exact.plan),
                    1e-6 * std::max(1.0, exact.commBytes))
            << net.name();
    }
}

TEST(OptimalPartitioner, NeverWorseThanGreedyAlgorithm2)
{
    for (const auto &net : dnn::allModels()) {
        CommModel model(net, CommConfig{});
        for (std::size_t levels : {1u, 2u, 4u, 6u}) {
            const auto exact =
                OptimalPartitioner(model).partition(levels);
            const auto greedy =
                HierarchicalPartitioner(model).partition(levels);
            EXPECT_LE(exact.commBytes,
                      greedy.commBytes * (1 + 1e-12))
                << net.name() << " H=" << levels;
        }
    }
}

TEST(OptimalPartitioner, GreedyGapIsSmallOnTheZoo)
{
    // Empirical claim backing the paper's greedy design: the exact
    // optimum buys at most a few percent over Algorithm 2 on real
    // networks.
    for (const auto &net : dnn::allModels()) {
        CommModel model(net, CommConfig{});
        const auto exact = OptimalPartitioner(model).partition(4);
        const auto greedy = HierarchicalPartitioner(model).partition(4);
        EXPECT_GE(exact.commBytes, 0.90 * greedy.commBytes)
            << net.name();
    }
}

TEST(OptimalPartitioner, SingleLevelEqualsAlgorithm1)
{
    // With one level there is nothing to be greedy about: both
    // partitioners solve the same chain problem exactly.
    for (const auto &net : dnn::allModels()) {
        CommModel model(net, CommConfig{});
        const auto exact = OptimalPartitioner(model).partition(1);
        const auto greedy = HierarchicalPartitioner(model).partition(1);
        EXPECT_DOUBLE_EQ(exact.commBytes, greedy.commBytes)
            << net.name();
    }
}

TEST(OptimalPartitioner, ZeroLevels)
{
    dnn::Network net = dnn::makeLenetC();
    CommModel model(net, CommConfig{});
    const auto result = OptimalPartitioner(model).partition(0);
    EXPECT_DOUBLE_EQ(result.commBytes, 0.0);
    EXPECT_EQ(result.plan.numLevels(), 0u);
}

TEST(OptimalPartitioner, IntraCostMatchesManualExpansion)
{
    // fc 70->100, B=32: level vector "dp then mp" (bit0=0, bit1=1).
    dnn::Network net = dnn::NetworkBuilder("fc", {70, 1, 1})
                           .fc("fc", 100)
                           .build();
    CommConfig cfg;
    cfg.batch = 32;
    CommModel model(net, cfg);
    OptimalPartitioner opt(model);

    // Level 0 dp: 2*70*100*4 = 56000. Level 1 mp beneath one dp:
    // batch halved -> 2*16*100*4 = 12800, weighted by 2 pairs.
    EXPECT_DOUBLE_EQ(opt.intraCost(0, 0b10, 2),
                     56000.0 + 2.0 * 12800.0);
    // All-dp over 2 levels: gradients unscaled at both levels.
    EXPECT_DOUBLE_EQ(opt.intraCost(0, 0b00, 2), 56000.0 * 3.0);
}

TEST(OptimalPartitioner, SearchStatsAreDeterministicAndConsistent)
{
    const dnn::Network net = dnn::makeAlexNet();
    CommModel model(net, CommConfig{});
    OptimalPartitioner opt(model);
    const std::size_t levels = 6;
    const std::uint64_t states = 1u << levels;
    const std::uint64_t nodes = states * net.size();

    core::SearchOptions o;
    o.engine = core::SearchEngine::kDense;
    const auto dense = opt.partition(levels, o);
    EXPECT_TRUE(dense.stats.certifiedExact);
    EXPECT_EQ(dense.stats.expanded, nodes);
    EXPECT_EQ(dense.stats.pruned, 0u);
    EXPECT_EQ(dense.stats.widthUsed, states);

    o.engine = core::SearchEngine::kSparse;
    const auto sparse = opt.partition(levels, o);
    EXPECT_TRUE(sparse.stats.certifiedExact);
    EXPECT_EQ(sparse.stats.expanded, nodes);
    EXPECT_EQ(sparse.stats.widthUsed, states);
    // The sparse engine's pruned count is its dominance-skipped
    // transitions: it complements transitionsEvaluated to the dense
    // engine's full 4^H * (L-1) bill (ROADMAP PR 4 follow-up).
    EXPECT_EQ(sparse.stats.pruned + sparse.transitionsEvaluated,
              states * states * (net.size() - 1));
    EXPECT_GT(sparse.stats.pruned, 0u);
    // Determinism: a second identical sparse search reports the same
    // accounting, bit for bit.
    const auto sparse_again = opt.partition(levels, o);
    EXPECT_EQ(sparse_again.stats.pruned, sparse.stats.pruned);
    EXPECT_EQ(sparse_again.stats.expanded, sparse.stats.expanded);
    EXPECT_EQ(sparse_again.transitionsEvaluated,
              sparse.transitionsEvaluated);

    o.engine = core::SearchEngine::kAStar;
    const auto astar = opt.partition(levels, o);
    EXPECT_TRUE(astar.stats.certifiedExact);
    EXPECT_EQ(astar.stats.expanded + astar.stats.pruned, nodes);
    EXPECT_GE(astar.stats.widthUsed, 1u);
    EXPECT_LE(astar.stats.widthUsed, states);
    // Stats are deterministic: a second identical search agrees.
    const auto again = opt.partition(levels, o);
    EXPECT_EQ(again.stats.expanded, astar.stats.expanded);
    EXPECT_EQ(again.stats.pruned, astar.stats.pruned);
    EXPECT_EQ(again.stats.widthUsed, astar.stats.widthUsed);
    EXPECT_EQ(again.transitionsEvaluated, astar.transitionsEvaluated);

    // The greedy Algorithm 2 carries no certificate.
    const auto greedy = HierarchicalPartitioner(model).partition(levels);
    EXPECT_FALSE(greedy.stats.certifiedExact);
}

TEST(OptimalPartitioner, RejectsAbsurdDepth)
{
    dnn::Network net = dnn::makeLenetC();
    CommModel model(net, CommConfig{});
    const OptimalPartitioner opt(model);

    // H = 11 used to be fatal; kAuto now routes it to the A* engine.
    EXPECT_NO_THROW((void)opt.partition(11));

    // The dense engine (and its reference) keep the 4^H ceiling...
    core::SearchOptions dense;
    dense.engine = core::SearchEngine::kDense;
    EXPECT_THROW((void)opt.partition(11, dense), util::FatalError);
    EXPECT_THROW((void)opt.partitionReference(11), util::FatalError);

    // ...and the wide engines stop at H = 16.
    EXPECT_THROW((void)opt.partition(17), util::FatalError);
    for (auto engine : {core::SearchEngine::kSparse,
                        core::SearchEngine::kBeam,
                        core::SearchEngine::kAStar}) {
        core::SearchOptions wide;
        wide.engine = engine;
        EXPECT_THROW((void)opt.partition(17, wide), util::FatalError);
    }
}

TEST(OptimalPartitioner, SearchEngineNames)
{
    EXPECT_EQ(core::searchEngineFromName("auto"),
              core::SearchEngine::kAuto);
    EXPECT_EQ(core::searchEngineFromName("dense"),
              core::SearchEngine::kDense);
    EXPECT_EQ(core::searchEngineFromName("sparse"),
              core::SearchEngine::kSparse);
    EXPECT_EQ(core::searchEngineFromName("beam"),
              core::SearchEngine::kBeam);
    EXPECT_EQ(core::searchEngineFromName("astar"),
              core::SearchEngine::kAStar);
    EXPECT_THROW((void)core::searchEngineFromName("bogus"),
                 util::FatalError);
}
