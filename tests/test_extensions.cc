/**
 * @file
 * Cross-cutting coverage for the extension surface: the Evaluator's
 * steady-state API, deep-hierarchy torus/mesh profiles, parameterized
 * optimal-partitioner sweeps, and row-stationary corner mappings.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "arch/row_stationary.hh"
#include "core/optimal_partitioner.hh"
#include "core/strategies.hh"
#include "dnn/builder.hh"
#include "dnn/model_zoo.hh"
#include "noc/torus.hh"
#include "sim/evaluator.hh"

using namespace hypar;

TEST(EvaluatorSteadyState, OverlapImprovesDpCadence)
{
    sim::SimConfig cfg;
    cfg.options.overlapGradComm = true;
    sim::Evaluator ev(dnn::makeAlexNet(), cfg);
    const auto plan = ev.plan(core::Strategy::kDataParallel);
    const auto one = ev.evaluate(plan);
    const auto steady = ev.evaluateSteadyState(plan, 6);
    EXPECT_LE(steady.stepSeconds, one.stepSeconds * (1 + 1e-9));
    // AlexNet DP has a heavy gradient tail: the pipeline must show a
    // real improvement, not a tie.
    EXPECT_LT(steady.stepSeconds, one.stepSeconds * 0.99);
}

TEST(EvaluatorSteadyState, HyparStillWinsUnderPipelining)
{
    // Pipelining helps DP more than HyPar (DP has more gradient
    // traffic to hide), but must not flip the verdict.
    sim::SimConfig cfg;
    cfg.options.overlapGradComm = true;
    for (const auto &name : {"AlexNet", "VGG-A"}) {
        sim::Evaluator ev(dnn::modelByName(name), cfg);
        const auto dp = ev.evaluateSteadyState(
            ev.plan(core::Strategy::kDataParallel), 6);
        const auto hp = ev.evaluateSteadyState(
            ev.plan(core::Strategy::kHypar), 6);
        EXPECT_LE(hp.stepSeconds, dp.stepSeconds * (1 + 1e-9)) << name;
    }
}

TEST(DeepHierarchy, TorusAndMeshProfilesAtH5H6)
{
    // 2^5 = 8x4 and 2^6 = 8x8 grids: routing/profiles must stay sane
    // at the depths the scalability study uses.
    for (std::size_t levels : {5u, 6u}) {
        noc::TorusTopology torus(levels, noc::TopologyConfig{});
        noc::MeshTopology mesh(levels, noc::TopologyConfig{});
        EXPECT_EQ(torus.gridWidth() * torus.gridHeight(),
                  std::size_t{1} << levels);
        for (std::size_t h = 0; h < levels; ++h) {
            const double t = torus.exchangeSeconds(h, 1e9);
            EXPECT_GT(t, 0.0) << "H" << levels << " level " << h;
            EXPECT_GE(mesh.exchangeSeconds(h, 1e9), t * (1 - 1e-12));
            EXPECT_GE(torus.exchangeHops(h), 1.0);
        }
    }
}

TEST(DeepHierarchy, EndToEndTorusAtH6)
{
    sim::SimConfig cfg;
    cfg.levels = 6;
    cfg.topology = sim::TopologyKind::kTorus;
    sim::Evaluator ev(dnn::makeCifarC(), cfg);
    const auto m = ev.evaluate(core::Strategy::kHypar);
    EXPECT_GT(m.stepSeconds, 0.0);
    EXPECT_NEAR(m.commBytes,
                ev.commBytes(ev.plan(core::Strategy::kHypar)),
                1e-6 * std::max(1.0, m.commBytes));
}

// ---------------------------------------------------------------------
// Parameterized sweep: exact partitioner dominance and consistency
// across (network, levels, batch).
// ---------------------------------------------------------------------

using OptParam = std::tuple<std::string, std::size_t, std::size_t>;

class OptimalSweep : public ::testing::TestWithParam<OptParam>
{};

TEST_P(OptimalSweep, DominatesGreedyAndReplaysExactly)
{
    const auto &[name, levels, batch] = GetParam();
    dnn::Network net = dnn::modelByName(name);
    core::CommConfig cfg;
    cfg.batch = batch;
    core::CommModel model(net, cfg);

    const auto exact = core::OptimalPartitioner(model).partition(levels);
    const auto greedy =
        core::HierarchicalPartitioner(model).partition(levels);
    EXPECT_LE(exact.commBytes, greedy.commBytes * (1 + 1e-12));
    EXPECT_NEAR(exact.commBytes, model.planBytes(exact.plan),
                1e-6 * std::max(1.0, exact.commBytes));
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, OptimalSweep,
    ::testing::Combine(::testing::Values("SFC", "Lenet-c", "AlexNet",
                                         "VGG-A"),
                       ::testing::Values(2u, 4u, 6u),
                       ::testing::Values(32u, 256u, 2048u)),
    [](const auto &info) {
        auto name = std::get<0>(info.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name + "_H" + std::to_string(std::get<1>(info.param)) +
               "_B" + std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------
// Row-stationary corner mappings.
// ---------------------------------------------------------------------

TEST(RowStationaryCorners, SmallOutputReplicatesHorizontally)
{
    // 3x3 conv with a 4-row output: sets tile both directions.
    dnn::Network net = dnn::NetworkBuilder("s", {8, 6, 6})
                           .conv("c", 32, 3)
                           .build();
    arch::RowStationaryMapper mapper{arch::AcceleratorConfig{}};
    const auto m = mapper.map(net.layer(0), 4);
    // set = 3x4; 4 vertical x 3 horizontal sets = 12 sets, 144 PEs.
    EXPECT_DOUBLE_EQ(m.usedPes, 144.0);
    EXPECT_NEAR(m.utilization, 144.0 / 168.0, 1e-12);
}

TEST(RowStationaryCorners, FewChannelsCapReplication)
{
    dnn::Network net = dnn::NetworkBuilder("s", {8, 6, 6})
                           .conv("c", 2, 3)
                           .build();
    arch::RowStationaryMapper mapper{arch::AcceleratorConfig{}};
    const auto m = mapper.map(net.layer(0), 4);
    // Only 2 output channels: 2 sets of 3x4.
    EXPECT_DOUBLE_EQ(m.usedPes, 24.0);
}

TEST(RowStationaryCorners, WideOutputFolds)
{
    // H_out = 224 exceeds the 14 columns: one strip of 14 at a time.
    dnn::Network net = dnn::NetworkBuilder("s", {3, 224, 224})
                           .conv("c", 64, 3).pad(1)
                           .build();
    arch::RowStationaryMapper mapper{arch::AcceleratorConfig{}};
    const auto m = mapper.map(net.layer(0), 16);
    EXPECT_LE(m.usedPes, 168.0);
    EXPECT_GT(m.utilization, 0.9); // 4 sets of 3x14 = 168
}
