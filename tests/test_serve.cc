/**
 * @file
 * Serving-tier tests: SHA-256 against the FIPS 180-4 example digests,
 * the strict JSON parser, canonicalization stability (the cache-key
 * contract of docs/SERVING.md), plan-cache robustness (atomic writes,
 * corrupt-entry quarantine, --no-cache bypass), the warm-session LRU,
 * and the server protocol end to end — including the acceptance
 * differential: a warm-cache plan is bit-identical to a cold search
 * across engines and across thread counts.
 */

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "core/comm_model.hh"
#include "core/optimal_partitioner.hh"
#include "core/plan.hh"
#include "dnn/model_zoo.hh"
#include "dnn/spec_parser.hh"
#include "serve/canonical.hh"
#include "serve/json.hh"
#include "serve/plan_cache.hh"
#include "serve/server.hh"
#include "serve/session.hh"
#include "serve/sha256.hh"
#include "sim/evaluator.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace fs = std::filesystem;
using namespace hypar;

namespace {

/** Fresh per-test scratch directory, removed on destruction. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &tag)
        : path(fs::temp_directory_path() /
               ("hyparc_test_" + tag + "_" +
                std::to_string(static_cast<unsigned>(::getpid()))))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }
};

/** Run one request batch through a fresh-or-given server, returning
 *  the response lines. */
std::vector<std::string>
runBatch(serve::Server &server, const std::vector<std::string> &lines)
{
    std::ostringstream out;
    server.processBatch(lines, out);
    std::vector<std::string> responses;
    std::istringstream in(out.str());
    std::string line;
    while (std::getline(in, line))
        responses.push_back(line);
    return responses;
}

/** A tiny result with awkward doubles, for cache round-trip tests. */
core::HierarchicalResult
sampleResult()
{
    core::HierarchicalResult result;
    result.plan = core::uniformPlan(5, 3, core::Parallelism::kData);
    result.plan.levels[1][2] = core::Parallelism::kModel;
    result.plan.levels[2][0] = core::Parallelism::kModel;
    result.commBytes = 0.1 + 0.2; // not exactly representable — the
                                  // %.17g round-trip must preserve it
    result.transitionsEvaluated = 123456789;
    result.stats.expanded = 42;
    result.stats.pruned = 7;
    result.stats.certifiedExact = true;
    result.stats.widthUsed = 16;
    return result;
}

constexpr const char *kTinySpec =
    "network tiny\n"
    "input 1 28 28\n"
    "conv c1 8 5 pool 2\n"
    "fc f1 10\n";

/** Same network as kTinySpec, spelled differently. */
constexpr const char *kTinySpecVariant =
    "# a comment\n"
    "network tiny\n"
    "\n"
    "input 1 28 28\n"
    "conv c1 8 5\n"
    "pool 2\n"
    "fc f1 10 act relu\n";

} // namespace

// --- SHA-256 (FIPS 180-4 example digests) ----------------------------------

TEST(Sha256, FipsVectors)
{
    EXPECT_EQ(serve::sha256Hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(serve::sha256Hex(""),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(serve::sha256Hex("abcdbcdecdefdefgefghfghighijhijk"
                               "ijkljklmklmnlmnomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    const std::string msg =
        "The quick brown fox jumps over the lazy dog, repeatedly, "
        "until the message spans more than one 512-bit block and the "
        "buffering path in Sha256::update is actually exercised.";
    for (std::size_t split = 0; split <= msg.size(); split += 7) {
        serve::Sha256 h;
        h.update(std::string_view(msg).substr(0, split));
        h.update(std::string_view(msg).substr(split));
        EXPECT_EQ(h.hexDigest(), serve::sha256Hex(msg))
            << "split at " << split;
    }
}

TEST(Sha256, MultiBlockBoundaries)
{
    // Lengths straddling the 56-byte padding boundary and the 64-byte
    // block boundary, against an independent property: prefix digests
    // must all differ.
    std::string prev;
    for (const std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 128u}) {
        const std::string digest =
            serve::sha256Hex(std::string(len, 'a'));
        EXPECT_EQ(digest.size(), 64u);
        EXPECT_NE(digest, prev);
        prev = digest;
    }
}

// --- JSON parser ------------------------------------------------------------

TEST(Json, ParsesScalarsAndContainers)
{
    const serve::JsonValue v = serve::JsonValue::parse(
        R"({"s":"hi\nA","n":-2.5e2,"b":true,"z":null,)"
        R"("a":[1,2,3],"o":{"k":false}})");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("s")->asString(), "hi\nA");
    EXPECT_EQ(v.find("n")->asNumber(), -250.0);
    EXPECT_TRUE(v.find("b")->asBool());
    EXPECT_TRUE(v.find("z")->isNull());
    ASSERT_EQ(v.find("a")->asArray().size(), 3u);
    EXPECT_EQ(v.find("a")->asArray()[2].asNumber(), 3.0);
    EXPECT_FALSE(v.find("o")->asObject().at("k").asBool());
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, SurrogatePairDecodesToUtf8)
{
    const serve::JsonValue v =
        serve::JsonValue::parse(R"(["\uD83D\uDE00"])");
    EXPECT_EQ(v.asArray()[0].asString(), "\xF0\x9F\x98\x80");
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_THROW(serve::JsonValue::parse("{\"a\":1} trailing"),
                 util::FatalError);
    EXPECT_THROW(serve::JsonValue::parse("{\"a\":1,}"), util::FatalError);
    EXPECT_THROW(serve::JsonValue::parse("{\"a\" 1}"), util::FatalError);
    EXPECT_THROW(serve::JsonValue::parse("\"bad \\q escape\""),
                 util::FatalError);
    EXPECT_THROW(serve::JsonValue::parse("\"raw \x01 control\""),
                 util::FatalError);
    EXPECT_THROW(serve::JsonValue::parse("{\"dup\":1,\"dup\":2}"),
                 util::FatalError);
    EXPECT_THROW(serve::JsonValue::parse("01"), util::FatalError);
    EXPECT_THROW(serve::JsonValue::parse("1."), util::FatalError);
    EXPECT_THROW(serve::JsonValue::parse(""), util::FatalError);
    EXPECT_THROW(serve::JsonValue::parse("[1,2"), util::FatalError);
}

TEST(Json, TypedAccessorsFatalOnKindMismatch)
{
    const serve::JsonValue v = serve::JsonValue::parse("[1]");
    EXPECT_THROW(v.asObject(), util::FatalError);
    EXPECT_THROW(v.asArray()[0].asString(), util::FatalError);
}

TEST(Json, EscapeCoversControlsQuotesBackslashes)
{
    EXPECT_EQ(serve::jsonEscape("a\"b\\c\nd\te\rf"),
              "a\\\"b\\\\c\\nd\\te\\rf");
    EXPECT_EQ(serve::jsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

// --- Canonicalization --------------------------------------------------------

TEST(Canonical, SpecSpellingDoesNotForkTheKey)
{
    const dnn::Network a = dnn::parseNetworkSpec(kTinySpec);
    const dnn::Network b = dnn::parseNetworkSpec(kTinySpecVariant);
    const sim::SimConfig cfg;
    EXPECT_EQ(serve::canonicalContext(a, cfg),
              serve::canonicalContext(b, cfg));
    EXPECT_EQ(serve::contextHash(a, cfg), serve::contextHash(b, cfg));
}

TEST(Canonical, RecordTraceIsExcludedFromTheKey)
{
    const dnn::Network net = dnn::parseNetworkSpec(kTinySpec);
    sim::SimConfig cfg;
    const std::string base = serve::contextHash(net, cfg);
    cfg.options.recordTrace = true;
    EXPECT_EQ(serve::contextHash(net, cfg), base);
    cfg.options.overlapGradComm = true; // this one *is* keyed
    EXPECT_NE(serve::contextHash(net, cfg), base);
}

TEST(Canonical, FaultOrderIsIrrelevantButContentIsKeyed)
{
    const dnn::Network net = dnn::parseNetworkSpec(kTinySpec);
    sim::SimConfig a;
    a.faults.nodes = {{3, 0.5}, {1, 0.25}};
    sim::SimConfig b;
    b.faults.nodes = {{1, 0.25}, {3, 0.5}};
    EXPECT_EQ(serve::contextHash(net, a), serve::contextHash(net, b));

    sim::SimConfig c;
    c.faults.nodes = {{1, 0.25}};
    EXPECT_NE(serve::contextHash(net, a), serve::contextHash(net, c));
    EXPECT_NE(serve::contextHash(net, c),
              serve::contextHash(net, sim::SimConfig{}));
}

TEST(Canonical, EveryKeyedFieldForksTheKey)
{
    const dnn::Network net = dnn::parseNetworkSpec(kTinySpec);
    sim::SimConfig cfg;
    const std::string base = serve::contextHash(net, cfg);

    sim::SimConfig batch = cfg;
    batch.comm.batch = 128;
    EXPECT_NE(serve::contextHash(net, batch), base);

    sim::SimConfig topo = cfg;
    topo.topology = sim::TopologyKind::kTorus;
    EXPECT_NE(serve::contextHash(net, topo), base);

    sim::SimConfig levels = cfg;
    levels.levels = 3;
    EXPECT_NE(serve::contextHash(net, levels), base);
}

TEST(Canonical, PlanHashKeysStrategyAndSearchKnobs)
{
    const dnn::Network net = dnn::parseNetworkSpec(kTinySpec);
    const sim::SimConfig cfg;
    core::SearchOptions search;
    const std::string base =
        serve::planHash(net, cfg, "optimal", search);

    EXPECT_NE(serve::planHash(net, cfg, "hypar", search), base);

    core::SearchOptions beam = search;
    beam.engine = core::SearchEngine::kBeam;
    EXPECT_NE(serve::planHash(net, cfg, "optimal", beam), base);

    core::SearchOptions width = search;
    width.beamWidth = 32;
    EXPECT_NE(serve::planHash(net, cfg, "optimal", width), base);

    // width_hint is a pure warm start — results are bit-identical
    // with or without it — so it must NOT fork the key: hinted
    // requests share the unhinted request's on-disk entry.
    core::SearchOptions hinted = search;
    hinted.beamWidthStart = 8;
    EXPECT_EQ(serve::planHash(net, cfg, "optimal", hinted), base);

    // The sweep key embeds the plan payload plus the swept level.
    EXPECT_NE(serve::sweepHash(net, cfg, "hypar", search, 1), base);
    EXPECT_NE(serve::sweepHash(net, cfg, "hypar", search, 1),
              serve::sweepHash(net, cfg, "hypar", search, 2));

    // ... and the context payload is embedded: same knobs, different
    // batch, different plan key.
    sim::SimConfig other = cfg;
    other.comm.batch = 128;
    EXPECT_NE(serve::planHash(net, other, "optimal", search), base);
}

TEST(Canonical, DoubleRendersRoundTrip)
{
    const double awkward = 0.1 + 0.2;
    EXPECT_EQ(std::stod(serve::canonicalDouble(awkward)), awkward);
    EXPECT_EQ(serve::canonicalDouble(1.0), "1");
}

// --- Plan cache --------------------------------------------------------------

namespace {

std::string
hashFor(const core::HierarchicalResult &result)
{
    return serve::sha256Hex(serve::PlanCache::entryJson("x", result));
}

void
writeFile(const fs::path &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    out << text;
}

} // namespace

TEST(PlanCache, StoreThenLookupIsBitIdentical)
{
    TempDir tmp("cache_roundtrip");
    serve::PlanCache cache(tmp.path, true);
    const core::HierarchicalResult result = sampleResult();
    const std::string hash = hashFor(result);

    EXPECT_FALSE(cache.lookup(hash).has_value());
    cache.store(hash, result);
    const std::optional<core::HierarchicalResult> back =
        cache.lookup(hash);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->plan.levels, result.plan.levels);
    EXPECT_EQ(back->commBytes, result.commBytes); // exact, %.17g
    EXPECT_EQ(back->transitionsEvaluated, result.transitionsEvaluated);
    EXPECT_EQ(back->stats.expanded, result.stats.expanded);
    EXPECT_EQ(back->stats.pruned, result.stats.pruned);
    EXPECT_EQ(back->stats.certifiedExact, result.stats.certifiedExact);
    EXPECT_EQ(back->stats.widthUsed, result.stats.widthUsed);

    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().stores, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);

    // Atomic write: the entry exists, the staging .tmp does not.
    EXPECT_TRUE(fs::exists(tmp.path / (hash + ".json")));
    EXPECT_FALSE(fs::exists(tmp.path / (hash + ".tmp")));
}

TEST(PlanCache, CorruptEntriesAreQuarantinedNotFatal)
{
    TempDir tmp("cache_corrupt");
    serve::PlanCache cache(tmp.path, true);
    const core::HierarchicalResult result = sampleResult();
    const std::string hash = hashFor(result);
    const std::string good = serve::PlanCache::entryJson(hash, result);
    const fs::path entry = tmp.path / (hash + ".json");

    struct Case
    {
        const char *label;
        std::string text;
    };
    const std::vector<Case> cases = {
        {"truncated", good.substr(0, good.size() / 2)},
        {"garbage", "not json at all\n"},
        {"trailing", good + "extra"},
        {"wrong-version",
         [&] {
             std::string t = good;
             const auto at = t.find("\"version\":");
             return t.replace(at, std::string("\"version\": 1").size(),
                              "\"version\": 99");
         }()},
        {"wrong-format",
         [&] {
             std::string t = good;
             const auto at = t.find("hyparc-plan-cache");
             return t.replace(at, 17, "someone-elses-fmt");
         }()},
        {"wrong-hash", serve::PlanCache::entryJson(
                           std::string(64, 'f'), result)},
    };

    std::size_t quarantined = 0;
    for (const Case &c : cases) {
        writeFile(entry, c.text);
        EXPECT_FALSE(cache.lookup(hash).has_value()) << c.label;
        EXPECT_FALSE(fs::exists(entry)) << c.label;
        EXPECT_EQ(cache.stats().quarantined, ++quarantined) << c.label;
        fs::remove(tmp.path / (hash + ".quarantine"));
    }

    // Re-planning after quarantine overwrites cleanly.
    cache.store(hash, result);
    EXPECT_TRUE(cache.lookup(hash).has_value());
}

TEST(PlanCache, DisabledCacheNeverTouchesTheDirectory)
{
    TempDir tmp("cache_disabled");
    const fs::path dir = tmp.path / "never-created";
    serve::PlanCache cache(dir, false);
    const core::HierarchicalResult result = sampleResult();
    const std::string hash = hashFor(result);

    cache.store(hash, result);
    EXPECT_FALSE(cache.lookup(hash).has_value());
    EXPECT_FALSE(fs::exists(dir)); // store was a no-op
    EXPECT_EQ(cache.stats().stores, 0u);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(PlanCache, EvictRemovesEntriesAndDebris)
{
    TempDir tmp("cache_evict");
    serve::PlanCache cache(tmp.path, true);
    const core::HierarchicalResult result = sampleResult();
    cache.store(std::string(64, 'a'), result);
    cache.store(std::string(64, 'b'), result);
    writeFile(tmp.path / (std::string(64, 'c') + ".tmp"), "stale");
    writeFile(tmp.path / (std::string(64, 'd') + ".quarantine"), "bad");

    EXPECT_EQ(cache.evict(), 4u);
    EXPECT_TRUE(fs::is_empty(tmp.path));
    EXPECT_FALSE(cache.lookup(std::string(64, 'a')).has_value());
}

// --- Session registry --------------------------------------------------------

TEST(SessionRegistry, ReusesWarmSessionsAndEvictsLru)
{
    const dnn::Network net = dnn::parseNetworkSpec(kTinySpec);
    serve::SessionRegistry registry(2);

    sim::SimConfig a; // three distinct contexts
    sim::SimConfig b;
    b.comm.batch = 128;
    sim::SimConfig c;
    c.comm.batch = 64;

    serve::Session &sa = registry.acquire(net, a);
    EXPECT_EQ(registry.built(), 1u);
    EXPECT_EQ(&registry.acquire(net, a), &sa); // warm hit, same object
    EXPECT_EQ(registry.reused(), 1u);

    registry.acquire(net, b);
    EXPECT_EQ(registry.size(), 2u);
    registry.acquire(net, c); // evicts a (least recently acquired)
    EXPECT_EQ(registry.size(), 2u);
    EXPECT_EQ(registry.built(), 3u);

    registry.acquire(net, a); // rebuilt after eviction
    EXPECT_EQ(registry.built(), 4u);
    EXPECT_EQ(registry.reused(), 1u);
}

TEST(SessionRegistry, SessionEvaluatorMatchesColdEvaluator)
{
    const dnn::Network net = dnn::parseNetworkSpec(kTinySpec);
    const sim::SimConfig cfg;
    serve::SessionRegistry registry;
    serve::Session &session = registry.acquire(net, cfg);

    const core::HierarchicalPlan plan =
        core::makeHyparPlan(session.evaluator->model(), cfg.levels);
    const sim::Evaluator cold(net, cfg);
    EXPECT_EQ(session.evaluator->evaluate(plan), cold.evaluate(plan));
}

// --- Server: warm-cache bit-identity (the acceptance differential) ----------

namespace {

struct PlanResponse
{
    std::string cacheOutcome;
    std::vector<std::string> planBits;
    double commBytes = 0.0;
    std::uint64_t transitions = 0;
    std::uint64_t widthUsed = 0;
    bool certified = false;

    static PlanResponse parse(const std::string &line)
    {
        const serve::JsonValue v = serve::JsonValue::parse(line);
        EXPECT_TRUE(v.find("ok")->asBool()) << line;
        PlanResponse r;
        r.cacheOutcome = v.find("cache")->asString();
        for (const serve::JsonValue &level : v.find("plan")->asArray())
            r.planBits.push_back(level.asString());
        r.commBytes = v.find("comm_bytes")->asNumber();
        const serve::JsonValue *search = v.find("search");
        r.transitions = static_cast<std::uint64_t>(
            search->find("transitions_evaluated")->asNumber());
        r.certified = search->find("certified_exact")->asBool();
        r.widthUsed = static_cast<std::uint64_t>(
            search->find("width_used")->asNumber());
        return r;
    }
};

} // namespace

TEST(Server, WarmCachePlanIsBitIdenticalToColdSearchAcrossEngines)
{
    TempDir tmp("serve_diff");
    const std::string request =
        R"({"op":"plan","model":"Lenet-c","strategy":"optimal",)"
        R"("engine":"ENGINE"})";

    std::optional<PlanResponse> reference;
    for (const std::string engine : {"dense", "sparse", "beam", "astar"}) {
        std::string line = request;
        line.replace(line.find("ENGINE"), 6, engine);

        // Cold: a fresh server with a fresh cache directory searches.
        serve::ServeOptions opts;
        opts.cacheDir = tmp.path / engine;
        serve::Server cold(opts);
        const PlanResponse first =
            PlanResponse::parse(runBatch(cold, {line}).at(0));
        EXPECT_EQ(first.cacheOutcome, "miss");

        // Warm: a *new* server over the same directory must replay the
        // stored result bit-identically (plan, bytes, certificate).
        serve::Server warm(opts);
        const PlanResponse second =
            PlanResponse::parse(runBatch(warm, {line}).at(0));
        EXPECT_EQ(second.cacheOutcome, "hit");
        EXPECT_EQ(second.planBits, first.planBits);
        EXPECT_EQ(second.commBytes, first.commBytes); // exact doubles
        EXPECT_EQ(second.transitions, first.transitions);
        EXPECT_TRUE(second.certified);

        // All exact engines agree on the optimum (and its cost).
        if (!reference) {
            reference = first;
        } else {
            EXPECT_EQ(first.planBits, reference->planBits) << engine;
            EXPECT_EQ(first.commBytes, reference->commBytes) << engine;
        }
    }
}

TEST(Server, MaxSessionsSizesTheWarmRegistry)
{
    // --max-sessions threads through ServeOptions to the session LRU:
    // capacity 2 keeps two warm contexts and evicts on the third.
    serve::ServeOptions opts;
    opts.noCache = true;
    opts.maxSessions = 2;
    serve::Server server(opts);
    EXPECT_EQ(server.sessions().capacity(), 2u);

    const auto req = [](const char *model) {
        return std::string(R"({"op":"evaluate","model":")") + model +
               R"(","strategy":"dp","levels":2})";
    };
    runBatch(server, {req("Lenet-c")});
    runBatch(server, {req("SFC")});
    EXPECT_EQ(server.sessions().size(), 2u);
    runBatch(server, {req("VGG-A")});
    EXPECT_EQ(server.sessions().size(), 2u); // LRU evicted, not grown
    EXPECT_EQ(server.sessions().built(), 3u);
}

TEST(Server, WidthHintWarmStartsTheAdaptiveBeamBitIdentically)
{
    // Cold adaptive beam: width-doubling ramp until the drop
    // certificate holds. Threading the measured plateau back as
    // width_hint must skip the ramp (strictly fewer transitions, same
    // final width) and return the bit-identical plan and cost.
    serve::ServeOptions opts;
    opts.noCache = true; // force a real search on every request
    serve::Server server(opts);

    const std::string cold_req =
        R"({"op":"plan","model":"VGG-E","strategy":"optimal",)"
        R"("engine":"beam","levels":8})";
    const PlanResponse cold =
        PlanResponse::parse(runBatch(server, {cold_req}).at(0));
    EXPECT_TRUE(cold.certified);
    EXPECT_GT(cold.widthUsed, 0u);

    const std::string warm_req =
        R"({"op":"plan","model":"VGG-E","strategy":"optimal",)"
        R"("engine":"beam","levels":8,"width_hint":)" +
        std::to_string(cold.widthUsed) + "}";
    const PlanResponse warm =
        PlanResponse::parse(runBatch(server, {warm_req}).at(0));
    EXPECT_TRUE(warm.certified);
    EXPECT_EQ(warm.planBits, cold.planBits);
    EXPECT_EQ(warm.commBytes, cold.commBytes); // exact doubles
    EXPECT_EQ(warm.widthUsed, cold.widthUsed);
    // The hinted search starts at the plateau instead of ramping
    // through every narrower pass, so it evaluates strictly fewer
    // transitions whenever the cold ramp took more than one pass.
    EXPECT_LE(warm.transitions, cold.transitions);
}

TEST(Server, CachedPlanEvaluatesIdenticallyAtEveryThreadCount)
{
    TempDir tmp("serve_threads");
    serve::ServeOptions opts;
    opts.cacheDir = tmp.path;
    serve::Server server(opts);
    const std::string line =
        R"({"op":"plan","model":"Lenet-c","strategy":"optimal"})";

    const PlanResponse cold =
        PlanResponse::parse(runBatch(server, {line}).at(0));
    const PlanResponse warm =
        PlanResponse::parse(runBatch(server, {line}).at(0));
    EXPECT_EQ(warm.cacheOutcome, "hit");
    ASSERT_EQ(warm.planBits, cold.planBits);

    // Decode both responses' plans and score them through explicit
    // serial (0 workers) and multi-threaded pools: every combination
    // must produce the same StepMetrics bit for bit.
    core::HierarchicalPlan plan;
    for (const std::string &bits : warm.planBits) {
        core::LevelPlan lp;
        for (const char c : bits)
            lp.push_back(c == '1' ? core::Parallelism::kModel
                                  : core::Parallelism::kData);
        plan.levels.push_back(lp);
    }
    const sim::Evaluator evaluator(dnn::modelByName("Lenet-c"),
                                   sim::SimConfig{});
    const std::vector<core::HierarchicalPlan> plans(4, plan);
    util::ThreadPool serial(0);
    util::ThreadPool threaded(3);
    const auto serialOut = evaluator.evaluateBatch(plans, serial);
    const auto threadedOut = evaluator.evaluateBatch(plans, threaded);
    const sim::StepMetrics direct = evaluator.evaluate(plan);
    ASSERT_EQ(serialOut.size(), plans.size());
    for (std::size_t i = 0; i < plans.size(); ++i) {
        EXPECT_EQ(serialOut[i], direct);
        EXPECT_EQ(threadedOut[i], direct);
    }
}

TEST(Server, NoCacheBypassesReadsAndWrites)
{
    TempDir tmp("serve_nocache");
    serve::ServeOptions opts;
    opts.cacheDir = tmp.path / "cache";
    opts.noCache = true;
    serve::Server server(opts);
    const std::string line = R"({"op":"plan","model":"Lenet-c"})";

    const PlanResponse first =
        PlanResponse::parse(runBatch(server, {line}).at(0));
    const PlanResponse second =
        PlanResponse::parse(runBatch(server, {line}).at(0));
    EXPECT_EQ(first.cacheOutcome, "bypass");
    EXPECT_EQ(second.cacheOutcome, "bypass"); // never becomes a hit
    EXPECT_EQ(second.planBits, first.planBits);
    EXPECT_FALSE(fs::exists(opts.cacheDir)); // no writes either
}

TEST(Server, QuarantinedEntryIsReplannedInBand)
{
    TempDir tmp("serve_quarantine");
    serve::ServeOptions opts;
    opts.cacheDir = tmp.path;
    serve::Server server(opts);
    const std::string line = R"({"op":"plan","model":"Lenet-c"})";

    PlanResponse::parse(runBatch(server, {line}).at(0));
    // Corrupt the single stored entry in place.
    fs::path entry;
    for (const auto &e : fs::directory_iterator(tmp.path))
        if (e.path().extension() == ".json")
            entry = e.path();
    ASSERT_FALSE(entry.empty());
    writeFile(entry, "{\"truncated\":");

    serve::Server fresh(opts);
    const PlanResponse replanned =
        PlanResponse::parse(runBatch(fresh, {line}).at(0));
    EXPECT_EQ(replanned.cacheOutcome, "miss"); // not a crash, not a hit
    EXPECT_EQ(fresh.cache().stats().quarantined, 1u);
    EXPECT_TRUE(fs::exists(entry)); // rewritten by the re-plan

    serve::Server again(opts);
    EXPECT_EQ(PlanResponse::parse(runBatch(again, {line}).at(0))
                  .cacheOutcome,
              "hit");
}

// --- Server: admission batches, coalescing, framing -------------------------

TEST(Server, BatchKeepsResponseOrderAndCoalescesSharedContexts)
{
    TempDir tmp("serve_batch");
    serve::ServeOptions opts;
    opts.cacheDir = tmp.path;
    serve::Server server(opts);

    const std::vector<std::string> batch = {
        R"({"id":"e1","op":"evaluate","model":"Lenet-c"})",
        R"({"id":"bad","op":"evaluate","model":"Lenet-c","stratgy":"dp"})",
        R"({"id":"e2","op":"evaluate","model":"Lenet-c","strategy":"dp"})",
        R"({"id":"other","op":"evaluate","model":"Lenet-c","batch":128})",
    };
    const std::vector<std::string> responses = runBatch(server, batch);
    ASSERT_EQ(responses.size(), batch.size());

    // Responses come back in request order, ids and ops echoed, the
    // malformed request answered in-band in its slot. "id" and "op"
    // are extracted before the unknown-field gate, so even the bad
    // request's error response carries both.
    for (const std::size_t i : {0u, 1u, 2u, 3u}) {
        const serve::JsonValue v = serve::JsonValue::parse(responses[i]);
        ASSERT_NE(v.find("id"), nullptr) << responses[i];
        EXPECT_EQ(v.find("id")->asString(),
                  serve::JsonValue::parse(batch[i]).find("id")->asString());
        ASSERT_NE(v.find("op"), nullptr) << responses[i];
        EXPECT_EQ(v.find("op")->asString(), "evaluate");
    }
    const serve::JsonValue bad = serve::JsonValue::parse(responses[1]);
    EXPECT_FALSE(bad.find("ok")->asBool());
    EXPECT_NE(bad.find("error")->asString().find("stratgy"),
              std::string::npos);

    // e1 and e2 share a context (same model/config, different plan) and
    // coalesce into one evaluateBatch; "other" has its own context.
    const serve::JsonValue e1 = serve::JsonValue::parse(responses[0]);
    const serve::JsonValue e2 = serve::JsonValue::parse(responses[2]);
    const serve::JsonValue other = serve::JsonValue::parse(responses[3]);
    EXPECT_EQ(e1.find("batched")->asNumber(), 2.0);
    EXPECT_EQ(e2.find("batched")->asNumber(), 2.0);
    EXPECT_EQ(other.find("batched")->asNumber(), 1.0);
    EXPECT_EQ(e1.find("context_hash")->asString(),
              e2.find("context_hash")->asString());
    EXPECT_NE(e1.find("context_hash")->asString(),
              other.find("context_hash")->asString());
    EXPECT_EQ(server.stats().coalesced, 2u);
    EXPECT_EQ(server.stats().errors, 1u);

    // Coalesced metrics are bit-identical to a direct evaluation.
    const sim::Evaluator evaluator(dnn::modelByName("Lenet-c"),
                                   sim::SimConfig{});
    const sim::StepMetrics direct =
        evaluator.evaluate(core::makeHyparPlan(evaluator.model(), 4));
    EXPECT_EQ(e1.find("metrics")->find("step_seconds")->asNumber(),
              direct.stepSeconds);
    EXPECT_EQ(e1.find("metrics")->find("comm_bytes")->asNumber(),
              direct.commBytes);
    EXPECT_EQ(e1.find("metrics")
                  ->find("energy")
                  ->find("total_j")
                  ->asNumber(),
              direct.energy.totalJ());
}

TEST(Server, ExplicitPlanAndSteadyStateEvaluate)
{
    TempDir tmp("serve_explicit");
    serve::ServeOptions opts;
    opts.cacheDir = tmp.path;
    serve::Server server(opts);

    const sim::Evaluator evaluator(dnn::modelByName("Lenet-c"),
                                   sim::SimConfig{});
    const core::HierarchicalPlan dp = core::makeDataParallelPlan(
        evaluator.network(), 4);
    std::string planJson = "[";
    for (std::size_t h = 0; h < dp.levels.size(); ++h)
        planJson += std::string(h ? "," : "") + '"' +
                    core::toBitString(dp.levels[h]) + '"';
    planJson += "]";

    const std::vector<std::string> responses = runBatch(
        server,
        {R"({"op":"evaluate","model":"Lenet-c","plan":)" + planJson + "}",
         R"({"op":"evaluate","model":"Lenet-c","plan":)" + planJson +
             R"(,"steps":5})"});
    const serve::JsonValue one = serve::JsonValue::parse(responses[0]);
    const serve::JsonValue steady = serve::JsonValue::parse(responses[1]);
    EXPECT_TRUE(one.find("ok")->asBool()) << responses[0];
    EXPECT_TRUE(steady.find("ok")->asBool()) << responses[1];
    EXPECT_EQ(one.find("metrics")->find("step_seconds")->asNumber(),
              evaluator.evaluate(dp).stepSeconds);
    EXPECT_EQ(steady.find("steps")->asNumber(), 5.0);
    EXPECT_EQ(steady.find("metrics")->find("step_seconds")->asNumber(),
              evaluator.evaluateSteadyState(dp, 5).stepSeconds);
}

TEST(Server, SweepFindsTheLevelOptimum)
{
    TempDir tmp("serve_sweep");
    serve::ServeOptions opts;
    opts.cacheDir = tmp.path;
    serve::Server server(opts);

    const std::vector<std::string> responses = runBatch(
        server,
        {R"({"op":"sweep","model":"Lenet-c","level":1})"});
    const serve::JsonValue v = serve::JsonValue::parse(responses.at(0));
    ASSERT_TRUE(v.find("ok")->asBool()) << responses.at(0);

    // The sweep visits all 2^L masks and its winner matches a direct
    // argmin over sweepNeighborhood.
    const sim::Evaluator evaluator(dnn::modelByName("Lenet-c"),
                                   sim::SimConfig{});
    const core::HierarchicalPlan base =
        core::makeHyparPlan(evaluator.model(), 4);
    EXPECT_EQ(v.find("evaluated")->asNumber(),
              static_cast<double>(std::uint64_t{1} << base.numLayers()));
    std::uint64_t bestMask = 0;
    double bestSeconds = 0.0;
    std::size_t seen = 0;
    evaluator.sweepNeighborhood(
        base, 1, [&](std::uint64_t mask, const sim::StepMetrics &m) {
            if (seen == 0 || m.stepSeconds < bestSeconds) {
                bestMask = mask;
                bestSeconds = m.stepSeconds;
            }
            ++seen;
        });
    EXPECT_EQ(v.find("best_mask")->asNumber(),
              static_cast<double>(bestMask));
    EXPECT_EQ(v.find("metrics")->find("step_seconds")->asNumber(),
              bestSeconds);
}

TEST(Server, RunFramesBatchesOnBlankLinesAndShutsDown)
{
    TempDir tmp("serve_run");
    serve::ServeOptions opts;
    opts.cacheDir = tmp.path;
    serve::Server server(opts);

    std::istringstream in(
        R"({"op":"plan","model":"Lenet-c"})" "\n"
        "\n" // admission barrier
        "  \t\r\n" // still blank
        R"({"op":"stats"})" "\n"
        R"({"op":"shutdown"})" "\n"
        "\n" // flushes the batch whose shutdown ends the loop
        R"({"op":"plan","model":"Lenet-c"})" "\n"); // never admitted
    std::ostringstream out;
    EXPECT_EQ(server.run(in, out), 0);

    std::vector<std::string> responses;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line))
        responses.push_back(line);

    // plan / stats / shutdown answered; the post-shutdown request is
    // never admitted.
    ASSERT_EQ(responses.size(), 3u);
    const serve::JsonValue stats = serve::JsonValue::parse(responses[1]);
    EXPECT_TRUE(stats.find("ok")->asBool());
    EXPECT_EQ(stats.find("server")->find("batches")->asNumber(), 2.0);
    EXPECT_EQ(stats.find("cache")->find("stores")->asNumber(), 1.0);
    EXPECT_EQ(stats.find("sessions")->find("built")->asNumber(), 1.0);
    EXPECT_TRUE(serve::JsonValue::parse(responses[2]).find("ok")->asBool());
}

TEST(Server, EvictOpClearsTheCache)
{
    TempDir tmp("serve_evict");
    serve::ServeOptions opts;
    opts.cacheDir = tmp.path;
    serve::Server server(opts);

    runBatch(server, {R"({"op":"plan","model":"Lenet-c"})"});
    const std::vector<std::string> responses =
        runBatch(server, {R"({"op":"evict"})"});
    const serve::JsonValue v = serve::JsonValue::parse(responses.at(0));
    EXPECT_TRUE(v.find("ok")->asBool());
    EXPECT_EQ(v.find("removed")->asNumber(), 1.0);
    EXPECT_TRUE(fs::is_empty(tmp.path));
}

TEST(Server, MalformedRequestsAnswerInBand)
{
    TempDir tmp("serve_errors");
    serve::ServeOptions opts;
    opts.cacheDir = tmp.path;
    serve::Server server(opts);

    const std::vector<std::string> responses = runBatch(
        server,
        {"not json",
         R"({"op":"plan"})",                        // no network
         R"({"op":"plan","model":"x","spec":"y"})", // both
         R"({"op":"bogus","model":"Lenet-c"})",
         R"({"op":"plan","model":"no-such-model"})",
         R"({"op":"sweep","model":"Lenet-c"})",     // missing level
         R"({"op":"evaluate","model":"Lenet-c","plan":["01"]})",
         R"({"op":"plan","model":"Lenet-c","topology":"ring"})"});
    for (const std::string &line : responses) {
        const serve::JsonValue v = serve::JsonValue::parse(line);
        EXPECT_FALSE(v.find("ok")->asBool()) << line;
        EXPECT_NE(v.find("error"), nullptr) << line;
    }
    EXPECT_EQ(server.stats().errors, responses.size());
}

TEST(Server, ErrorResponsesEchoTheOpWhenItParsed)
{
    serve::ServeOptions opts;
    opts.noCache = true;
    serve::Server server(opts);

    const std::vector<std::string> responses = runBatch(
        server,
        {R"({"op":"plan"})",                    // parsed op, no network
         R"({"op":"sweep","model":"Lenet-c"})", // parsed op, no level
         "not json",                            // op never parsed
         R"({"model":"Lenet-c"})"});            // object without an op
    const serve::JsonValue plan = serve::JsonValue::parse(responses[0]);
    EXPECT_FALSE(plan.find("ok")->asBool());
    ASSERT_NE(plan.find("op"), nullptr) << responses[0];
    EXPECT_EQ(plan.find("op")->asString(), "plan");
    const serve::JsonValue sweep = serve::JsonValue::parse(responses[1]);
    ASSERT_NE(sweep.find("op"), nullptr) << responses[1];
    EXPECT_EQ(sweep.find("op")->asString(), "sweep");
    // When no op ever parsed there is nothing to echo — the error
    // response simply omits the field instead of inventing one.
    EXPECT_EQ(serve::JsonValue::parse(responses[2]).find("op"), nullptr);
    EXPECT_EQ(serve::JsonValue::parse(responses[3]).find("op"), nullptr);
}

TEST(Server, WidthHintDoesNotForkTheOnDiskCacheEntry)
{
    // Satellite of the cache-key fix: a hinted and an unhinted plan
    // request are the same search (bit-identical results), so they
    // must share one on-disk entry — the hinted request *hits*.
    TempDir tmp("serve_hint_key");
    serve::ServeOptions opts;
    opts.cacheDir = tmp.path;
    serve::Server server(opts);

    const std::string cold =
        R"({"op":"plan","model":"Lenet-c","strategy":"optimal",)"
        R"("engine":"beam"})";
    const std::string hinted =
        R"({"op":"plan","model":"Lenet-c","strategy":"optimal",)"
        R"("engine":"beam","width_hint":8})";
    const PlanResponse first =
        PlanResponse::parse(runBatch(server, {cold}).at(0));
    EXPECT_EQ(first.cacheOutcome, "miss");
    const PlanResponse second =
        PlanResponse::parse(runBatch(server, {hinted}).at(0));
    EXPECT_EQ(second.cacheOutcome, "hit");
    EXPECT_EQ(second.planBits, first.planBits);
    EXPECT_EQ(second.commBytes, first.commBytes);
    EXPECT_EQ(server.cache().stats().stores, 1u);

    std::size_t entries = 0;
    for (const auto &e : fs::directory_iterator(tmp.path))
        entries += e.path().extension() == ".json" ? 1u : 0u;
    EXPECT_EQ(entries, 1u);
}

TEST(Server, RejectedRequestsNeverTouchTheSessionRegistry)
{
    // Satellite of the admission fix: a request that answers with an
    // in-band error must not build a session — and, worse, must not
    // evict a warm one. Whole-request validation runs before the LRU
    // is touched.
    serve::ServeOptions opts;
    opts.noCache = true;
    opts.maxSessions = 1; // a single zombie admission would evict
    serve::Server server(opts);

    runBatch(server, {R"({"op":"evaluate","model":"Lenet-c"})"});
    ASSERT_EQ(server.sessions().built(), 1u);
    const std::size_t reused = server.sessions().reused();

    const std::vector<std::string> responses = runBatch(
        server,
        {// same context, but the plan bits fail validation
         R"({"op":"evaluate","model":"Lenet-c","plan":["01"]})",
         // bad fault map: node id out of range for 2^4 nodes
         R"({"op":"evaluate","model":"Lenet-c",)"
         R"("faults":{"nodes":[[99,0.5]]}})",
         // distinct context that would evict, but the strategy is bad
         R"({"op":"evaluate","model":"SFC","strategy":"bogus"})",
         // distinct context with an unknown engine
         R"({"op":"plan","model":"SFC","strategy":"optimal",)"
         R"("engine":"warp"})"});
    for (const std::string &line : responses)
        EXPECT_FALSE(serve::JsonValue::parse(line).find("ok")->asBool())
            << line;
    EXPECT_EQ(server.sessions().built(), 1u);   // nothing new built
    EXPECT_EQ(server.sessions().reused(), reused); // nothing touched
    EXPECT_EQ(server.sessions().size(), 1u);

    // The warm session survived: the next good request reuses it.
    runBatch(server, {R"({"op":"evaluate","model":"Lenet-c"})"});
    EXPECT_EQ(server.sessions().built(), 1u);
    EXPECT_EQ(server.sessions().reused(), reused + 1);
}

TEST(Server, SweepResultsArePersistedInTheCache)
{
    TempDir tmp("serve_sweep_cache");
    serve::ServeOptions opts;
    opts.cacheDir = tmp.path;
    const std::string line =
        R"({"op":"sweep","model":"Lenet-c","level":1})";

    serve::Server server(opts);
    const serve::JsonValue cold =
        serve::JsonValue::parse(runBatch(server, {line}).at(0));
    ASSERT_TRUE(cold.find("ok")->asBool());
    EXPECT_EQ(cold.find("cache")->asString(), "miss");

    // A fresh server (no warm session) answers from disk,
    // byte-identically — without ever building an Evaluator.
    serve::Server fresh(opts);
    const std::vector<std::string> warmLines = runBatch(fresh, {line});
    const serve::JsonValue warm =
        serve::JsonValue::parse(warmLines.at(0));
    EXPECT_EQ(warm.find("cache")->asString(), "hit");
    EXPECT_EQ(fresh.sessions().built(), 0u);
    EXPECT_EQ(warm.find("best_mask")->asNumber(),
              cold.find("best_mask")->asNumber());
    EXPECT_EQ(warm.find("best_bits")->asString(),
              cold.find("best_bits")->asString());
    EXPECT_EQ(warm.find("metrics")->find("step_seconds")->asNumber(),
              cold.find("metrics")->find("step_seconds")->asNumber());

    // Corrupting the sweep entry quarantines and re-sweeps in band,
    // exactly like plan entries.
    fs::path entry;
    for (const auto &e : fs::directory_iterator(tmp.path))
        if (e.path().string().ends_with(".sweep.json"))
            entry = e.path();
    ASSERT_FALSE(entry.empty());
    writeFile(entry, "{\"evaluated\":");
    serve::Server again(opts);
    const serve::JsonValue reswept =
        serve::JsonValue::parse(runBatch(again, {line}).at(0));
    EXPECT_EQ(reswept.find("cache")->asString(), "miss");
    EXPECT_EQ(again.cache().stats().quarantined, 1u);
    EXPECT_EQ(reswept.find("best_mask")->asNumber(),
              cold.find("best_mask")->asNumber());
}

TEST(Server, MaxSessionBytesEvictsByResidentSize)
{
    serve::ServeOptions opts;
    opts.noCache = true;
    serve::Server unlimited(opts);
    const auto req = [](const char *model) {
        return std::string(R"({"op":"evaluate","model":")") + model +
               R"(","strategy":"dp","levels":2})";
    };
    runBatch(unlimited, {req("Lenet-c")});
    const std::size_t oneSession = unlimited.sessions().totalBytes();
    ASSERT_GT(oneSession, 0u);

    // A budget that holds one session but not two: the second context
    // evicts the first at the end of its batch.
    serve::ServeOptions tight = opts;
    tight.maxSessionBytes = oneSession + oneSession / 2;
    serve::Server server(tight);
    EXPECT_EQ(server.sessions().maxBytes(), tight.maxSessionBytes);
    runBatch(server, {req("Lenet-c")});
    EXPECT_EQ(server.sessions().size(), 1u);
    runBatch(server, {req("SFC")});
    EXPECT_EQ(server.sessions().size(), 1u); // evicted by bytes
    EXPECT_EQ(server.sessions().built(), 2u);
    EXPECT_LE(server.sessions().totalBytes(), tight.maxSessionBytes);

    // The budget never evicts below one session, however small.
    serve::ServeOptions tiny = opts;
    tiny.maxSessionBytes = 1;
    serve::Server floor(tiny);
    runBatch(floor, {req("Lenet-c")});
    EXPECT_EQ(floor.sessions().size(), 1u);
}

TEST(Server, StatsReportsPerOpLatencyHistograms)
{
    serve::ServeOptions opts;
    opts.noCache = true;
    serve::Server server(opts);

    runBatch(server, {R"({"op":"evaluate","model":"Lenet-c"})",
                      R"({"op":"evaluate","model":"Lenet-c","steps":2})"});
    const std::vector<std::string> responses =
        runBatch(server, {R"({"op":"stats"})"});
    const serve::JsonValue v = serve::JsonValue::parse(responses.at(0));
    ASSERT_TRUE(v.find("ok")->asBool());

    const serve::JsonValue *latency = v.find("latency");
    ASSERT_NE(latency, nullptr);
    for (const char *op : serve::Server::kOps)
        ASSERT_NE(latency->find(op), nullptr) << op;
    EXPECT_EQ(latency->find("evaluate")->find("count")->asNumber(), 2.0);
    EXPECT_EQ(latency->find("plan")->find("count")->asNumber(), 0.0);
    EXPECT_GT(latency->find("evaluate")->find("p99_us")->asNumber(), 0.0);
    EXPECT_LE(latency->find("evaluate")->find("p50_us")->asNumber(),
              latency->find("evaluate")->find("p99_us")->asNumber());

    // The registry's byte accounting is visible alongside.
    EXPECT_GT(v.find("sessions")->find("bytes")->asNumber(), 0.0);
    EXPECT_EQ(v.find("sessions")->find("max_bytes")->asNumber(), 0.0);

    // Histograms accumulate at serial points — the stats op itself is
    // timed too, so a second stats call sees the first.
    const serve::JsonValue second = serve::JsonValue::parse(
        runBatch(server, {R"({"op":"stats"})"}).at(0));
    EXPECT_EQ(second.find("latency")
                  ->find("stats")
                  ->find("count")
                  ->asNumber(),
              1.0);
}

// --- DAG canonicalization ---------------------------------------------------

namespace {

/** A small DAG spec: stem -> {a, b} -> join, then an fc head. */
constexpr const char *kDagSpec =
    "network dag\n"
    "input 1 8 8\n"
    "conv stem 4 3 pad 1\n"
    "conv a 4 3 pad 1\n"
    "conv b 4 3 pad 1\n"
    "edge stem b\n"
    "conv join 4 3 pad 1\n"
    "edge a join\n"
    "edge b join\n"
    "fc f1 10\n";

/** Same network, edge directives in a different order and position. */
constexpr const char *kDagSpecShuffledEdges =
    "network dag\n"
    "input 1 8 8\n"
    "conv stem 4 3 pad 1\n"
    "conv a 4 3 pad 1\n"
    "conv b 4 3 pad 1\n"
    "conv join 4 3 pad 1\n"
    "fc f1 10\n"
    "edge b join\n"
    "edge stem b\n"
    "edge a join\n";

} // namespace

TEST(Canonical, ChainHashesArePinnedAcrossTheDagGeneralization)
{
    // Golden hashes. The context hash was captured before DAG support
    // landed: chain specs canonicalize without edge lines, so context
    // keys must never move — a warm session registry filled by a
    // pre-DAG build keeps hitting. If the first expectation fails,
    // kCanonicalVersion was effectively broken for every deployment.
    // The plan hash was re-pinned when width_hint left the key text
    // (kPlanCacheVersion 2); it moves only with the cache version.
    const dnn::Network net = dnn::makeLenetC();
    const sim::SimConfig cfg;
    EXPECT_EQ(serve::contextHash(net, cfg),
              "6aacb02bd566f49eea451ce9e7ab0723"
              "e7183076aa4f0a0fd0e21f9a1db2fad9");
    EXPECT_EQ(serve::planHash(net, cfg, "optimal", core::SearchOptions{}),
              "c89e508e8dee83c5059877a1e5dfb4d4"
              "d41b9f8fa62c4061aef9ab7248071ab9");
}

TEST(Canonical, DagEdgeOrderDoesNotForkTheKey)
{
    // toSpec() renders edges in canonical (destination, source)
    // order, so the directive order of the client's spec is invisible
    // to the cache key — same invariance the fault list has.
    const dnn::Network a = dnn::parseNetworkSpec(kDagSpec);
    const dnn::Network b = dnn::parseNetworkSpec(kDagSpecShuffledEdges);
    const sim::SimConfig cfg;
    EXPECT_EQ(serve::canonicalContext(a, cfg),
              serve::canonicalContext(b, cfg));
    EXPECT_EQ(serve::contextHash(a, cfg), serve::contextHash(b, cfg));

    // But the wiring itself *is* keyed: dropping the skip edge (so the
    // layers chain) must fork the key.
    const dnn::Network chain = dnn::parseNetworkSpec(
        "network dag\n"
        "input 1 8 8\n"
        "conv stem 4 3 pad 1\n"
        "conv a 4 3 pad 1\n"
        "conv b 4 3 pad 1\n"
        "conv join 4 3 pad 1\n"
        "fc f1 10\n");
    EXPECT_NE(serve::contextHash(chain, cfg), serve::contextHash(a, cfg));
}

TEST(Server, CachedDagPlanRoundTripsBitIdentically)
{
    // End-to-end on a DAG model: a cold "optimal" search goes through
    // the series-parallel engine, is stored, and a fresh server over
    // the same cache directory replays it bit for bit.
    TempDir tmp("serve_dag");
    serve::ServeOptions opts;
    opts.cacheDir = tmp.path;
    const std::string request =
        R"({"op":"plan","model":"ResNet-block","strategy":"optimal",)"
        R"("levels":3})";

    serve::Server cold(opts);
    const PlanResponse first =
        PlanResponse::parse(runBatch(cold, {request}).at(0));
    EXPECT_EQ(first.cacheOutcome, "miss");
    EXPECT_TRUE(first.certified);

    serve::Server warm(opts);
    const PlanResponse second =
        PlanResponse::parse(runBatch(warm, {request}).at(0));
    EXPECT_EQ(second.cacheOutcome, "hit");
    EXPECT_EQ(second.planBits, first.planBits);
    EXPECT_EQ(second.commBytes, first.commBytes); // exact doubles
    EXPECT_EQ(second.transitions, first.transitions);
    EXPECT_EQ(second.widthUsed, first.widthUsed);
    EXPECT_TRUE(second.certified);

    // And the replayed cost is the series-parallel optimum.
    const dnn::Network net = dnn::makeResNetBlock();
    const core::CommModel model(net, core::CommConfig{});
    const auto direct = core::OptimalPartitioner(model).partition(3);
    EXPECT_EQ(first.commBytes, direct.commBytes);
}
